#!/usr/bin/env python
"""Turbopump simulation campaign planning with INS3D.

Run:  python examples/turbopump_campaign.py

The paper's motivating problem (§1, §3.4): unsteady flow through a
full-scale low-pressure rocket turbopump for the Crew Exploration
Vehicle program — 66M grid points, 267 blocks, 720 physical time steps
per inducer rotation.

This example uses the INS3D model to answer the planning question a
NASA engineer would actually ask: *which MLP group x thread layout
finishes one inducer rotation fastest on one BX2b node*, given that
adding groups speeds up each step but can deteriorate convergence
(§4.1.3) while threads never do.
"""

from repro.apps.ins3d import INS3DModel
from repro.machine.node import NodeType


def main() -> None:
    model = INS3DModel(node_type=NodeType.BX2B)
    steps = 720  # one inducer rotation

    print("INS3D turbopump: one inducer rotation (720 steps) on a BX2b node")
    print(f"Grid: {model.system.total_points / 1e6:.0f}M points in "
          f"{model.system.n_blocks} blocks")
    print()
    print(f"{'layout':>10} {'CPUs':>5} {'s/step':>8} {'conv.':>6} "
          f"{'rotation':>10} {'speedup':>8}")

    baseline = None
    best = None
    for groups in (36, 48, 72, 96, 128):
        for threads in (1, 2, 4, 8):
            if groups * threads > 508:  # leave the boot cpuset alone
                continue
            step = model.step_time(groups, threads)
            conv = model.convergence_factor(groups)
            rotation_hours = model.time_to_solution(groups, threads, steps) / 3600.0
            if baseline is None:
                baseline = rotation_hours
            row = (groups, threads, step, conv, rotation_hours)
            if best is None or rotation_hours < best[4]:
                best = row
            print(
                f"{groups:>6}x{threads:<3} {groups * threads:>5} "
                f"{step:>8.1f} {conv:>6.2f} {rotation_hours:>9.1f}h "
                f"{baseline / rotation_hours:>7.2f}x"
            )

    groups, threads, step, conv, hours = best
    print()
    print(f"Best layout: {groups}x{threads} ({groups * threads} CPUs) — "
          f"{hours:.1f} hours per rotation.")
    print("Note the tension the paper describes: beyond ~8 threads the")
    print("OpenMP scaling decays, and aggressive grouping buys faster")
    print("steps at the cost of more of them (convergence factor > 1).")


if __name__ == "__main__":
    main()
