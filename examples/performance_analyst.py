#!/usr/bin/env python
"""A performance analyst's session: traces, charts and the certificate.

Run:  python examples/performance_analyst.py

Demonstrates the tooling around the models — the things you would
reach for when *using* this library rather than reproducing the paper:

1. trace a simulated MPI job and read its communication statistics;
2. chart a figure as ASCII;
3. run a slice of the reproduction certificate.
"""

import numpy as np

from repro.api import NodeType, Placement, Tracer, run_experiment, single_node
from repro.core.claims import format_claims, verify_claims
from repro.core.series import chart_experiment
from repro.mpi import run_mpi
from repro.mpi.collectives import allreduce, alltoall
from repro.obs import messages as mstats


def main() -> None:
    # -- 1. trace a job ---------------------------------------------------------
    print("1. Tracing a 32-rank job (one all-to-all + one allreduce):")
    placement = Placement(single_node(NodeType.BX2B), n_ranks=32)
    tracer = Tracer()

    def program(comm):
        yield comm.compute(1e-5)
        yield from alltoall(comm, 8192)
        total = yield from allreduce(comm, 8, float(comm.rank))
        return total

    job = run_mpi(placement, program, tracer=tracer)
    print(f"   {mstats.summary(tracer.messages)}")
    print(f"   simulated wall-clock: {job.elapsed * 1e6:.1f} us")
    print(f"   size histogram: {mstats.size_histogram(tracer.messages)}")
    matrix = mstats.traffic_matrix(tracer.messages, 32)
    print(f"   traffic matrix: {matrix.sum():.0f} bytes total, "
          f"row sums uniform: {np.allclose(matrix.sum(1), matrix.sum(1)[0])}")
    print()

    # -- 2. chart a figure --------------------------------------------------------
    print("2. Fig. 6's FT panel as ASCII (BX2's bandwidth advantage):")
    fig6 = run_experiment("fig6")
    print(chart_experiment(
        fig6, x="cpus", y="gflops_per_cpu", series_by="node_type",
        benchmark="ft", paradigm="mpi", width=56, height=12,
    ))
    print()

    # -- 3. the certificate ----------------------------------------------------------
    print("3. A slice of the reproduction certificate:")
    results = verify_claims(
        ["ft_bandwidth", "cache_jump", "overflow_3x", "md_scaling"]
    )
    print(format_claims(results))


if __name__ == "__main__":
    main()
