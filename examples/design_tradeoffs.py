#!/usr/bin/env python
"""Machine design what-ifs the real Columbia could never run.

Run:  python examples/design_tradeoffs.py

The BX2b upgrades clock (1.5->1.6 GHz), L3 (6->9 MB) and interconnect
(NUMAlink3->4) *simultaneously*; the paper teases the contributions
apart from indirect evidence.  The simulator can simply build each
hypothetical intermediate machine and measure — plus two questions
beyond the paper: how many InfiniBand cards would pure MPI on all 20
nodes need, and what would the §5 SHMEM port of INS3D's exchanges buy?
"""

from repro.api import run_experiment


def main() -> None:
    print(run_experiment("ablation_cache").format())
    print()
    print(run_experiment("ablation_clock").format())
    print()
    print("Reading: MG and BT live or die by the L3 (the paper's ~50%")
    print("BX2b jump at 64 CPUs is cache, not clock); CG cares about")
    print("neither; clock alone is worth a few percent everywhere.")
    print()
    print(run_experiment("ablation_grouping").format())
    print()
    print(run_experiment("ablation_ibcards").format())
    print()
    print("With 8 cards per node, pure MPI tops out at 3 fully-used")
    print("nodes (§2); 16 cards would stretch that to 5 — still far")
    print("short of 20, so the hybrid-paradigm requirement stands.")
    print()
    print(run_experiment("ablation_shmem").format())
    print()
    print("One-sided SHMEM puts cut small-message latency nearly 2x —")
    print("the upside the authors anticipated when naming the INS3D")
    print("SHMEM port as future work (§5).")


if __name__ == "__main__":
    main()
