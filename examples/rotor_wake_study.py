#!/usr/bin/env python
"""Rotor wake production study with OVERFLOW-D.

Run:  python examples/rotor_wake_study.py

The paper's second application (§3.5): Navier-Stokes simulation of
vortex dynamics around hovering rotors — 1679 overset blocks, ~75M
grid points, ~50,000 time steps per production run.

The study answers three questions with the model:

1. Which machine finishes a production run soonest (3700 vs BX2b vs
   the 4-node NUMAlink4/InfiniBand clusters)?
2. How much of the 3700's poor scaling is load imbalance vs
   communication (the §4.1.4 decomposition)?
3. Would a better grid system help?  (The paper's own plan: "an
   overset grid system suitable in size and the number of blocks to
   fully exploit ... Columbia is under construction.")
"""

from repro.apps.overflow import OverflowModel
from repro.apps.overset.grids import rotor_system
from repro.apps.overset.grouping import group_blocks
from repro.machine.cluster import multinode, single_node
from repro.machine.node import NodeType

PRODUCTION_STEPS = 50_000


def main() -> None:
    print("OVERFLOW-D rotor wake: production run planning")
    print(f"Grid: 1679 blocks, ~75M points; {PRODUCTION_STEPS} steps/run")
    print()

    # -- 1. machine choice ----------------------------------------------------
    print("1. Production time by machine (best process x thread layout):")
    print(f"{'machine':>22} {'CPUs':>5} {'s/step':>8} {'days/run':>9}")
    configs = [
        ("3700 (1 node)", single_node(NodeType.A3700), 508),
        ("BX2b (1 node)", single_node(NodeType.BX2B), 508),
        ("4x BX2b NUMAlink4", multinode(4, fabric="numalink4"), 1008),
        ("4x BX2b InfiniBand", multinode(4, fabric="infiniband"), 1008),
    ]
    for label, cluster, cpus in configs:
        model = OverflowModel(cluster=cluster)
        step = model.reported(cpus)
        days = step.exec * PRODUCTION_STEPS / 86400.0
        print(f"{label:>22} {cpus:>5} {step.exec:>8.2f} {days:>8.1f}d")
    print()

    # -- 2. where does the 3700's time go? --------------------------------------
    print("2. The 3700's scaling anatomy (the §4.1.4 decomposition):")
    model = OverflowModel(cluster=single_node(NodeType.A3700))
    print(f"{'CPUs':>5} {'imbalance':>10} {'comm/exec':>10} {'efficiency':>11}")
    for cpus in (64, 128, 256, 508):
        st = model.best_step_time(cpus)
        grouping = model._grouping(st.ranks)
        print(
            f"{cpus:>5} {grouping.imbalance:>10.2f} "
            f"{st.comm / st.exec:>10.2f} {model.efficiency(cpus):>11.3f}"
        )
    print()

    # -- 3. a better grid system -----------------------------------------------
    print("3. What if the grid had 4x the blocks (the paper's planned fix)?")
    fine = rotor_system(seed=101)
    # Build a hypothetical system with the same points in 4x blocks.
    from repro.apps.overset.grids import _synthetic_system

    finer = _synthetic_system(
        name="rotor-fine", n_blocks=4 * 1679, total_points=75_000_000,
        skew_sigma=1.3, seed=102, max_block_fraction=0.013 / 4,
    )
    for label, system in (("current (1679 blocks)", fine), ("finer (6716 blocks)", finer)):
        imb = group_blocks(system, 508, strategy="binpack").imbalance
        model = OverflowModel(cluster=single_node(NodeType.BX2B), system=system)
        st = model.best_step_time(508)
        print(f"  {label:<24} imbalance@508 {imb:4.2f}  s/step {st.exec:5.2f}")
    print()
    print("The finer decomposition restores load balance at 508 CPUs —")
    print("exactly why the authors were building a larger grid system.")


if __name__ == "__main__":
    main()
