#!/usr/bin/env python
"""Molecular dynamics: real simulation + the Table 5 scaling study.

Run:  python examples/md_weak_scaling.py

First actually runs the Lennard-Jones MD code (Velocity Verlet, fcc
start, cell lists) at a laptop-scale size and verifies its physics,
then projects the paper's weak-scaling study (64,000 atoms per CPU up
to 2040 CPUs) with the timing model.
"""

import numpy as np

from repro.apps.md import MDSimulation, MDScalingModel
from repro.apps.md.domain import decomposed_forces
from repro.apps.md.forces import lj_forces_naive


def main() -> None:
    # -- real execution ---------------------------------------------------------
    print("Real MD run: 500 atoms, NVE ensemble, 200 steps")
    sim = MDSimulation(cells=5, temperature=0.72, dt=0.004, seed=11)
    state = sim.step(200)
    print(f"  atoms:            {state.n_atoms}")
    print(f"  temperature:      {state.temperature:.3f} (reduced)")
    print(f"  total energy:     {state.total_energy:.3f}")
    print(f"  energy drift:     {sim.energy_drift():.2e} (NVE conservation)")
    print(f"  net momentum:     {np.abs(state.momentum).max():.2e}")
    print()

    # -- spatial decomposition check ----------------------------------------------
    print("Spatial decomposition (the paper's parallelization, §3.3):")
    f_global, _ = lj_forces_naive(state.positions, state.box, sim.rcut)
    f_dec = decomposed_forces(state.positions, state.box, (2, 2, 2), sim.rcut)
    err = np.abs(f_dec - f_global).max()
    print(f"  2x2x2 domain forces vs global forces: max diff {err:.2e}")
    print()

    # -- Table 5 ---------------------------------------------------------------------
    print("Weak scaling projection (Table 5: 64,000 atoms/CPU, 100 steps):")
    model = MDScalingModel()
    print(f"{'CPUs':>6} {'atoms':>12} {'s/step':>8} {'efficiency':>11}")
    for row in model.table5():
        print(
            f"{row['processors']:>6} {row['particles']:>12,} "
            f"{row['time_per_step']:>8.3f} {row['efficiency']:>11.3f}"
        )
    print()
    print("Communication is a one-cutoff ghost shell with 26 neighbor")
    print("boxes — 'entirely local' (§3.3) — which is why scaling stays")
    print("almost perfect to 2040 CPUs (§4.6.3).")


if __name__ == "__main__":
    main()
