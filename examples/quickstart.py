#!/usr/bin/env python
"""Quickstart: build the simulated Columbia and reproduce a result.

Run:  python examples/quickstart.py

Walks through the three layers of the library:

1. the machine model (nodes, fabrics, placements);
2. a workload executed against it (simulated MPI ping-pong, a real
   NPB kernel run);
3. the characterization harness (a full paper table by id).
"""

from repro.api import (
    NodeType,
    Placement,
    list_experiments,
    multinode,
    run_experiment,
    single_node,
)
from repro.hpcc import pingpong
from repro.machine.specs import format_table1
from repro.npb import run_mg
from repro.units import to_gb_per_s, to_usec


def main() -> None:
    # -- 1. The machine ------------------------------------------------------
    print("=" * 72)
    print("The simulated Columbia supercluster")
    print("=" * 72)
    print(format_table1())
    print()

    # -- 2. A workload against the machine ------------------------------------
    print("MPI ping-pong between two CPUs of each node type:")
    for node_type in NodeType:
        cluster = single_node(node_type)
        placement = Placement(cluster, n_ranks=64)
        result = pingpong(placement, max_pairs=8)
        print(
            f"  {node_type.value:>5}: latency {to_usec(result.avg_latency):5.2f} us, "
            f"bandwidth {to_gb_per_s(result.avg_bandwidth):4.2f} GB/s"
        )
    print()

    print("...and across the InfiniBand switch (2 nodes):")
    cluster = multinode(2, fabric="infiniband")
    placement = Placement(cluster, n_ranks=64, spread_nodes=True)
    result = pingpong(placement, max_pairs=8)
    print(
        f"   IB  : latency {to_usec(result.avg_latency):5.2f} us, "
        f"bandwidth {to_gb_per_s(result.avg_bandwidth):4.2f} GB/s"
    )
    print()

    print("A real NPB kernel (MG class S, actual multigrid solve):")
    mg = run_mg("S")
    print(
        f"  residual {mg.initial_residual:.2e} -> {mg.final_residual:.2e} "
        f"({mg.iterations} V-cycles, contraction {mg.contraction:.2f}/cycle)"
    )
    print()

    # -- 3. The characterization harness ---------------------------------------
    print("=" * 72)
    print("Reproducing a paper table: Table 2 (INS3D)")
    print("=" * 72)
    print(run_experiment("table2").format())
    print()
    print("All available experiments:")
    for eid, desc in list_experiments():
        print(f"  {eid:<20} {desc}")


if __name__ == "__main__":
    main()
