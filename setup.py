"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
``pip install -e .`` (PEP 517 editable) cannot build. ``python
setup.py develop`` installs the package in editable mode from
pyproject.toml metadata without needing wheel.
"""

from setuptools import setup

setup()
