"""Benchmark: Fig. 5: b_eff per node type.

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_fig5(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
