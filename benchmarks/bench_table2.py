"""Benchmark: Table 2: INS3D groups x threads.

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_table2(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table2", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
