"""Benchmark: S4.2: CPU stride.

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_sec42_stride(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("sec42_stride", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
