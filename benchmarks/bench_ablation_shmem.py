"""Benchmark: Ablation: SHMEM vs MPI (S5 future work).

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_ablation_shmem(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("ablation_shmem", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
