"""Benchmark: extension — OS-noise amplification of synchronized steps."""

from repro.core import run_experiment


def test_ext_noise(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_noise", fast=True),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
