"""Benchmark: extension — the multinode INS3D the paper planned (S5).

Regenerates the experiment and prints the rows; the benchmark measures
the end-to-end harness time.
"""

from repro.core import run_experiment


def test_ext_ins3d_multinode(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_ins3d_multinode", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
