"""Benchmark: Fig. 6: NPB per-CPU rates.

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_fig6(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
