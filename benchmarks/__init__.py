"""Benchmark scripts (pytest-benchmark microbenchmarks and the
``bench_regression`` harness behind ``make bench``)."""
