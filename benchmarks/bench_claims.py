"""Benchmark: the full reproduction certificate (every prose claim)."""

from repro.core.claims import format_claims, verify_claims


def test_claims(benchmark):
    results = benchmark.pedantic(verify_claims, iterations=1, rounds=1)
    print()
    print(format_claims(results))
    assert all(r.passed for r in results)
