"""Benchmark: Table 6: OVERFLOW-D multinode.

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_table6(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table6", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
