"""Microbenchmarks of the real computational kernels.

These measure the actual NumPy implementations (the pieces that
execute real numerics, as opposed to the machine-model experiments):
the NPB kernels at their small classes, the MD force loop, the CFD
solvers, and the DES message engine.
"""

import numpy as np

from repro.apps.cfd import line_relax_poisson, lusgs_solve
from repro.apps.md import MDSimulation, lj_forces
from repro.apps.md.lattice import fcc_lattice
from repro.hpcc import run_dgemm, run_stream
from repro.machine.cluster import single_node
from repro.machine.node import NodeType
from repro.machine.placement import Placement
from repro.mpi import run_mpi
from repro.mpi.collectives import alltoall
from repro.npb import run_bt, run_cg, run_ft, run_mg
from repro.sim.rng import make_rng


def test_mg_class_s(benchmark):
    result = benchmark(run_mg, "S")
    assert result.final_residual < result.initial_residual


def test_cg_class_s(benchmark):
    result = benchmark(run_cg, "S")
    assert result.final_residual < 1e-6


def test_ft_class_s(benchmark):
    result = benchmark(run_ft, "S")
    assert result.energy_error < 1e-10


def test_bt_class_s(benchmark):
    result = benchmark(run_bt, "S", 10)
    assert result.converged


def test_md_forces_864_atoms(benchmark):
    positions, box = fcc_lattice(6)
    forces, energy = benchmark(lj_forces, positions, box, 2.5)
    assert np.abs(forces.sum(axis=0)).max() < 1e-8


def test_md_simulation_step(benchmark):
    sim = MDSimulation(cells=3)
    benchmark.pedantic(lambda: sim.step(5), iterations=1, rounds=3)
    assert sim.energy_drift() < 0.02


def test_hpcc_dgemm_real(benchmark):
    result = benchmark.pedantic(
        lambda: run_dgemm(384, repeats=1), iterations=1, rounds=3
    )
    assert result.gflops_per_cpu > 0


def test_hpcc_stream_real(benchmark):
    result = benchmark.pedantic(
        lambda: run_stream(1_000_000, repeats=1), iterations=1, rounds=3
    )
    assert result.triad > 0


def test_line_relaxation(benchmark):
    rng = make_rng(0)
    f = rng.standard_normal((32, 32))
    _, history = benchmark.pedantic(
        lambda: line_relax_poisson(f, sweeps=10), iterations=1, rounds=3
    )
    assert history[-1] < history[0]


def test_lusgs(benchmark):
    rng = make_rng(1)
    b = rng.standard_normal((12, 12, 12))
    _, history = benchmark.pedantic(
        lambda: lusgs_solve(b, iterations=10), iterations=1, rounds=3
    )
    assert history[-1] < history[0]


def test_des_alltoall_64_ranks(benchmark):
    """Throughput of the discrete-event MPI engine itself."""
    placement = Placement(single_node(NodeType.BX2B), n_ranks=64)

    def prog(comm):
        yield from alltoall(comm, 1024)
        return None

    result = benchmark.pedantic(
        lambda: run_mpi(placement, prog), iterations=1, rounds=3
    )
    assert result.messages_sent == 64 * 63
