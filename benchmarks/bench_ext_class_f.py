"""Benchmark: extension — NPB-MZ Class F on the full Columbia.

Regenerates the experiment and prints the rows; the benchmark measures
the end-to-end harness time (fast mode: the full-machine sweep packs
16384 zones into thousands of bins repeatedly).
"""

from repro.core import run_experiment


def test_ext_class_f(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_class_f", fast=True),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
