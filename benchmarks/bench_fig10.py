"""Benchmark: Fig. 10: multinode b_eff (fast sweep; full sweep takes minutes of DES).

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_fig10(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig10", fast=True),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
