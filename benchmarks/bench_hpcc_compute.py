"""Benchmark: S4.1.1: DGEMM + STREAM per node type.

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_sec411_compute(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("sec411_compute", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
