"""Benchmark: Ablation: InfiniBand card count.

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_ablation_ibcards(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("ablation_ibcards", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
