"""Benchmark: Fig. 9: process x thread combinations.

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_fig9(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
