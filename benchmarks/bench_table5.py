"""Benchmark: Table 5: MD weak scaling.

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_table5(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table5", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
