"""Benchmark: Fig. 11: NPB-MZ Class E under three networks.

Regenerates the experiment and prints the rows/series the paper
reports; the benchmark measures the end-to-end harness time.
"""

from repro.core import run_experiment


def test_fig11(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig11", fast=False),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    assert result.rows
