"""Benchmark-regression harness for the repo's hot paths.

Tracks the kernels the simulated-experiment throughput actually
depends on (the BENCH trajectory): the DES event engine, the
per-message network cost model, and the MD force loop.  Results are
written to ``BENCH_kernels.json`` at the repo root; ``--check``
compares a fresh measurement against the committed numbers and fails
if any tracked kernel regressed more than the tolerance (default
20%), so perf wins cannot silently rot.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.bench_regression            # measure + print
    PYTHONPATH=src python -m benchmarks.bench_regression --check    # fail on >20% regression
    PYTHONPATH=src python -m benchmarks.bench_regression --write    # refresh the "current" section
    PYTHONPATH=src python -m benchmarks.bench_regression --capture-baseline

Kernels whose name ends in ``_per_sec`` are throughputs (higher is
better); everything else is a time per operation (lower is better).
"""

from __future__ import annotations

import argparse
import json
import platform
import math
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_kernels.json"

#: Fractional slowdown vs the committed numbers that fails --check.
DEFAULT_TOLERANCE = 0.20

#: Per-kernel *loosenings* of the --check tolerance (applied as a max
#: over the effective tolerance).
#:
#: The committed numbers follow a best-over-interleaved-rounds
#: protocol, and the benchmark box swings between multi-minute
#: throughput phases of up to ~1.75x (the identical ping-pong binary
#: measures 0.76M-1.33M events/s across one session).  Best-of-N
#: repetition inside a round absorbs micro-noise but cannot ride out a
#: phase, so a single --check run in an ordinary phase lands 10-25%
#: below the committed peaks on the wall-clock-bound kernels.  Relative
#: tolerances tighter than the phase swing would flake on machine
#: weather rather than catch code rot; the *tight* invariants are the
#: absolute seed caps in :data:`SEED_GATES` and the phase-invariant
#: faulted/healthy ratio floor below, which machine-speed swings cannot
#: fake.
#:
#: ``collective_model_warm_ms`` is a special case: a ~2 µs cache-hit
#: probe where timer and allocator noise is a large multiple of the
#: signal.  Its only job is to catch the warm path going cold — a
#: ~1000x jump that a 3x budget still catches with orders of magnitude
#: to spare.
LOOSE_TOLERANCES = {
    "collective_model_warm_ms": 2.0,
    "collective_model_cold_ms": 0.35,
    "des_pingpong_events_per_sec": 0.30,
    "des_pingpong_faulted_events_per_sec": 0.35,
    "des_alltoall_msgs_per_sec": 0.35,
    "serve_submit_cells_per_sec": 0.35,
    #: two TCP hops + routing + a disk-cache read per cell; scheduler
    #: jitter across 4 processes earns the same loose budget as the
    #: other serve-tier kernels.
    "sharded_serve_cells_per_sec": 0.35,
    "analytic_serve_cells_per_sec": 0.35,
    "explore_candidates_per_sec": 0.35,
    "compare_cells_per_sec": 0.35,
    "surrogate_eval_us": 0.45,
    "md_forces_864_ms": 0.45,
    "md_step_864_ms": 0.45,
}

#: Absolute caps (lower-is-better kernels) reclaimed by the perf PRs:
#: the seed-era values these kernels must never regress past, no
#: matter what the committed "current" numbers drift to.  Relative
#: tolerances compound across refreshes; these do not.
SEED_GATES = {
    "path_lookup_ns": 348.04,
    "collective_model_cold_ms": 9.06,
}

#: Absolute floors (higher-is-better kernels).  The analytic serve
#: path's contract is ~1e5 cells/s in an ordinary machine phase; the
#: floor sits under the slowest observed phase (the ~1.75x swing
#: documented above) so it trips on structural rot — a worker pool
#: spinning up, per-request asyncio scheduling, a pickle hop — all of
#: which cost multiples, never on machine weather.
ABS_FLOORS = {
    "analytic_serve_cells_per_sec": 40_000.0,
    #: the sharded tier's steady state is ~5-6k cells/s on this
    #: machine (two TCP hops + ring lookup + shared-cache hit per
    #: cell).  The floor sits ~3.5x under the slowest observed phase:
    #: it trips on structural rot — losing client pipelining, a
    #: reconnect per request, the router growing a per-cell subprocess
    #: hop — all of which cost multiples, never on machine weather.
    "sharded_serve_cells_per_sec": 1_500.0,
    #: the explore loop's interactivity contract: a full optimizer
    #: round-trip per candidate (ask, materialize, serve inline,
    #: score, tell) must stay north of 10k cells/s, or
    #: thousand-candidate studies stop being interactive.
    "explore_candidates_per_sec": 10_000.0,
    #: a compare cell runs real application models (MZ timing,
    #: OVERFLOW grouping, STREAM/DGEMM), so its steady state is ~80
    #: cells/s, not thousands.  The floor sits ~3x under that: it
    #: trips on structural rot — the registry losing its build cache,
    #: the rotor-system grouping recomputing per cell — never on
    #: machine weather.
    "compare_cells_per_sec": 25.0,
}

#: Floor on faulted/healthy DES ping-pong throughput.  MessageDrop
#: retries desynchronize the rank pairs, so nearly every faulted event
#: lands in its own singleton timestamp bucket — the structural reason
#: the faulted path cannot match healthy batch-draining (see
#: docs/architecture.md).  The achieved ratio is ~0.6; the floor
#: leaves noise headroom while catching any real faulted-path rot.
FAULTED_RATIO_FLOOR = 0.5

PINGPONG_RANKS = 16
PINGPONG_ROUNDS = 150
PINGPONG_BYTES = 1024.0
ALLTOALL_RANKS = 64
ALLTOALL_BYTES = 1024.0
MD_CELLS = 6  # 4 * 6^3 = 864 atoms, the paper's §3.3 system size
MD_STEPS = 30
PATH_LOOKUP_CALLS = 50_000
COLLECTIVE_RANKS = 256
SERVE_CELLS = 256
EXPLORE_CELLS = 256


#: Set by ``--quick``: caps every ``_best_time`` at 3 repeats.
_quick_mode = False


def _best_time(fn: Callable[[], object], repeats: int = 7) -> float:
    """Best (minimum) wall-clock seconds of ``fn()`` over ``repeats`` runs.

    The minimum is the standard estimator for microbenchmarks (it is
    what ``timeit`` reports): external interference — other processes,
    frequency scaling, GC pauses — only ever adds time, so the fastest
    observed run is the closest to the code's true cost.  This machine
    shows run-to-run swings of 15-25%, which the median does not
    suppress.
    """
    if _quick_mode:
        repeats = min(repeats, 3)
    fn()  # warm-up (imports, caches that persist across runs by design)
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


# -- DES workloads -----------------------------------------------------------


def _build_pingpong(sim):
    """Ping-pong-heavy MPI workload: 8 rank pairs exchanging messages.

    This is the MPI-rendezvous-chain shape (send, matched recv, repeat)
    whose event stream is dominated by zero-delay callbacks — the DES
    fast-lane target.
    """
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.mpi.comm import MPIWorld
    from repro.netmodel.costs import NetworkModel
    from repro.sim.process import SimProcess

    placement = Placement(single_node(NodeType.BX2B), n_ranks=PINGPONG_RANKS)
    world = MPIWorld(sim, NetworkModel(placement))

    def prog(comm):
        partner = comm.rank ^ 1
        for _ in range(PINGPONG_ROUNDS):
            if comm.rank < partner:
                yield comm.isend(partner, PINGPONG_BYTES)
                yield comm.irecv(partner)
            else:
                yield comm.irecv(partner)
                yield comm.isend(partner, PINGPONG_BYTES)
        return None

    for rank in range(world.size):
        SimProcess(sim, prog(world.comm(rank)), name=f"rank{rank}")
    return world


class _CountingSim:
    """Event counter for engines without an ``events_executed`` field."""

    def __new__(cls):
        from repro.sim.engine import Simulator

        if hasattr(Simulator(), "events_executed"):
            return Simulator()

        class _Counting(Simulator):  # pragma: no cover - seed engine only
            def __init__(self):
                super().__init__()
                self.events_executed = 0

            def step(self):
                advanced = super().step()
                if advanced:
                    self.events_executed += 1
                return advanced

        return _Counting()


def _count_pingpong_events() -> int:
    """Total callbacks the ping-pong workload executes (deterministic)."""
    sim = _CountingSim()
    _build_pingpong(sim)
    sim.run()
    return sim.events_executed


def bench_des_pingpong() -> dict[str, float]:
    from repro.sim.engine import Simulator

    n_events = _count_pingpong_events()

    def run_once():
        sim = Simulator()
        _build_pingpong(sim)
        sim.run()

    wall = _best_time(run_once)
    return {"des_pingpong_events_per_sec": n_events / wall}


def bench_des_pingpong_faulted() -> dict[str, float]:
    """The same ping-pong workload under an injected fault spec.

    Tracks the cost of the faulted send path (drop draws, retry spans,
    jitter) so fault-injection overhead cannot silently grow; the
    faults-off number above guards the healthy path staying free.
    """
    from repro.faults import FaultSpec, MessageDrop, OsJitter, use_faults
    from repro.sim.engine import Simulator

    spec = FaultSpec(
        (MessageDrop(probability=0.02), OsJitter(amplitude=0.001)), seed=7
    )

    def run_once():
        sim = Simulator()
        with use_faults(spec, salt="bench"):
            _build_pingpong(sim)
        sim.run()

    # Event count varies slightly with retry draws; use the healthy
    # count as the (deterministic) normalizer so runs are comparable.
    n_events = _count_pingpong_events()
    wall = _best_time(run_once)
    return {"des_pingpong_faulted_events_per_sec": n_events / wall}


def bench_des_alltoall() -> dict[str, float]:
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.mpi import run_mpi
    from repro.mpi.collectives import alltoall

    placement = Placement(single_node(NodeType.BX2B), n_ranks=ALLTOALL_RANKS)

    def prog(comm):
        yield from alltoall(comm, ALLTOALL_BYTES)
        return None

    n_msgs = ALLTOALL_RANKS * (ALLTOALL_RANKS - 1)

    def run_once():
        result = run_mpi(placement, prog)
        assert result.messages_sent == n_msgs

    wall = _best_time(run_once)
    return {"des_alltoall_msgs_per_sec": n_msgs / wall}


# -- MD workloads ------------------------------------------------------------


def bench_md() -> dict[str, float]:
    from repro.apps.md import MDSimulation, lj_forces
    from repro.apps.md.lattice import fcc_lattice

    sim = MDSimulation(cells=MD_CELLS, seed=42)
    assert sim.state.n_atoms == 864

    # Each sample advances the same trajectory by MD_STEPS more steps;
    # the workload per batch is identical, so best-of applies.
    step_ms = _best_time(lambda: sim.step(MD_STEPS), repeats=3) / MD_STEPS * 1e3

    positions, box = fcc_lattice(MD_CELLS)
    forces_ms = _best_time(lambda: lj_forces(positions, box, 2.5)) * 1e3
    return {"md_step_864_ms": step_ms, "md_forces_864_ms": forces_ms}


# -- network cost model ------------------------------------------------------


def bench_cost_model() -> dict[str, float]:
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.netmodel.collectives import CollectiveModel
    from repro.netmodel.costs import NetworkModel

    cluster = single_node(NodeType.BX2B)

    # Cold: a fresh Placement each build (no shared route tables).
    cold_ms = (
        _best_time(
            lambda: CollectiveModel(Placement(cluster, n_ranks=COLLECTIVE_RANKS)),
            repeats=3,
        )
        * 1e3
    )

    # Warm: rebuild the model for one placement (sweep-loop shape).
    placement = Placement(cluster, n_ranks=COLLECTIVE_RANKS)
    CollectiveModel(placement)
    warm_ms = _best_time(lambda: CollectiveModel(placement), repeats=3) * 1e3

    net = NetworkModel(placement)
    rng = np.random.default_rng(0)
    pairs = rng.integers(0, COLLECTIVE_RANKS, size=(PATH_LOOKUP_CALLS, 2))
    pairs = [(int(a), int(b)) for a, b in pairs]

    def lookup_all():
        message_time = net.message_time
        for a, b in pairs:
            message_time(a, b, 4096.0)

    lookup_ns = _best_time(lookup_all, repeats=3) / PATH_LOOKUP_CALLS * 1e9
    return {
        "collective_model_cold_ms": cold_ms,
        "collective_model_warm_ms": warm_ms,
        "path_lookup_ns": lookup_ns,
    }


# -- scenario service --------------------------------------------------------


def _serve_noop_cell(i: int = 0) -> list:
    """Near-zero-work cell: the measurement is scheduler overhead."""
    return [(i,)]


def _explore_noop_cell(i: int = 0, j: int = 0) -> list:
    """Two-dimension noop cell: the explore grid's unit of work."""
    return [(float(i + j),)]


def bench_serve() -> dict[str, float]:
    """End-to-end submission throughput of the serve scheduler.

    Pushes SERVE_CELLS distinct cells through an in-process
    :class:`~repro.serve.ScenarioService` (queue, coalescing index,
    batch formation, ``run_batch`` hand-off) with a no-op workload, so
    the cells/sec number is the scheduler's own overhead ceiling —
    not simulation time.
    """
    from repro.run import Runner, scenario, workload
    from repro.serve import submit

    # Idempotent: re-registering the same function is a no-op.
    workload("bench.serve_noop")(_serve_noop_cell)
    cells = [scenario("bench.serve_noop", i=i) for i in range(SERVE_CELLS)]

    def run_once():
        results = submit(cells, runner=Runner(jobs=1, cache=None))
        assert all(r.ok for r in results)

    wall = _best_time(run_once, repeats=5)
    return {"serve_submit_cells_per_sec": SERVE_CELLS / wall}


def bench_sharded_serve() -> dict[str, float]:
    """Steady-state round-trip throughput of the sharded serve tier.

    SERVE_CELLS distinct no-op cells through a real 3-worker
    :class:`~repro.serve.shard.ShardedServer` — front-door TCP, the
    consistent-hash routing hop, the worker's own protocol hop, and
    the shared on-disk result cache — pipelined by one
    :class:`~repro.serve.ServeClient`.  The first pass executes and
    publishes every cell; the timed passes are the warm steady state
    (shared-cache round trips), so cells/sec here is the fleet's
    per-request overhead ceiling: two serialization hops + routing +
    cache hit, no simulation time.  Worker spawn cost is deliberately
    outside the clock — it is paid once per fleet, not per request.
    """
    import shutil
    import tempfile

    from repro.run import scenario, workload
    from repro.serve import ServeClient
    from repro.serve.shard import ShardedServer

    # Idempotent, like the serve_noop registration above; fork-spawned
    # workers inherit it.
    workload("bench.serve_noop")(_serve_noop_cell)
    cells = [scenario("bench.serve_noop", i=i) for i in range(SERVE_CELLS)]
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-shard-")
    try:
        with ShardedServer(workers=3, cache_dir=cache_dir) as fleet:
            with ServeClient(fleet.host, fleet.port) as client:
                warm = client.submit_many(cells)
                assert all(r.ok for r in warm)

                def run_once():
                    replies = client.submit_many(cells)
                    assert all(r.ok for r in replies)

                wall = _best_time(run_once, repeats=5)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {"sharded_serve_cells_per_sec": SERVE_CELLS / wall}


# -- surrogate fast path -----------------------------------------------------


def bench_analytic_serve() -> dict[str, float]:
    """All-analytic sweep throughput through the serve tier.

    The fidelity tier's headline number: SERVE_CELLS analytic cells
    through :func:`repro.serve.submit` resolve synchronously on the
    inline fast path — no queue slot, no batch, no worker process —
    so cells/sec here is the full Scenario -> Runner -> serve
    per-request overhead, nothing else.  Guarded by an absolute floor
    (:data:`ABS_FLOORS`): escalation, pool spin-up or a return of
    per-request task scheduling all cost multiples of the budget.
    """
    from repro.run import Runner, scenario, workload
    from repro.serve import submit
    from repro.surrogate.registry import register_exact

    # Idempotent, like the serve_noop registration above; the exact
    # surrogate declaration is what routes the cells inline.
    workload("bench.analytic_noop")(_serve_noop_cell)
    register_exact("bench.analytic_noop")
    cells = [
        scenario("bench.analytic_noop", fidelity="analytic", i=i)
        for i in range(SERVE_CELLS)
    ]
    runner = Runner(jobs=1, cache=None)
    try:
        def run_once():
            results = submit(cells, runner=runner)
            assert all(r.ok and not r.escalated for r in results)

        wall = _best_time(run_once, repeats=9)
    finally:
        runner.close()
    return {"analytic_serve_cells_per_sec": SERVE_CELLS / wall}


def bench_explore() -> dict[str, float]:
    """Candidate throughput of the exploration driver.

    A full grid exploration over EXPLORE_CELLS analytic noop
    candidates: optimizer ask/tell, scenario materialization,
    replicate fan-out and the serve-tier inline resolution, per
    candidate cell.  Cells/sec here is the explore loop's own
    overhead ceiling — the number that makes thousand-candidate
    studies interactive — so it carries an absolute floor
    (:data:`ABS_FLOORS`): a worker pool spin-up or per-candidate
    journal/asyncio overhead costs multiples, never percents.
    """
    from repro.explore import Objective, explore, search_space
    from repro.run import Runner, workload
    from repro.surrogate.registry import register_exact

    # Idempotent, like the serve_noop registration above.
    workload("bench.explore_noop")(_explore_noop_cell)
    register_exact("bench.explore_noop")
    side = int(EXPLORE_CELLS ** 0.5)
    space = search_space(
        "bench.explore_noop",
        {"i": tuple(range(side)), "j": tuple(range(side))},
    )
    runner = Runner(jobs=1, cache=None)
    try:
        def run_once():
            result = explore(
                space, Objective(metric=0), optimizer="grid",
                runner=runner,
            )
            assert result.stats.candidates == side * side
            assert result.stats.errors == 0

        wall = _best_time(run_once, repeats=5)
    finally:
        runner.close()
    return {"explore_candidates_per_sec": side * side / wall}


def bench_compare() -> dict[str, float]:
    """Cell throughput of a cross-machine comparison.

    A full two-machine ``repro compare`` grid (every app x size) with
    a shared uncached runner: registry build of both clusters, the
    closed-form application models, and the who-wins fold, per cell.
    The zoo's interactivity contract — a four-machine comparison must
    feel instant — hangs off this number, so it carries an absolute
    floor (:data:`ABS_FLOORS`): losing the registry's build cache or
    the models' memoization costs multiples, never percents.
    """
    from repro.compare import compare_scenarios, run_compare
    from repro.run import Runner

    machines = ("fat_numa", "gpu_node")
    n_cells = len(compare_scenarios(machines))
    runner = Runner(jobs=1, cache=None)
    try:
        def run_once():
            result = run_compare(machines, runner=runner)
            assert len(result.rows) == n_cells

        wall = _best_time(run_once, repeats=5)
    finally:
        runner.close()
    return {"compare_cells_per_sec": n_cells / wall}


def bench_surrogate_eval() -> dict[str, float]:
    """Single-cell latency of the modeled surrogate evaluator.

    ``ext_noise.cell`` is the one *modeled* family (everything else is
    an exact passthrough), so this is the closed-form path: resolve
    the surrogate, enter the fault context, price the analytic
    network model.  Microseconds per cell is the design budget the
    fidelity tier's escalation threshold assumes.
    """
    from repro.run import scenario
    from repro.surrogate import evaluate_scenario

    cell = scenario(
        "ext_noise.cell", fidelity="analytic",
        ranks=8, noise=0.25, n_seeds=2,
    )
    inner = 200

    def run_once():
        for _ in range(inner):
            evaluate_scenario(cell)

    us = _best_time(run_once, repeats=5) / inner * 1e6
    return {"surrogate_eval_us": us}


# -- harness -----------------------------------------------------------------

BENCHES = [
    bench_des_pingpong,
    bench_des_pingpong_faulted,
    bench_des_alltoall,
    bench_md,
    bench_cost_model,
    bench_serve,
    bench_sharded_serve,
    bench_analytic_serve,
    bench_explore,
    bench_compare,
    bench_surrogate_eval,
]

#: The ``--quick`` subset: the kernels the perf gates hang off
#: (healthy + faulted DES, the cost model's cold/lookup numbers, and
#: the analytic serve floor — the last costs milliseconds to measure).
QUICK_BENCHES = [
    bench_des_pingpong,
    bench_des_pingpong_faulted,
    bench_cost_model,
    bench_analytic_serve,
]


def measure(quick: bool = False) -> dict[str, float]:
    kernels: dict[str, float] = {}
    for bench in QUICK_BENCHES if quick else BENCHES:
        kernels.update(bench())
    return kernels


def higher_is_better(name: str) -> bool:
    return name.endswith("_per_sec")


def regressions(
    committed: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
) -> list[str]:
    """Human-readable descriptions of every kernel past tolerance."""
    problems = []
    for name, old in committed.items():
        new = fresh.get(name)
        if new is None:
            problems.append(f"{name}: kernel disappeared from the harness")
            continue
        if higher_is_better(name):
            change = (old - new) / old
        else:
            change = (new - old) / old
        tol = max(tolerance, LOOSE_TOLERANCES.get(name, 0.0))
        if change > tol:
            problems.append(
                f"{name}: {old:.6g} -> {new:.6g} "
                f"({change * 100.0:.1f}% worse, tolerance {tol * 100.0:.0f}%)"
            )
    return problems


def gate_violations(fresh: dict[str, float]) -> list[str]:
    """Absolute-gate failures: seed-value caps and the faulted floor.

    Unlike :func:`regressions` these do not compare against the
    committed numbers — a kernel that creeps back past its reclaimed
    seed value fails even if each individual refresh stayed within
    relative tolerance.
    """
    problems = []
    for name, cap in SEED_GATES.items():
        value = fresh.get(name)
        if value is not None and value > cap:
            problems.append(
                f"{name}: {value:.6g} above the absolute seed gate {cap:.6g}"
            )
    for name, floor in ABS_FLOORS.items():
        value = fresh.get(name)
        if value is not None and value < floor:
            problems.append(
                f"{name}: {value:,.0f} below the absolute floor {floor:,.0f}"
            )
    healthy = fresh.get("des_pingpong_events_per_sec")
    faulted = fresh.get("des_pingpong_faulted_events_per_sec")
    if healthy and faulted:
        ratio = faulted / healthy
        if ratio < FAULTED_RATIO_FLOOR:
            problems.append(
                f"faulted/healthy DES ratio {ratio:.2f} below the "
                f"{FAULTED_RATIO_FLOOR} floor "
                f"({faulted:,.0f} / {healthy:,.0f} events/s)"
            )
    return problems


def _meta() -> dict[str, str]:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy": np.__version__,
    }


def load_results() -> dict:
    if RESULTS_PATH.exists():
        return json.loads(RESULTS_PATH.read_text())
    return {"schema": 1, "baseline": None, "current": None, "speedup": {}}


def save_results(doc: dict) -> None:
    baseline = doc.get("baseline") or {}
    current = doc.get("current") or {}
    doc["speedup"] = {}
    for name, old in (baseline.get("kernels") or {}).items():
        new = (current.get("kernels") or {}).get(name)
        if new is None or not old or not new:
            continue
        factor = new / old if higher_is_better(name) else old / new
        doc["speedup"][name] = round(factor, 3)
    RESULTS_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if any kernel regressed past tolerance "
             "vs the committed BENCH_kernels.json",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="refresh the 'current' section of BENCH_kernels.json",
    )
    parser.add_argument(
        "--capture-baseline", action="store_true",
        help="record this measurement as the 'baseline' (before) section",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="fractional regression that fails --check (default 0.20)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fast gate: only the DES ping-pong (healthy + faulted) and "
             "cost-model kernels, 3 repeats each; incompatible with "
             "--write/--capture-baseline (partial kernel sets must not "
             "overwrite the committed record)",
    )
    args = parser.parse_args(argv)

    if args.quick and (args.write or args.capture_baseline):
        print("--quick measures a kernel subset; refusing to write it",
              file=sys.stderr)
        return 2

    global _quick_mode
    _quick_mode = args.quick
    fresh = measure(quick=args.quick)
    width = max(len(name) for name in fresh)
    for name, value in sorted(fresh.items()):
        print(f"{name:<{width}}  {value:,.3f}")

    doc = load_results()
    if args.capture_baseline:
        doc["baseline"] = {"kernels": fresh, "meta": _meta()}
    if args.write:
        doc["current"] = {"kernels": fresh, "meta": _meta()}
    if args.capture_baseline or args.write:
        save_results(doc)
        print(f"wrote {RESULTS_PATH}")

    if args.check:
        committed = (doc.get("current") or {}).get("kernels")
        if not committed:
            print("no committed 'current' kernels to check against", file=sys.stderr)
            return 2
        if args.quick:
            # Only the measured subset can be compared; the full gate
            # (and the disappeared-kernel audit) is bench-check's job.
            committed = {k: v for k, v in committed.items() if k in fresh}
        problems = regressions(committed, fresh, args.tolerance)
        problems += gate_violations(fresh)
        if problems:
            print("\nBENCH REGRESSION:", file=sys.stderr)
            for line in problems:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nall {len(committed)} kernels within "
              f"{args.tolerance * 100.0:.0f}% of committed numbers "
              f"(+ absolute gates)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
