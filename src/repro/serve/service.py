"""The async batching scheduler behind ``repro serve``.

:class:`ScenarioService` fronts a :class:`~repro.run.runner.Runner`
with the three mechanisms a long-lived scenario service needs:

* **admission control** — a bounded priority queue; once ``max_queue``
  distinct cells are waiting, new work is rejected with a
  ``retry_after`` hint derived from the observed service rate
  (:class:`ServeRejected`), so a traffic burst degrades into client
  backoff instead of unbounded memory growth.  An optional
  :class:`QuotaPolicy` layers per-client token buckets on top: each
  ``client_id`` gets ``burst`` tokens refilled at ``rate``/s, so one
  greedy client is throttled (``reason="quota"``) before it can crowd
  the shared queue and starve everyone else;
* **request coalescing** — requests are keyed by the *effective*
  scenario content hash (runner fault overlay included): N concurrent
  submissions of the same cell share one queue slot, one execution
  and one cache write, and all N futures resolve from the same
  :class:`~repro.run.runner.RunRecord`.  Coalescing covers both
  queued and in-flight cells — a request arriving while its twin
  executes still attaches;
* **micro-batching** — the single dispatcher drains up to
  ``max_batch`` compatible cells (same per-request trace directory)
  per cycle and hands them to :meth:`Runner.run_batch`, whose
  persistent process pool executes the batch in parallel; results
  stream back to each waiter as its batch completes.  Batches size
  themselves to the backlog: under light load a cell dispatches
  alone and immediately, under pressure batches fill up.

Everything observable is counted through a
:class:`repro.obs.CounterSet` (wall-clock seconds since service start
as the time axis): ``serve.queue_depth``, ``serve.coalesced``,
``serve.batch_occupancy``, ``serve.rejected`` and friends, plus
p50/p99 request latency in :meth:`ScenarioService.stats`.

The service never executes *full-fidelity* cells on the event loop:
batches run in a worker thread (``asyncio.to_thread``) so the loop
stays responsive to new submissions — which is exactly what lets late
duplicates coalesce onto in-flight work.  Non-``full`` requests take
the **inline fast path** instead: the surrogate resolves them in
microseconds directly on the event loop
(:meth:`~repro.run.runner.Runner.run_fast_cell`), bypassing the queue
and the micro-batcher entirely — there is nothing to batch when the
evaluation is cheaper than the queue hop.  A fast cell the calibrated
error table cannot vouch for transparently escalates into the normal
queue (and its result carries ``escalated=True``).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ReproError
from repro.obs.counters import CounterSet
from repro.run.runner import Runner, RunRecord
from repro.run.scenario import Scenario

__all__ = [
    "ClientQuota",
    "QuotaPolicy",
    "ScenarioService",
    "ServeRejected",
    "ServeResult",
]


class ServeRejected(ReproError):
    """Admission control refused a request.

    ``reason`` says which limiter fired: ``"queue"`` (the bounded
    priority queue is full) or ``"quota"`` (the caller's token bucket
    is empty).  ``retry_after`` is the service's estimate (seconds) of
    when the request would be admitted — queue depth times the
    smoothed per-cell service time divided by the runner's worker
    count for a queue rejection, the bucket's refill deficit for a
    quota rejection.
    """

    def __init__(
        self, retry_after: float, depth: int, reason: str = "queue"
    ) -> None:
        self.retry_after = retry_after
        self.depth = depth
        self.reason = reason
        what = (
            f"queue full ({depth} cells deep)"
            if reason == "queue"
            else "client quota exhausted"
        )
        super().__init__(f"{what}; retry in {retry_after:.2f}s")


@dataclass(frozen=True)
class QuotaPolicy:
    """Per-client token-bucket admission policy.

    Each distinct ``client_id`` gets a bucket holding up to ``burst``
    tokens, refilled at ``rate`` tokens/second; every submission
    spends one.  A caller that stays under ``rate`` requests/s is
    never throttled; a burst up to ``burst`` is absorbed; past that
    the request is rejected with the bucket's refill deficit as the
    ``retry_after`` hint — so one greedy client backs off while
    everyone else's buckets (and the shared queue) stay healthy.

    Requests without a ``client_id`` share the ``"anonymous"`` bucket.
    ``max_clients`` bounds the bucket table (LRU eviction — an evicted
    client that returns simply starts with a fresh full bucket).
    """

    rate: float
    burst: float
    max_clients: int = 4096

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst < 1 or self.max_clients < 1:
            raise ConfigurationError(
                f"quota needs rate > 0, burst >= 1, max_clients >= 1; "
                f"got {self.rate}/{self.burst}/{self.max_clients}"
            )

    def limiter(self) -> "ClientQuota":
        return ClientQuota(self)


class ClientQuota:
    """The mutable bucket table enforcing one :class:`QuotaPolicy`."""

    #: bucket key used when a request carries no client id.
    ANONYMOUS = "anonymous"

    def __init__(self, policy: QuotaPolicy) -> None:
        self.policy = policy
        #: client id -> (tokens, last refill timestamp), LRU order.
        self._buckets: OrderedDict[str, tuple[float, float]] = OrderedDict()

    def admit(self, client_id: str | None, now: float) -> float:
        """Spend one token; 0.0 if admitted, else seconds until one
        token will have refilled (the ``retry_after`` hint)."""
        policy = self.policy
        key = client_id or self.ANONYMOUS
        buckets = self._buckets
        state = buckets.get(key)
        if state is None:
            tokens = policy.burst
        else:
            tokens, then = state
            tokens = min(policy.burst, tokens + (now - then) * policy.rate)
        if tokens >= 1.0:
            buckets[key] = (tokens - 1.0, now)
            buckets.move_to_end(key)
            if len(buckets) > policy.max_clients:
                buckets.popitem(last=False)
            return 0.0
        buckets[key] = (tokens, now)
        buckets.move_to_end(key)
        return max(0.05, (1.0 - tokens) / policy.rate)


@dataclass(frozen=True)
class ServeResult:
    """One submission's outcome (the in-process mirror of an ``ok`` /
    ``error`` protocol response)."""

    scenario: Scenario
    rows: tuple[tuple, ...] = ()
    error: str | None = None
    #: served from the runner's result cache (no execution at all).
    cached: bool = False
    #: shared an execution with an earlier identical in-flight request.
    coalesced: bool = False
    #: cell execution wall time (0 for cached/coalesced-onto results).
    duration_s: float = 0.0
    #: submit-to-resolve wall time as this caller saw it.
    latency_s: float = 0.0
    #: a non-``full`` request the surrogate could not vouch for; it
    #: ran the full path instead (see ``RunRecord.escalated``).
    escalated: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _Entry:
    """One distinct cell in the queue (or in flight): the unit work is
    coalesced onto."""

    key: tuple
    #: as submitted (raw) — the runner merges its own fault overlay.
    scenario: Scenario
    trace_dir: str | None
    priority: int
    seq: int
    futures: list[asyncio.Future] = field(default_factory=list)
    #: popped into a batch; stale heap tuples for it are skipped and
    #: new duplicates attach as in-flight coalesces.
    dispatched: bool = False


#: Cap on the retained latency samples (p50/p99 window).
_LATENCY_WINDOW = 4096


class ScenarioService:
    """Queue, coalesce and batch scenario requests against one runner.

    Single event loop, single dispatcher; the runner's process pool
    provides the parallelism.  Use as an async context manager, or
    pair :meth:`start` with :meth:`close` (close drains the queue —
    every accepted request is answered before close returns).
    """

    def __init__(
        self,
        runner: Runner | None = None,
        max_queue: int = 1024,
        max_batch: int = 32,
        batch_wait: float = 0.0,
        counters: CounterSet | None = None,
        quota: QuotaPolicy | None = None,
    ) -> None:
        if max_queue < 1 or max_batch < 1:
            raise ConfigurationError(
                f"max_queue and max_batch must be >= 1, "
                f"got {max_queue}/{max_batch}"
            )
        self.runner = runner if runner is not None else Runner()
        self.max_queue = max_queue
        self.max_batch = max_batch
        #: per-client token-bucket admission; ``None`` = no quotas.
        self.quota = quota
        self._quota = quota.limiter() if quota is not None else None
        #: seconds the dispatcher lingers after waking so a burst of
        #: arrivals lands in one batch; 0 dispatches immediately
        #: (batches then form naturally while earlier ones execute).
        self.batch_wait = batch_wait
        # Interval-sampled by default: the inline fast path records
        # several counters per request at ~1e5 requests/s, so one
        # sample per distinct timestamp (interval=0) would grow the
        # series lists per request; folding into a window keeps them
        # bounded and the per-add cost flat.
        self.counters = (
            counters if counters is not None else CounterSet(interval=0.25)
        )
        self._heap: list[tuple[int, int, _Entry]] = []
        self._index: dict[tuple, _Entry] = {}
        self._queued = 0
        self._inflight = 0
        self._seq = itertools.count()
        self._work = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False
        self._t0 = time.monotonic()
        #: latency samples per fidelity tier (p50/p99 windows).
        self._latencies: dict[str, list[float]] = {}
        #: fast-path counter totals, plain int bumps — the inline path
        #: serves ~1e5 requests/s and a CounterSet.add per counter per
        #: request is a measurable slice of that budget.  Folded into
        #: ``counters`` by :meth:`_flush_fast_counts`.
        self._fast_counts: dict[str, int] = {}
        #: smoothed per-cell service time (seeds the retry-after hint).
        self._cell_s = 0.05

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "ScenarioService":
        """Start the dispatcher (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="repro-serve-dispatcher"
            )
        return self

    async def close(self) -> None:
        """Stop accepting work, drain the queue, stop the dispatcher."""
        self._closed = True
        self._work.set()
        if self._task is not None:
            await self._task
            self._task = None

    async def __aenter__(self) -> "ScenarioService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- submission -----------------------------------------------------------

    async def submit(
        self,
        scenario: Scenario,
        priority: int = 0,
        trace_dir: str | None = None,
        client_id: str | None = None,
    ) -> ServeResult:
        """Queue one cell and wait for its result.

        Identical concurrent submissions coalesce: whichever arrives
        first owns the queue slot; later twins attach to it and every
        waiter resolves from the one execution.  ``priority`` orders
        the queue (lower first; FIFO within a priority); a duplicate
        carrying a better priority promotes the queued cell.  Raises
        :class:`ServeRejected` when admission control refuses the
        request — queue full, or ``client_id``'s token bucket empty
        under a :class:`QuotaPolicy`.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        t_in = time.monotonic()
        now = self._now()
        counters = self.counters
        counters.add("serve.requests", 1, now)
        self._check_quota(client_id, now)
        # The *effective* scenario (runner fault overlay merged in) is
        # the coalescing key only; the queue carries the raw scenario,
        # because Runner._run applies the overlay itself — enqueuing
        # the merged form would apply it twice and shift the cache key
        # away from direct Runner.run.
        effective = self.runner.effective_scenario(scenario)
        fid = effective.fidelity
        counters.add(f"serve.requests.{fid}", 1, now)
        if fid != "full" and trace_dir is None:
            # Inline fast path: the surrogate answers right here on
            # the event loop — no queue slot, no batch, no thread
            # hop.  ``None`` means the cell must escalate: it falls
            # through to the queue below and runs the full path.
            result = self._inline_result(effective, fid, t_in)
            if result is not None:
                return result
            counters.add("serve.escalated", 1, now)
        # The scenario content hash covers fidelity (non-default tiers
        # join the key), so an analytic submit can never coalesce with
        # a full-DES submit for the same cell; ``fid`` rides along
        # explicitly so that invariant is visible here, not an action
        # at a distance.
        key = (effective.key(), trace_dir, fid)
        future = asyncio.get_running_loop().create_future()

        entry = self._index.get(key)
        coalesced = entry is not None
        if coalesced:
            entry.futures.append(future)
            counters.add("serve.coalesced", 1, now)
            if priority < entry.priority and not entry.dispatched:
                # Promote: push a better-ranked heap tuple; the stale
                # one is skipped at pop time via the dispatched flag
                # (the entry dispatches at most once either way).
                entry.priority = priority
                heapq.heappush(self._heap, (priority, entry.seq, entry))
        else:
            if self._queued >= self.max_queue:
                counters.add("serve.rejected", 1, now)
                raise ServeRejected(self.retry_after(), self._queued)
            entry = _Entry(
                key=key, scenario=scenario, trace_dir=trace_dir,
                priority=priority, seq=next(self._seq), futures=[future],
            )
            self._index[key] = entry
            heapq.heappush(self._heap, (priority, entry.seq, entry))
            self._queued += 1
            counters.set("serve.queue_depth", self._queued, now)
            self._work.set()

        record: RunRecord = await future
        latency = time.monotonic() - t_in
        self._note_latency(fid, latency)
        return ServeResult(
            scenario=record.scenario,
            rows=record.rows,
            error=record.error,
            cached=record.cached,
            coalesced=coalesced,
            duration_s=record.duration_s,
            latency_s=latency,
            escalated=record.escalated,
        )

    def _inline_result(
        self, effective: Scenario, fid: str, t_in: float
    ) -> ServeResult | None:
        """Resolve one non-``full`` request on the calling thread.

        ``run_fast_cell`` takes the already-effective scenario (the
        overlay must merge exactly once) and is thread-safe against a
        batch finishing concurrently.  ``None`` means the cell must
        escalate through the queue instead.
        """
        record = self.runner.run_fast_cell(effective, assume_effective=True)
        if record is None:
            return None
        counts = self._fast_counts
        counts["serve.inline"] = counts.get("serve.inline", 0) + 1
        done = "serve.completed" if record.ok else "serve.errors"
        counts[done] = counts.get(done, 0) + 1
        latency = time.monotonic() - t_in
        self._note_latency(fid, latency)
        return ServeResult(
            scenario=record.scenario,
            rows=record.rows,
            error=record.error,
            cached=record.cached,
            duration_s=record.duration_s,
            latency_s=latency,
            escalated=record.escalated,
        )

    def _check_quota(self, client_id: str | None, now: float) -> None:
        """Raise :class:`ServeRejected` if ``client_id``'s bucket is
        dry.  Quota gates *every* submission path — inline fast cells
        included — because it protects the service's CPU, not just the
        queue."""
        limiter = self._quota
        if limiter is None:
            return
        wait = limiter.admit(client_id, time.monotonic())
        if wait > 0.0:
            counters = self.counters
            counters.add("serve.rejected", 1, now)
            counters.add("serve.quota_rejected", 1, now)
            raise ServeRejected(wait, self._queued, reason="quota")

    def submit_nowait(
        self, scenario: Scenario, client_id: str | None = None
    ) -> ServeResult | None:
        """Synchronous submission for cells the inline path can own.

        Resolves the request on the calling thread — no coroutine, no
        task, no event loop hop — when (and only when) it would have
        taken the inline fast path anyway: a non-``full``-fidelity
        cell the surrogate tier vouches for.  Returns ``None`` (and
        records nothing) for everything else — full-fidelity cells,
        and cells that must escalate — which the caller then awaits
        through :meth:`submit` as usual.  Counter and latency
        accounting of a served request is identical to
        :meth:`submit`'s.

        This is the all-analytic sweep throughput path: callers
        holding a burst of analytic cells skip the per-request asyncio
        machinery entirely (see :func:`repro.serve.submit`).
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        effective = self.runner.effective_scenario(scenario)
        fid = effective.fidelity
        if fid == "full":
            return None
        self._check_quota(client_id, self._now())
        result = self._inline_result(effective, fid, time.monotonic())
        if result is not None:
            counts = self._fast_counts
            counts["serve.requests"] = counts.get("serve.requests", 0) + 1
            name = f"serve.requests.{fid}"
            counts[name] = counts.get(name, 0) + 1
        return result

    def _flush_fast_counts(self) -> None:
        """Fold the fast path's plain-int counter totals into the
        :class:`CounterSet` — called before any read of the counters
        so totals are indistinguishable from per-request ``add``s."""
        if self._fast_counts:
            now = self._now()
            for name, n in self._fast_counts.items():
                self.counters.add(name, n, now)
            self._fast_counts.clear()

    def _note_latency(self, fidelity: str, latency: float) -> None:
        samples = self._latencies.setdefault(fidelity, [])
        samples.append(latency)
        if len(samples) > _LATENCY_WINDOW:
            del samples[: -_LATENCY_WINDOW // 2]

    def retry_after(self) -> float:
        """Backoff hint for a rejected request (seconds)."""
        backlog = self._queued + self._inflight
        return max(
            0.05, backlog * self._cell_s / max(1, self.runner.jobs)
        )

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Counter totals plus latency percentiles and live depths.

        Latency percentiles come combined (``serve.latency_p50_s`` /
        ``..._p99_s``, the pre-fidelity keys) *and* per tier
        (``serve.analytic.latency_p50_s``, ...) for every tier that
        has served at least one request; per-tier request counts are
        the ``serve.requests.<fidelity>`` counters.
        """
        self._flush_fast_counts()
        out = dict(self.counters.totals())

        def pct(samples: list[float], p: float) -> float:
            if not samples:
                return 0.0
            return samples[min(len(samples) - 1, int(p * len(samples)))]

        combined: list[float] = []
        for fid, samples in sorted(self._latencies.items()):
            ordered = sorted(samples)
            combined.extend(ordered)
            out[f"serve.{fid}.latency_p50_s"] = pct(ordered, 0.50)
            out[f"serve.{fid}.latency_p99_s"] = pct(ordered, 0.99)
        combined.sort()
        out["serve.queue_depth"] = float(self._queued)
        out["serve.inflight"] = float(self._inflight)
        out["serve.latency_p50_s"] = pct(combined, 0.50)
        out["serve.latency_p99_s"] = pct(combined, 0.99)
        # Runner- and cache-level gauges ride along so a remote stats
        # call (and the shard router's merge) can prove the global
        # execution story: executed-exactly-once shows up as
        # sum(runner.executed) == distinct cells across the fleet.
        rstats = self.runner.stats
        out["runner.executed"] = float(rstats.executed)
        out["runner.cached"] = float(rstats.cached)
        out["runner.errors"] = float(rstats.errors)
        cstats = rstats.cache
        if cstats is not None:
            out["cache.hits"] = float(cstats.hits)
            out["cache.misses"] = float(cstats.misses)
            out["cache.writes"] = float(cstats.writes)
            out["cache.evictions"] = float(cstats.evictions)
            out["cache.evicted_bytes"] = float(cstats.evicted_bytes)
        return out

    def _now(self) -> float:
        return time.monotonic() - self._t0

    # -- dispatch -------------------------------------------------------------

    def _form_batch(self) -> list[_Entry]:
        """Drain up to ``max_batch`` compatible entries, best priority
        first.  Compatibility = same per-request trace directory (a
        traced cell and an untraced one cannot share a
        :meth:`Runner.run_batch` call); incompatible pops go straight
        back on the heap for the next cycle."""
        batch: list[_Entry] = []
        holdover: list[tuple[int, int, _Entry]] = []
        trace_dir: str | None = None
        while self._heap and len(batch) < self.max_batch:
            item = heapq.heappop(self._heap)
            entry = item[2]
            if entry.dispatched:
                continue  # stale tuple left by a priority promotion
            if batch and entry.trace_dir != trace_dir:
                holdover.append(item)
                continue
            trace_dir = entry.trace_dir
            entry.dispatched = True
            self._queued -= 1
            batch.append(entry)
        for item in holdover:
            heapq.heappush(self._heap, item)
        if not self._heap:
            self._work.clear()
        self.counters.set("serve.queue_depth", self._queued, self._now())
        return batch

    async def _dispatch_loop(self) -> None:
        while True:
            await self._work.wait()
            if self.batch_wait > 0.0 and not self._closed:
                # Linger so a burst of arrivals packs into one batch.
                await asyncio.sleep(self.batch_wait)
            batch = self._form_batch()
            if not batch:
                if self._closed:
                    break
                continue
            self._inflight += len(batch)
            now = self._now()
            self.counters.add("serve.batches", 1, now)
            self.counters.add("serve.batch_cells", len(batch), now)
            self.counters.set(
                "serve.batch_occupancy", len(batch) / self.max_batch, now
            )
            t_batch = time.monotonic()
            try:
                records = await asyncio.to_thread(
                    self.runner.run_batch,
                    [entry.scenario for entry in batch],
                    batch[0].trace_dir,
                )
            except BaseException as exc:  # scheduler must survive runner bugs
                self._resolve(batch, None, exc)
                if isinstance(exc, asyncio.CancelledError):
                    # Answer the waiters, then honor the cancellation —
                    # swallowing it would park a cancelled task on
                    # _work.wait() and stall event-loop teardown.
                    raise
            else:
                elapsed = time.monotonic() - t_batch
                self._cell_s = (
                    0.8 * self._cell_s + 0.2 * elapsed / len(batch)
                )
                self._resolve(batch, records, None)

    def _resolve(
        self,
        batch: list[_Entry],
        records: list[RunRecord] | None,
        exc: BaseException | None,
    ) -> None:
        """Answer every waiter of every entry in a completed batch.

        Runs on the event loop with no awaits, so removal from the
        coalescing index and future resolution are atomic: a duplicate
        arriving after this either found the in-flight entry (and is
        answered here) or misses the index and queues a fresh cell —
        never both, never neither.
        """
        now = self._now()
        for i, entry in enumerate(batch):
            del self._index[entry.key]
            self._inflight -= 1
            record = records[i] if records is not None else None
            if record is not None and record.ok:
                self.counters.add("serve.completed", 1, now)
            else:
                self.counters.add("serve.errors", 1, now)
            if record is not None and record.escalated:
                # counted once per *cell*; serve.escalated (submit
                # side) counts per request that fell through inline.
                self.counters.add("serve.escalated_cells", 1, now)
            for future in entry.futures:
                if future.cancelled():
                    continue
                if record is not None:
                    future.set_result(record)
                else:
                    future.set_exception(
                        exc if exc is not None
                        else ConfigurationError("batch produced no record")
                    )
