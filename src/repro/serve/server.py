"""TCP front end of the scenario service.

:class:`ScenarioServer` speaks the JSON-lines protocol documented in
:mod:`repro.serve.protocol` over plain ``asyncio`` streams (stdlib
only).  Each connection is one reader task; each ``submit`` spawns its
own task so slow cells never block the connection — responses stream
back in completion order and clients match them to requests by ``id``.

Two entry points wrap it:

* :func:`serve_forever` — the blocking loop behind the ``repro serve``
  CLI verb;
* :class:`BackgroundServer` — a context manager that runs the whole
  stack (event loop, service, server) on a daemon thread, for tests
  and the serve smoke target.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading

from repro.errors import ReproError
from repro.faults.spec import parse_faults
from repro.run.runner import Runner
from repro.run.scenario import Scenario
from repro.serve.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    decode_line,
    encode_line,
    scenario_from_wire,
)
from repro.serve.service import QuotaPolicy, ScenarioService, ServeRejected

__all__ = [
    "BackgroundServer",
    "ScenarioServer",
    "request_scenario",
    "serve_forever",
]

#: Generous per-line cap; a scenario wire form is a few hundred bytes.
_LINE_LIMIT = 1 << 20


def request_scenario(message: dict) -> Scenario:
    """The scenario one ``submit`` message asks for, overrides applied.

    Decodes the wire scenario, merges a request-level ``faults``
    grammar string onto the scenario's own spec, and applies a
    request-level ``fidelity`` override.  This is *the* submit-message
    interpretation — the single server uses it to build what it runs,
    and the shard router uses the identical reading to compute the
    routing key, so a cell can never hash to one worker and execute as
    another.
    """
    sc = scenario_from_wire(message.get("scenario"))
    faults_text = message.get("faults")
    if faults_text:
        overlay = parse_faults(str(faults_text))
        sc = dataclasses.replace(
            sc,
            faults=overlay if sc.faults is None else sc.faults.merge(overlay),
        )
    fidelity = message.get("fidelity")
    if fidelity is not None and str(fidelity) != sc.fidelity:
        # Per-request override; the replaced scenario's constructor
        # validates the tier name, so junk turns into an error
        # response for this request only.
        sc = dataclasses.replace(sc, fidelity=str(fidelity))
    return sc


class ScenarioServer:
    """Bind a :class:`ScenarioService` to a TCP endpoint."""

    def __init__(
        self,
        service: ScenarioService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
    ) -> None:
        self.service = service
        self.host = host
        #: requested port; after :meth:`start` the bound port (use
        #: ``port=0`` to let the OS pick one).
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> "ScenarioServer":
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_LINE_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.service.close()

    async def __aenter__(self) -> "ScenarioServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(asyncio.current_task())
        # One lock per connection: submit tasks finish out of order and
        # must not interleave their response lines.
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def reply(message: dict) -> None:
            async with write_lock:
                writer.write(encode_line(message))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    ConnectionResetError,
                    asyncio.LimitOverrunError,
                    ValueError,  # readline wraps LimitOverrunError in it
                ):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line)
                except ReproError as exc:
                    await reply({"id": None, "status": "error", "error": str(exc)})
                    continue
                rid = message.get("id")
                op = message.get("op")
                if op == "submit":
                    task = asyncio.ensure_future(
                        self._do_submit(rid, message, reply)
                    )
                    pending.add(task)
                    task.add_done_callback(pending.discard)
                elif op == "stats":
                    await reply(
                        {"id": rid, "status": "stats",
                         "stats": self.service.stats()}
                    )
                elif op == "ping":
                    await reply(
                        {"id": rid, "status": "pong",
                         "protocol": PROTOCOL_VERSION}
                    )
                else:
                    await reply(
                        {"id": rid, "status": "error",
                         "error": f"unknown op {op!r}"}
                    )
            if pending:
                # Client stopped sending; still answer what it asked for.
                await asyncio.gather(*pending, return_exceptions=True)
        except asyncio.CancelledError:
            pass  # server shutting down mid-read; fall through and close
        finally:
            self._connections.discard(asyncio.current_task())
            for task in pending:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _do_submit(self, rid, message: dict, reply) -> None:
        try:
            sc = request_scenario(message)
            trace_dir = message.get("trace")
            client_id = message.get("client_id")
            result = await self.service.submit(
                sc,
                priority=int(message.get("priority") or 0),
                trace_dir=None if trace_dir is None else str(trace_dir),
                client_id=None if client_id is None else str(client_id),
            )
        except ServeRejected as exc:
            await reply(
                {"id": rid, "status": "rejected",
                 "retry_after": exc.retry_after, "depth": exc.depth,
                 "reason": exc.reason}
            )
            return
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            await reply({"id": rid, "status": "error", "error": str(exc)})
            return
        if result.ok:
            ok = {"id": rid, "status": "ok",
                  "rows": [list(r) for r in result.rows],
                  "cached": result.cached, "coalesced": result.coalesced,
                  "duration_s": result.duration_s,
                  "latency_s": result.latency_s}
            if result.escalated:
                # Only present when true: full-fidelity responses keep
                # their exact pre-fidelity wire bytes.
                ok["escalated"] = True
            await reply(ok)
        else:
            await reply({"id": rid, "status": "error", "error": result.error})


def serve_forever(
    runner: Runner,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    max_queue: int = 1024,
    max_batch: int = 32,
    batch_wait: float = 0.0,
    quota: QuotaPolicy | None = None,
) -> int:
    """Run the scenario service until interrupted (``repro serve``)."""

    async def _main() -> int:
        service = ScenarioService(
            runner, max_queue=max_queue,
            max_batch=max_batch, batch_wait=batch_wait, quota=quota,
        )
        server = ScenarioServer(service, host=host, port=port)
        await server.start()
        print(
            f"repro serve: listening on {server.host}:{server.port} "
            f"(jobs={runner.jobs}, max_queue={max_queue}, "
            f"max_batch={max_batch})",
            flush=True,
        )
        try:
            await asyncio.Event().wait()  # until cancelled
        finally:
            await server.close()
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        return 0
    finally:
        runner.close()


class BackgroundServer:
    """A full serve stack on a daemon thread.

    ``with BackgroundServer(runner) as server:`` yields once the socket
    is bound (``server.port`` is then real even for ``port=0``); exit
    drains the service and joins the thread.  Intended for tests and
    ``make serve-smoke`` — production use is ``repro serve``.
    """

    def __init__(
        self,
        runner: Runner,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = 1024,
        max_batch: int = 32,
        batch_wait: float = 0.0,
        quota: QuotaPolicy | None = None,
    ) -> None:
        self._runner = runner
        self._host = host
        self._port = port
        self._service_args = dict(
            max_queue=max_queue, max_batch=max_batch,
            batch_wait=batch_wait, quota=quota,
        )
        self.host = host
        self.port = port
        self.service: ScenarioService | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve", daemon=True,
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.service = ScenarioService(self._runner, **self._service_args)
            server = ScenarioServer(
                self.service, host=self._host, port=self._port
            )
            await server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.host, self.port = server.host, server.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()
