"""End-to-end smoke of the sharded serve tier (``make shard-smoke``).

Boots a 3-worker :class:`ShardedServer` over a fresh shared cache
directory and drives the acceptance scenario for the tier:

* a duplicate-heavy burst (the fig9 fast grid, each cell several
  times) through one front-door :class:`ServeClient` — the global
  coalesce counter must be positive and the *fleet-wide* execution
  count must equal the number of distinct cells (each executed exactly
  once, despite landing on 3 separate worker processes);
* one worker SIGKILLed mid-sweep while it executes a deliberately
  slow cell — the sweep must still complete, the orphaned request
  re-homed to a survivor, and a full re-run of the burst must come
  back byte-identical to direct :meth:`Runner.run` ground truth with
  the survivors serving the dead worker's finished cells from the
  shared disk cache (no duplicate executions of completed cells).

Exit 0 and a one-line ``shard-smoke ok`` on success; exit 1 with a
diagnostic on any violation.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import threading
import time

from repro.core.registry import resolve_experiment
from repro.run.cache import ResultCache
from repro.run.runner import Runner
from repro.run.scenario import scenario
from repro.run.workloads import workload
from repro.serve.client import ServeClient
from repro.serve.shard import ShardedServer

N_WORKERS = 3
#: burst multiplier: each distinct cell submitted this many times.
DUPLICATION = 3

#: wall time of the sacrificial cell the victim dies while running.
SLOW_MS = 800


@workload("shard_smoke.slow")
def _slow_cell(delay_ms: int = SLOW_MS) -> list[tuple]:
    time.sleep(delay_ms / 1000.0)
    return [(delay_ms,)]


def main() -> int:
    cells = list(resolve_experiment("fig9").scenarios(fast=True))
    burst = [cells[i % len(cells)] for i in range(len(cells) * DUPLICATION)]
    slow = scenario("shard_smoke.slow")

    direct_runner = Runner(jobs=1, cache=ResultCache(memory_only=True))
    try:
        direct = direct_runner.run(cells)
    finally:
        direct_runner.close()
    rows_by_key = {sc.key(): record.rows for sc, record in zip(cells, direct)}

    def check_byte_identical(replies, label: str) -> bool:
        for reply, sc in zip(replies, burst):
            want = rows_by_key[sc.key()]
            if json.dumps(reply.rows) != json.dumps(want):
                print(
                    f"shard-smoke FAILED: {label}: served rows differ "
                    f"from direct Runner for {sc.describe()}:\n"
                    f"  served {reply.rows}\n  direct {want}",
                    file=sys.stderr,
                )
                return False
        return True

    cache_dir = tempfile.mkdtemp(prefix="repro-shard-smoke-")
    try:
        with ShardedServer(workers=N_WORKERS, cache_dir=cache_dir) as fleet:
            victim = fleet.worker_for(slow)
            with ServeClient(fleet.host, fleet.port) as client:
                if client.ping() != 1:
                    print("shard-smoke FAILED: bad ping", file=sys.stderr)
                    return 1

                # -- phase 1: healthy fleet, duplicate-heavy burst ---------
                replies = client.submit_many(burst)
                errors = [r.error for r in replies if not r.ok]
                if errors:
                    print(
                        f"shard-smoke FAILED: {len(errors)} errors, "
                        f"first: {errors[0]}", file=sys.stderr,
                    )
                    return 1
                stats = client.stats()
                coalesced = stats.get("serve.coalesced", 0)
                executed = stats.get("runner.executed", -1)
                if coalesced <= 0:
                    print(
                        "shard-smoke FAILED: global coalesce counter is "
                        "zero for a duplicate-heavy burst",
                        file=sys.stderr,
                    )
                    return 1
                if executed != len(cells):
                    print(
                        f"shard-smoke FAILED: fleet executed {executed} "
                        f"cells for {len(cells)} distinct ones — "
                        "duplicates crossed workers instead of "
                        "coalescing", file=sys.stderr,
                    )
                    return 1
                if not check_byte_identical(replies, "healthy fleet"):
                    return 1

                # -- phase 2: SIGKILL one worker mid-sweep -----------------
                got: dict = {}

                def _slow_submit() -> None:
                    with ServeClient(fleet.host, fleet.port) as other:
                        got["reply"] = other.submit(slow)

                thread = threading.Thread(target=_slow_submit)
                thread.start()
                time.sleep(SLOW_MS / 1000.0 / 3)  # victim mid-execution
                fleet.kill_worker(victim)
                thread.join(timeout=60)
                if thread.is_alive() or not got.get("reply") or (
                    not got["reply"].ok
                ):
                    why = (
                        "no answer" if thread.is_alive() or not got.get(
                            "reply"
                        ) else got["reply"].error
                    )
                    print(
                        f"shard-smoke FAILED: in-flight request on the "
                        f"killed worker was not re-homed ({why})",
                        file=sys.stderr,
                    )
                    return 1

                replies2 = client.submit_many(burst)
                stats2 = client.stats()
                if not all(r.ok for r in replies2):
                    bad = next(r.error for r in replies2 if not r.ok)
                    print(
                        f"shard-smoke FAILED: sweep after worker kill "
                        f"had errors, first: {bad}", file=sys.stderr,
                    )
                    return 1
                if not check_byte_identical(replies2, "after worker kill"):
                    return 1
                if stats2.get("shard.workers") != N_WORKERS - 1:
                    print(
                        f"shard-smoke FAILED: router reports "
                        f"{stats2.get('shard.workers')} live workers, "
                        f"expected {N_WORKERS - 1}", file=sys.stderr,
                    )
                    return 1
                # Survivors may have re-executed only the one cell the
                # victim died holding; everything the fleet completed
                # pre-kill must come back as shared-cache hits.
                survivors_executed = stats2.get("runner.executed", -1)
                if survivors_executed > len(cells) + 1:
                    print(
                        f"shard-smoke FAILED: survivors executed "
                        f"{survivors_executed} cells — completed cells "
                        "were re-executed instead of served from the "
                        "shared cache", file=sys.stderr,
                    )
                    return 1
                if stats2.get("cache.hits", 0) <= 0:
                    print(
                        "shard-smoke FAILED: no shared-cache hits after "
                        "the kill", file=sys.stderr,
                    )
                    return 1

        print(
            f"shard-smoke ok: {len(burst)} requests over {N_WORKERS} "
            f"workers, {len(cells)} distinct cells executed once "
            f"fleet-wide ({int(coalesced)} coalesced), worker "
            f"{victim} SIGKILLed mid-sweep and the re-run stayed "
            "byte-identical via the shared cache "
            f"({int(stats2.get('shard.redispatched', 0))} re-dispatched, "
            f"{int(stats2.get('cache.hits', 0))} cache hits)"
        )
        return 0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
