"""Wire protocol of the scenario service: JSON lines over TCP.

One request or response per ``\n``-terminated line, each a single
JSON object — no third-party framing, a ``netcat`` session is a valid
client.  Requests carry an ``op`` plus a client-chosen ``id``; the
server streams responses back *as they complete*, so responses arrive
out of order and are matched to requests by ``id``.

Requests
--------
``{"op": "submit", "id": 1, "scenario": {...}, "priority": 0,
  "faults": "jitter:amplitude=1ms;seed=3" | null, "trace": DIR | null,
  "fidelity": "analytic" | "hybrid" | "full" (optional),
  "client_id": "sweep-7" (optional)}``
    Run one scenario cell.  ``priority`` sorts the queue (lower runs
    first); ``faults`` is a ``--faults`` grammar string merged onto
    the scenario's own spec; ``trace`` asks for a per-cell Chrome
    trace written server-side into DIR (forces execution);
    ``fidelity`` overrides the scenario's execution tier for this
    request (absent = the scenario's own tier, default ``full`` —
    protocol version 1 messages from older clients decode
    unchanged).  Non-``full`` requests resolve inline through the
    surrogate tier; if it cannot vouch for the cell, the response
    carries ``"escalated": true`` and came from the full path.
    ``client_id`` names the submitting principal for per-client
    token-bucket quotas (absent = the shared ``anonymous`` bucket;
    servers without a quota policy ignore it — another additive
    version-1 field, like ``fidelity``).
``{"op": "stats", "id": 2}``
    Snapshot of the service counters (queue depth, coalesce hits,
    batch occupancy, latency percentiles).
``{"op": "ping", "id": 3}``
    Liveness check.

Responses
---------
``{"id": 1, "status": "ok", "rows": [[...], ...], "cached": false,
  "coalesced": false, "duration_s": 0.01, "latency_s": 0.02}``
``{"id": 1, "status": "error", "error": "..."}``
``{"id": 1, "status": "rejected", "retry_after": 0.25,
  "reason": "queue" | "quota"}``
    Admission control refused the request — the queue is full, or the
    client's token bucket is empty; retry after the hinted delay
    (:class:`~repro.serve.client.ServeClient` does this
    automatically).
``{"id": 2, "status": "stats", "stats": {...}}``
``{"id": 3, "status": "pong", "protocol": 1}``

The scenario wire form mirrors :class:`~repro.run.scenario.Scenario`
field for field (``params`` as ``[[name, value], ...]`` pairs,
machine/placement specs as flat dicts, faults as the canonical
:meth:`~repro.faults.spec.FaultSpec.payload` JSON), so a decoded
scenario content-hashes identically to the one the client held —
the property request coalescing and the result cache both key on.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec
from repro.run.scenario import (
    MachineSpec,
    PlacementSpec,
    Scenario,
    canonical_value,
)

__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "decode_line",
    "encode_line",
    "scenario_from_wire",
    "scenario_to_wire",
]

PROTOCOL_VERSION = 1

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 7447


def encode_line(message: dict[str, Any]) -> bytes:
    """One protocol message as a compact JSON line."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one protocol line; raises ConfigurationError on junk."""
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ConfigurationError(f"bad protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ConfigurationError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    return message


def scenario_to_wire(sc: Scenario) -> dict[str, Any]:
    """JSON-safe dict for one scenario (inverse of
    :func:`scenario_from_wire`)."""
    wire = {
        "workload": sc.workload,
        "params": [[k, v] for k, v in sc.params],
        "machine": None if sc.machine is None else sc.machine.payload(),
        "placement": None if sc.placement is None else vars(sc.placement),
        "faults": None if not sc.faults else sc.faults.payload(),
    }
    if sc.fidelity != "full":
        # Same back-compat contract as the cache key: full-fidelity
        # scenarios keep the exact wire bytes (and hence coalescing
        # behavior) they had before the fidelity field existed.
        wire["fidelity"] = sc.fidelity
    return wire


def scenario_from_wire(payload: Any) -> Scenario:
    """Rebuild a :class:`Scenario` from its wire form.

    Validation rides on the scenario constructor itself (parameter
    scalars, fault kinds): a malformed request fails loudly with a
    :class:`~repro.errors.ConfigurationError` the server turns into an
    error response for that request only.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"scenario payload must be an object, got {type(payload).__name__}"
        )
    try:
        workload = payload["workload"]
    except KeyError:
        raise ConfigurationError("scenario payload missing 'workload'") from None
    params = []
    for pair in payload.get("params") or ():
        try:
            name, value = pair
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"scenario params must be [name, value] pairs, got {pair!r}"
            ) from None
        params.append(
            (str(name), canonical_value(value, f"scenario parameter {name}="))
        )
    machine = payload.get("machine")
    placement = payload.get("placement")
    faults = payload.get("faults")
    try:
        mspec = None if machine is None else MachineSpec.from_payload(machine)
        pspec = None if placement is None else PlacementSpec(**placement)
    except TypeError as exc:
        raise ConfigurationError(f"bad machine/placement spec: {exc}") from None
    fspec = None if faults is None else FaultSpec.from_payload(faults)
    return Scenario(
        workload=str(workload),
        params=tuple(sorted(params)),
        machine=mspec,
        placement=pspec,
        faults=fspec,
        fidelity=str(payload.get("fidelity") or "full"),
    )
