"""The sharded serve tier: N worker services behind one front door.

The paper's machine is a *cluster of clusters* — many hosts behind one
front door, with placement deciding throughput — and this module gives
the serve tier the same shape.  :class:`ShardedServer` runs N worker
processes, each a full single-worker stack
(:class:`~repro.serve.service.ScenarioService` +
:class:`~repro.serve.server.ScenarioServer` on a private port), behind
one router speaking the *same* JSON-lines protocol, so every existing
client — :class:`~repro.serve.client.ServeClient`, ``netcat``, the
smoke harnesses — talks to a fleet without changing a byte.

Three design decisions carry the tier:

**Routing is consistent hashing on the effective-scenario content
key.**  The router interprets each submit message exactly as a worker
would (:func:`repro.serve.server.request_scenario` + the same
fault-overlay/fidelity merge, via a template
:class:`~repro.run.runner.Runner`) and hashes the *effective*
scenario's content key onto a ring of virtual nodes.  Identical cells
therefore always land on the same worker, which keeps request
coalescing **global**: N duplicate submits anywhere in the fleet
collapse to one queue slot and one execution on one worker, same as
against a single server.  A hash ring (vs. round-robin or modulo)
means a worker's death remaps only *its* keys; every other cell keeps
its home, its in-flight coalesces and its warm memory mirror.

**The result cache is shared through the filesystem, not a daemon.**
Every worker opens the same :class:`~repro.run.run.cache.ResultCache`
directory (resolved absolute before spawn — workers must agree on the
store no matter where they start).  Content-addressed keys plus
atomic publish (tmp + rename) make concurrent cross-process put/get
safe without locks, and the bounded per-worker memory mirror keeps
long-lived workers from leaking.  This shared store is also the
failover story: when a worker dies mid-sweep, its *completed* cells
are already on disk, so the survivors that inherit its keys serve
them as cache hits — byte-identical, zero duplicate executions — and
only genuinely unfinished cells re-execute.

**Failure is detected on the wire and healed by re-dispatch.**  The
router holds one connection per worker; a reader hitting EOF (or a
forward failing to write) marks the worker dead, removes it from the
ring, and re-dispatches every request that was pending on it to the
survivors the ring now names.  Clients see nothing but latency: the
reply arrives from a different worker, rows identical.

Per-client token buckets (:class:`~repro.serve.service.QuotaPolicy`)
sit on the router's front door — admission control belongs at the
fleet boundary, where one greedy client would otherwise crowd every
worker at once.
"""

from __future__ import annotations

import asyncio
import atexit
import bisect
import hashlib
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass

from repro.errors import CommunicationError, ConfigurationError, ReproError
from repro.faults.spec import FaultSpec
from repro.run.cache import ResultCache, resolve_cache_dir
from repro.run.runner import Runner
from repro.run.scenario import Scenario
from repro.serve.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    decode_line,
    encode_line,
)
from repro.serve.server import ScenarioServer, request_scenario
from repro.serve.service import ClientQuota, QuotaPolicy, ScenarioService

__all__ = [
    "HashRing",
    "ShardedServer",
    "WorkerConfig",
    "serve_sharded",
]

#: Virtual nodes per worker.  64 points per worker keeps the maximum
#: key-share imbalance under ~20% for small fleets while the ring
#: stays tiny (N*64 sha256 points, built once per membership change).
RING_REPLICAS = 64

#: Generous per-line cap, matching the single server.
_LINE_LIMIT = 1 << 20

#: Seconds to wait for a spawned worker to report its bound port.
_SPAWN_TIMEOUT_S = 30.0


class HashRing:
    """Consistent hashing: stable key -> member mapping under churn.

    Each member contributes :data:`RING_REPLICAS` virtual points
    (sha256 of ``"member:replica"``); a key maps to the first point
    clockwise from its own hash.  Removing a member deletes only its
    points, so only keys that mapped to *it* move — the property the
    sharded tier's failover leans on.
    """

    def __init__(self, members=(), replicas: int = RING_REPLICAS) -> None:
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1: {replicas}")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, int] = {}
        self._members: set[int] = set()
        for member in members:
            self.add(member)

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(
            hashlib.sha256(text.encode()).digest()[:8], "big"
        )

    def add(self, member: int) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for replica in range(self.replicas):
            point = self._hash(f"{member}:{replica}")
            # sha256 collisions across members are not a practical
            # concern; first owner keeps the point deterministically.
            if point not in self._owners:
                self._owners[point] = member
                bisect.insort(self._points, point)

    def remove(self, member: int) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        dead = [p for p, m in self._owners.items() if m == member]
        for point in dead:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def lookup(self, key: str) -> int:
        """The member owning ``key``; raises if the ring is empty."""
        if not self._points:
            raise CommunicationError("no live workers in the shard ring")
        point = self._hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: int) -> bool:
        return member in self._members


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker process needs, in picklable form.

    ``cache_dir`` is the **resolved absolute** shared cache directory
    (the spawn path threads it through :func:`resolve_cache_dir` so a
    worker can never re-anchor it against its own cwd); ``faults`` is
    the fleet-wide overlay as its canonical JSON payload.
    """

    index: int
    cache_dir: str | None
    jobs: int = 1
    faults: str | None = None
    fidelity: str | None = None
    surrogate_policy: str = "escalate"
    max_queue: int = 1024
    max_batch: int = 32
    batch_wait: float = 0.0
    max_memory_entries: int | None = None

    def build_runner(self) -> Runner:
        cache = (
            ResultCache(memory_only=True)
            if self.cache_dir is None
            else ResultCache(
                self.cache_dir, max_memory_entries=self.max_memory_entries
            )
        )
        return Runner(
            jobs=self.jobs,
            cache=cache,
            faults=(
                None if self.faults is None
                else FaultSpec.from_payload(self.faults)
            ),
            fidelity=self.fidelity,
            surrogate_policy=self.surrogate_policy,
        )


def _worker_main(config: WorkerConfig, conn) -> None:
    """One worker process: a full serve stack on an ephemeral port.

    Reports ``{"port": N}`` (or ``{"error": ...}``) through ``conn``
    once bound, then serves until SIGTERM.  Runs under the ``fork``
    start method, so registered workloads and test fixtures are
    inherited — a worker sees exactly the parent's registry.
    """
    def _sigterm(*_args):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _sigterm)

    async def _main() -> None:
        runner = config.build_runner()
        try:
            service = ScenarioService(
                runner,
                max_queue=config.max_queue,
                max_batch=config.max_batch,
                batch_wait=config.batch_wait,
            )
            server = ScenarioServer(service, host="127.0.0.1", port=0)
            await server.start()
        except BaseException as exc:
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
            raise
        conn.send({"port": server.port})
        conn.close()
        try:
            await asyncio.Event().wait()  # until SIGTERM
        finally:
            await server.close()
            runner.close()

    try:
        asyncio.run(_main())
    except (SystemExit, KeyboardInterrupt):
        pass


class _Forward:
    """One client request currently pending on a worker."""

    __slots__ = ("client_id_field", "message", "reply", "routing_key")

    def __init__(self, client_id_field, message, reply, routing_key):
        #: the id the *client* used (restored on the way back).
        self.client_id_field = client_id_field
        #: the full client message (re-dispatch needs it verbatim).
        self.message = message
        #: coroutine function writing one reply to the client.
        self.reply = reply
        #: ring key (worker re-election on death needs it).
        self.routing_key = routing_key


class _WorkerLink:
    """The router's live connection to one worker."""

    def __init__(self, index: int, port: int, pid: int) -> None:
        self.index = index
        self.port = port
        self.pid = pid
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.alive = False
        #: worker-side request id -> in-flight work.
        self.pending: dict[int, _Forward] = {}
        #: router-originated requests (stats fan-out) awaiting replies.
        self.internal: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port, limit=_LINE_LIMIT
        )
        self.alive = True

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    async def send(self, message: dict) -> None:
        async with self._write_lock:
            self.writer.write(encode_line(message))
            await self.writer.drain()

    def close(self) -> None:
        self.alive = False
        if self.writer is not None:
            self.writer.close()


class ShardRouter:
    """The front door: one protocol endpoint fanning out to N workers.

    Async core of :class:`ShardedServer`; everything here runs on one
    event loop.  ``submit`` forwards by ring lookup, ``stats`` merges
    the whole fleet, ``ping`` answers locally (the router *is* the
    service from the client's point of view).
    """

    def __init__(
        self,
        links: list[_WorkerLink],
        template_runner: Runner,
        host: str = "127.0.0.1",
        port: int = 0,
        quota: QuotaPolicy | None = None,
    ) -> None:
        self.links = links
        #: interprets submit messages exactly as a worker will — the
        #: routing key must be the worker's coalescing key.
        self.template = template_runner
        self.host = host
        self.port = port
        self.ring = HashRing(link.index for link in links)
        self.quota: ClientQuota | None = (
            quota.limiter() if quota is not None else None
        )
        self._by_index = {link.index: link for link in links}
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self._t0 = time.monotonic()
        #: shard.* counter totals for the merged stats view.
        self.counts: dict[str, int] = {
            "shard.routed": 0,
            "shard.redispatched": 0,
            "shard.worker_deaths": 0,
            "shard.rejected": 0,
        }

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "ShardRouter":
        for link in self.links:
            await link.connect()
            task = asyncio.get_running_loop().create_task(
                self._read_worker(link), name=f"shard-worker-{link.index}"
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=_LINE_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in self.links:
            link.close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    # -- routing --------------------------------------------------------------

    def routing_key(self, message: dict) -> str:
        """The coalescing identity of one submit message.

        Built from the *effective* scenario — request overrides plus
        the fleet-wide fault/fidelity overlay, merged exactly as the
        owning worker's runner will merge them — so the ring sends
        every duplicate to the same worker and coalescing stays
        global.
        """
        sc = request_scenario(message)
        effective = self.template.effective_scenario(sc)
        trace = message.get("trace")
        return f"{effective.key()}|{effective.fidelity}|{trace or ''}"

    def scenario_routing_key(self, sc: Scenario) -> str:
        effective = self.template.effective_scenario(sc)
        return f"{effective.key()}|{effective.fidelity}|"

    def worker_for_key(self, key: str) -> _WorkerLink:
        return self._by_index[self.ring.lookup(key)]

    # -- the client side ------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._tasks.add(asyncio.current_task())
        write_lock = asyncio.Lock()

        async def reply(message: dict) -> None:
            async with write_lock:
                writer.write(encode_line(message))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError,
                        ValueError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line)
                except ReproError as exc:
                    await reply(
                        {"id": None, "status": "error", "error": str(exc)}
                    )
                    continue
                rid = message.get("id")
                op = message.get("op")
                if op == "submit":
                    await self._route_submit(rid, message, reply)
                elif op == "stats":
                    await reply(
                        {"id": rid, "status": "stats",
                         "stats": await self.merged_stats()}
                    )
                elif op == "ping":
                    await reply(
                        {"id": rid, "status": "pong",
                         "protocol": PROTOCOL_VERSION,
                         "workers": len(self.ring)}
                    )
                else:
                    await reply(
                        {"id": rid, "status": "error",
                         "error": f"unknown op {op!r}"}
                    )
        except asyncio.CancelledError:
            pass
        finally:
            self._tasks.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route_submit(self, rid, message: dict, reply) -> None:
        if self.quota is not None:
            client_id = message.get("client_id")
            wait = self.quota.admit(
                None if client_id is None else str(client_id),
                time.monotonic(),
            )
            if wait > 0.0:
                self.counts["shard.rejected"] += 1
                await reply(
                    {"id": rid, "status": "rejected", "retry_after": wait,
                     "depth": 0, "reason": "quota"}
                )
                return
        try:
            key = self.routing_key(message)
            link = self.worker_for_key(key)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            await reply({"id": rid, "status": "error", "error": str(exc)})
            return
        await self._forward(link, _Forward(rid, message, reply, key))

    async def _forward(self, link: _WorkerLink, forward: _Forward) -> None:
        wid = link.next_id()
        link.pending[wid] = forward
        wire = dict(forward.message)
        wire["id"] = wid
        self.counts["shard.routed"] += 1
        try:
            await link.send(wire)
        except (OSError, RuntimeError):
            # Write failed: the reader task will (or already did)
            # notice the death and re-dispatch everything pending on
            # this link — including the forward just parked there.
            link.pending.pop(wid, None)
            await self._on_worker_death(link)
            await self._redispatch(forward)

    # -- the worker side ------------------------------------------------------

    async def _read_worker(self, link: _WorkerLink) -> None:
        """Pump one worker's responses back to their clients; on EOF,
        declare the worker dead and heal."""
        try:
            while True:
                try:
                    line = await link.reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError,
                        ValueError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line)
                except ReproError:
                    continue  # junk from a dying worker
                wid = message.get("id")
                future = link.internal.pop(wid, None)
                if future is not None:
                    if not future.done():
                        future.set_result(message)
                    continue
                forward = link.pending.pop(wid, None)
                if forward is None:
                    continue  # stale reply for a re-dispatched request
                message["id"] = forward.client_id_field
                try:
                    await forward.reply(message)
                except (OSError, RuntimeError):
                    pass  # client went away; nothing to heal
        except asyncio.CancelledError:
            raise
        finally:
            await self._on_worker_death(link)

    async def _on_worker_death(self, link: _WorkerLink) -> None:
        """Remove a dead worker from the ring and re-home its work."""
        if not link.alive and not link.pending and not link.internal:
            return
        was_alive = link.alive
        link.close()
        if link.index in self.ring:
            self.ring.remove(link.index)
            if was_alive:
                self.counts["shard.worker_deaths"] += 1
        for future in link.internal.values():
            if not future.done():
                future.set_result(None)
        link.internal.clear()
        orphans = list(link.pending.values())
        link.pending.clear()
        for forward in orphans:
            await self._redispatch(forward)

    async def _redispatch(self, forward: _Forward) -> None:
        """Send one orphaned request to the worker the ring now names.

        The survivor shares the dead worker's disk cache, so a cell
        the victim had *completed* comes back as a byte-identical
        cache hit; only truly unfinished cells re-execute.
        """
        try:
            link = self.worker_for_key(forward.routing_key)
        except CommunicationError as exc:  # no survivors at all
            try:
                await forward.reply(
                    {"id": forward.client_id_field, "status": "error",
                     "error": str(exc)}
                )
            except (OSError, RuntimeError):
                pass
            return
        self.counts["shard.redispatched"] += 1
        await self._forward(link, forward)

    # -- stats ----------------------------------------------------------------

    async def merged_stats(self) -> dict[str, float]:
        """One fleet-wide stats dict.

        Counters and gauges sum across workers (``runner.executed``
        summed is the global execution count — the number the
        exactly-once assertions read); latency percentiles merge by
        max (a conservative fleet-wide bound); ``shard.*`` adds the
        router's own view: live workers, routed/re-dispatched
        requests, deaths, quota rejections.
        """
        futures = []
        for link in self.links:
            if not link.alive:
                continue
            wid = link.next_id()
            future = asyncio.get_running_loop().create_future()
            link.internal[wid] = future
            try:
                await link.send({"op": "stats", "id": wid})
            except (OSError, RuntimeError):
                link.internal.pop(wid, None)
                await self._on_worker_death(link)
                continue
            futures.append(future)
        merged: dict[str, float] = {}
        for future in futures:
            try:
                message = await asyncio.wait_for(future, timeout=10.0)
            except asyncio.TimeoutError:
                continue
            if not message or message.get("status") != "stats":
                continue
            for name, value in (message.get("stats") or {}).items():
                value = float(value)
                if name.endswith(("_p50_s", "_p99_s")):
                    merged[name] = max(merged.get(name, 0.0), value)
                else:
                    merged[name] = merged.get(name, 0.0) + value
        for name, value in self.counts.items():
            merged[name] = float(value)
        merged["shard.workers"] = float(len(self.ring))
        return merged


class ShardedServer:
    """N serve workers + router, as one context manager.

    ``with ShardedServer(workers=3, cache_dir=d) as fleet:`` spawns
    the worker processes (``fork`` start method — they inherit the
    parent's registered workloads), waits for every port handshake,
    and binds the router; ``fleet.port`` is then a live protocol
    endpoint any :class:`~repro.serve.client.ServeClient` can use.
    Exit tears the router down and SIGTERMs the workers.

    The chaos-testing handles are first-class: :meth:`worker_for`
    names the worker a scenario routes to and :meth:`kill_worker`
    SIGKILLs one — together they script "kill the owner of this cell
    mid-sweep" in two lines.
    """

    def __init__(
        self,
        workers: int = 2,
        cache_dir: str | os.PathLike | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        faults: FaultSpec | None = None,
        fidelity: str | None = None,
        surrogate_policy: str = "escalate",
        max_queue: int = 1024,
        max_batch: int = 32,
        batch_wait: float = 0.0,
        quota: QuotaPolicy | None = None,
        max_memory_entries: int | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        if cache_dir is None:
            raise ConfigurationError(
                "a sharded server needs a shared cache_dir — without one "
                "the workers cannot exchange results and worker death "
                "loses completed cells"
            )
        self.workers = workers
        #: resolved before spawn: every worker must open the same
        #: store regardless of its own working directory.
        self.cache_dir = str(resolve_cache_dir(cache_dir))
        self.host = host
        self.port = port
        self.quota = quota
        self._config = dict(
            jobs=jobs,
            faults=None if faults is None else faults.payload(),
            fidelity=fidelity,
            surrogate_policy=surrogate_policy,
            max_queue=max_queue,
            max_batch=max_batch,
            batch_wait=batch_wait,
            max_memory_entries=max_memory_entries,
        )
        #: routing must merge overlays exactly as worker runners do.
        self._template = Runner(
            jobs=1, cache=None, faults=faults, fidelity=fidelity,
            surrogate_policy=surrogate_policy,
        )
        self._processes: list[multiprocessing.Process] = []
        self.router: ShardRouter | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None
        self._atexit = None

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "ShardedServer":
        links = self._spawn_workers()
        self.router = ShardRouter(
            links, self._template,
            host=self.host, port=self.port, quota=self.quota,
        )
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-shard-router", daemon=True,
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._terminate_workers()
            raise self._startup_error
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join()
        self._terminate_workers()
        if self._atexit is not None:
            atexit.unregister(self._atexit)
            self._atexit = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.router.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.host, self.port = self.router.host, self.router.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.router.close()

    def _spawn_workers(self) -> list[_WorkerLink]:
        # fork, not spawn: workers must inherit registered workloads
        # (tests and smokes register theirs at import/module scope).
        ctx = multiprocessing.get_context("fork")
        handshakes = []
        for index in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            config = WorkerConfig(
                index=index, cache_dir=self.cache_dir, **self._config
            )
            # Non-daemon on purpose: a daemonic worker could not own
            # a process pool at jobs > 1.  Orphan protection comes
            # from the atexit terminate below instead — registered
            # *after* multiprocessing's own atexit hook, so (LIFO) it
            # runs first and the interpreter never joins on a worker
            # that was never asked to exit.
            process = ctx.Process(
                target=_worker_main, args=(config, child_conn),
                name=f"repro-shard-worker-{index}", daemon=False,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            handshakes.append(parent_conn)
        self._atexit = self._terminate_workers
        atexit.register(self._atexit)
        links = []
        for index, conn in enumerate(handshakes):
            if not conn.poll(_SPAWN_TIMEOUT_S):
                self._terminate_workers()
                raise CommunicationError(
                    f"shard worker {index} did not report a port within "
                    f"{_SPAWN_TIMEOUT_S:.0f}s"
                )
            hello = conn.recv()
            conn.close()
            if "error" in hello:
                self._terminate_workers()
                raise CommunicationError(
                    f"shard worker {index} failed to start: {hello['error']}"
                )
            links.append(
                _WorkerLink(
                    index, int(hello["port"]), self._processes[index].pid
                )
            )
        return links

    def _terminate_workers(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            if process.pid is not None:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=5.0)

    # -- chaos handles --------------------------------------------------------

    def worker_for(self, sc: Scenario) -> int:
        """Index of the worker ``sc`` currently routes to."""
        return self.router.ring.lookup(
            self.router.scenario_routing_key(sc)
        )

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker — no cleanup, no goodbye; the router
        heals through the death path exactly as for a real crash."""
        process = self._processes[index]
        if process.pid is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)

    def alive_workers(self) -> int:
        return sum(1 for p in self._processes if p.is_alive())


def serve_sharded(
    workers: int,
    cache_dir: str | os.PathLike,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    jobs: int = 1,
    faults: FaultSpec | None = None,
    fidelity: str | None = None,
    surrogate_policy: str = "escalate",
    max_queue: int = 1024,
    max_batch: int = 32,
    batch_wait: float = 0.0,
    quota: QuotaPolicy | None = None,
) -> int:
    """Run the sharded tier until interrupted (``repro serve
    --workers N``)."""
    fleet = ShardedServer(
        workers=workers, cache_dir=cache_dir, host=host, port=port,
        jobs=jobs, faults=faults, fidelity=fidelity,
        surrogate_policy=surrogate_policy, max_queue=max_queue,
        max_batch=max_batch, batch_wait=batch_wait, quota=quota,
    )
    try:
        with fleet:
            print(
                f"repro serve: {workers} workers behind "
                f"{fleet.host}:{fleet.port} (jobs={jobs}/worker, "
                f"shared cache {fleet.cache_dir})",
                flush=True,
            )
            threading.Event().wait()  # until KeyboardInterrupt
    except KeyboardInterrupt:
        pass
    return 0
