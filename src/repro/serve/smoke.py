"""End-to-end smoke of the serving stack (``make serve-smoke``).

Boots a real TCP server on an ephemeral port, fires a burst of
concurrent requests *with duplicates* through :class:`ServeClient`,
and asserts the two properties the service exists for:

* duplicates coalesced — the ``serve.coalesced`` counter is positive
  and the runner executed each distinct cell exactly once;
* served results are byte-identical to direct
  :meth:`Runner.run` execution of the same sweep (the fig9 fast
  grid), compared as canonical JSON.

Exit 0 and a one-line ``serve-smoke ok`` on success; exit 1 with a
diagnostic on any violation.
"""

from __future__ import annotations

import json
import sys

from repro.core.registry import resolve_experiment
from repro.run.cache import ResultCache
from repro.run.runner import Runner
from repro.serve.client import ServeClient
from repro.serve.server import BackgroundServer

#: concurrent requests fired at the server (> distinct cells, so the
#: burst necessarily contains duplicates).
N_REQUESTS = 20


def main() -> int:
    cells = list(resolve_experiment("fig9").scenarios(fast=True))
    burst = [cells[i % len(cells)] for i in range(N_REQUESTS)]
    n_dupes = N_REQUESTS - len(cells)

    serve_runner = Runner(jobs=2, cache=ResultCache(memory_only=True))
    try:
        with BackgroundServer(serve_runner, batch_wait=0.05) as server:
            with ServeClient(port=server.port) as client:
                if client.ping() != 1:
                    print("serve-smoke FAILED: bad ping", file=sys.stderr)
                    return 1
                replies = client.submit_many(burst)
                stats = client.stats()
    finally:
        serve_runner.close()

    errors = [r.error for r in replies if not r.ok]
    if errors:
        print(f"serve-smoke FAILED: {len(errors)} errors, first: "
              f"{errors[0]}", file=sys.stderr)
        return 1

    coalesced = stats.get("serve.coalesced", 0)
    if coalesced <= 0:
        print("serve-smoke FAILED: coalesce counter is zero for a "
              "burst with duplicates", file=sys.stderr)
        return 1
    executed = serve_runner.stats.executed
    if executed != len(cells):
        print(f"serve-smoke FAILED: {executed} executions for "
              f"{len(cells)} distinct cells ({n_dupes} duplicates "
              "should have coalesced)", file=sys.stderr)
        return 1

    direct_runner = Runner(jobs=1, cache=ResultCache(memory_only=True))
    try:
        direct = direct_runner.run(cells)
    finally:
        direct_runner.close()
    rows_by_key = {
        direct_runner.effective_scenario(sc).key(): record.rows
        for sc, record in zip(cells, direct)
    }
    for reply, sc in zip(replies, burst):
        want = rows_by_key[direct_runner.effective_scenario(sc).key()]
        if json.dumps(reply.rows) != json.dumps(want):
            print(f"serve-smoke FAILED: served rows differ from direct "
                  f"Runner for {sc.describe()}:\n  served {reply.rows}\n"
                  f"  direct {want}", file=sys.stderr)
            return 1

    print(
        f"serve-smoke ok: {N_REQUESTS} requests over TCP, "
        f"{len(cells)} distinct cells executed once each, "
        f"{int(coalesced)} coalesced, "
        f"{int(stats.get('serve.batches', 0))} batches, "
        f"p99 latency {stats.get('serve.latency_p99_s', 0.0):.3f}s, "
        "responses byte-identical to direct Runner execution"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
