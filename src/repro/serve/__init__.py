"""Scenario serving: queue, coalesce and batch requests to a Runner.

The package splits along the classic service seam:

* :mod:`repro.serve.service` — the asyncio scheduler
  (:class:`ScenarioService`): bounded priority queue, admission
  control with ``retry_after`` backpressure, in-flight request
  coalescing by scenario content hash, micro-batching into
  :meth:`Runner.run_batch`;
* :mod:`repro.serve.protocol` — the JSON-lines wire format;
* :mod:`repro.serve.server` — the TCP front end and the ``repro
  serve`` loop;
* :mod:`repro.serve.client` — the blocking :class:`ServeClient`;
* :mod:`repro.serve.shard` — the multi-worker tier
  (:class:`ShardedServer`): N worker processes behind one front-door
  router, consistent hashing on the effective-scenario key, a shared
  on-disk result cache, and worker-death failover.

For one-shot in-process use (no sockets), :func:`submit` runs a list
of scenarios through a short-lived service and returns the results in
input order — same coalescing and batching semantics as the server.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Sequence

from repro.run.runner import Runner
from repro.run.scenario import Scenario
from repro.serve.client import ServeClient, ServeReply
from repro.serve.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    scenario_from_wire,
    scenario_to_wire,
)
from repro.serve.server import BackgroundServer, ScenarioServer, serve_forever
from repro.serve.service import (
    ClientQuota,
    QuotaPolicy,
    ScenarioService,
    ServeRejected,
    ServeResult,
)
from repro.serve.shard import ShardedServer, serve_sharded

__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "BackgroundServer",
    "ClientQuota",
    "QuotaPolicy",
    "ScenarioServer",
    "ScenarioService",
    "ServeClient",
    "ServeRejected",
    "ServeReply",
    "ServeResult",
    "ShardedServer",
    "scenario_from_wire",
    "scenario_to_wire",
    "serve_forever",
    "serve_sharded",
    "submit",
]


def submit(
    scenarios: Iterable[Scenario],
    runner: Runner | None = None,
    priority: int = 0,
    max_queue: int | None = None,
    max_batch: int = 32,
    batch_wait: float = 0.0,
) -> list[ServeResult]:
    """Run scenarios through an in-process service, results in order.

    Duplicates in the input coalesce to one execution each, exactly as
    they would against a live server.  ``max_queue`` defaults to at
    least the submission count so a one-shot call never rejects
    itself.

    Cells the inline fast path can own (non-``full`` fidelity, vouched
    for by the surrogate tier) resolve synchronously via
    :meth:`ScenarioService.submit_nowait` — an all-analytic burst
    never pays per-request task scheduling; everything else queues,
    coalesces and batches concurrently as against a live server.
    """
    cells: Sequence[Scenario] = list(scenarios)
    if max_queue is None:
        max_queue = max(1024, len(cells))
    owned = runner is None
    active = Runner() if owned else runner

    async def _main() -> list[ServeResult]:
        service = ScenarioService(
            active, max_queue=max_queue,
            max_batch=max_batch, batch_wait=batch_wait,
        )
        async with service:
            results: list[ServeResult | None] = [None] * len(cells)
            pending: list[int] = []
            for i, sc in enumerate(cells):
                result = service.submit_nowait(sc)
                if result is not None:
                    results[i] = result
                else:
                    pending.append(i)
            if pending:
                answers = await asyncio.gather(
                    *(
                        service.submit(cells[i], priority=priority)
                        for i in pending
                    )
                )
                for i, answer in zip(pending, answers):
                    results[i] = answer
            return results  # type: ignore[return-value]

    try:
        return asyncio.run(_main())
    finally:
        if owned:
            active.close()
