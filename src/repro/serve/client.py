"""Blocking TCP client for the scenario service.

:class:`ServeClient` is deliberately plain: a socket, a line reader
and a request counter — it has no asyncio of its own, so it drops into
scripts, notebooks and the smoke harness unchanged.  Pipelining comes
from the protocol: :meth:`ServeClient.submit_many` writes every
request before reading any response, letting the server coalesce and
batch the burst, then collects replies (which arrive in completion
order) back into submission order.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import CommunicationError, ConfigurationError
from repro.run.scenario import Scenario, canonical_value
from repro.serve.protocol import (
    DEFAULT_PORT,
    decode_line,
    encode_line,
    scenario_to_wire,
)

__all__ = ["ServeClient", "ServeReply"]


@dataclass(frozen=True)
class ServeReply:
    """One response from the service, wire fields normalized.

    ``rows`` are re-canonicalized (nested tuples), so they compare
    equal — and serialize byte-identically — to the rows a local
    :class:`~repro.run.runner.Runner` would have produced.
    """

    status: str
    rows: tuple[tuple, ...] = ()
    error: str | None = None
    retry_after: float = 0.0
    #: which limiter rejected (``"queue"``/``"quota"``); rejected only.
    reason: str | None = None
    cached: bool = False
    coalesced: bool = False
    duration_s: float = 0.0
    latency_s: float = 0.0
    #: the request asked for a non-``full`` fidelity but was served
    #: by the full path (surrogate could not vouch for the cell).
    escalated: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class ServeClient:
    """Talk to a running ``repro serve`` endpoint.

    Usable as a context manager.  Rejected submissions (backpressure)
    are retried automatically after the server's ``retry_after`` hint
    unless ``retry=False``.

    ``connect_timeout`` bounds only establishing the connection.
    ``timeout`` bounds each blocking read while waiting for a
    response and defaults to ``None`` (wait forever): under
    backpressure a healthy server legitimately holds a submitted cell
    for longer than any fixed deadline — a deep queue or a slow cell
    is not a lost connection.

    ``client_id`` names this client to the server's per-client quota
    (every submit message carries it); ``None`` shares the server's
    anonymous bucket.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float | None = None,
        connect_timeout: float = 10.0,
        client_id: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise CommunicationError(
                f"cannot reach repro serve at {host}:{port}: {exc}"
            ) from None
        # create_connection leaves connect_timeout on the socket;
        # response waits get their own budget.
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        #: responses read while waiting for a different request id.
        self._stash: dict[int, dict[str, Any]] = {}

    # -- plumbing -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _send(self, message: dict[str, Any]) -> int:
        self._next_id += 1
        message["id"] = self._next_id
        try:
            self._sock.sendall(encode_line(message))
        except OSError as exc:
            raise CommunicationError(f"serve connection lost: {exc}") from None
        return self._next_id

    def _wait(self, rid: int) -> dict[str, Any]:
        """Read responses (stashing strays) until ``rid`` answers."""
        while rid not in self._stash:
            try:
                line = self._file.readline()
            except OSError as exc:
                raise CommunicationError(
                    f"serve connection lost: {exc}"
                ) from None
            if not line:
                raise CommunicationError(
                    "serve connection closed before response"
                )
            message = decode_line(line)
            got = message.get("id")
            if isinstance(got, int):
                self._stash[got] = message
        return self._stash.pop(rid)

    @staticmethod
    def _reply(message: dict[str, Any]) -> ServeReply:
        return ServeReply(
            status=str(message.get("status")),
            rows=tuple(
                canonical_value(row) for row in message.get("rows") or ()
            ),
            error=message.get("error"),
            retry_after=float(message.get("retry_after") or 0.0),
            reason=message.get("reason"),
            cached=bool(message.get("cached")),
            coalesced=bool(message.get("coalesced")),
            duration_s=float(message.get("duration_s") or 0.0),
            latency_s=float(message.get("latency_s") or 0.0),
            escalated=bool(message.get("escalated")),
        )

    def _submit_message(
        self,
        sc: Scenario,
        priority: int = 0,
        faults: str | None = None,
        trace: str | None = None,
        fidelity: str | None = None,
    ) -> dict[str, Any]:
        message: dict[str, Any] = {
            "op": "submit",
            "scenario": scenario_to_wire(sc),
            "priority": priority,
        }
        if faults:
            message["faults"] = faults
        if trace:
            message["trace"] = trace
        if fidelity:
            message["fidelity"] = getattr(fidelity, "value", fidelity)
        if self.client_id is not None:
            message["client_id"] = self.client_id
        return message

    # -- requests -------------------------------------------------------------

    def submit(
        self,
        sc: Scenario,
        priority: int = 0,
        faults: str | None = None,
        trace: str | None = None,
        fidelity: str | None = None,
        retry: bool = True,
    ) -> ServeReply:
        """Run one cell; blocks until its result streams back.

        ``fidelity`` overrides the scenario's execution tier for this
        request (``"analytic"`` resolves inline server-side through
        the surrogate; see ``ServeReply.escalated``).
        """
        while True:
            rid = self._send(
                self._submit_message(sc, priority, faults, trace, fidelity)
            )
            reply = self._reply(self._wait(rid))
            if reply.status == "rejected" and retry:
                time.sleep(max(0.05, reply.retry_after))
                continue
            return reply

    #: option names ``submit_many`` overrides may carry, mirroring
    #: the per-request wire fields.
    _OVERRIDE_KEYS = frozenset({"priority", "faults", "trace", "fidelity"})

    def submit_many(
        self,
        scenarios: Iterable[Scenario],
        priority: int = 0,
        faults: str | None = None,
        trace: str | None = None,
        fidelity: str | None = None,
        retry: bool = True,
        overrides=None,
    ) -> list[ServeReply]:
        """Pipeline a burst of cells; results in submission order.

        All requests hit the wire before the first response is read —
        duplicates in the burst coalesce server-side, distinct cells
        pack into batches, analytic cells resolve inline.  The
        keyword options are the burst-wide defaults; ``overrides``
        customizes individual requests without giving up pipelining:
        either a mapping ``{index: {option: value}}`` or a sequence
        aligned with ``scenarios`` (``None`` entries = no override),
        where each per-request dict may set any of ``priority`` /
        ``faults`` / ``trace`` / ``fidelity``::

            client.submit_many(
                cells,
                fidelity="analytic",
                overrides={3: {"fidelity": "full", "priority": -1}},
            )

        Unknown option names — or indices outside the burst — raise
        :class:`~repro.errors.ConfigurationError` before anything is
        sent, so a typo cannot half-submit a burst.
        """
        cells: Sequence[Scenario] = list(scenarios)
        options: list[dict[str, Any]] = [
            {"priority": priority, "faults": faults,
             "trace": trace, "fidelity": fidelity}
            for _ in cells
        ]
        if overrides is not None:
            items = (
                overrides.items() if hasattr(overrides, "items")
                else enumerate(overrides)
            )
            for idx, per_request in items:
                if per_request is None:
                    continue
                if not 0 <= int(idx) < len(cells):
                    raise ConfigurationError(
                        f"submit_many override index {idx} outside the "
                        f"burst of {len(cells)} scenarios"
                    )
                unknown = set(per_request) - self._OVERRIDE_KEYS
                if unknown:
                    raise ConfigurationError(
                        f"unknown submit_many override option(s) "
                        f"{sorted(unknown)}; allowed: "
                        f"{sorted(self._OVERRIDE_KEYS)}"
                    )
                options[int(idx)].update(per_request)
        rids = [
            self._send(self._submit_message(sc, **opts))
            for sc, opts in zip(cells, options)
        ]
        replies: list[ServeReply] = []
        for i, rid in enumerate(rids):
            reply = self._reply(self._wait(rid))
            while reply.status == "rejected" and retry:
                time.sleep(max(0.05, reply.retry_after))
                again = self._send(
                    self._submit_message(cells[i], **options[i])
                )
                reply = self._reply(self._wait(again))
            replies.append(reply)
        return replies

    def stats(self) -> dict[str, float]:
        """Live service counters (queue depth, coalesce hits, ...)."""
        rid = self._send({"op": "stats"})
        message = self._wait(rid)
        if message.get("status") != "stats":
            raise CommunicationError(f"bad stats response: {message!r}")
        return dict(message.get("stats") or {})

    def ping(self) -> int:
        """Round-trip liveness check; returns the protocol version."""
        rid = self._send({"op": "ping"})
        message = self._wait(rid)
        if message.get("status") != "pong":
            raise CommunicationError(f"bad ping response: {message!r}")
        return int(message.get("protocol") or 0)
