"""MLP group-level execution model.

An MLP run is ``groups`` forked processes, each running ``threads``
OpenMP threads.  Per time step each group: computes its share of the
zones (load balance depends on how evenly zones divide into groups),
then archives/reads boundary data through the shared arena and
synchronizes.

INS3D's observed behaviour (paper §4.1.3, Table 2) is the calibration
target: good scaling in OpenMP threads up to ~8, decaying beyond;
further scaling by adding groups until load balancing fails; varying
threads does not change convergence, varying groups may.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.node import AltixNode
from repro.mlp.arena import SharedArena
from repro.obs.spans import current_tracer
from repro.openmp.scaling import OMPKernelParams, omp_region_time

__all__ = ["MLPConfig", "mlp_step_time"]


@dataclass(frozen=True)
class MLPConfig:
    """An MLP process/thread layout on one node."""

    groups: int
    threads: int

    def __post_init__(self) -> None:
        if self.groups < 1 or self.threads < 1:
            raise ConfigurationError(
                f"groups and threads must be >= 1: {self.groups}x{self.threads}"
            )

    @property
    def total_cpus(self) -> int:
        return self.groups * self.threads


def mlp_step_time(
    serial_step_time: float,
    config: MLPConfig,
    node: AltixNode,
    omp_params: OMPKernelParams,
    group_imbalance: float,
    boundary_bytes: float,
    locality_penalty: float = 1.0,
    tracer: "object | None" = None,
    t_offset: float = 0.0,
) -> float:
    """Wall time of one solver step under MLP.

    Parameters
    ----------
    serial_step_time:
        One-group one-thread time for the step on this node.
    group_imbalance:
        max-group-load / mean-group-load (>= 1) for this group count —
        comes from the workload's zone-to-group partition.
    boundary_bytes:
        Total overset boundary data archived in the arena per step.
    tracer / t_offset:
        When a tracer is active (explicit or ambient), the step is
        recorded per group — an ``omp_region`` span for the group's
        compute and a ``collective`` span for the arena exchange —
        starting at simulated time ``t_offset``, one trace "rank" per
        group.  Tracing never changes the returned time.
    """
    if serial_step_time < 0 or boundary_bytes < 0:
        raise ConfigurationError("times and sizes must be non-negative")
    if group_imbalance < 1.0:
        raise ConfigurationError(
            f"group_imbalance must be >= 1, got {group_imbalance}"
        )
    if config.total_cpus > node.n_cpus:
        raise ConfigurationError(
            f"{config.groups}x{config.threads} exceeds node of {node.n_cpus} CPUs"
        )
    # Coarse level: each group gets 1/groups of the work, the slowest
    # group carries the imbalance.
    group_work = serial_step_time / config.groups * group_imbalance
    compute = omp_region_time(
        group_work, config.threads, node, omp_params, locality_penalty
    )
    arena = SharedArena(
        node, remote_fraction=1.0 - 1.0 / config.groups if config.groups > 1 else 0.0
    )
    exchange = arena.access_time(
        boundary_bytes / max(1, config.groups), concurrent_groups=config.groups
    )
    if tracer is None:
        tracer = current_tracer()
    if tracer is not None and tracer.enabled:
        per_group_bytes = boundary_bytes / max(1, config.groups)
        for group in range(config.groups):
            tracer.complete(
                group, "omp_region", "mlp_group_compute",
                t_offset, t_offset + compute, thread=0,
                args={"threads": config.threads,
                      "imbalance": group_imbalance},
            )
            tracer.complete(
                group, "collective", "arena_exchange",
                t_offset + compute, t_offset + compute + exchange, thread=0,
                args={"bytes": per_group_bytes},
            )
        tracer.counters.add(
            "mlp.arena_bytes", boundary_bytes, t_offset + compute + exchange
        )
    return compute + exchange
