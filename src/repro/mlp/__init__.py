"""Multi-Level Parallelism (MLP) model.

MLP (Taft, NASA Ames — paper ref [17]) is the shared-memory paradigm
INS3D uses: coarse-grain parallelism from independent UNIX-forked
processes sharing a memory arena, fine-grain parallelism from OpenMP
inside each process; all communication is direct memory referencing
through the arena.
"""

from repro.mlp.arena import SharedArena
from repro.mlp.groups import MLPConfig, mlp_step_time

__all__ = ["SharedArena", "MLPConfig", "mlp_step_time"]
