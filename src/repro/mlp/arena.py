"""Shared-memory arena model.

Under MLP, each forked group archives its overset boundary data in a
shared arena; other groups read it with plain loads/stores (paper
§3.4).  The cost model: a group writing/reading ``nbytes`` moves it at
local-memory bandwidth when the pages are on the group's own FSBs,
derated by the NUMAlink for remote pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.node import AltixNode

__all__ = ["SharedArena"]


@dataclass(frozen=True)
class SharedArena:
    """Cost model for arena traffic on one Altix node."""

    node: AltixNode
    #: Fraction of arena pages remote to the accessing group.  With
    #: first-touch placement and pinning this is the fraction of
    #: boundary data owned by *other* groups, ~ (groups-1)/groups.
    remote_fraction: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise ConfigurationError(
                f"remote_fraction must be in [0,1]: {self.remote_fraction}"
            )

    def access_time(self, nbytes: float, concurrent_groups: int = 1) -> float:
        """Time for one group to move ``nbytes`` through the arena.

        ``concurrent_groups`` groups hitting the arena simultaneously
        share the fabric.
        """
        if nbytes < 0:
            raise ConfigurationError(f"negative arena transfer: {nbytes}")
        if concurrent_groups < 1:
            raise ConfigurationError("concurrent_groups must be >= 1")
        local_bw = self.node.fsb.cpu_max_bandwidth
        ic = self.node.interconnect
        remote_bw = ic.link_bandwidth * ic.mpi_efficiency
        # Remote traffic from all groups shares the per-brick links.
        bricks = max(1, self.node.n_bricks)
        remote_share = remote_bw * min(bricks, concurrent_groups) / concurrent_groups
        local = nbytes * (1.0 - self.remote_fraction) / local_bw
        remote = nbytes * self.remote_fraction / remote_share
        return local + remote
