"""The surrogate registry: which workloads have a fast path, and how.

A :class:`SurrogateSpec` describes how one workload id is evaluated
at non-``full`` fidelity:

* **exact passthrough** (``fn is None``) — the workload's own cell
  function is already a closed-form model (no discrete-event
  simulation anywhere in it), so the surrogate *is* the workload,
  run in-process.  Its rows are identical to the full path by
  construction; the calibration job asserts that instead of assuming
  it.
* **modeled** (``fn`` set) — the workload executes the DES on the
  full path, and the surrogate is a genuinely different closed form
  (``analytic``) or a mixed executed-compute/analytic-network
  evaluation (``hybrid``).  Its error against the DES is measured by
  ``repro calibrate --fidelity`` and persisted per workload *family*
  (the id prefix before the first dot).

Declarations live in :mod:`repro.surrogate.families`, imported
lazily on the first resolution miss so ``import repro.surrogate``
stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError

__all__ = [
    "SurrogateSpec",
    "SurrogateUnavailable",
    "family_of",
    "register_exact",
    "resolve_surrogate",
    "surrogate",
    "surrogate_specs",
]


class SurrogateUnavailable(ReproError):
    """No surrogate can serve this scenario at the requested fidelity."""


def family_of(workload_id: str) -> str:
    """The calibration family of a workload id: the prefix before the
    first dot (``"fig9.cell"`` → ``"fig9"``) — the granularity the
    error table is keyed on."""
    return workload_id.split(".", 1)[0]


@dataclass(frozen=True)
class SurrogateSpec:
    """How one workload id evaluates at non-``full`` fidelity."""

    workload: str
    family: str
    #: ``None`` marks an exact passthrough; otherwise
    #: ``fn(mode, **cell_kwargs)`` returns rows in the workload's
    #: own row schema (``mode`` is ``"analytic"`` or ``"hybrid"``).
    fn: Callable | None
    #: fidelities this surrogate can serve.
    modes: tuple[str, ...] = ("analytic", "hybrid")
    #: rows provably identical to the full path (passthroughs).
    exact: bool = False


_SURROGATES: dict[str, SurrogateSpec] = {}
_families_loaded = False


def register_exact(workload_id: str) -> SurrogateSpec:
    """Declare a workload as closed-form: its cell function contains
    no DES, so running it in-process *is* the analytic evaluation."""
    spec = SurrogateSpec(
        workload=workload_id, family=family_of(workload_id),
        fn=None, exact=True,
    )
    _SURROGATES[workload_id] = spec
    return spec


def surrogate(
    workload_id: str, modes: tuple[str, ...] = ("analytic", "hybrid")
) -> Callable:
    """Register the decorated function as a modeled surrogate for a
    DES-backed workload.  Signature: ``fn(mode, **cell_kwargs)``."""

    def register(fn: Callable) -> Callable:
        _SURROGATES[workload_id] = SurrogateSpec(
            workload=workload_id, family=family_of(workload_id),
            fn=fn, modes=tuple(modes), exact=False,
        )
        return fn

    return register


def _load_families() -> None:
    global _families_loaded
    if not _families_loaded:
        _families_loaded = True
        import repro.surrogate.families  # noqa: F401 - registers on import


def resolve_surrogate(workload_id: str) -> SurrogateSpec | None:
    """The surrogate spec for a workload id, or ``None`` if the
    workload has no declared fast path (it must run full-DES)."""
    spec = _SURROGATES.get(workload_id)
    if spec is None:
        _load_families()
        spec = _SURROGATES.get(workload_id)
    return spec


def surrogate_specs() -> list[SurrogateSpec]:
    """Every declared surrogate, declaration order."""
    _load_families()
    return list(_SURROGATES.values())
