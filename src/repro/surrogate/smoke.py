"""End-to-end smoke test for the fidelity tier (``make fidelity-smoke``).

Four checks, each pinning one leg of the surrogate contract:

1. **Calibration freshness** — the committed error table loads, is not
   stale against this build (version + calibration fingerprint), and
   covers the one modeled family at both non-full tiers.  A stale
   table silently degrades every modeled cell to escalation, so this
   is the first thing to trip after a calibration-relevant change.
2. **Parity** — an all-analytic sweep returns rows byte-identical to
   the full-DES path for exact-passthrough workloads, and within the
   committed error bound for the modeled ``ext_noise`` family; the
   sweep must finish without ever building a worker pool.
3. **Cache round-trip** — a second, fresh Runner on the same cache
   serves the whole analytic sweep from cache with identical rows
   (fidelity-qualified keys survive the disk round-trip).
4. **Serve inline path** — a burst of analytic cells through
   :func:`repro.serve.submit` resolves entirely inline: every request
   ok, none escalated, zero batches formed.

Exit status 0 with ``fidelity-smoke ok`` on success; 1 with a
``fidelity-smoke FAILED`` diagnosis on the first broken check.
"""

from __future__ import annotations

import sys
import tempfile


def _fail(why: str) -> int:
    print(f"fidelity-smoke FAILED: {why}", file=sys.stderr)
    return 1


def main() -> int:
    from repro.run import ResultCache, Runner, scenario, sweep
    from repro.serve import submit
    from repro.surrogate import (
        default_error_table,
        evaluate_scenario,
        family_of,
    )
    from repro.surrogate.calibrate import relative_error

    # 1. The committed calibration table vouches for this build.
    table = default_error_table()
    if table is None:
        return _fail("no committed calibration table "
                     "(src/repro/surrogate/calibration.json)")
    if table.stale:
        return _fail(
            "committed calibration table is stale for this build; "
            "regenerate with `repro calibrate --fidelity`"
        )
    family = family_of("ext_noise.cell")
    for mode in ("analytic", "hybrid"):
        if not table.permits(family, mode):
            return _fail(f"table does not permit {family!r} at {mode!r}")

    # 2. Mixed parity sweep, no pool.
    cells = sweep("fig9.cell", {"processes": [1, 4, 16], "threads": [1, 2]})
    fast = Runner(jobs=4, cache=None, fidelity="analytic")
    full = Runner(jobs=1, cache=None)
    fast_records = fast.run(cells)
    full_records = full.run(cells)
    if fast._pool is not None:
        return _fail("analytic sweep built a worker pool")
    if any(not r.ok or r.escalated for r in fast_records):
        return _fail("analytic sweep had errors or escalations")
    if [r.rows for r in fast_records] != [r.rows for r in full_records]:
        return _fail("exact-passthrough rows differ from the full path")

    noise = scenario("ext_noise.cell", ranks=8, noise=0.25, n_seeds=2)
    err = relative_error(
        full.run([noise])[0].rows,
        evaluate_scenario(scenario(
            "ext_noise.cell", ranks=8, noise=0.25, n_seeds=2,
            fidelity="analytic",
        )),
    )
    if err > table.bound:
        return _fail(
            f"modeled ext_noise error {err:.4f} exceeds the table "
            f"bound {table.bound:.4f}"
        )

    # 3. Cold/warm cache parity across Runner instances.
    with tempfile.TemporaryDirectory(prefix="repro-fid-smoke-") as tmp:
        cold = Runner(
            jobs=1, cache=ResultCache(cache_dir=tmp), fidelity="analytic"
        )
        cold_records = cold.run(cells)
        warm = Runner(
            jobs=1, cache=ResultCache(cache_dir=tmp), fidelity="analytic"
        )
        warm_records = warm.run(cells)
        if warm.stats.cached != len(cells) or warm.stats.executed != 0:
            return _fail(
                f"warm analytic pass re-executed cells "
                f"({warm.stats.summary()})"
            )
        if [r.rows for r in warm_records] != [r.rows for r in cold_records]:
            return _fail("cached analytic rows differ from the cold pass")

    # 4. The serve inline path owns an analytic burst outright.
    analytic = sweep(
        "fig9.cell", {"processes": [1, 2, 4, 8, 16], "threads": [1, 2]},
        fidelity="analytic",
    )
    runner = Runner(jobs=1, cache=None)
    try:
        results = submit(analytic, runner=runner)
    finally:
        runner.close()
    if any(not r.ok or r.escalated for r in results):
        return _fail("served analytic burst had errors or escalations")
    if runner.stats.fast != len(analytic):
        return _fail(
            f"expected {len(analytic)} inline cells, "
            f"runner saw {runner.stats.fast}"
        )

    print(
        f"fidelity-smoke ok: calibration fresh, "
        f"{len(cells)} exact cells identical to full, modeled error "
        f"{err:.4f} <= {table.bound:.4f}, warm cache pass 100% hits, "
        f"{len(analytic)} served cells all inline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
