"""repro.surrogate — the analytic fast path behind fidelity tiers.

Promotes the closed-form cost models from a validation tool into a
serving tier: a scenario submitted at ``fidelity="analytic"`` (or
``"hybrid"``) is evaluated in-process in microseconds — no pickling,
no process pool, no DES — with a *calibrated* error bound against
the full path, and transparent escalation where the bound cannot be
vouched for.

Layout:

* :mod:`~repro.surrogate.registry` — which workloads have a fast
  path (:func:`resolve_surrogate`, exact vs modeled);
* :mod:`~repro.surrogate.models` — DES-matched closed forms shared
  by modeled surrogates;
* :mod:`~repro.surrogate.families` — the declarations themselves;
* :mod:`~repro.surrogate.evaluator` — :func:`evaluate_scenario`,
  the in-process counterpart of ``execute_scenario``;
* :mod:`~repro.surrogate.calibrate` — the error-measurement job,
  the persisted :class:`ErrorTable`, and the permit policy.
"""

from repro.surrogate.calibrate import (
    DEFAULT_BOUND,
    ErrorTable,
    calibrate,
    default_error_table,
    relative_error,
)
from repro.surrogate.evaluator import evaluate_scenario, surrogate_for
from repro.surrogate.registry import (
    SurrogateSpec,
    SurrogateUnavailable,
    family_of,
    resolve_surrogate,
    surrogate_specs,
)

__all__ = [
    "DEFAULT_BOUND",
    "ErrorTable",
    "SurrogateSpec",
    "SurrogateUnavailable",
    "calibrate",
    "default_error_table",
    "evaluate_scenario",
    "family_of",
    "resolve_surrogate",
    "surrogate_for",
    "surrogate_specs",
]
