"""Fidelity calibration: measure surrogate error, persist the bound.

``repro calibrate --fidelity`` drives every registered experiment's
sweep cells through both the full path (``execute_scenario``) and the
surrogate (``evaluate_scenario``) and records, per workload *family*
and fidelity mode, the worst relative error observed.  The resulting
:class:`ErrorTable` is persisted as JSON keyed by the same
``version|calibration-fingerprint`` context the result cache uses —
retune any calibrated constant (or bump the version) and the table
goes stale, at which point the Runner stops trusting modeled
surrogates until recalibration (exact passthroughs need no table:
their rows are identical to the full path by construction, and the
calibration job *asserts* that instead of assuming it).

The committed default table lives next to this module
(``calibration.json``) so a fresh checkout serves analytic requests
out of the box.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ConfigurationError
from repro.run.scenario import Scenario

__all__ = [
    "COMMITTED_TABLE",
    "DEFAULT_BOUND",
    "ErrorTable",
    "calibrate",
    "default_error_table",
    "relative_error",
]

#: Default acceptable worst-case relative error for modeled
#: surrogates.  The ext_noise surrogate's residual against the DES is
#: contention/scheduling effects the closed form deliberately omits;
#: the measured table (committed) sits well inside this.
DEFAULT_BOUND = 0.5

#: The committed default error table, valid for a fresh checkout.
COMMITTED_TABLE = Path(__file__).with_name("calibration.json")

#: Denominator floor for relative error (absolute tolerance below it).
_ERR_FLOOR = 1e-9


def _current_context() -> str:
    from repro.run.cache import _package_version, calibration_fingerprint

    return f"{_package_version()}|{calibration_fingerprint()}"


def relative_error(full_rows, fast_rows) -> float:
    """Worst column-wise relative error between two row sets.

    Rows are compared positionally; numeric entries contribute
    ``|fast - full| / max(|full|, floor)``; non-numeric entries must
    match exactly (mismatch — or a shape mismatch — is ``inf``).
    """
    if len(full_rows) != len(fast_rows):
        return math.inf
    worst = 0.0
    for frow, srow in zip(full_rows, fast_rows):
        if len(frow) != len(srow):
            return math.inf
        for fval, sval in zip(frow, srow):
            numeric = isinstance(fval, (int, float)) and not isinstance(
                fval, bool
            )
            if numeric and isinstance(sval, (int, float)):
                err = abs(sval - fval) / max(abs(fval), _ERR_FLOOR)
                worst = max(worst, err)
            elif fval != sval:
                return math.inf
    return worst


@dataclass(frozen=True)
class FamilyError:
    """Worst observed error for one (family, mode) pair."""

    family: str
    mode: str
    rel_err: float
    cells: int
    exact: bool = False


class ErrorTable:
    """Per-family surrogate error, bound to a calibration context."""

    def __init__(
        self,
        context: str,
        bound: float = DEFAULT_BOUND,
        entries: dict[tuple[str, str], FamilyError] | None = None,
    ) -> None:
        self.context = context
        self.bound = bound
        self.entries = dict(entries or {})

    def record(self, entry: FamilyError) -> None:
        key = (entry.family, entry.mode)
        prior = self.entries.get(key)
        if prior is not None:
            entry = FamilyError(
                family=entry.family, mode=entry.mode,
                rel_err=max(prior.rel_err, entry.rel_err),
                cells=prior.cells + entry.cells,
                exact=prior.exact and entry.exact,
            )
        self.entries[key] = entry

    def lookup(self, family: str, mode: str) -> FamilyError | None:
        return self.entries.get((family, mode))

    def permits(self, family: str, mode: str) -> bool:
        """True iff this table vouches for (family, mode): measured,
        and the worst error observed is within the bound."""
        entry = self.entries.get((family, mode))
        return entry is not None and entry.rel_err <= self.bound

    @property
    def stale(self) -> bool:
        """True when the table was calibrated under a different
        version or calibration fingerprint than the running code."""
        return self.context != _current_context()

    # -- persistence --------------------------------------------------------

    def to_payload(self) -> dict:
        families: dict[str, dict] = {}
        for (family, mode), e in sorted(self.entries.items()):
            families.setdefault(family, {})[mode] = {
                "rel_err": e.rel_err, "cells": e.cells, "exact": e.exact,
            }
        return {
            "calibration": 1,
            "context": self.context,
            "bound": self.bound,
            "families": families,
        }

    def save(self, path: str | Path = COMMITTED_TABLE) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_payload(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path = COMMITTED_TABLE) -> "ErrorTable | None":
        """Load a table, or ``None`` if missing/corrupt.  A stale
        context still loads (``table.stale`` flags it) so callers can
        distinguish "never calibrated" from "needs recalibration"."""
        try:
            payload = json.loads(Path(path).read_text())
            entries = {}
            for family, modes in payload["families"].items():
                for mode, e in modes.items():
                    entries[(family, mode)] = FamilyError(
                        family=family, mode=mode,
                        rel_err=float(e["rel_err"]),
                        cells=int(e["cells"]),
                        exact=bool(e.get("exact", False)),
                    )
            return cls(
                context=str(payload["context"]),
                bound=float(payload["bound"]),
                entries=entries,
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None


_default_table: ErrorTable | None = None
_default_loaded = False


def default_error_table() -> ErrorTable | None:
    """The committed error table, loaded once per process; ``None``
    when missing/corrupt.  Stale tables are returned as-is — the
    Runner checks ``.stale`` and treats them as absent."""
    global _default_table, _default_loaded
    if not _default_loaded:
        _default_loaded = True
        _default_table = ErrorTable.load()
    return _default_table


def calibrate(
    fast: bool = True,
    bound: float = DEFAULT_BOUND,
    modes: tuple[str, ...] = ("analytic", "hybrid"),
    progress=None,
) -> ErrorTable:
    """Measure surrogate-vs-full error across every registered sweep.

    For each experiment cell whose workload has a surrogate, run the
    full path once and each requested fidelity mode once, and fold
    the relative error into the table per (family, mode).  Exact
    passthroughs *must* come back with error 0.0 — a non-zero error
    there means a workload claimed closed-form actually diverges, and
    calibration fails loudly rather than recording a lie.
    """
    from repro.core.registry import experiment_specs
    from repro.run.runner import execute_scenario
    from repro.surrogate.evaluator import evaluate_scenario
    from repro.surrogate.registry import resolve_surrogate

    table = ErrorTable(context=_current_context(), bound=bound)
    for spec in experiment_specs():
        if spec.scenarios is None:
            continue
        for cell in spec.scenarios(fast=fast):
            surr = resolve_surrogate(cell.workload)
            if surr is None:
                continue
            full_rows = execute_scenario(cell)
            for mode in modes:
                if surr.fn is not None and mode not in surr.modes:
                    continue
                fast_rows = evaluate_scenario(replace(cell, fidelity=mode))
                err = relative_error(full_rows, fast_rows)
                if surr.exact and err != 0.0:
                    raise ConfigurationError(
                        f"{cell.describe()}: workload {cell.workload!r} "
                        f"is declared an exact passthrough but its "
                        f"{mode} rows diverge (rel. error {err:.3g})"
                    )
                for fam in _family_keys(surr.family, cell):
                    table.record(FamilyError(
                        family=fam, mode=mode, rel_err=err,
                        cells=1, exact=surr.exact,
                    ))
                if progress is not None:
                    progress(cell, mode, err)
    return table


def _family_keys(family: str, sc: Scenario) -> tuple[str, ...]:
    """Error-table keys for one cell: the workload family, plus a
    machine-qualified key (``family@config``) when the cell names a
    zoo machine.  A modeled surrogate calibrated against Columbia
    sweeps says nothing about its error on ``fat_numa``; per-machine
    entries keep the permit honest across the zoo."""
    config = None if sc.machine is None else sc.machine.config
    if config is None:
        return (family,)
    return (family, f"{family}@{config}")


def permit_scenario(
    sc: Scenario, table: ErrorTable | None
) -> tuple[bool, str]:
    """Policy decision for one non-``full`` cell: may the surrogate
    serve it?  Returns ``(permitted, reason)``; the reason explains a
    denial (used verbatim in refuse-mode error records).

    Exact passthroughs are always permitted.  Modeled surrogates need
    a fresh (non-stale) table entry for their family within bound.
    """
    from repro.surrogate.evaluator import surrogate_for
    from repro.surrogate.registry import SurrogateUnavailable

    try:
        surr = surrogate_for(sc)
    except SurrogateUnavailable as exc:
        return False, str(exc)
    if surr.exact:
        return True, ""
    if table is None:
        return False, (
            f"{sc.describe()}: no calibration table — run "
            f"'repro calibrate --fidelity' to enable the "
            f"{sc.fidelity} tier for {surr.family!r}"
        )
    if table.stale:
        return False, (
            f"{sc.describe()}: calibration table is stale (model "
            f"constants or version changed since it was written); "
            f"re-run 'repro calibrate --fidelity'"
        )
    config = None if sc.machine is None else sc.machine.config
    if config is not None:
        # Zoo machines need their own permit: a bound measured on
        # Columbia sweeps does not transfer to different hardware.
        key = f"{surr.family}@{config}"
        entry = table.lookup(key, sc.fidelity)
        if entry is None:
            return False, (
                f"{sc.describe()}: family {surr.family!r} has no "
                f"calibrated {sc.fidelity} entry for machine "
                f"{config!r} — modeled surrogates need per-machine "
                f"calibration (re-run 'repro calibrate --fidelity' "
                f"with a sweep on that machine)"
            )
    else:
        key = surr.family
        entry = table.lookup(key, sc.fidelity)
        if entry is None:
            return False, (
                f"{sc.describe()}: family {surr.family!r} has no "
                f"calibrated {sc.fidelity} error entry"
            )
    if entry.rel_err > table.bound:
        return False, (
            f"{sc.describe()}: calibrated {sc.fidelity} error "
            f"{entry.rel_err:.3g} for {key!r} exceeds "
            f"the bound {table.bound:g}"
        )
    return True, ""
