"""Closed-form building blocks for modeled surrogates.

These are the *DES-matched* forms: where the generic
:class:`repro.netmodel.collectives.CollectiveModel` prices the
textbook algorithm (recursive-doubling allreduce in ceil(log2 P)
rounds), the functions here mirror what :mod:`repro.mpi.collectives`
actually executes (binomial reduce followed by binomial broadcast —
twice the rounds), so the surrogate's residual error against the DES
is contention and scheduling, not algorithm mismatch.  Counters
(message/byte totals) delegate to the PR 1 closed forms in
:mod:`repro.mpi.collectives`, which the DES matches *exactly* — the
parity suite pins that claim.
"""

from __future__ import annotations

import math

from repro.machine.placement import Placement
from repro.mpi.collectives import expected_messages, expected_volume
from repro.netmodel.costs import NetworkModel
from repro.sim.rng import make_rng

__all__ = [
    "expected_messages",
    "expected_volume",
    "harmonic",
    "noise_amplification",
    "noisy_max_factor",
    "reduce_broadcast_time",
]


def _rounds(p: int) -> int:
    return math.ceil(math.log2(p)) if p > 1 else 0


def reduce_broadcast_time(placement: Placement, nbytes: float) -> float:
    """Analytic elapsed time of the DES allreduce algorithm.

    :func:`repro.mpi.collectives.allreduce` is a binomial-tree reduce
    into rank 0 followed by a binomial-tree broadcast — the critical
    path crosses ``2 * ceil(log2 P)`` tree levels, each one message
    deep.  Per-level cost is the placement's mean LogGP message time.
    """
    p = placement.n_ranks
    if p <= 1:
        return 0.0
    stats = NetworkModel(placement).stats()
    per_round = stats.mean_latency + nbytes / stats.mean_bandwidth
    return 2.0 * _rounds(p) * per_round


def harmonic(n: int) -> float:
    """The n-th harmonic number ``H_n = sum(1/k, k=1..n)``."""
    return sum(1.0 / k for k in range(1, n + 1))


def noise_amplification(p: int, noise: float) -> float:
    """Expected slowdown of a barrier-synchronized unit compute step
    when every rank's compute is stretched by ``1 + Exp(noise)``.

    The step finishes when the *slowest* rank does; the expected
    maximum of ``p`` iid Exp(noise) draws is ``noise * H_p``, so the
    amplification is ``1 + noise * H_p`` — the closed form behind the
    paper-scale observation that fixed per-rank interference costs
    more the wider the job.
    """
    if noise <= 0.0 or p < 1:
        return 1.0
    return 1.0 + noise * harmonic(p)


def noisy_max_factor(p: int, noise: float, seed: int) -> float:
    """One *executed* draw of the step-stretch factor: the max of
    ``p`` sampled ``1 + Exp(noise)`` stretches from the same seeded
    generator family the DES uses (:func:`repro.sim.rng.make_rng`).
    The hybrid tier runs this (compute executed) while the network
    term stays analytic."""
    if noise <= 0.0 or p < 1:
        return 1.0
    rng = make_rng(seed)
    return float((1.0 + rng.exponential(noise, size=p)).max())
