"""In-process evaluation of non-``full``-fidelity scenario cells.

:func:`evaluate_scenario` is the surrogate counterpart of
:func:`repro.run.runner.execute_scenario`: same fault-context
salting, same machine/placement materialization, same row
normalization — so a surrogate row is shape- and type-compatible
with a DES row and can share the ``ExperimentResult`` schema, the
cell cache, and the checkpoint journal.  It never pickles anything
and never touches a process pool: microseconds per cell, on the
caller's thread.
"""

from __future__ import annotations

from repro.run.scenario import Scenario
from repro.surrogate.registry import (
    SurrogateSpec,
    SurrogateUnavailable,
    resolve_surrogate,
)

__all__ = ["evaluate_scenario", "surrogate_for"]

#: Lazily bound ``repro.run.runner.execute_scenario`` (circular at
#: module load; a per-call import statement is measurable on a path
#: budgeted in single microseconds).
_execute_scenario = None


def surrogate_for(sc: Scenario) -> SurrogateSpec:
    """The surrogate spec serving ``sc`` at its fidelity, or raise.

    :class:`SurrogateUnavailable` means the cell *must* run full-DES
    — the Runner turns that into escalation or refusal per policy.
    """
    spec = resolve_surrogate(sc.workload)
    if spec is None:
        raise SurrogateUnavailable(
            f"{sc.describe()}: no surrogate declared for workload "
            f"{sc.workload!r}; only fidelity='full' can serve it"
        )
    if spec.fn is not None and sc.fidelity not in spec.modes:
        raise SurrogateUnavailable(
            f"{sc.describe()}: surrogate for {sc.workload!r} serves "
            f"{spec.modes}, not {sc.fidelity!r}"
        )
    return spec


def evaluate_scenario(sc: Scenario) -> tuple[tuple, ...]:
    """Evaluate one non-``full`` cell in-process; normalized rows.

    Exact passthroughs run the workload's own closed-form function —
    structurally identical to the full path (that *is* the exactness
    claim).  Modeled surrogates call their registered ``fn`` with the
    fidelity mode.  Either way the cell runs under its scenario's
    fault context, salted with the scenario key, exactly like
    ``execute_scenario`` — the analytic network model prices degraded
    paths through the same ambient injector.
    """
    spec = surrogate_for(sc)
    if spec.fn is None:
        # Exact passthrough: defer to the one canonical execution
        # path so machine building, fault salting and normalization
        # can never drift from the full tier.
        global _execute_scenario
        execute_scenario = _execute_scenario
        if execute_scenario is None:
            from repro.run.runner import execute_scenario

            _execute_scenario = execute_scenario
        return execute_scenario(sc)

    from repro.faults.context import use_faults
    from repro.run.runner import _normalize_rows

    kwargs = sc.kwargs()
    faults = sc.faults
    with use_faults(faults, salt=sc.key() if faults else ""):
        if sc.machine is not None:
            cluster = sc.machine.build()
            if sc.placement is not None:
                kwargs["placement"] = sc.placement.build(cluster)
            else:
                kwargs["cluster"] = cluster
        return _normalize_rows(sc, spec.fn(sc.fidelity, **kwargs))
