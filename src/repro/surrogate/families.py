"""Surrogate declarations for every registered workload.

This is the one auditable list answering "what happens when I ask
for ``fidelity="analytic"``?" per workload:

* Every workload below except ``ext_noise.cell`` is an **exact
  passthrough**: its cell function is already a closed-form model
  (MZ timing model, bandwidth/latency arithmetic, capacity planning)
  with no discrete-event simulation anywhere in the call tree, so
  the analytic tier runs the very same function in-process and the
  rows are byte-identical to the full path.  The calibration job
  *verifies* that (rel. error must be 0.0) rather than trusting this
  comment.
* ``ext_noise.cell`` is the only DES-backed workload; it gets a real
  modeled surrogate (below) whose error the calibration job measures
  and bounds.

A workload id absent from this module has no fast path: the Runner
escalates (or refuses) non-``full`` requests for it.
"""

from __future__ import annotations

from functools import lru_cache

from repro.surrogate.models import (
    noise_amplification,
    noisy_max_factor,
    reduce_broadcast_time,
)
from repro.surrogate.registry import register_exact, surrogate

__all__ = ["CLOSED_FORM_WORKLOADS"]

#: Workload ids whose cell functions are closed-form end to end.
CLOSED_FORM_WORKLOADS = (
    "table1.rows",
    "sec411.cell",
    "fig5.cell",
    "fig6.cell",
    "table2.cell",
    "table3.cell",
    "sec42.cell",
    "fig7.cell",
    "fig8.cell",
    "table4.ins3d",
    "table4.overflow",
    "fig9.cell",
    "fig10.cell",
    "fig11.cell",
    "table5.cell",
    "table6.cell",
    "ablation.variant_pair",
    "ablation.grouping",
    "ablation.ibcards",
    "ablation.shmem",
    "ext_class_f.capacity",
    "ext_class_f.run",
    "ext_ins3d.single",
    "ext_ins3d.multi",
)

for _wid in CLOSED_FORM_WORKLOADS:
    register_exact(_wid)


@lru_cache(maxsize=None)
def _noise_placement(ranks: int):
    """One placement instance per rank count: placements are
    immutable for modeling purposes, and reusing the instance keeps
    its generation stable so the network model's route-table cache
    (keyed on generation × fault-injector serial) actually hits —
    the difference between a microsecond and a millisecond eval."""
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement

    return Placement(single_node(NodeType.BX2B), n_ranks=ranks)


@surrogate("ext_noise.cell", modes=("analytic", "hybrid"))
def _ext_noise_surrogate(
    mode: str, ranks: int, noise: float, n_seeds: int
) -> list[tuple]:
    """Surrogate for the OS-noise amplification cell.

    The DES version runs ``compute(1e-3)`` + an 8-byte allreduce per
    rank count, quiet vs noisy, averaged over seeds.  Here:

    * network: :func:`reduce_broadcast_time` — the analytic critical
      path of the binomial reduce+broadcast the DES executes;
    * compute, ``analytic``: expected max-of-exponentials stretch
      ``1 + noise * H_p`` (no sampling at all);
    * compute, ``hybrid``: the stretch factors are *executed* — the
      same seeded draws the DES would make — while the network term
      stays analytic.

    Row schema matches the workload: one row of
    ``(ranks, quiet_ms, noisy_ms, slowdown)``.
    """
    base = 1e-3
    net = reduce_broadcast_time(_noise_placement(ranks), 8)
    quiet = base + net
    if mode == "analytic":
        noisy = base * noise_amplification(ranks, noise) + net
    else:
        stretches = (
            noisy_max_factor(ranks, noise, s) for s in range(n_seeds)
        )
        noisy = sum(base * f + net for f in stretches) / n_seeds
    return [(
        ranks, round(quiet * 1e3, 4), round(noisy * 1e3, 4),
        round(noisy / quiet, 2),
    )]
