"""Collective operations executed message-by-message on the DES.

These mirror the algorithms priced analytically in
:mod:`repro.netmodel.collectives`; here they actually run as message
exchanges between simulated ranks, so skew, contention and partner
waiting emerge from the simulation.  All are generators to be driven
with ``yield from`` inside a rank program.
"""

from __future__ import annotations

import math
from typing import Any, Generator

import numpy as np

from repro.errors import CommunicationError
from repro.mpi.comm import MPIComm, Message
from repro.sim.process import SimEvent

__all__ = [
    "barrier",
    "broadcast",
    "allreduce",
    "alltoall",
    "allgather",
    "reduce",
    "gather",
    "scatter",
    "scan",
    "expected_messages",
    "expected_volume",
]

def expected_messages(op: str, p: int) -> int:
    """Messages the DES generator for ``op`` sends at ``p`` ranks.

    Closed forms evaluated with numpy over rank/round arrays — the
    bulk counterpart to running the generator, used to cost collective
    phases (and cross-check DES message counters) without simulating
    them.  Matches ``MPIWorld.messages_sent`` after the corresponding
    collective exactly.
    """
    if p < 1:
        raise CommunicationError(f"need >= 1 rank, got {p}")
    if p == 1:
        return 0
    ranks = np.arange(p)
    rounds = max(1, math.ceil(math.log2(p)))
    if op == "barrier":
        # every rank sends one message per dissemination round
        return int(ranks.size) * rounds
    if op in ("broadcast", "reduce", "gather", "scatter"):
        # tree/star: every rank but the root sends (or is sent) once
        return int(np.count_nonzero(ranks > 0))
    if op == "allreduce":
        # reduce phase (each non-root folds in once) + tree broadcast
        return 2 * int(np.count_nonzero(ranks > 0))
    if op in ("alltoall", "allgather"):
        # every rank sends to / through every other rank
        return int(ranks.size) * (int(ranks.size) - 1)
    if op == "scan":
        # round at distance d: ranks with r + d < p send
        distances = 2 ** np.arange(rounds)
        return int(np.maximum(p - distances, 0).sum())
    raise CommunicationError(f"unknown collective op {op!r}")


def expected_volume(op: str, p: int, nbytes: float) -> float:
    """Total bytes ``op`` moves at ``p`` ranks (``nbytes`` per message)."""
    return expected_messages(op, p) * float(nbytes)


_BARRIER_TAG = 0x7FF0
_BCAST_TAG = 0x7FF1
_ALLREDUCE_TAG = 0x7FF2
_ALLTOALL_TAG = 0x7FF3
_ALLGATHER_TAG = 0x7FF4
_REDUCE_TAG = 0x7FF5
_GATHER_TAG = 0x7FF6
_SCATTER_TAG = 0x7FF7
_SCAN_TAG = 0x7FF8


def _barrier_impl(comm: MPIComm) -> Generator[SimEvent, Any, None]:
    """Dissemination barrier: log2(P) rounds of 1-byte exchanges."""
    p, r = comm.size, comm.rank
    if p == 1:
        return
    distance = 1
    round_no = 0
    while distance < p:
        dest = (r + distance) % p
        src = (r - distance) % p
        comm.isend(dest, 1, tag=_BARRIER_TAG + round_no * 16)
        yield comm.irecv(src, tag=_BARRIER_TAG + round_no * 16)
        distance *= 2
        round_no += 1


def _broadcast_impl(
    comm: MPIComm, nbytes: float, root: int = 0, payload: Any = None
) -> Generator[SimEvent, Any, Any]:
    """Binomial-tree broadcast; returns the payload on every rank."""
    p = comm.size
    if p == 1:
        return payload
    # Rank relative to root.
    vrank = (comm.rank - root) % p
    mask = 1
    # Receive phase: wait for the message from the parent.
    if vrank != 0:
        while mask < p:
            if vrank & mask:
                src = (vrank - mask + root) % p
                msg: Message = yield comm.irecv(src, tag=_BCAST_TAG)
                payload = msg.payload
                break
            mask *= 2
        mask //= 2  # children live below the received bit
    else:
        while mask < p:
            mask *= 2
        mask //= 2
    # Send phase: forward to children.
    while mask >= 1:
        if vrank + mask < p and not (vrank & (mask - 1)) and not (vrank & mask):
            dest = (vrank + mask + root) % p
            comm.isend(dest, nbytes, tag=_BCAST_TAG, payload=payload)
        mask //= 2
    return payload


def _allreduce_impl(
    comm: MPIComm, nbytes: float, value: float = 0.0
) -> Generator[SimEvent, Any, float]:
    """Allreduce (sum) of a scalar via binomial-tree reduce to rank 0
    followed by a binomial-tree broadcast; message size ``nbytes``
    models the real vector length being reduced.

    2*ceil(log2 P) rounds — the textbook cost the analytic model in
    :mod:`repro.netmodel.collectives` charges within a factor of two.
    """
    p, r = comm.size, comm.rank
    acc = float(value)
    if p == 1:
        return acc
    # Reduce phase: children fold into parents by clearing bits LSB-first.
    mask = 1
    while mask < p:
        if r & mask:
            comm.isend(r & ~mask, nbytes, tag=_ALLREDUCE_TAG, payload=acc)
            break
        partner = r | mask
        if partner < p:
            msg: Message = yield comm.irecv(partner, tag=_ALLREDUCE_TAG)
            acc += float(msg.payload)
        mask *= 2
    # Broadcast phase reuses the tree broadcast.
    result = yield from _broadcast_impl(comm, nbytes, root=0, payload=acc)
    return float(result)


def _alltoall_impl(
    comm: MPIComm, nbytes_per_pair: float
) -> Generator[SimEvent, Any, None]:
    """Pairwise-exchange all-to-all (timing only, no payloads)."""
    p, r = comm.size, comm.rank
    if p == 1:
        return
    for step in range(1, p):
        dest = (r + step) % p
        src = (r - step) % p
        comm.isend(dest, nbytes_per_pair, tag=_ALLTOALL_TAG + step)
        yield comm.irecv(src, tag=_ALLTOALL_TAG + step)


def _allgather_impl(
    comm: MPIComm, nbytes_per_rank: float, value: Any = None
) -> Generator[SimEvent, Any, list]:
    """Ring allgather; returns the list of every rank's value."""
    p, r = comm.size, comm.rank
    gathered: list = [None] * p
    gathered[r] = value
    if p == 1:
        return gathered
    right = (r + 1) % p
    left = (r - 1) % p
    carry_rank, carry_value = r, value
    for _ in range(p - 1):
        comm.isend(
            right, nbytes_per_rank, tag=_ALLGATHER_TAG,
            payload=(carry_rank, carry_value),
        )
        msg = yield comm.irecv(left, tag=_ALLGATHER_TAG)
        carry_rank, carry_value = msg.payload
        gathered[carry_rank] = carry_value
    return gathered


def _reduce_impl(
    comm: MPIComm, nbytes: float, value: float = 0.0, root: int = 0
) -> Generator[SimEvent, Any, float | None]:
    """Binomial-tree reduction (sum) to ``root``.

    Returns the total on the root, ``None`` elsewhere.
    """
    p = comm.size
    acc = float(value)
    if p == 1:
        return acc
    # Work in root-relative virtual ranks so any root works.
    vrank = (comm.rank - root) % p
    mask = 1
    while mask < p:
        if vrank & mask:
            dest = ((vrank & ~mask) + root) % p
            comm.isend(dest, nbytes, tag=_REDUCE_TAG, payload=acc)
            return None
        partner = vrank | mask
        if partner < p:
            msg: Message = yield comm.irecv(
                (partner + root) % p, tag=_REDUCE_TAG
            )
            acc += float(msg.payload)
        mask *= 2
    return acc


def _gather_impl(
    comm: MPIComm, nbytes_per_rank: float, value: Any = None, root: int = 0
) -> Generator[SimEvent, Any, list | None]:
    """Direct gather to ``root`` (each rank one message).

    Returns the rank-ordered list on the root, ``None`` elsewhere.
    """
    p, r = comm.size, comm.rank
    if p == 1:
        return [value]
    if r == root:
        out: list = [None] * p
        out[root] = value
        for _ in range(p - 1):
            msg: Message = yield comm.irecv(tag=_GATHER_TAG)
            out[msg.source] = msg.payload
        return out
    comm.isend(root, nbytes_per_rank, tag=_GATHER_TAG, payload=value)
    return None


def _scatter_impl(
    comm: MPIComm, nbytes_per_rank: float, values: list | None = None,
    root: int = 0,
) -> Generator[SimEvent, Any, Any]:
    """Direct scatter from ``root``; returns this rank's element."""
    p, r = comm.size, comm.rank
    if p == 1:
        if values is None or len(values) != 1:
            raise CommunicationError("scatter needs one value per rank")
        return values[0]
    if r == root:
        if values is None or len(values) != p:
            raise CommunicationError(
                f"scatter root needs {p} values, got "
                f"{0 if values is None else len(values)}"
            )
        for dest in range(p):
            if dest != root:
                comm.isend(dest, nbytes_per_rank, tag=_SCATTER_TAG,
                           payload=values[dest])
        return values[root]
    msg: Message = yield comm.irecv(root, tag=_SCATTER_TAG)
    return msg.payload


def _scan_impl(
    comm: MPIComm, nbytes: float, value: float = 0.0
) -> Generator[SimEvent, Any, float]:
    """Inclusive prefix sum over ranks (Hillis-Steele doubling)."""
    p, r = comm.size, comm.rank
    acc = float(value)
    if p == 1:
        return acc
    distance = 1
    round_no = 0
    while distance < p:
        tag = _SCAN_TAG + round_no
        if r + distance < p:
            comm.isend(r + distance, nbytes, tag=tag, payload=acc)
        if r - distance >= 0:
            msg: Message = yield comm.irecv(r - distance, tag=tag)
            acc += float(msg.payload)
        distance *= 2
        round_no += 1
    return acc

# -- tracing dispatch ---------------------------------------------------------
#
# The public collectives are plain functions returning the underlying
# generator: when tracing is off they add zero generator frames to the
# hot path (``yield from barrier(comm)`` drives ``_barrier_impl``
# directly); when the world holds a tracer, the generator is wrapped
# once so the whole operation appears as one ``collective`` span on
# the rank's main flow (nested collectives — allreduce's broadcast
# phase stays inside the impl, so one operation is one span).


def _traced(obs, op: str, comm: MPIComm, gen, args: dict | None = None):
    handle = obs.begin(comm.rank, "collective", op, comm._sim.now, args=args)
    try:
        result = yield from gen
    finally:
        obs.end(handle, comm._sim.now)
    return result


def barrier(comm: MPIComm) -> Generator[SimEvent, Any, None]:
    """Dissemination barrier: log2(P) rounds of 1-byte exchanges."""
    gen = _barrier_impl(comm)
    obs = comm.world._obs
    return gen if obs is None else _traced(obs, "barrier", comm, gen)


def broadcast(
    comm: MPIComm, nbytes: float, root: int = 0, payload: Any = None
) -> Generator[SimEvent, Any, Any]:
    """Binomial-tree broadcast; returns the payload on every rank."""
    gen = _broadcast_impl(comm, nbytes, root, payload)
    obs = comm.world._obs
    return gen if obs is None else _traced(
        obs, "broadcast", comm, gen, {"bytes": nbytes, "root": root})


def allreduce(
    comm: MPIComm, nbytes: float, value: float = 0.0
) -> Generator[SimEvent, Any, float]:
    """Allreduce (sum): binomial-tree reduce + binomial-tree broadcast."""
    gen = _allreduce_impl(comm, nbytes, value)
    obs = comm.world._obs
    return gen if obs is None else _traced(
        obs, "allreduce", comm, gen, {"bytes": nbytes})


def alltoall(
    comm: MPIComm, nbytes_per_pair: float
) -> Generator[SimEvent, Any, None]:
    """Pairwise-exchange all-to-all (timing only, no payloads)."""
    gen = _alltoall_impl(comm, nbytes_per_pair)
    obs = comm.world._obs
    return gen if obs is None else _traced(
        obs, "alltoall", comm, gen, {"bytes": nbytes_per_pair})


def allgather(
    comm: MPIComm, nbytes_per_rank: float, value: Any = None
) -> Generator[SimEvent, Any, list]:
    """Ring allgather; returns the list of every rank's value."""
    gen = _allgather_impl(comm, nbytes_per_rank, value)
    obs = comm.world._obs
    return gen if obs is None else _traced(
        obs, "allgather", comm, gen, {"bytes": nbytes_per_rank})


def reduce(
    comm: MPIComm, nbytes: float, value: float = 0.0, root: int = 0
) -> Generator[SimEvent, Any, float | None]:
    """Binomial-tree reduction (sum) to ``root``."""
    gen = _reduce_impl(comm, nbytes, value, root)
    obs = comm.world._obs
    return gen if obs is None else _traced(
        obs, "reduce", comm, gen, {"bytes": nbytes, "root": root})


def gather(
    comm: MPIComm, nbytes_per_rank: float, value: Any = None, root: int = 0
) -> Generator[SimEvent, Any, list | None]:
    """Direct gather to ``root`` (each rank one message)."""
    gen = _gather_impl(comm, nbytes_per_rank, value, root)
    obs = comm.world._obs
    return gen if obs is None else _traced(
        obs, "gather", comm, gen, {"bytes": nbytes_per_rank, "root": root})


def scatter(
    comm: MPIComm, nbytes_per_rank: float, values: list | None = None,
    root: int = 0,
) -> Generator[SimEvent, Any, Any]:
    """Direct scatter from ``root``; returns this rank's element."""
    gen = _scatter_impl(comm, nbytes_per_rank, values, root)
    obs = comm.world._obs
    return gen if obs is None else _traced(
        obs, "scatter", comm, gen, {"bytes": nbytes_per_rank, "root": root})


def scan(
    comm: MPIComm, nbytes: float, value: float = 0.0
) -> Generator[SimEvent, Any, float]:
    """Inclusive prefix sum over ranks (Hillis-Steele doubling)."""
    gen = _scan_impl(comm, nbytes, value)
    obs = comm.world._obs
    return gen if obs is None else _traced(
        obs, "scan", comm, gen, {"bytes": nbytes})
