"""Run a simulated MPI job.

``run_mpi`` spawns one simulated process per rank, each executing the
user's rank program (a generator taking an :class:`MPIComm`), runs the
simulator to completion and reports per-rank finish times, return
values and aggregate message statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.machine.placement import Placement
from repro.mpi.comm import MPIComm, MPIWorld
from repro.netmodel.costs import NetworkModel
from repro.sim.engine import Simulator
from repro.sim.process import SimEvent, SimProcess

__all__ = ["MPIJobResult", "run_mpi"]

RankProgram = Callable[[MPIComm], Generator[SimEvent, Any, Any]]


@dataclass(frozen=True)
class MPIJobResult:
    """Outcome of one simulated MPI job."""

    #: Simulated wall-clock: when the slowest rank finished.
    elapsed: float
    #: Per-rank completion times.
    finish_times: tuple[float, ...]
    #: Per-rank return values of the rank programs.
    values: tuple[Any, ...]
    #: Total messages and bytes injected by all ranks.
    messages_sent: int
    bytes_sent: float

    @property
    def max_skew(self) -> float:
        """Completion-time spread between fastest and slowest rank."""
        return max(self.finish_times) - min(self.finish_times)


def run_mpi(
    placement: Placement,
    rank_program: RankProgram,
    network: NetworkModel | None = None,
    brick_contention: bool = False,
    os_noise: float = 0.0,
    noise_seed: int = 0,
    tracer: "object | None" = None,
) -> MPIJobResult:
    """Execute ``rank_program`` on every rank of ``placement``.

    The program is a generator function ``def prog(comm): ...`` using
    ``yield from comm.send/recv/compute`` and the collectives in
    :mod:`repro.mpi.collectives`.  Its return value is collected per
    rank.  ``brick_contention=True`` makes all CPUs of a C-Brick
    share one injection link; ``os_noise > 0`` stretches compute
    segments by random system interference.

    ``tracer`` — an :class:`repro.obs.spans.Tracer` recording full
    spans/counters; defaults to the ambient tracer installed by
    :func:`repro.obs.spans.use_tracer` (``None`` = tracing off).
    """
    sim = Simulator()
    net = network if network is not None else NetworkModel(placement)
    world = MPIWorld(
        sim, net, brick_contention=brick_contention,
        os_noise=os_noise, noise_seed=noise_seed,
    )
    if tracer is not None:
        world._obs = tracer if tracer.enabled else None
    obs = world._obs  # explicit arg or the ambient tracer from __init__
    if obs is not None:
        obs.attach_engine(sim)

    finish_times = [0.0] * world.size

    def wrap(rank: int) -> Generator[SimEvent, Any, Any]:
        value = yield from rank_program(world.comm(rank))
        finish_times[rank] = sim.now
        return value

    procs = [
        SimProcess(sim, wrap(rank), name=f"rank{rank}")
        for rank in range(world.size)
    ]
    sim.run()
    return MPIJobResult(
        elapsed=max(finish_times),
        finish_times=tuple(finish_times),
        values=tuple(proc.value for proc in procs),
        messages_sent=world.messages_sent,
        bytes_sent=world.bytes_sent,
    )
