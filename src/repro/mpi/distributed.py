"""Data-parallel programs executed on the simulated MPI.

The DES MPI carries real payloads, so genuinely distributed
computations can run on it: each simulated rank owns a slice of the
data, exchanges halos/ghosts as messages, and computes with NumPy.
Results must match the serial computation exactly — which makes these
programs end-to-end integration tests of the whole stack (machine
model -> network costs -> DES -> MPI semantics -> numerics), while
their simulated wall-clock exercises the timing path.

* :func:`run_distributed_diffusion` — 1D-decomposed explicit heat
  equation with halo exchange;
* :func:`run_distributed_md_forces` — spatially decomposed
  Lennard-Jones force computation with ghost-atom exchange (the
  paper's §3.3 parallelization), gathered at rank 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.md.forces import lj_forces_naive
from repro.apps.md.lattice import fcc_lattice
from repro.errors import ConfigurationError
from repro.machine.placement import Placement
from repro.mpi.comm import MPIComm
from repro.mpi.job import MPIJobResult, run_mpi
from repro.sim.rng import make_rng

__all__ = [
    "DistributedResult",
    "run_distributed_diffusion",
    "run_distributed_md_forces",
    "run_distributed_ft",
]

#: Modeled compute throughput for the simulated time accounting
#: (flop/s per rank); only affects simulated timing, not the numerics.
_MODEL_FLOPS = 6.0e8


@dataclass(frozen=True)
class DistributedResult:
    """A distributed computation's answer plus its simulated timing."""

    value: np.ndarray
    job: MPIJobResult

    @property
    def simulated_seconds(self) -> float:
        return self.job.elapsed


def run_distributed_diffusion(
    placement: Placement,
    n: int = 256,
    steps: int = 20,
    sigma: float = 0.25,
    seed: int | None = None,
) -> DistributedResult:
    """Explicit 1D heat equation, block-decomposed across ranks.

    Each step every rank exchanges its edge values with both
    neighbors (Dirichlet-zero at the physical ends), updates its
    block, and charges the simulated compute time.  Rank 0 gathers
    the final field.
    """
    p = placement.n_ranks
    if n < 2 * p:
        raise ConfigurationError(f"{n} cells cannot feed {p} ranks")
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1: {steps}")
    rng = make_rng(seed)
    u0 = rng.standard_normal(n)
    bounds = np.linspace(0, n, p + 1).astype(int)

    def program(comm: MPIComm):
        r = comm.rank
        lo, hi = bounds[r], bounds[r + 1]
        block = u0[lo:hi].copy()
        for step in range(steps):
            left_ghost = 0.0
            right_ghost = 0.0
            if r > 0:
                comm.isend(r - 1, 8, tag=step, payload=float(block[0]))
            if r < p - 1:
                comm.isend(r + 1, 8, tag=step, payload=float(block[-1]))
            if r > 0:
                msg = yield from comm.recv(r - 1, tag=step)
                left_ghost = msg.payload
            if r < p - 1:
                msg = yield from comm.recv(r + 1, tag=step)
                right_ghost = msg.payload
            padded = np.concatenate(([left_ghost], block, [right_ghost]))
            block = block + sigma * (padded[:-2] - 2 * block + padded[2:])
            yield comm.compute(5.0 * len(block) / _MODEL_FLOPS)
        # Gather at rank 0.
        if r == 0:
            field = np.zeros(n)
            field[lo:hi] = block
            for _ in range(p - 1):
                msg = yield from comm.recv(tag=steps + 1)
                src_lo, chunk = msg.payload
                field[src_lo:src_lo + len(chunk)] = chunk
            return field
        comm.isend(0, 8.0 * len(block), tag=steps + 1, payload=(int(lo), block))
        return None

    job = run_mpi(placement, program)
    field = job.values[0]
    return DistributedResult(value=field, job=job)


def serial_diffusion(n: int, steps: int, sigma: float = 0.25,
                     seed: int | None = None) -> np.ndarray:
    """The undistributed reference for :func:`run_distributed_diffusion`."""
    rng = make_rng(seed)
    u = rng.standard_normal(n)
    for _ in range(steps):
        padded = np.concatenate(([0.0], u, [0.0]))
        u = u + sigma * (padded[:-2] - 2 * u + padded[2:])
    return u


def run_distributed_md_forces(
    placement: Placement,
    cells: int = 3,
    rcut: float = 2.0,
    seed: int | None = None,
) -> DistributedResult:
    """Spatially decomposed LJ force computation (paper §3.3).

    Atoms are assigned to ranks by x-slab.  Each rank sends its atoms
    within ``rcut`` of a slab face to the owning neighbor (periodic),
    computes LJ forces for its own atoms from (own + ghost) positions,
    and rank 0 gathers the global force array.
    """
    p = placement.n_ranks
    positions, box = fcc_lattice(cells)
    n_atoms = len(positions)
    if p > max(1, int(box / rcut)):
        raise ConfigurationError(
            f"{p} slabs of width >= rcut do not fit in a box of {box:.2f}"
        )
    slab = box / p
    owner = np.minimum((positions[:, 0] / slab).astype(int), p - 1)

    def program(comm: MPIComm):
        r = comm.rank
        mine = np.where(owner == r)[0]
        my_pos = positions[mine]
        if p == 1:
            forces, _ = lj_forces_naive(my_pos, box, rcut)
            out = np.zeros_like(positions)
            out[mine] = forces
            return out
        # Ghost export: atoms within rcut of each slab face go to the
        # periodic neighbor on that side.
        lo_edge = r * slab
        hi_edge = (r + 1) * slab
        to_left = my_pos[my_pos[:, 0] - lo_edge <= rcut]
        to_right = my_pos[hi_edge - my_pos[:, 0] <= rcut]
        left, right = (r - 1) % p, (r + 1) % p
        comm.isend(left, to_left.nbytes, tag=1, payload=to_left)
        comm.isend(right, to_right.nbytes, tag=2, payload=to_right)
        ghosts = []
        msg = yield from comm.recv(right, tag=1)
        ghosts.append(msg.payload)
        msg = yield from comm.recv(left, tag=2)
        ghosts.append(msg.payload)
        if p == 2:
            # Both faces border the same neighbor; drop duplicates.
            combined = np.unique(np.vstack(ghosts), axis=0)
        else:
            combined = np.vstack(ghosts)
        local = np.vstack([my_pos, combined])
        f_local, _ = lj_forces_naive(local, box, rcut)
        yield comm.compute(45.0 * len(local) ** 2 / _MODEL_FLOPS)
        my_forces = f_local[: len(my_pos)]
        if r == 0:
            out = np.zeros_like(positions)
            out[mine] = my_forces
            for _ in range(p - 1):
                msg = yield from comm.recv(tag=3)
                idx, forces = msg.payload
                out[idx] = forces
            return out
        comm.isend(0, my_forces.nbytes, tag=3, payload=(mine, my_forces))
        return None

    job = run_mpi(placement, program)
    return DistributedResult(value=job.values[0], job=job)


def run_distributed_ft(
    placement: Placement,
    shape: tuple[int, int, int] = (16, 8, 4),
    seed: int | None = None,
) -> DistributedResult:
    """Slab-decomposed 3D FFT with a payload-carrying all-to-all.

    The NPB FT communication pattern executed for real on the DES
    (paper §3.2: "FT tests all-to-all communication"): each rank owns
    ``nx/p`` x-planes, 2D-FFTs them locally, exchanges transpose
    blocks with every other rank as actual array payloads, then
    finishes with 1D FFTs along x on its y-columns.  Rank 0 gathers
    the spectral field, which must equal ``numpy.fft.fftn`` of the
    input exactly.
    """
    p = placement.n_ranks
    nx, ny, nz = shape
    if nx % p != 0 or ny % p != 0:
        raise ConfigurationError(
            f"shape {shape} not divisible by {p} ranks in x and y"
        )
    rng = make_rng(seed)
    u = rng.random(shape) + 1j * rng.random(shape)
    sx = nx // p  # x-planes per rank (input slabs)
    sy = ny // p  # y-columns per rank (output pencils)

    def program(comm: MPIComm):
        r = comm.rank
        slab = u[r * sx:(r + 1) * sx]
        partial = np.fft.fftn(slab, axes=(1, 2))
        yield comm.compute(5.0 * slab.size * np.log2(max(2, ny * nz)) / _MODEL_FLOPS)
        # All-to-all transpose: send rank q the y-columns it owns.
        for q in range(p):
            block = partial[:, q * sy:(q + 1) * sy]
            if q == r:
                my_block = block
            else:
                comm.isend(q, block.nbytes, tag=7, payload=(r, block))
        columns = np.empty((nx, sy, nz), dtype=complex)
        columns[r * sx:(r + 1) * sx] = my_block
        for _ in range(p - 1):
            msg = yield from comm.recv(tag=7)
            src, block = msg.payload
            columns[src * sx:(src + 1) * sx] = block
        pencil = np.fft.fft(columns, axis=0)
        yield comm.compute(5.0 * pencil.size * np.log2(max(2, nx)) / _MODEL_FLOPS)
        # Gather the spectral field at rank 0.
        if r == 0:
            out = np.empty(shape, dtype=complex)
            out[:, :sy] = pencil
            for _ in range(p - 1):
                msg = yield from comm.recv(tag=8)
                src, block = msg.payload
                out[:, src * sy:(src + 1) * sy] = block
            return out
        comm.isend(0, pencil.nbytes, tag=8, payload=(r, pencil))
        return None

    job = run_mpi(placement, program)
    return DistributedResult(value=job.values[0], job=job)
