"""The simulated MPI communicator.

Timing model per message (LogGP-flavored):

* the sender is occupied for the injection time ``size / bandwidth``
  (its ``send`` completes then — eager protocol);
* the message lands in the receiver's mailbox at
  ``latency + size / bandwidth`` after the send started;
* a ``recv`` posted before arrival blocks until arrival; a ``recv``
  posted after arrival returns at the posting time (plus a small
  matching overhead folded into latency already).

Path latency/bandwidth come from :class:`~repro.netmodel.costs.NetworkModel`,
i.e. from the machine model and the placement.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator, NamedTuple

from repro.errors import CommunicationError
from repro.faults.context import current_injector
from repro.faults.injector import _CHUNK
from repro.netmodel.costs import NetworkModel
from repro.obs.spans import current_tracer
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.process import SimEvent, Timeout

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "MPIWorld", "MPIComm"]

ANY_SOURCE = -1
ANY_TAG = -1

#: ``tuple.__new__`` bound once: building a NamedTuple through its
#: generated ``__new__`` costs an extra Python frame per message.
_msg_new = tuple.__new__
#: pre-bound allocator for the per-message completion event — skips
#: the ``Timeout.__new__`` attribute lookup on every isend.
_timeout_new = Timeout.__new__


class Message(NamedTuple):
    """An in-flight or delivered simulated MPI message.

    A named tuple rather than a dataclass: one is allocated per
    simulated message, and tuple construction is several times
    cheaper than a frozen dataclass ``__init__``.
    """

    source: int
    dest: int
    tag: int
    nbytes: float
    payload: Any = None


class MPIWorld:
    """Shared state of one simulated MPI job (all ranks).

    ``brick_contention=True`` switches injection serialization from
    per-rank to per-C-Brick: all CPUs of a brick share the brick's
    NUMAlink link, so their concurrent sends queue behind each other —
    the more physical (and more pessimistic) model, used to study
    dense patterns.
    """

    def __init__(
        self,
        sim: Simulator,
        network: NetworkModel,
        brick_contention: bool = False,
        os_noise: float = 0.0,
        noise_seed: int = 0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.size = network.placement.n_ranks
        self.mailboxes = [Channel(sim) for _ in range(self.size)]
        self.brick_contention = brick_contention
        #: OS-noise amplitude: each compute segment is stretched by an
        #: exponentially distributed factor with this mean (0 = quiet
        #: machine).  Models the system-software interference behind
        #: the §4.6.2 boot-cpuset observation: at scale, collectives
        #: wait for whichever rank the OS delayed this time.
        self.os_noise = os_noise
        if os_noise < 0:
            raise CommunicationError(f"negative os_noise: {os_noise}")
        self._noise_rng = None
        if os_noise > 0:
            from repro.sim.rng import make_rng

            self._noise_rng = make_rng(noise_seed)
        self._inject_keys = [
            self._injection_key(rank) for rank in range(self.size)
        ]
        #: injection serialization slots: one per rank, or one per
        #: (node, brick) when brick contention is on.  Pre-populated so
        #: the per-message lookup is a plain subscript.
        self.inject_busy_until: dict = {
            key: 0.0 for key in self._inject_keys
        }
        #: per-rank handles built by :meth:`comm`; the message
        #: counters live on them (slot ints beat instance-dict
        #: read-modify-writes on the per-send path) and are summed on
        #: demand by the ``messages_sent``/``bytes_sent`` properties.
        self._comms: list[MPIComm] = []
        #: optional :class:`repro.obs.spans.Tracer` recording spans,
        #: message edges and counters.  Defaults to the ambient tracer
        #: (:func:`repro.obs.spans.use_tracer`), so per-cell trace
        #: capture needs no signature changes anywhere; ``None`` keeps
        #: every per-message check a plain load + branch.  A disabled
        #: tracer (NullTracer) normalizes to ``None`` so "off" is off.
        obs = current_tracer()
        self._obs = obs if (obs is not None and obs.enabled) else None
        #: optional :class:`repro.faults.FaultInjector` acting on the
        #: DES per-message/compute path (drops, flaps, stragglers,
        #: jitter).  Same normalization discipline as the tracer: an
        #: injector with no DES-relevant faults becomes ``None``, so
        #: the healthy hot path pays one load + branch.  Static path
        #: faults don't need this hook — they arrive pre-applied in
        #: the NetworkModel's route table.
        faults = current_injector()
        self._faults = (
            faults
            if faults is not None and faults.has_des_faults
            else None
        )

    def link_info(self, rank_a: int, rank_b: int) -> tuple[str, int]:
        """``(link_class, router_hops)`` between two ranks' home CPUs.

        Classes: ``self`` (same rank), ``intra_brick``, ``intra_node``
        (crossing NUMAlink routers inside a node), ``inter_node``.
        InfiniBand crossings report 0 hops — the switch is not a
        NUMAlink router.
        """
        if rank_a == rank_b:
            return ("self", 0)
        placement = self.network.placement
        cluster = placement.cluster
        cpu_a = placement.cpu_of(rank_a)
        cpu_b = placement.cpu_of(rank_b)
        na = cluster.node_of(cpu_a)
        nb = cluster.node_of(cpu_b)
        if na != nb:
            if cluster.fabric == "numalink4":
                from repro.machine.router import tree_depth

                hops = tree_depth(cluster.nodes[na].n_bricks) + tree_depth(
                    cluster.nodes[nb].n_bricks
                )
            else:
                hops = 0
            return ("inter_node", hops)
        node = cluster.nodes[na]
        hops = node.hops(cluster.local_cpu(cpu_a), cluster.local_cpu(cpu_b))
        return ("intra_brick" if hops == 0 else "intra_node", hops)

    def _injection_key(self, rank: int):
        if not self.brick_contention:
            return rank
        placement = self.network.placement
        cluster = placement.cluster
        cpu = placement.cpu_of(rank)
        node_idx = cluster.node_of(cpu)
        node = cluster.nodes[node_idx]
        return ("brick", node_idx, node.brick_of(cluster.local_cpu(cpu)))

    @property
    def messages_sent(self) -> int:
        """Total messages sent (for tests and IB connection accounting)."""
        return sum(c._msgs for c in self._comms)

    @property
    def bytes_sent(self) -> float:
        """Total bytes sent across all ranks."""
        return sum(c._nbytes for c in self._comms)

    def comm(self, rank: int) -> "MPIComm":
        """Build the per-rank handle, picking the implementation once.

        The injector consult happens *here*, not per event: a world
        with DES faults hands out :class:`_FaultedMPIComm` (whose
        ``isend``/``compute`` carry the fault machinery), a healthy
        world hands out plain :class:`MPIComm` — so the healthy hot
        path contains no fault branches at all.
        """
        if self._faults is not None:
            return _FaultedMPIComm(self, rank)
        return MPIComm(self, rank)


class MPIComm:
    """Per-rank MPI handle passed to simulated rank programs."""

    __slots__ = ("world", "rank", "_sim", "_mailbox", "_inject_key", "_busy",
                 "_obs", "_msgs", "_nbytes", "_paths", "_links")

    def __init__(self, world: MPIWorld, rank: int) -> None:
        if not 0 <= rank < world.size:
            raise CommunicationError(f"rank {rank} outside world of {world.size}")
        self.world = world
        self.rank = rank
        # Hot-path caches: one isend/irecv runs per simulated message,
        # so indirection through world/network is hoisted here.
        self._sim = world.sim
        self._mailbox = world.mailboxes[rank]
        self._inject_key = world._inject_keys[rank]
        self._busy = world.inject_busy_until
        #: the world's tracer is normalized once at construction and
        #: never reassigned, so the per-send check can read a slot.
        self._obs = world._obs
        self._msgs = 0
        self._nbytes = 0.0
        world._comms.append(self)
        #: dest -> (latency, bandwidth, mailbox put) of this rank's
        #: outgoing paths; the bound put avoids re-creating a method
        #: object per delivered message.
        self._paths: dict[int, tuple] = {}
        #: dest -> (link_class, hops), filled only while tracing.
        self._links: dict[int, tuple] = {}

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    @property
    def now(self) -> float:
        """Current simulated time (for rank-side timing)."""
        return self.world.sim.now

    # -- local work ---------------------------------------------------------

    def compute(self, seconds: float) -> Timeout:
        """Occupy this rank with local computation for ``seconds``.

        On a noisy world, the segment stretches by a random factor
        ``1 + Exp(os_noise)`` — system-software interference.
        """
        world = self.world
        if world._noise_rng is not None and seconds > 0:
            seconds *= 1.0 + world._noise_rng.exponential(world.os_noise)
        obs = self._obs
        if obs is not None:
            now = self._sim.now
            obs.complete(self.rank, "compute", "compute", now, now + seconds)
        return Timeout(self.sim, seconds)

    # -- point to point ------------------------------------------------------

    def isend(
        self, dest: int, nbytes: float, tag: int = 0, payload: Any = None
    ) -> SimEvent:
        """Start a send; the event triggers when injection completes.

        The message arrives in ``dest``'s mailbox after the full path
        time.  Non-blocking in the MPI sense: the caller may yield the
        returned event later (or not at all, for fire-and-forget).

        This is the *healthy* implementation — no fault checks at all;
        a world with DES faults hands out :class:`_FaultedMPIComm`
        instead (see :meth:`MPIWorld.comm`).
        """
        world = self.world
        path = self._paths.get(dest)
        if path is None:
            if not 0 <= dest < world.size:
                raise CommunicationError(f"bad destination rank {dest}")
            spec = world.network.path(self.rank, dest)
            path = (spec.latency, spec.bandwidth, world.mailboxes[dest].put)
            self._paths[dest] = path
            obs = self._obs
            if obs is not None:
                now = self._sim.now
                obs.instant(self.rank, "cache_lookup", f"path_miss->{dest}",
                            now, args={"dest": dest})
                obs.counters.add("mpi.path_cache_miss", 1, now)
        if nbytes < 0:
            raise CommunicationError(f"negative message size {nbytes}")
        latency, bandwidth, mailbox_put = path
        # Serialize injection: outgoing messages share this rank's (or
        # this brick's, under brick contention) link into the fabric —
        # the two directions of a ring exchange cannot each run at
        # full path bandwidth.
        sim = self._sim
        now = sim.now
        busy = self._busy
        key = self._inject_key
        start = busy[key]
        if start < now:
            start = now
        finish = start + nbytes / bandwidth
        busy[key] = finish
        inject = finish - now
        self._msgs += 1
        self._nbytes += nbytes
        obs = self._obs
        if obs is not None:
            # Link classification is only priced when tracing is on —
            # tree-depth/topology math has no place on the untraced
            # per-message path.
            link = self._links.get(dest)
            if link is None:
                link = self._links[dest] = world.link_info(self.rank, dest)
            obs.record_send(now, self.rank, dest, tag, nbytes,
                            start, finish, finish + latency,
                            link[0], link[1])
        # Injection-completion event, built without re-entering
        # Timeout.__init__ (one per message).
        done = _timeout_new(Timeout)
        done.sim = sim
        done.triggered = False
        done.value = None
        done._callbacks = None
        # Schedule the mailbox delivery (arg-carrying, no closure) and
        # the completion directly into the engine's timestamp buckets:
        # two timed inserts per simulated message make even the
        # schedule_call frames measurable.  Mirrors
        # Simulator.schedule_call exactly (delays here are >= 0, and
        # latency > 0 keeps the delivery off the zero-delay lane).  In
        # the common rendezvous pattern many messages share a delivery
        # timestamp, so the bucket usually exists and the insert is a
        # dict hit plus a flat append — no heap push at all.
        buckets = sim._buckets
        seq = sim._seq + 1
        when = now + inject + latency
        bucket = buckets.get(when)
        if bucket is None:
            bpool = sim._bpool
            bucket = bpool.pop() if bpool else []
            buckets[when] = bucket
            heappush(sim._theap, when)
            if when < sim._next_timed:
                sim._next_timed = when
        bucket += (seq, mailbox_put,
                   _msg_new(Message, (self.rank, dest, tag, nbytes, payload)))
        seq += 1
        if inject == 0.0:
            sim._fifo.append((seq, done._fire, None))
        else:
            when = now + inject
            bucket = buckets.get(when)
            if bucket is None:
                bpool = sim._bpool
                bucket = bpool.pop() if bpool else []
                buckets[when] = bucket
                heappush(sim._theap, when)
                if when < sim._next_timed:
                    sim._next_timed = when
            bucket += (seq, done._fire, None)
        sim._seq = seq
        return done

    def send(
        self, dest: int, nbytes: float, tag: int = 0, payload: Any = None
    ) -> Generator[SimEvent, Any, None]:
        """Blocking send (generator — use ``yield from``)."""
        yield self.isend(dest, nbytes, tag, payload)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> SimEvent:
        """Post a receive; the event triggers with the :class:`Message`."""
        event = self._mailbox.get_matching(source, tag)
        obs = self._obs
        if obs is not None:
            obs.on_recv_posted(self.rank, source, tag, self._sim.now, event)
        return event

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[SimEvent, Any, Message]:
        """Blocking receive (generator — use ``yield from``).

        Returns the received :class:`Message`.
        """
        msg = yield self.irecv(source, tag)
        return msg

    def sendrecv(
        self,
        dest: int,
        nbytes: float,
        source: int = ANY_SOURCE,
        tag: int = 0,
        payload: Any = None,
    ) -> Generator[SimEvent, Any, Message]:
        """Simultaneous send+receive (the ring-benchmark primitive)."""
        self.isend(dest, nbytes, tag, payload)
        msg = yield self.irecv(source, tag)
        return msg


class _FaultedMPIComm(MPIComm):
    """Per-rank handle on a world with active DES faults.

    :meth:`MPIWorld.comm` selects this class once at setup, so the
    per-event "is an injector active?" consult is gone from the inner
    loop; everything rank- or path-static about the faults is hoisted
    to construction (straggler product) or to the per-dest path cache
    (flap windows for the link class), leaving per message only:

    * the flap duty-cycle check — a float modulo against precomputed
      ``(period, phase, down_time, factor)`` windows;
    * the drop lottery — one buffered uniform per message from the
      drop's private chunked substream (list subscript, no RNG call),
      with the retry/backoff slow path taken only on an actual drop;
      the waits delay both the sender's completion and the delivery,
      and are surfaced as ``retry`` spans plus an ``mpi.retries``
      counter when tracing is on.  A message that exhausts its
      retries raises :class:`~repro.errors.CommunicationError`.
    """

    __slots__ = ("_faults", "_straggler", "_jitter_streams", "_drop_streams")

    def __init__(self, world: MPIWorld, rank: int) -> None:
        super().__init__(world, rank)
        faults = world._faults
        self._faults = faults
        #: static straggler product for this rank (1.0 = untouched).
        self._straggler = faults.straggler_factor(world, rank)
        self._jitter_streams = faults._jitter_streams
        self._drop_streams = faults._drop_streams

    def compute(self, seconds: float) -> Timeout:
        world = self.world
        if world._noise_rng is not None and seconds > 0:
            seconds *= 1.0 + world._noise_rng.exponential(world.os_noise)
        straggler = self._straggler
        if straggler != 1.0:
            seconds *= straggler
        if self._jitter_streams and seconds > 0:
            for stream in self._jitter_streams:
                seconds *= 1.0 + stream.next()
        obs = self._obs
        if obs is not None:
            now = self._sim.now
            obs.complete(self.rank, "compute", "compute", now, now + seconds)
        return Timeout(self.sim, seconds)

    def isend(
        self, dest: int, nbytes: float, tag: int = 0, payload: Any = None
    ) -> SimEvent:
        world = self.world
        path = self._paths.get(dest)
        if path is None:
            if not 0 <= dest < world.size:
                raise CommunicationError(f"bad destination rank {dest}")
            spec = world.network.path(self.rank, dest)
            link = self._links.get(dest)
            if link is None:
                link = self._links[dest] = world.link_info(self.rank, dest)
            # Flap windows matching this dest's link class, resolved
            # once per (comm, dest) instead of per message.
            path = (spec.latency, spec.bandwidth, world.mailboxes[dest].put,
                    self._faults.flap_windows(link[0]))
            self._paths[dest] = path
            obs = self._obs
            if obs is not None:
                now = self._sim.now
                obs.instant(self.rank, "cache_lookup", f"path_miss->{dest}",
                            now, args={"dest": dest})
                obs.counters.add("mpi.path_cache_miss", 1, now)
        if nbytes < 0:
            raise CommunicationError(f"negative message size {nbytes}")
        latency, bandwidth, mailbox_put, flap_windows = path
        sim = self._sim
        now = sim.now
        for period, phase, down_time, factor in flap_windows:
            if (now - phase) % period < down_time:
                latency *= factor
        # The drop lottery runs before injection starts: every failed
        # attempt waits out its timeout, so the payload's injection
        # slot (and hence its delivery) is pushed back by the total.
        # The no-drop case — one buffered uniform per stream — is
        # inlined (_DropStream.next, keep in sync); an actual drop
        # falls back to the stream's method calls.
        obs = self._obs
        retry_wait = 0.0
        n_retries = 0
        faults = self._faults
        for stream in self._drop_streams:
            probability = stream.probability
            i = stream.i
            buf = stream.buf
            if i >= len(buf):
                buf = stream.buf = stream.rng.random(_CHUNK).tolist()
                i = 0
            stream.i = i + 1
            if buf[i] < probability:
                fails = 0
                while True:
                    if fails >= stream.max_retries:
                        faults.dropped_messages += 1
                        raise CommunicationError(
                            f"message of {nbytes:.0f} bytes dropped after "
                            f"{stream.max_retries} retries (MessageDrop "
                            f"p={probability})"
                        )
                    wait = stream.timeout * stream.backoff ** fails
                    if obs is not None:
                        t = now + retry_wait
                        obs.complete(self.rank, "retry", f"retry->{dest}",
                                     t, t + wait)
                    retry_wait += wait
                    n_retries += 1
                    fails += 1
                    if stream.next() >= probability:
                        break
        if n_retries:
            faults.retries += n_retries
            if obs is not None:
                obs.counters.add("mpi.retries", n_retries, now)
        busy = self._busy
        key = self._inject_key
        start = busy[key]
        if start < now:
            start = now
        start += retry_wait
        finish = start + nbytes / bandwidth
        busy[key] = finish
        inject = finish - now
        self._msgs += 1
        self._nbytes += nbytes
        if obs is not None:
            link = self._links.get(dest)
            if link is None:
                link = self._links[dest] = world.link_info(self.rank, dest)
            obs.record_send(now, self.rank, dest, tag, nbytes,
                            start, finish, finish + latency,
                            link[0], link[1])
        # Same inlined bucket scheduling as the healthy isend.
        done = _timeout_new(Timeout)
        done.sim = sim
        done.triggered = False
        done.value = None
        done._callbacks = None
        buckets = sim._buckets
        seq = sim._seq + 1
        when = now + inject + latency
        bucket = buckets.get(when)
        if bucket is None:
            bpool = sim._bpool
            bucket = bpool.pop() if bpool else []
            buckets[when] = bucket
            heappush(sim._theap, when)
            if when < sim._next_timed:
                sim._next_timed = when
        bucket += (seq, mailbox_put,
                   _msg_new(Message, (self.rank, dest, tag, nbytes, payload)))
        seq += 1
        if inject == 0.0:
            sim._fifo.append((seq, done._fire, None))
        else:
            when = now + inject
            bucket = buckets.get(when)
            if bucket is None:
                bpool = sim._bpool
                bucket = bpool.pop() if bpool else []
                buckets[when] = bucket
                heappush(sim._theap, when)
                if when < sim._next_timed:
                    sim._next_timed = when
            bucket += (seq, done._fire, None)
        sim._seq = seq
        return done
