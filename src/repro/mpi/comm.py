"""The simulated MPI communicator.

Timing model per message (LogGP-flavored):

* the sender is occupied for the injection time ``size / bandwidth``
  (its ``send`` completes then — eager protocol);
* the message lands in the receiver's mailbox at
  ``latency + size / bandwidth`` after the send started;
* a ``recv`` posted before arrival blocks until arrival; a ``recv``
  posted after arrival returns at the posting time (plus a small
  matching overhead folded into latency already).

Path latency/bandwidth come from :class:`~repro.netmodel.costs.NetworkModel`,
i.e. from the machine model and the placement.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator, NamedTuple

from repro.errors import CommunicationError
from repro.faults.context import current_injector
from repro.netmodel.costs import NetworkModel
from repro.obs.spans import current_tracer
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.process import SimEvent, Timeout

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "MPIWorld", "MPIComm"]

ANY_SOURCE = -1
ANY_TAG = -1


class Message(NamedTuple):
    """An in-flight or delivered simulated MPI message.

    A named tuple rather than a dataclass: one is allocated per
    simulated message, and tuple construction is several times
    cheaper than a frozen dataclass ``__init__``.
    """

    source: int
    dest: int
    tag: int
    nbytes: float
    payload: Any = None


class MPIWorld:
    """Shared state of one simulated MPI job (all ranks).

    ``brick_contention=True`` switches injection serialization from
    per-rank to per-C-Brick: all CPUs of a brick share the brick's
    NUMAlink link, so their concurrent sends queue behind each other —
    the more physical (and more pessimistic) model, used to study
    dense patterns.
    """

    def __init__(
        self,
        sim: Simulator,
        network: NetworkModel,
        brick_contention: bool = False,
        os_noise: float = 0.0,
        noise_seed: int = 0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.size = network.placement.n_ranks
        self.mailboxes = [Channel(sim) for _ in range(self.size)]
        self.brick_contention = brick_contention
        #: OS-noise amplitude: each compute segment is stretched by an
        #: exponentially distributed factor with this mean (0 = quiet
        #: machine).  Models the system-software interference behind
        #: the §4.6.2 boot-cpuset observation: at scale, collectives
        #: wait for whichever rank the OS delayed this time.
        self.os_noise = os_noise
        if os_noise < 0:
            raise CommunicationError(f"negative os_noise: {os_noise}")
        self._noise_rng = None
        if os_noise > 0:
            from repro.sim.rng import make_rng

            self._noise_rng = make_rng(noise_seed)
        self._inject_keys = [
            self._injection_key(rank) for rank in range(self.size)
        ]
        #: injection serialization slots: one per rank, or one per
        #: (node, brick) when brick contention is on.  Pre-populated so
        #: the per-message lookup is a plain subscript.
        self.inject_busy_until: dict = {
            key: 0.0 for key in self._inject_keys
        }
        #: message counters, for tests and IB connection accounting
        self.messages_sent = 0
        self.bytes_sent = 0.0
        #: optional MessageTrace; a real attribute (not getattr) so
        #: the per-message check in isend is a plain load.
        self._trace = None
        #: optional :class:`repro.obs.spans.Tracer` recording spans,
        #: message edges and counters.  Defaults to the ambient tracer
        #: (:func:`repro.obs.spans.use_tracer`), so per-cell trace
        #: capture needs no signature changes anywhere; ``None`` keeps
        #: every per-message check a plain load + branch.  A disabled
        #: tracer (NullTracer) normalizes to ``None`` so "off" is off.
        obs = current_tracer()
        self._obs = obs if (obs is not None and obs.enabled) else None
        #: optional :class:`repro.faults.FaultInjector` acting on the
        #: DES per-message/compute path (drops, flaps, stragglers,
        #: jitter).  Same normalization discipline as the tracer: an
        #: injector with no DES-relevant faults becomes ``None``, so
        #: the healthy hot path pays one load + branch.  Static path
        #: faults don't need this hook — they arrive pre-applied in
        #: the NetworkModel's route table.
        faults = current_injector()
        self._faults = (
            faults
            if faults is not None and faults.has_des_faults
            else None
        )

    def link_info(self, rank_a: int, rank_b: int) -> tuple[str, int]:
        """``(link_class, router_hops)`` between two ranks' home CPUs.

        Classes: ``self`` (same rank), ``intra_brick``, ``intra_node``
        (crossing NUMAlink routers inside a node), ``inter_node``.
        InfiniBand crossings report 0 hops — the switch is not a
        NUMAlink router.
        """
        if rank_a == rank_b:
            return ("self", 0)
        placement = self.network.placement
        cluster = placement.cluster
        cpu_a = placement.cpu_of(rank_a)
        cpu_b = placement.cpu_of(rank_b)
        na = cluster.node_of(cpu_a)
        nb = cluster.node_of(cpu_b)
        if na != nb:
            if cluster.fabric == "numalink4":
                from repro.machine.router import tree_depth

                hops = tree_depth(cluster.nodes[na].n_bricks) + tree_depth(
                    cluster.nodes[nb].n_bricks
                )
            else:
                hops = 0
            return ("inter_node", hops)
        node = cluster.nodes[na]
        hops = node.hops(cluster.local_cpu(cpu_a), cluster.local_cpu(cpu_b))
        return ("intra_brick" if hops == 0 else "intra_node", hops)

    def _injection_key(self, rank: int):
        if not self.brick_contention:
            return rank
        placement = self.network.placement
        cluster = placement.cluster
        cpu = placement.cpu_of(rank)
        node_idx = cluster.node_of(cpu)
        node = cluster.nodes[node_idx]
        return ("brick", node_idx, node.brick_of(cluster.local_cpu(cpu)))

    def comm(self, rank: int) -> "MPIComm":
        return MPIComm(self, rank)


class MPIComm:
    """Per-rank MPI handle passed to simulated rank programs."""

    __slots__ = ("world", "rank", "_sim", "_mailbox", "_inject_key", "_paths",
                 "_links")

    def __init__(self, world: MPIWorld, rank: int) -> None:
        if not 0 <= rank < world.size:
            raise CommunicationError(f"rank {rank} outside world of {world.size}")
        self.world = world
        self.rank = rank
        # Hot-path caches: one isend/irecv runs per simulated message,
        # so indirection through world/network is hoisted here.
        self._sim = world.sim
        self._mailbox = world.mailboxes[rank]
        self._inject_key = world._inject_keys[rank]
        #: dest -> (latency, bandwidth, mailbox put) of this rank's
        #: outgoing paths; the bound put avoids re-creating a method
        #: object per delivered message.
        self._paths: dict[int, tuple] = {}
        #: dest -> (link_class, hops), filled only while tracing.
        self._links: dict[int, tuple] = {}

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    @property
    def now(self) -> float:
        """Current simulated time (for rank-side timing)."""
        return self.world.sim.now

    # -- local work ---------------------------------------------------------

    def compute(self, seconds: float) -> Timeout:
        """Occupy this rank with local computation for ``seconds``.

        On a noisy world, the segment stretches by a random factor
        ``1 + Exp(os_noise)`` — system-software interference.
        """
        world = self.world
        if world._noise_rng is not None and seconds > 0:
            seconds *= 1.0 + world._noise_rng.exponential(world.os_noise)
        if world._faults is not None:
            seconds = world._faults.compute_seconds(world, self.rank, seconds)
        obs = world._obs
        if obs is not None:
            now = self._sim.now
            obs.complete(self.rank, "compute", "compute", now, now + seconds)
        return Timeout(self.sim, seconds)

    # -- point to point ------------------------------------------------------

    def isend(
        self, dest: int, nbytes: float, tag: int = 0, payload: Any = None
    ) -> SimEvent:
        """Start a send; the event triggers when injection completes.

        The message arrives in ``dest``'s mailbox after the full path
        time.  Non-blocking in the MPI sense: the caller may yield the
        returned event later (or not at all, for fire-and-forget).
        """
        world = self.world
        if world._faults is not None:
            return self._isend_faulted(dest, nbytes, tag, payload)
        path = self._paths.get(dest)
        if path is None:
            if not 0 <= dest < world.size:
                raise CommunicationError(f"bad destination rank {dest}")
            spec = world.network.path(self.rank, dest)
            path = (spec.latency, spec.bandwidth, world.mailboxes[dest].put)
            self._paths[dest] = path
            obs = world._obs
            if obs is not None:
                now = self._sim.now
                obs.instant(self.rank, "cache_lookup", f"path_miss->{dest}",
                            now, args={"dest": dest})
                obs.counters.add("mpi.path_cache_miss", 1, now)
        if nbytes < 0:
            raise CommunicationError(f"negative message size {nbytes}")
        latency, bandwidth, mailbox_put = path
        # Serialize injection: outgoing messages share this rank's (or
        # this brick's, under brick contention) link into the fabric —
        # the two directions of a ring exchange cannot each run at
        # full path bandwidth.
        sim = self._sim
        now = sim.now
        busy = world.inject_busy_until
        key = self._inject_key
        start = busy[key]
        if start < now:
            start = now
        finish = start + nbytes / bandwidth
        busy[key] = finish
        inject = finish - now
        world.messages_sent += 1
        world.bytes_sent += nbytes
        trace = world._trace
        if trace is not None:
            trace.record(now, self.rank, dest, tag, nbytes)
        obs = world._obs
        if obs is not None:
            # Link classification is only priced when tracing is on —
            # tree-depth/topology math has no place on the untraced
            # per-message path.
            link = self._links.get(dest)
            if link is None:
                link = self._links[dest] = world.link_info(self.rank, dest)
            obs.record_send(now, self.rank, dest, tag, nbytes,
                            start, finish, finish + latency,
                            link[0], link[1])
        # Injection-completion event, built without re-entering
        # Timeout.__init__ (one per message).
        done = Timeout.__new__(Timeout)
        done.sim = sim
        done.triggered = False
        done.value = None
        done._callbacks = []
        # Schedule the mailbox delivery (arg-carrying, no closure) and
        # the completion directly through the engine's slot pool: two
        # timed inserts per simulated message make even the
        # schedule_call frames measurable.  Mirrors
        # Simulator.schedule_call exactly (delays here are >= 0, and
        # latency > 0 keeps the delivery off the zero-delay lane).
        heap = sim._heap
        pool = sim._pool
        seq = sim._seq + 1
        when = now + inject + latency
        if pool:
            slot = pool.pop()
            slot[0] = when
            slot[1] = seq
            slot[2] = mailbox_put
            slot[3] = Message(self.rank, dest, tag, nbytes, payload)
        else:
            slot = [when, seq, mailbox_put,
                    Message(self.rank, dest, tag, nbytes, payload)]
        heappush(heap, slot)
        if when < sim._next_timed:
            sim._next_timed = when
        if inject == 0.0:
            seq += 1
            sim._fifo.append((seq, done._fire, None))
        else:
            seq += 1
            when = now + inject
            if pool:
                slot = pool.pop()
                slot[0] = when
                slot[1] = seq
                slot[2] = done._fire
                slot[3] = None
            else:
                slot = [when, seq, done._fire, None]
            heappush(heap, slot)
            if when < sim._next_timed:
                sim._next_timed = when
        sim._seq = seq
        return done

    def _isend_faulted(
        self, dest: int, nbytes: float, tag: int = 0, payload: Any = None
    ) -> SimEvent:
        """isend under an active DES fault injector.

        Kept out of :meth:`isend` so the healthy path stays one load +
        branch; this variant trades the inlined scheduling for
        readability and adds, per message:

        * link flaps — the path latency is scaled while a matching
          flap is in its down window at send time;
        * drop-with-retry — each dropped attempt waits out its timeout
          (exponential backoff) before the retransmission; the waits
          delay both the sender's completion and the delivery, and are
          surfaced as ``retry`` spans plus an ``mpi.retries`` counter
          when tracing is on.  A message that exhausts its retries
          raises :class:`~repro.errors.CommunicationError`.
        """
        world = self.world
        faults = world._faults
        path = self._paths.get(dest)
        if path is None:
            if not 0 <= dest < world.size:
                raise CommunicationError(f"bad destination rank {dest}")
            spec = world.network.path(self.rank, dest)
            path = (spec.latency, spec.bandwidth, world.mailboxes[dest].put)
            self._paths[dest] = path
            obs = world._obs
            if obs is not None:
                now = self._sim.now
                obs.instant(self.rank, "cache_lookup", f"path_miss->{dest}",
                            now, args={"dest": dest})
                obs.counters.add("mpi.path_cache_miss", 1, now)
        if nbytes < 0:
            raise CommunicationError(f"negative message size {nbytes}")
        latency, bandwidth, mailbox_put = path
        sim = self._sim
        now = sim.now
        link = self._links.get(dest)
        if link is None:
            link = self._links[dest] = world.link_info(self.rank, dest)
        latency *= faults.flap_factor(link[0], now)
        # The drop lottery runs before injection starts: every failed
        # attempt waits out its timeout, so the payload's injection
        # slot (and hence its delivery) is pushed back by the total.
        retry_delays = faults.send_plan(nbytes)  # may raise
        retry_wait = 0.0
        obs = world._obs
        for wait in retry_delays:
            if obs is not None:
                t = now + retry_wait
                obs.complete(self.rank, "retry", f"retry->{dest}", t, t + wait)
            retry_wait += wait
        if retry_delays and obs is not None:
            obs.counters.add("mpi.retries", len(retry_delays), now)
        busy = world.inject_busy_until
        key = self._inject_key
        start = busy[key]
        if start < now:
            start = now
        start += retry_wait
        finish = start + nbytes / bandwidth
        busy[key] = finish
        inject = finish - now
        world.messages_sent += 1
        world.bytes_sent += nbytes
        trace = world._trace
        if trace is not None:
            trace.record(now, self.rank, dest, tag, nbytes)
        if obs is not None:
            obs.record_send(now, self.rank, dest, tag, nbytes,
                            start, finish, finish + latency,
                            link[0], link[1])
        sim.schedule_call(
            inject + latency, mailbox_put,
            Message(self.rank, dest, tag, nbytes, payload),
        )
        return Timeout(sim, inject)

    def send(
        self, dest: int, nbytes: float, tag: int = 0, payload: Any = None
    ) -> Generator[SimEvent, Any, None]:
        """Blocking send (generator — use ``yield from``)."""
        yield self.isend(dest, nbytes, tag, payload)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> SimEvent:
        """Post a receive; the event triggers with the :class:`Message`."""
        event = self._mailbox.get_matching(source, tag)
        obs = self.world._obs
        if obs is not None:
            obs.on_recv_posted(self.rank, source, tag, self._sim.now, event)
        return event

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[SimEvent, Any, Message]:
        """Blocking receive (generator — use ``yield from``).

        Returns the received :class:`Message`.
        """
        msg = yield self.irecv(source, tag)
        return msg

    def sendrecv(
        self,
        dest: int,
        nbytes: float,
        source: int = ANY_SOURCE,
        tag: int = 0,
        payload: Any = None,
    ) -> Generator[SimEvent, Any, Message]:
        """Simultaneous send+receive (the ring-benchmark primitive)."""
        self.isend(dest, nbytes, tag, payload)
        msg = yield self.irecv(source, tag)
        return msg
