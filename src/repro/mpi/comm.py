"""The simulated MPI communicator.

Timing model per message (LogGP-flavored):

* the sender is occupied for the injection time ``size / bandwidth``
  (its ``send`` completes then — eager protocol);
* the message lands in the receiver's mailbox at
  ``latency + size / bandwidth`` after the send started;
* a ``recv`` posted before arrival blocks until arrival; a ``recv``
  posted after arrival returns at the posting time (plus a small
  matching overhead folded into latency already).

Path latency/bandwidth come from :class:`~repro.netmodel.costs.NetworkModel`,
i.e. from the machine model and the placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import CommunicationError
from repro.netmodel.costs import NetworkModel
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.process import SimEvent, Timeout

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "MPIWorld", "MPIComm"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Message:
    """An in-flight or delivered simulated MPI message."""

    source: int
    dest: int
    tag: int
    nbytes: float
    payload: Any = None


class MPIWorld:
    """Shared state of one simulated MPI job (all ranks).

    ``brick_contention=True`` switches injection serialization from
    per-rank to per-C-Brick: all CPUs of a brick share the brick's
    NUMAlink link, so their concurrent sends queue behind each other —
    the more physical (and more pessimistic) model, used to study
    dense patterns.
    """

    def __init__(
        self,
        sim: Simulator,
        network: NetworkModel,
        brick_contention: bool = False,
        os_noise: float = 0.0,
        noise_seed: int = 0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.size = network.placement.n_ranks
        self.mailboxes = [Channel(sim) for _ in range(self.size)]
        self.brick_contention = brick_contention
        #: OS-noise amplitude: each compute segment is stretched by an
        #: exponentially distributed factor with this mean (0 = quiet
        #: machine).  Models the system-software interference behind
        #: the §4.6.2 boot-cpuset observation: at scale, collectives
        #: wait for whichever rank the OS delayed this time.
        self.os_noise = os_noise
        if os_noise < 0:
            raise CommunicationError(f"negative os_noise: {os_noise}")
        self._noise_rng = None
        if os_noise > 0:
            from repro.sim.rng import make_rng

            self._noise_rng = make_rng(noise_seed)
        #: injection serialization keys: one slot per rank, or one per
        #: (node, brick) when brick contention is on.
        self.inject_busy_until: dict = {}
        self._inject_keys = [
            self._injection_key(rank) for rank in range(self.size)
        ]
        #: message counters, for tests and IB connection accounting
        self.messages_sent = 0
        self.bytes_sent = 0.0

    def _injection_key(self, rank: int):
        if not self.brick_contention:
            return rank
        placement = self.network.placement
        cluster = placement.cluster
        cpu = placement.cpu_of(rank)
        node_idx = cluster.node_of(cpu)
        node = cluster.nodes[node_idx]
        return ("brick", node_idx, node.brick_of(cluster.local_cpu(cpu)))

    def comm(self, rank: int) -> "MPIComm":
        return MPIComm(self, rank)


class MPIComm:
    """Per-rank MPI handle passed to simulated rank programs."""

    def __init__(self, world: MPIWorld, rank: int) -> None:
        if not 0 <= rank < world.size:
            raise CommunicationError(f"rank {rank} outside world of {world.size}")
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    @property
    def now(self) -> float:
        """Current simulated time (for rank-side timing)."""
        return self.world.sim.now

    # -- local work ---------------------------------------------------------

    def compute(self, seconds: float) -> Timeout:
        """Occupy this rank with local computation for ``seconds``.

        On a noisy world, the segment stretches by a random factor
        ``1 + Exp(os_noise)`` — system-software interference.
        """
        world = self.world
        if world._noise_rng is not None and seconds > 0:
            seconds *= 1.0 + world._noise_rng.exponential(world.os_noise)
        return Timeout(self.sim, seconds)

    # -- point to point ------------------------------------------------------

    def isend(
        self, dest: int, nbytes: float, tag: int = 0, payload: Any = None
    ) -> SimEvent:
        """Start a send; the event triggers when injection completes.

        The message arrives in ``dest``'s mailbox after the full path
        time.  Non-blocking in the MPI sense: the caller may yield the
        returned event later (or not at all, for fire-and-forget).
        """
        if not 0 <= dest < self.size:
            raise CommunicationError(f"bad destination rank {dest}")
        if nbytes < 0:
            raise CommunicationError(f"negative message size {nbytes}")
        world = self.world
        path = world.network.path(self.rank, dest)
        # Serialize injection: outgoing messages share this rank's (or
        # this brick's, under brick contention) link into the fabric —
        # the two directions of a ring exchange cannot each run at
        # full path bandwidth.
        now = self.sim.now
        key = world._inject_keys[self.rank]
        start = max(now, world.inject_busy_until.get(key, 0.0))
        finish = start + nbytes / path.bandwidth
        world.inject_busy_until[key] = finish
        arrival = (finish - now) + path.latency
        msg = Message(self.rank, dest, tag, nbytes, payload)
        world.messages_sent += 1
        world.bytes_sent += nbytes
        trace = getattr(world, "_trace", None)
        if trace is not None:
            trace.record(now, self.rank, dest, tag, nbytes)
        self.sim.schedule(arrival, lambda: world.mailboxes[dest].put(msg))
        return Timeout(self.sim, finish - now)

    def send(
        self, dest: int, nbytes: float, tag: int = 0, payload: Any = None
    ) -> Generator[SimEvent, Any, None]:
        """Blocking send (generator — use ``yield from``)."""
        yield self.isend(dest, nbytes, tag, payload)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> SimEvent:
        """Post a receive; the event triggers with the :class:`Message`."""

        def match(msg: Message) -> bool:
            return (source in (ANY_SOURCE, msg.source)) and (
                tag in (ANY_TAG, msg.tag)
            )

        return self.world.mailboxes[self.rank].get(match)

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[SimEvent, Any, Message]:
        """Blocking receive (generator — use ``yield from``).

        Returns the received :class:`Message`.
        """
        msg = yield self.irecv(source, tag)
        return msg

    def sendrecv(
        self,
        dest: int,
        nbytes: float,
        source: int = ANY_SOURCE,
        tag: int = 0,
        payload: Any = None,
    ) -> Generator[SimEvent, Any, Message]:
        """Simultaneous send+receive (the ring-benchmark primitive)."""
        self.isend(dest, nbytes, tag, payload)
        msg = yield self.irecv(source, tag)
        return msg
