"""Simulated MPI.

Rank programs are Python generators receiving a :class:`MPIComm`
handle.  ``yield from comm.send(...)`` / ``comm.recv(...)`` /
``comm.compute(...)`` block the simulated rank for the modeled
duration, so wall-clock behaviour (including waiting on slow partners)
emerges from the event interleaving exactly as it does on a real
machine.  Message payloads are carried through, so rank programs can
exchange real NumPy data (used by the MD domain-decomposition tests).
"""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Message, MPIComm
from repro.mpi.job import MPIJobResult, run_mpi

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "MPIComm",
    "MPIJobResult",
    "run_mpi",
]
