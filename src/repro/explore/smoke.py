"""End-to-end smoke of the exploration tier (``make explore-smoke``).

Runs both worked studies through the full stack — SearchSpace →
Objective → optimizer → ExploreDriver → serve.submit → surrogate fast
path — and asserts the three properties the tier exists for:

* the **cheapest-bx2** grid study finds the paper's ablation
  signature (a clock downgrade is tolerable, an L3 downgrade is not)
  and journals its trajectory;
* a second run against the same journal **resumes**: every candidate
  replays, zero cells are submitted, and the best is unchanged;
* the **worst-faults** evolutionary study is **deterministic**: two
  runs from one seed write byte-identical trajectory journals;
* the **cheapest-machine** zoo study searches ``machine.config`` as a
  categorical axis — whole registered machines as candidates — and
  deterministically picks the cheapest preset whose BT-MZ stays
  within the Columbia bound.

Exit 0 and a one-line ``explore-smoke ok`` on success; exit 1 with a
diagnostic on any violation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.explore.studies import run_study
from repro.run.runner import Runner


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-explore-smoke") as tmp:
        tmp_path = Path(tmp)
        runner = Runner(cache=None)
        try:
            # -- cheapest-bx2: grid search, journaled -------------------
            trail = tmp_path / "cheapest.jsonl"
            cold = run_study("cheapest-bx2", runner=runner, journal=trail)
            if cold.best is None:
                print("explore-smoke FAILED: cheapest-bx2 found no "
                      "feasible candidate", file=sys.stderr)
                return 1
            best = dict(cold.best.assignment)
            if not (best["clock_ghz"] < 1.6 and best["l3_mb"] == 9):
                print(f"explore-smoke FAILED: cheapest-bx2 best {best} "
                      "does not match the ablation signature "
                      "(clock downgradable, L3 not)", file=sys.stderr)
                return 1

            # -- resume: the journal replays, no cells re-submitted -----
            warm = run_study("cheapest-bx2", runner=runner, journal=trail)
            if warm.stats.cells_submitted != 0:
                print("explore-smoke FAILED: resume re-submitted "
                      f"{warm.stats.cells_submitted} cells instead of "
                      "replaying the journal", file=sys.stderr)
                return 1
            if (
                warm.best is None
                or warm.best.candidate != cold.best.candidate
                or warm.best.score != cold.best.score
            ):
                print("explore-smoke FAILED: resumed best differs from "
                      "the original run", file=sys.stderr)
                return 1

            # -- worst-faults: evolutionary, byte-identical from 1 seed -
            journals = []
            for name in ("wf-a.jsonl", "wf-b.jsonl"):
                path = tmp_path / name
                run_study(
                    "worst-faults", seed=3, max_cells=60,
                    runner=runner, journal=path,
                )
                journals.append(path.read_bytes())
            if journals[0] != journals[1]:
                print("explore-smoke FAILED: two worst-faults runs from "
                      "one seed wrote different trajectories",
                      file=sys.stderr)
                return 1

            # -- cheapest-machine: the zoo as a categorical axis --------
            zoo_journals = []
            for name in ("zoo-a.jsonl", "zoo-b.jsonl"):
                path = tmp_path / name
                zoo = run_study(
                    "cheapest-machine", runner=runner, journal=path,
                )
                zoo_journals.append(path.read_bytes())
            if zoo_journals[0] != zoo_journals[1]:
                print("explore-smoke FAILED: two cheapest-machine runs "
                      "wrote different trajectories", file=sys.stderr)
                return 1
            if zoo.best is None:
                print("explore-smoke FAILED: cheapest-machine found no "
                      "feasible candidate", file=sys.stderr)
                return 1
            zoo_best = dict(zoo.best.assignment)["machine.config"]
            if zoo_best != "gpu_node":
                print("explore-smoke FAILED: cheapest-machine best "
                      f"{zoo_best!r}; expected the accelerator preset "
                      "to undercut the big-iron ones", file=sys.stderr)
                return 1
        finally:
            runner.close()

    print(
        "explore-smoke ok: cheapest-bx2 best "
        f"clock={best['clock_ghz']} l3={best['l3_mb']} "
        f"(score {cold.best.score:g}), resume replayed "
        f"{warm.stats.replayed} candidates with 0 cells, "
        "worst-faults trajectories byte-identical across runs, "
        f"cheapest-machine best {zoo_best} "
        f"(cost {zoo.best.score:g})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
