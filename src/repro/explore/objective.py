"""Objectives: how a candidate's result rows become one score.

The "Variability Matters" methodology (PAPERS.md): a simulated
machine under jitter is a distribution, not a number, so an objective
can fan each candidate into ``repeats`` replicate cells — each the
candidate's scenario with a seeded :class:`~repro.faults.OsJitter`
overlay merged in (distinct seeds, so the cells cache-key and draw
independently) — and score a ``quantile`` of the replicate values
(p50 by default; p95 for tail-sensitive studies) instead of a mean.
Deterministic workloads degenerate gracefully: every replicate
returns the same value and every quantile equals it.

Scoring pipeline per candidate:

1. each replicate cell returns rows; ``reduce`` collapses the rows'
   ``metric`` column (index or, with result columns known, a name)
   to one float per replicate;
2. the ``quantile`` of the replicate values is the candidate's
   **score**;
3. optional constraint: a candidate whose ``constraint`` column
   (reduced and quantiled the same way) falls outside
   ``[constraint_min, constraint_max]`` is **infeasible** — reported,
   journaled, but never best;
4. the driver minimizes **loss** = score for ``mode="min"``,
   ``-score`` for ``mode="max"``; infeasible or failed candidates
   are ``+inf``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec, OsJitter
from repro.run.scenario import Scenario

__all__ = ["Objective", "parse_objective"]

_REDUCERS = ("last", "first", "min", "max", "mean", "sum")

#: Large odd multiplier separating replicate seed streams per
#: objective seed (same spirit as the fault injector's seed derivation).
_SEED_STRIDE = 1_000_003


def _reduce(values: Sequence[float], how: str) -> float:
    if how == "last":
        return values[-1]
    if how == "first":
        return values[0]
    if how == "min":
        return min(values)
    if how == "max":
        return max(values)
    if how == "sum":
        return float(sum(values))
    return float(sum(values)) / len(values)  # mean


def _quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile over a sorted copy (the serve tier's
    percentile convention — no interpolation, deterministic)."""
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


@dataclass(frozen=True)
class Objective:
    """What to optimize, over which column, under how much noise."""

    #: result-row column index the score reads.
    metric: int
    #: ``"min"`` or ``"max"``.
    mode: str = "min"
    #: row reducer within one cell (cells may return several rows).
    reduce: str = "last"
    #: quantile of the replicate values scored (nearest-rank).
    quantile: float = 0.5
    #: replicate cells per candidate.
    repeats: int = 1
    #: OS-jitter amplitude overlaid on every replicate (0 = none).
    noise: float = 0.0
    #: base seed the replicate overlays derive from.
    seed: int = 0
    #: optional feasibility column index (quantiled like the metric).
    constraint: int | None = None
    constraint_min: float | None = None
    constraint_max: float | None = None

    def __post_init__(self) -> None:
        if self.metric < 0:
            raise ConfigurationError(
                f"objective metric column must be >= 0, got {self.metric}"
            )
        if self.mode not in ("min", "max"):
            raise ConfigurationError(
                f"objective mode must be 'min' or 'max', got {self.mode!r}"
            )
        if self.reduce not in _REDUCERS:
            raise ConfigurationError(
                f"objective reduce must be one of {_REDUCERS}, "
                f"got {self.reduce!r}"
            )
        if not 0.0 <= self.quantile <= 1.0:
            raise ConfigurationError(
                f"objective quantile must be in [0, 1], got {self.quantile}"
            )
        if self.repeats < 1:
            raise ConfigurationError(
                f"objective repeats must be >= 1, got {self.repeats}"
            )
        if self.noise < 0.0:
            raise ConfigurationError(
                f"objective noise must be >= 0, got {self.noise}"
            )
        if self.constraint is None and (
            self.constraint_min is not None or self.constraint_max is not None
        ):
            raise ConfigurationError(
                "objective constraint bounds need a constraint column"
            )

    # -- replicate fan-out ----------------------------------------------------

    def replicas(self, sc: Scenario) -> tuple[Scenario, ...]:
        """The candidate's replicate cells, in replicate order.

        With ``repeats == 1`` and no noise the candidate *is* its one
        cell.  Otherwise replicate ``r`` merges a seeded overlay —
        jitter faults when ``noise > 0``, else just a distinct seed —
        so each replicate is a distinct cache key drawing a distinct
        fault stream, yet the whole fan is reproducible from
        ``objective.seed``.
        """
        if self.repeats == 1 and self.noise == 0.0:
            return (sc,)
        out = []
        extra = (OsJitter(amplitude=self.noise),) if self.noise > 0 else ()
        for r in range(self.repeats):
            # Nonzero by construction, so the merge's "other's seed
            # wins when set" rule always applies the replicate seed.
            rep_seed = self.seed * _SEED_STRIDE + r + 1
            overlay = FaultSpec(faults=extra, seed=rep_seed)
            merged = (
                overlay if sc.faults is None else sc.faults.merge(overlay)
            )
            out.append(replace(sc, faults=merged))
        return tuple(out)

    # -- scoring --------------------------------------------------------------

    def _column(self, rows: Sequence[Sequence[Any]], col: int) -> float:
        values = []
        for row in rows:
            if col >= len(row):
                raise ConfigurationError(
                    f"objective column {col} out of range for a "
                    f"{len(row)}-column row"
                )
            value = row[col]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigurationError(
                    f"objective column {col} holds non-numeric {value!r}"
                )
            values.append(float(value))
        if not values:
            raise ConfigurationError("objective: cell returned no rows")
        return _reduce(values, self.reduce)

    def metric_values(
        self, replicate_rows: Sequence[Sequence[Sequence[Any]]]
    ) -> tuple[float, ...]:
        """One reduced metric value per replicate (diagnostics)."""
        return tuple(
            self._column(rows, self.metric) for rows in replicate_rows
        )

    def score(
        self, replicate_rows: Sequence[Sequence[Sequence[Any]]]
    ) -> tuple[float, bool]:
        """``(score, feasible)`` from one candidate's replicate rows."""
        metric_values = self.metric_values(replicate_rows)
        score = _quantile(metric_values, self.quantile)
        feasible = True
        if self.constraint is not None:
            cons_values = [
                self._column(rows, self.constraint) for rows in replicate_rows
            ]
            cons = _quantile(cons_values, self.quantile)
            if self.constraint_max is not None and cons > self.constraint_max:
                feasible = False
            if self.constraint_min is not None and cons < self.constraint_min:
                feasible = False
        return score, feasible

    def loss(self, score: float | None, feasible: bool) -> float:
        """The minimized form: lower is always better."""
        if score is None or not feasible:
            return math.inf
        return score if self.mode == "min" else -score

    def better(self, a: float, b: float) -> bool:
        """Is score ``a`` strictly better than ``b`` under ``mode``?"""
        return a < b if self.mode == "min" else a > b

    def payload(self) -> dict[str, Any]:
        """Canonical JSON-safe form (journal header)."""
        out: dict[str, Any] = {
            "metric": self.metric,
            "mode": self.mode,
            "reduce": self.reduce,
            "quantile": self.quantile,
            "repeats": self.repeats,
            "noise": self.noise,
            "seed": self.seed,
        }
        if self.constraint is not None:
            out["constraint"] = self.constraint
            if self.constraint_min is not None:
                out["constraint_min"] = self.constraint_min
            if self.constraint_max is not None:
                out["constraint_max"] = self.constraint_max
        return out


def parse_objective(text: str) -> Objective:
    """Parse an ``--objective`` string.

    Grammar (one clause list, ``--faults`` style): comma-separated
    ``key=value`` pairs; ``metric=N`` is required.  Examples::

        metric=3,mode=max
        metric=2,mode=min,quantile=0.95,repeats=9,noise=0.05,seed=1
        metric=4,constraint=3,constraint_max=1.05
    """
    kwargs: dict[str, Any] = {}
    for pair in filter(None, (p.strip() for p in text.split(","))):
        key, eq, value = pair.partition("=")
        if not eq:
            raise ConfigurationError(
                f"--objective: expected key=value, got {pair!r}"
            )
        key = key.strip()
        value = value.strip()
        if key in ("metric", "repeats", "seed", "constraint"):
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"--objective: {key} must be an integer, got {value!r}"
                ) from None
        elif key in ("quantile", "noise", "constraint_min", "constraint_max"):
            try:
                kwargs[key] = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"--objective: {key} must be a number, got {value!r}"
                ) from None
        elif key in ("mode", "reduce"):
            kwargs[key] = value
        else:
            raise ConfigurationError(
                f"--objective: unknown key {key!r}"
            )
    if "metric" not in kwargs:
        raise ConfigurationError("--objective: metric=N is required")
    return Objective(**kwargs)
