"""The exploration driver: optimizer ↔ serve-tier evaluation loop.

One :class:`ExploreDriver` wires the three declarative pieces
together — a :class:`~repro.explore.space.SearchSpace`, an
:class:`~repro.explore.objective.Objective`, and an
:class:`~repro.explore.optimizers.Optimizer` — and pumps candidate
batches through :func:`repro.serve.submit`, the same in-process
entry the scenario server uses: analytic-fidelity replicate cells
resolve inline on the surrogate fast path (microseconds each, no
pool), full-DES cells queue, coalesce and batch to workers.
Exploration *is* heavy serve-tier traffic, by construction.

Budgets and resumability:

* ``max_cells`` bounds the number of replicate cells *submitted*
  (journal replays and in-run memo hits are free);
* ``max_seconds`` bounds wall clock, checked between batches;
* ``journal=PATH`` appends one JSONL line per scored candidate — the
  trajectory — and a re-run with the same space/objective/optimizer
  replays journaled candidates through ``tell`` without re-submitting
  them, exactly like ``--checkpoint`` resumes a sweep.  Lines carry
  no wall-clock data, so two runs from one seed produce
  byte-identical journals (the determinism contract the explore
  tests pin).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace as dc_replace
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.explore.objective import Objective
from repro.explore.optimizers import Optimizer, make_optimizer
from repro.explore.space import SearchSpace
from repro.run.runner import Runner

__all__ = [
    "ExploreDriver",
    "ExploreRecord",
    "ExploreResult",
    "ExploreStats",
    "TrajectoryJournal",
    "explore",
]

#: Journal format version (header field).
_JOURNAL_VERSION = 1


def candidate_id(candidate: tuple[int, ...]) -> str:
    """The journal key for a candidate: its index tuple, dash-joined
    (``(2, 0, 1)`` → ``"2-0-1"``) — compact, orderable, greppable."""
    return "-".join(str(i) for i in candidate)


@dataclass(frozen=True)
class ExploreRecord:
    """One scored candidate on the trajectory."""

    #: evaluation order within the exploration (0-based).
    index: int
    candidate: tuple[int, ...]
    #: ``(name, value)`` pairs, dimension order (JSON-safe forms).
    assignment: tuple[tuple[str, Any], ...]
    #: the objective's quantile score; ``None`` when every replicate
    #: failed.
    score: float | None
    #: per-replicate metric values (diagnostic; empty on failure).
    values: tuple[float, ...] = ()
    feasible: bool = True
    error: str | None = None
    #: replicate cells this candidate fanned into.
    cells: int = 0
    #: served from a prior run's journal (no cells submitted).
    replayed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ExploreStats:
    """Driver accounting over one :meth:`ExploreDriver.run`."""

    #: candidates scored (replays included).
    candidates: int = 0
    #: replicate cells submitted through the serve tier.
    cells_submitted: int = 0
    #: candidates served from the trajectory journal.
    replayed: int = 0
    #: candidates the optimizer re-proposed within this run.
    memo_hits: int = 0
    #: candidates whose every replicate failed.
    errors: int = 0
    #: infeasible (constraint-violating) candidates.
    infeasible: int = 0
    #: why the loop ended: ``exhausted`` / ``max_cells`` /
    #: ``max_seconds``.
    stopped: str = "exhausted"

    def summary(self) -> str:
        return (
            f"explore: {self.candidates} candidates "
            f"({self.replayed} replayed, {self.memo_hits} memoized), "
            f"{self.cells_submitted} cells submitted, "
            f"{self.errors} failed, {self.infeasible} infeasible; "
            f"stopped: {self.stopped}"
        )


@dataclass
class ExploreResult:
    """What an exploration returns: the best candidate and the trail."""

    space: SearchSpace
    objective: Objective
    best: ExploreRecord | None
    records: list[ExploreRecord] = field(default_factory=list)
    stats: ExploreStats = field(default_factory=ExploreStats)

    def report(self) -> str:
        """Human-readable result block (the CLI's stdout)."""
        lines = [self.space.describe(), self.stats.summary()]
        if self.best is None:
            lines.append("no feasible candidate found")
            return "\n".join(lines)
        q = self.objective.quantile
        lines.append(
            f"best ({self.objective.mode} metric[{self.objective.metric}] "
            f"p{round(q * 100):g}, {self.objective.repeats} repeats): "
            f"score={self.best.score:g}"
        )
        for name, value in self.best.assignment:
            lines.append(f"  {name} = {value}")
        if len(self.best.values) > 1:
            spread = (
                f"  replicate spread: min={min(self.best.values):g} "
                f"max={max(self.best.values):g}"
            )
            lines.append(spread)
        return "\n".join(lines)


class TrajectoryJournal:
    """Append-only JSONL trail of scored candidates, resumable.

    Line 1 binds the journal to its exploration: package version +
    calibration fingerprint (the cache's invalidation contract) plus
    the space hash and the objective/optimizer payloads — resuming
    under *any* changed ingredient starts fresh (the stale journal is
    truncated on first write).  Each later line is one candidate::

        {"key": "2-0-1", "candidate": [...], "assignment": [...],
         "score": ..., "values": [...], "feasible": true,
         "error": null, "cells": 3}

    Lines are flushed whole, so a killed exploration loses at most the
    candidate in progress; a torn tail line is skipped on load (the
    same contract as :class:`repro.run.runner.SweepCheckpoint`).
    Deliberately wall-clock-free: two runs from one seed write
    byte-identical journals.
    """

    def __init__(
        self,
        path: str | Path,
        space: SearchSpace,
        objective: Objective,
        optimizer: Optimizer,
    ) -> None:
        from repro.run.cache import _package_version, calibration_fingerprint

        self.path = Path(path)
        self._header = {
            "explore": _JOURNAL_VERSION,
            "context": f"{_package_version()}|{calibration_fingerprint()}",
            "space": space.key(),
            "objective": objective.payload(),
            "optimizer": optimizer.payload(),
        }
        self._records: dict[str, dict[str, Any]] = {}
        self._fh = None
        self._valid = False
        #: byte length of the journal's intact prefix — everything up
        #: to (and including) the last whole line that parsed.  A torn
        #: tail is truncated away before the first append, so a healed
        #: record is never glued onto a corrupt fragment.
        self._intact = 0
        self._load()

    def _load(self) -> None:
        try:
            data = self.path.read_bytes()
        except OSError:
            return
        if not data:
            return
        lines = data.split(b"\n")
        try:
            header = json.loads(lines[0])
        except ValueError:
            return
        if header != self._header:
            return
        self._valid = True
        self._intact = len(lines[0]) + 1
        for line in lines[1:]:
            try:
                entry = json.loads(line)
                self._records[entry["key"]] = entry
            except (ValueError, KeyError, TypeError):
                # Torn tail from a kill: lines are flushed whole, so
                # everything before it is intact — and nothing after
                # it is trusted.
                break
            self._intact += len(line) + 1

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> dict[str, Any] | None:
        return self._records.get(key)

    def put(self, key: str, entry: dict[str, Any]) -> None:
        """Journal one scored candidate (idempotent per key)."""
        if key in self._records:
            return
        self._records[key] = entry
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self._valid and self.path.exists():
                os.truncate(self.path, self._intact)
                self._fh = open(self.path, "a")
            else:
                self._fh = open(self.path, "w")
                self._fh.write(
                    json.dumps(self._header, sort_keys=True) + "\n"
                )
                self._valid = True
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ExploreDriver:
    """Runs one exploration: ask candidates, evaluate through the
    serve tier, tell losses, track the best, journal the trail."""

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        optimizer: Optimizer | str = "random",
        seed: int = 0,
        runner: Runner | None = None,
        journal: str | Path | TrajectoryJournal | None = None,
        max_cells: int | None = None,
        max_seconds: float | None = None,
        batch_size: int = 64,
        max_batch: int = 32,
    ) -> None:
        if max_cells is not None and max_cells < 1:
            raise ConfigurationError(
                f"max_cells must be >= 1, got {max_cells}"
            )
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.space = space
        self.objective = objective
        self.optimizer = (
            make_optimizer(optimizer, space, seed=seed)
            if isinstance(optimizer, str) else optimizer
        )
        self.runner = runner
        self._owned_runner = runner is None
        self.journal = (
            journal
            if journal is None or isinstance(journal, TrajectoryJournal)
            else TrajectoryJournal(
                journal, space, objective, self.optimizer
            )
        )
        self.max_cells = max_cells
        self.max_seconds = max_seconds
        #: candidates asked per optimizer round; replicate cells are
        #: submitted to the serve tier in one call per round, so the
        #: asyncio/service setup amortizes across the whole batch.
        self.batch_size = batch_size
        #: runner micro-batch size inside one serve submission.
        self.max_batch = max_batch
        #: in-run memo: candidate key → (score, feasible) — the guard
        #: that re-proposed candidates never cost cells.
        self._memo: dict[str, tuple[float | None, bool]] = {}

    # -- evaluation -----------------------------------------------------------

    def _evaluate(
        self, todo: list[tuple[int, ...]], stats: ExploreStats
    ) -> list[ExploreRecord]:
        """Score a batch of fresh candidates through the serve tier."""
        from repro.serve import submit as serve_submit

        fans = [
            self.objective.replicas(self.space.scenario_for(c)) for c in todo
        ]
        cells = [sc for fan in fans for sc in fan]
        results = serve_submit(
            cells, runner=self.runner, max_batch=self.max_batch
        )
        stats.cells_submitted += len(cells)
        records = []
        offset = 0
        for cand, fan in zip(todo, fans):
            outcome = results[offset:offset + len(fan)]
            offset += len(fan)
            rows = [r.rows for r in outcome if r.ok]
            errors = [r.error for r in outcome if not r.ok]
            score: float | None = None
            values: tuple[float, ...] = ()
            feasible = True
            error: str | None = None
            if not rows:
                error = errors[0] if errors else "no replicate produced rows"
            else:
                try:
                    values = self.objective.metric_values(rows)
                    score, feasible = self.objective.score(rows)
                except ConfigurationError as exc:
                    error = str(exc)
                    score, feasible = None, True
            records.append(ExploreRecord(
                index=0,  # assigned by the loop, evaluation order
                candidate=cand,
                assignment=self.space.assignment(cand),
                score=score,
                values=values,
                feasible=feasible,
                error=error,
                cells=len(fan),
            ))
        return records

    def _replay(self, cand: tuple[int, ...], entry: dict[str, Any]) -> ExploreRecord:
        return ExploreRecord(
            index=0,
            candidate=cand,
            assignment=self.space.assignment(cand),
            score=entry.get("score"),
            values=tuple(entry.get("values", ())),
            feasible=bool(entry.get("feasible", True)),
            error=entry.get("error"),
            cells=0,
            replayed=True,
        )

    @staticmethod
    def _entry(key: str, record: ExploreRecord) -> dict[str, Any]:
        return {
            "key": key,
            "candidate": list(record.candidate),
            "assignment": [[k, v] for k, v in record.assignment],
            "score": record.score,
            "values": list(record.values),
            "feasible": record.feasible,
            "error": record.error,
            "cells": record.cells,
        }

    # -- the loop -------------------------------------------------------------

    def run(self) -> ExploreResult:
        stats = ExploreStats()
        records: list[ExploreRecord] = []
        best: ExploreRecord | None = None
        start = time.monotonic()
        try:
            while True:
                if (
                    self.max_seconds is not None
                    and time.monotonic() - start >= self.max_seconds
                ):
                    stats.stopped = "max_seconds"
                    break
                batch = self.optimizer.ask(self.batch_size)
                if not batch:
                    stats.stopped = "exhausted"
                    break

                todo: list[tuple[int, ...]] = []
                memoized: set[tuple[int, ...]] = set()
                replays: dict[tuple[int, ...], ExploreRecord] = {}
                for cand in batch:
                    key = candidate_id(cand)
                    if key in self._memo:
                        stats.memo_hits += 1
                        memoized.add(cand)
                        continue
                    entry = (
                        self.journal.get(key)
                        if self.journal is not None else None
                    )
                    if entry is not None:
                        stats.replayed += 1
                        replays[cand] = self._replay(cand, entry)
                    else:
                        todo.append(cand)

                # Cell budget: trim the fresh portion so the fan never
                # overshoots; memoized/replayed candidates stay free.
                budget_hit = False
                if self.max_cells is not None:
                    remaining = self.max_cells - stats.cells_submitted
                    fit: list[tuple[int, ...]] = []
                    for cand in todo:
                        need = self.objective.repeats
                        if need > remaining:
                            budget_hit = True
                            break
                        remaining -= need
                        fit.append(cand)
                    todo = fit

                fresh = self._evaluate(todo, stats) if todo else []
                fresh_by_cand = {r.candidate: r for r in fresh}

                # Process in ask order so the trajectory (and the
                # optimizer's tell order) is reproducible.
                for cand in batch:
                    key = candidate_id(cand)
                    if cand in memoized:
                        # Re-proposed within this run: tell the memo
                        # loss again; no record, no journal line.
                        score, feasible = self._memo[key]
                        self.optimizer.tell(
                            cand, self.objective.loss(score, feasible)
                        )
                        continue
                    record = replays.get(cand) or fresh_by_cand.get(cand)
                    if record is None:
                        # Trimmed by the cell budget: nothing to tell.
                        continue
                    record = dc_replace(record, index=len(records))
                    records.append(record)
                    stats.candidates += 1
                    if record.error is not None:
                        stats.errors += 1
                    if not record.feasible:
                        stats.infeasible += 1
                    self._memo[key] = (record.score, record.feasible)
                    loss = self.objective.loss(
                        record.score, record.feasible
                    )
                    self.optimizer.tell(cand, loss)
                    if self.journal is not None and not record.replayed:
                        self.journal.put(key, self._entry(key, record))
                    if (
                        record.ok and record.feasible
                        and record.score is not None
                        and (
                            best is None
                            or self.objective.better(
                                record.score, best.score
                            )
                        )
                    ):
                        best = record

                if budget_hit:
                    stats.stopped = "max_cells"
                    break
        finally:
            if self.journal is not None:
                self.journal.close()
            if self._owned_runner and self.runner is not None:
                self.runner.close()
        return ExploreResult(
            space=self.space, objective=self.objective,
            best=best, records=records, stats=stats,
        )


def explore(
    space: SearchSpace,
    objective: Objective,
    optimizer: Optimizer | str = "random",
    seed: int = 0,
    **kwargs: Any,
) -> ExploreResult:
    """One-call exploration: build a driver, run it, return the result."""
    return ExploreDriver(
        space, objective, optimizer=optimizer, seed=seed, **kwargs
    ).run()
