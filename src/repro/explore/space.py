"""Declarative design spaces over the simulated machine.

A :class:`SearchSpace` is the explore tier's counterpart of a sweep
declaration: a workload id plus an ordered tuple of
:class:`Dimension`\\ s, each naming one knob and the finite set of
values it may take.  Like a :class:`~repro.run.scenario.Scenario`, a
space is frozen, hashable pure data — it can be content-hashed into a
trajectory journal header, pickled, and compared.

Dimension names route by prefix, mirroring how :func:`repro.run.sweep`
splits machine/placement/parameter concerns:

* ``machine.<field>``   — a :class:`~repro.run.scenario.MachineSpec`
  field (``clock_ghz``, ``l3_mb``, ``n_nodes``, ``fabric``, ...);
* ``placement.<field>`` — a :class:`~repro.run.scenario.PlacementSpec`
  field (``n_ranks``, ``threads_per_rank``, ``pinned``, ...);
* ``faults``            — whole :class:`~repro.faults.FaultSpec`
  alternatives (values are fault specs, or ``--faults``-grammar
  strings, or ``None`` for a healthy machine);
* anything else         — a workload parameter, passed straight to
  the cell function.

A *candidate* is one index per dimension (a ``tuple[int, ...]``) —
the optimizer currency.  :meth:`SearchSpace.scenario_for` materializes
a candidate into a Scenario through the same
:func:`repro.run.scenario.scenario` constructor every other tier uses,
so candidate cells hash, cache, fault-overlay and fidelity-dispatch
exactly like hand-declared ones.

The CLI grammar (:func:`parse_space`) reuses the ``--faults`` style:
semicolon-separated ``name=...`` clauses, each either an explicit
value list (``machine.l3_mb=6,9,12``) or a ``lo:hi:n`` linear range
(``machine.clock_ghz=1.3:1.9:4``).  The faults dimension separates
alternatives with ``|`` and joins clauses *within* one alternative
with ``+`` (``;`` and ``,`` already mean something): e.g.
``faults=none|boot_cpuset|degrade:latency_factor=4+boot_cpuset``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields as dc_fields
from typing import Any, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec, format_faults, parse_faults
from repro.run.scenario import (
    Fidelity,
    MachineSpec,
    PlacementSpec,
    Scenario,
    canonical_value,
    scenario,
)

__all__ = [
    "Dimension",
    "SearchSpace",
    "parse_space",
    "search_space",
]

#: Legal MachineSpec / PlacementSpec field names, for loud validation
#: at space declaration time instead of deep inside a candidate build.
_MACHINE_FIELDS = tuple(f.name for f in dc_fields(MachineSpec))
_PLACEMENT_FIELDS = tuple(f.name for f in dc_fields(PlacementSpec))


def _as_fault_value(value: Any, name: str) -> FaultSpec | None:
    """Canonicalize one faults-dimension value: FaultSpec, a
    ``--faults`` grammar string, or None (healthy)."""
    if value is None or isinstance(value, FaultSpec):
        return value
    if isinstance(value, str):
        if value in ("", "none", "None"):
            return None
        return parse_faults(value)
    raise ConfigurationError(
        f"space dimension {name!r}: fault values must be FaultSpec "
        f"instances, --faults strings, or None; got {value!r}"
    )


@dataclass(frozen=True)
class Dimension:
    """One knob of a search space: a name and its finite value set."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("space dimension needs a name")
        values = tuple(self.values)
        if not values:
            raise ConfigurationError(
                f"space dimension {self.name!r} has no values"
            )
        if self.name == "faults":
            values = tuple(
                _as_fault_value(v, self.name) for v in values
            )
        else:
            values = tuple(
                canonical_value(v, f"space dimension {self.name}=")
                for v in values
            )
        object.__setattr__(self, "values", values)

    def payload_values(self) -> list[Any]:
        """JSON-safe value forms (fault specs as ``--faults`` strings)."""
        if self.name != "faults":
            return list(self.values)
        return [
            "none" if v is None else format_faults(v) for v in self.values
        ]


@dataclass(frozen=True)
class SearchSpace:
    """A workload id plus the dimensions a candidate may vary.

    ``base`` holds fixed ``(name, value)`` pairs every candidate
    shares (routed by the same prefixes as dimensions); ``fidelity``
    is the tier every candidate cell runs at — ``analytic`` by
    default, because exploration lives on the surrogate fast path and
    promotes finalists explicitly.
    """

    workload: str
    dimensions: tuple[Dimension, ...]
    base: tuple[tuple[str, Any], ...] = ()
    fidelity: str = Fidelity.ANALYTIC.value

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ConfigurationError("a search space needs >= 1 dimension")
        seen: set[str] = set()
        for dim in self.dimensions:
            if dim.name in seen:
                raise ConfigurationError(
                    f"duplicate space dimension {dim.name!r}"
                )
            seen.add(dim.name)
            self._check_route(dim.name)
        for name, _ in self.base:
            if name in seen:
                raise ConfigurationError(
                    f"base value {name!r} shadows a dimension"
                )
            self._check_route(name)
        if isinstance(self.fidelity, Fidelity):
            object.__setattr__(self, "fidelity", self.fidelity.value)

    @staticmethod
    def _check_route(name: str) -> None:
        if name.startswith("machine."):
            field = name[len("machine."):]
            if field not in _MACHINE_FIELDS:
                raise ConfigurationError(
                    f"unknown machine spec field {field!r}; "
                    f"expected one of {_MACHINE_FIELDS}"
                )
        elif name.startswith("placement."):
            field = name[len("placement."):]
            if field not in _PLACEMENT_FIELDS:
                raise ConfigurationError(
                    f"unknown placement spec field {field!r}; "
                    f"expected one of {_PLACEMENT_FIELDS}"
                )

    # -- geometry -------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(d.values) for d in self.dimensions)

    @property
    def size(self) -> int:
        """Total number of candidates (the full grid)."""
        n = 1
        for d in self.dimensions:
            n *= len(d.values)
        return n

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    def candidates(self) -> Iterable[tuple[int, ...]]:
        """Every candidate in grid order (first dimension outermost),
        matching :func:`repro.run.sweep`'s expansion order."""
        return itertools.product(*(range(n) for n in self.shape))

    def check_candidate(self, candidate: tuple[int, ...]) -> None:
        if len(candidate) != len(self.dimensions):
            raise ConfigurationError(
                f"candidate {candidate!r} has {len(candidate)} indices "
                f"for {len(self.dimensions)} dimensions"
            )
        for i, (idx, dim) in enumerate(zip(candidate, self.dimensions)):
            if not 0 <= idx < len(dim.values):
                raise ConfigurationError(
                    f"candidate index {idx} out of range for "
                    f"dimension {i} ({dim.name!r}, {len(dim.values)} values)"
                )

    # -- materialization ------------------------------------------------------

    def assignment(self, candidate: tuple[int, ...]) -> tuple[tuple[str, Any], ...]:
        """``(name, value)`` pairs for one candidate, dimension order
        (fault specs rendered as ``--faults`` strings so the pairs are
        JSON-safe — the journal/report form)."""
        self.check_candidate(candidate)
        out = []
        for idx, dim in zip(candidate, self.dimensions):
            value = dim.values[idx]
            if dim.name == "faults":
                value = "none" if value is None else format_faults(value)
            out.append((dim.name, value))
        return tuple(out)

    def scenario_for(self, candidate: tuple[int, ...]) -> Scenario:
        """Materialize one candidate into a Scenario."""
        self.check_candidate(candidate)
        machine: dict[str, Any] = {}
        placement: dict[str, Any] = {}
        params: dict[str, Any] = {}
        faults: FaultSpec | None = None
        pairs = list(self.base) + [
            (dim.name, dim.values[idx])
            for idx, dim in zip(candidate, self.dimensions)
        ]
        for name, value in pairs:
            if name == "faults":
                faults = _as_fault_value(value, name)
            elif name.startswith("machine."):
                machine[name[len("machine."):]] = value
            elif name.startswith("placement."):
                placement[name[len("placement."):]] = value
            else:
                params[name] = value
        if machine:
            # A "machine.config" dim routes to the zoo form; pure
            # legacy dims (clock/l3/...) keep their historic cache
            # keys via the sanctioned legacy constructor.
            if "config" in machine:
                mspec = MachineSpec(**machine)
            else:
                mspec = MachineSpec.legacy(**machine)
        else:
            mspec = None
        pspec = PlacementSpec(**placement) if placement else None
        if pspec is not None and mspec is None:
            mspec = MachineSpec.legacy()
        return scenario(
            self.workload, machine=mspec, placement=pspec,
            faults=faults, fidelity=self.fidelity, **params,
        )

    # -- identity -------------------------------------------------------------

    def payload(self) -> dict[str, Any]:
        """Canonical JSON-safe form (journal header, content hash)."""
        return {
            "workload": self.workload,
            "fidelity": self.fidelity,
            "base": [[k, v] for k, v in _payload_base(self.base)],
            "dimensions": [
                {"name": d.name, "values": d.payload_values()}
                for d in self.dimensions
            ],
        }

    def key(self) -> str:
        """Stable content hash of this space (hex digest)."""
        blob = json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        dims = " x ".join(
            f"{d.name}[{len(d.values)}]" for d in self.dimensions
        )
        return f"{self.workload}: {dims} = {self.size} candidates"


def _payload_base(base: tuple[tuple[str, Any], ...]):
    for name, value in base:
        if name == "faults" and isinstance(value, FaultSpec):
            value = format_faults(value)
        yield name, value


def search_space(
    workload: str,
    dims: Mapping[str, Iterable[Any]],
    base: Mapping[str, Any] | None = None,
    fidelity: str | Fidelity = Fidelity.ANALYTIC,
) -> SearchSpace:
    """Build a :class:`SearchSpace` from a dict of dimensions, the
    ergonomic counterpart of :func:`repro.run.sweep`'s ``axes``."""
    return SearchSpace(
        workload=workload,
        dimensions=tuple(
            Dimension(name, tuple(values)) for name, values in dims.items()
        ),
        base=tuple(sorted((base or {}).items())),
        fidelity=fidelity,
    )


# -- the --space mini-language ------------------------------------------------


def _parse_scalar(text: str) -> Any:
    """One grammar value: bool, None, int, float, or string."""
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    if text in ("none", "None"):
        return None
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_range(text: str, name: str) -> list[Any] | None:
    """``lo:hi:n`` linear range, or None when the clause isn't one.
    Integral endpoints with integral steps yield ints (so
    ``l3_mb=6:12:3`` gives ``6, 9, 12``, not floats)."""
    parts = text.split(":")
    if len(parts) != 3:
        return None
    try:
        lo, hi, n = float(parts[0]), float(parts[1]), int(parts[2])
    except ValueError:
        return None
    if n < 1:
        raise ConfigurationError(
            f"space dimension {name!r}: range count must be >= 1, got {n}"
        )
    if n == 1:
        values = [lo]
    else:
        step = (hi - lo) / (n - 1)
        values = [round(lo + i * step, 10) for i in range(n)]
    out = []
    for v in values:
        out.append(int(v) if float(v).is_integer() else v)
    return out


def _parse_fault_values(text: str) -> list[FaultSpec | None]:
    """Faults-dimension alternatives: ``|``-separated specs, ``+``
    joining clauses within one spec, ``none`` for a healthy machine."""
    values: list[FaultSpec | None] = []
    for alt in text.split("|"):
        alt = alt.strip()
        if alt in ("", "none", "None"):
            values.append(None)
        else:
            values.append(parse_faults(alt.replace("+", ";")))
    return values


def parse_space(
    text: str,
    workload: str,
    base: Mapping[str, Any] | None = None,
    fidelity: str | Fidelity = Fidelity.ANALYTIC,
) -> SearchSpace:
    """Parse a ``--space`` string into a :class:`SearchSpace`.

    Grammar: semicolon-separated dimensions, each
    ``name=v1,v2,...`` (explicit values) or ``name=lo:hi:n`` (linear
    range, inclusive endpoints).  The ``faults`` dimension separates
    alternatives with ``|`` and joins fault clauses within one
    alternative with ``+``.  Examples::

        machine.clock_ghz=1.3:1.9:4; machine.l3_mb=3,6,9,12
        placement.n_ranks=64,128,256; placement.threads_per_rank=1,2,4
        cpus=64; faults=none|boot_cpuset|degrade:latency_factor=4+seed=3
    """
    dims: list[Dimension] = []
    for clause in filter(None, (c.strip() for c in text.split(";"))):
        name, eq, valuetext = clause.partition("=")
        name = name.strip()
        valuetext = valuetext.strip()
        if not eq or not valuetext:
            raise ConfigurationError(
                f"--space: expected name=values in {clause!r}"
            )
        if name == "faults":
            values: list[Any] = _parse_fault_values(valuetext)
        else:
            ranged = _parse_range(valuetext, name)
            values = (
                ranged if ranged is not None
                else [_parse_scalar(v.strip()) for v in valuetext.split(",")]
            )
        dims.append(Dimension(name, tuple(values)))
    if not dims:
        raise ConfigurationError("--space: no dimensions given")
    return SearchSpace(
        workload=workload,
        dimensions=tuple(dims),
        base=tuple(sorted((base or {}).items())),
        fidelity=fidelity,
    )
