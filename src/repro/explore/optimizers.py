"""Pluggable search strategies over a :class:`SearchSpace`.

Every optimizer speaks the ask/tell protocol:

* ``ask(n)`` — up to ``n`` candidates (index tuples) to evaluate
  next; an empty list means the strategy is exhausted;
* ``tell(candidate, loss)`` — the evaluated loss (the driver's
  minimized form: infeasible/failed candidates arrive as ``+inf``).

All three strategies are deterministic functions of their
construction arguments: same space + same seed → the same ask
sequence given the same tell sequence, which is what makes two runs
of the same exploration produce byte-identical trajectory journals.
None of them ever proposes a candidate twice, and each terminates on
its own (grid and random exhaust the space; the evolutionary loop is
generation-bounded) — the driver's budget just stops them earlier.

``random.Random`` (Mersenne Twister) is seeded per optimizer
instance; nothing reads global RNG state.
"""

from __future__ import annotations

import random
from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.explore.space import SearchSpace

__all__ = [
    "EvolutionarySearch",
    "GridSearch",
    "Optimizer",
    "RandomSearch",
    "make_optimizer",
]


class Optimizer:
    """Base ask/tell strategy (see module docstring for the protocol)."""

    #: grammar name (``--optimizer``) and journal-header tag.
    name = "optimizer"

    def __init__(self, space: SearchSpace) -> None:
        self.space = space

    def ask(self, n: int) -> list[tuple[int, ...]]:
        raise NotImplementedError

    def tell(self, candidate: tuple[int, ...], loss: float) -> None:
        """Default: strategies that don't adapt ignore feedback."""

    def payload(self) -> dict[str, Any]:
        """JSON-safe identity for the trajectory journal header."""
        return {"name": self.name}


class GridSearch(Optimizer):
    """Exhaustive sweep in grid order — the baseline every adaptive
    strategy is judged against, and the right tool when the budget
    covers the whole space anyway."""

    name = "grid"

    def __init__(self, space: SearchSpace) -> None:
        super().__init__(space)
        self._iter: Iterator[tuple[int, ...]] = space.candidates()

    def ask(self, n: int) -> list[tuple[int, ...]]:
        out = []
        for cand in self._iter:
            out.append(cand)
            if len(out) >= n:
                break
        return out


class RandomSearch(Optimizer):
    """Seeded uniform sampling without replacement.

    Draws index tuples from the full grid until ``max_samples`` (or
    the space) is exhausted.  Sampling is rejection-based over the
    candidate tuple itself, so the sequence depends only on
    ``(space.shape, seed)`` — not on evaluation results or timing.
    """

    name = "random"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        max_samples: int | None = None,
    ) -> None:
        super().__init__(space)
        self.seed = seed
        self._rng = random.Random(seed)
        self._seen: set[tuple[int, ...]] = set()
        self._budget = space.size if max_samples is None else min(
            max_samples, space.size
        )

    def _draw(self) -> tuple[int, ...] | None:
        if len(self._seen) >= self.space.size:
            return None
        while True:
            cand = tuple(
                self._rng.randrange(n) for n in self.space.shape
            )
            if cand not in self._seen:
                return cand

    def ask(self, n: int) -> list[tuple[int, ...]]:
        out = []
        while len(out) < n and self._budget > 0:
            cand = self._draw()
            if cand is None:
                break
            self._seen.add(cand)
            self._budget -= 1
            out.append(cand)
        return out

    def payload(self) -> dict[str, Any]:
        return {"name": self.name, "seed": self.seed}


class EvolutionarySearch(Optimizer):
    """A (μ + λ)-style generational loop: seeded random population,
    elite selection by loss, uniform crossover plus per-dimension
    mutation — the classic shape for categorical spaces like this one
    (every dimension is a finite value set, so "mutate" means "pick a
    different index").

    Determinism: breeding draws only from the instance RNG and from
    losses the driver already told; ties rank by tell order.  A
    generation breeds only after every asked member is told, so the
    ask sequence is a pure function of (space, seed, losses).
    Candidates never repeat across the whole run — duplicates from
    crossover are re-mutated, and a fully-explored neighborhood falls
    back to fresh random draws, so the loop keeps covering new ground
    until ``generations`` are spent or the space is exhausted.
    """

    name = "evolve"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        population: int = 16,
        generations: int = 16,
        elite_frac: float = 0.25,
        mutation: float = 0.25,
    ) -> None:
        super().__init__(space)
        if population < 2:
            raise ConfigurationError(
                f"evolve: population must be >= 2, got {population}"
            )
        if generations < 1:
            raise ConfigurationError(
                f"evolve: generations must be >= 1, got {generations}"
            )
        if not 0.0 < elite_frac <= 1.0 or not 0.0 <= mutation <= 1.0:
            raise ConfigurationError(
                f"evolve: elite_frac in (0,1] and mutation in [0,1] "
                f"required, got {elite_frac}/{mutation}"
            )
        self.seed = seed
        self.population = population
        self.generations = generations
        self.elite_frac = elite_frac
        self.mutation = mutation
        self._rng = random.Random(seed)
        self._seen: set[tuple[int, ...]] = set()
        #: (loss, tell_order, candidate) for every told candidate.
        self._told: list[tuple[float, int, tuple[int, ...]]] = []
        self._outstanding: set[tuple[int, ...]] = set()
        self._queue: list[tuple[int, ...]] = []
        self._generation = 0

    # -- breeding -------------------------------------------------------------

    def _random_candidate(self) -> tuple[int, ...] | None:
        if len(self._seen) >= self.space.size:
            return None
        while True:
            cand = tuple(self._rng.randrange(n) for n in self.space.shape)
            if cand not in self._seen:
                return cand

    def _elites(self) -> list[tuple[int, ...]]:
        k = max(1, int(self.population * self.elite_frac))
        ranked = sorted(self._told)  # loss, then tell order
        return [cand for _, _, cand in ranked[:k]]

    def _offspring(self, elites: list[tuple[int, ...]]) -> tuple[int, ...] | None:
        """One child: crossover of two elites, mutated until novel.

        A few mutation rounds usually suffice; a crowded neighborhood
        falls back to a fresh random draw so the generation always
        fills (or the space is exhausted and we stop).
        """
        a = self._rng.choice(elites)
        b = self._rng.choice(elites)
        child = list(
            a[i] if self._rng.random() < 0.5 else b[i]
            for i in range(len(a))
        )
        for _ in range(8):
            mutated = [
                self._rng.randrange(n)
                if self._rng.random() < self.mutation else gene
                for gene, n in zip(child, self.space.shape)
            ]
            cand = tuple(mutated)
            if cand not in self._seen:
                return cand
            child = mutated
        return self._random_candidate()

    def _refill(self) -> None:
        """Breed the next generation into the ask queue."""
        if self._generation >= self.generations:
            return
        if self._outstanding:
            # Wait for every asked member to be told before breeding —
            # the determinism contract.
            return
        self._generation += 1
        elites = self._elites()
        for _ in range(self.population):
            cand = (
                self._random_candidate() if not elites
                else self._offspring(elites)
            )
            if cand is None:
                break
            self._seen.add(cand)
            self._queue.append(cand)

    # -- protocol -------------------------------------------------------------

    def ask(self, n: int) -> list[tuple[int, ...]]:
        if not self._queue:
            self._refill()
        out = self._queue[:n]
        del self._queue[:n]
        self._outstanding.update(out)
        return out

    def tell(self, candidate: tuple[int, ...], loss: float) -> None:
        self._outstanding.discard(candidate)
        self._told.append((loss, len(self._told), candidate))

    def payload(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "population": self.population,
            "generations": self.generations,
            "elite_frac": self.elite_frac,
            "mutation": self.mutation,
        }


_OPTIMIZERS = {
    "grid": GridSearch,
    "random": RandomSearch,
    "evolve": EvolutionarySearch,
}


def make_optimizer(
    name: str, space: SearchSpace, seed: int = 0, **kwargs: Any
) -> Optimizer:
    """Build an optimizer by grammar name (``--optimizer``)."""
    cls = _OPTIMIZERS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown optimizer {name!r}; expected one of "
            f"{sorted(_OPTIMIZERS)}"
        )
    if cls is GridSearch:
        return GridSearch(space)
    return cls(space, seed=seed, **kwargs)
