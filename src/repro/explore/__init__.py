"""Design-space exploration over the simulated machine.

The top layer of the stack: where :mod:`repro.run` answers "what does
*this* configuration do?" and :mod:`repro.serve` answers it under
load, :mod:`repro.explore` inverts the question — "which
machine/placement/fault configuration optimizes a metric?" — and
searches for the answer at analytic-tier throughput.

Four declarative pieces:

* :class:`SearchSpace` (:mod:`repro.explore.space`) — frozen,
  hashable dimensions over machine parameters, placement policies,
  workload parameters and fault specs;
* :class:`Objective` (:mod:`repro.explore.objective`) — which result
  column to optimize, with ``quantile=``/``repeats=`` replicate fans
  for variability-aware scoring;
* the optimizers (:mod:`repro.explore.optimizers`) — ``grid``,
  seeded ``random``, and an evolutionary ``evolve`` loop, all
  deterministic from one seed;
* :class:`ExploreDriver` (:mod:`repro.explore.driver`) — the loop
  that submits candidate batches through :func:`repro.serve.submit`,
  enforces cell/wall-clock budgets, and journals the trajectory to a
  resumable JSONL file.

Worked studies live in :mod:`repro.explore.studies`; the CLI verb is
``repro explore``; the end-to-end gate is ``make explore-smoke``.
"""

from __future__ import annotations

from repro.explore.driver import (
    ExploreDriver,
    ExploreRecord,
    ExploreResult,
    ExploreStats,
    TrajectoryJournal,
    explore,
)
from repro.explore.objective import Objective, parse_objective
from repro.explore.optimizers import (
    EvolutionarySearch,
    GridSearch,
    Optimizer,
    RandomSearch,
    make_optimizer,
)
from repro.explore.space import (
    Dimension,
    SearchSpace,
    parse_space,
    search_space,
)
from repro.explore.studies import STUDIES, run_study, study_driver

__all__ = [
    "Dimension",
    "EvolutionarySearch",
    "ExploreDriver",
    "ExploreRecord",
    "ExploreResult",
    "ExploreStats",
    "GridSearch",
    "Objective",
    "Optimizer",
    "RandomSearch",
    "STUDIES",
    "SearchSpace",
    "TrajectoryJournal",
    "explore",
    "make_optimizer",
    "parse_objective",
    "parse_space",
    "run_study",
    "search_space",
    "study_driver",
]
