"""The two worked exploration studies from ROADMAP item 3.

Both are full, runnable demonstrations of the explore tier —
``repro explore --study cheapest-bx2`` / ``--study worst-faults`` —
and the templates to copy for new studies.

**cheapest-bx2** — "find the cheapest BX2 variant that keeps
OVERFLOW-D within 5% of stock."  The paper's ablation experiments
already separate the BX2b's clock (1.6 vs 1.5 GHz) and L3 (9 vs 6 MB)
contributions; this study inverts them into a procurement question.
The search space crosses clock and L3 bins through the same
:func:`~repro.machine.cluster.custom_bx2` builder the ablations use;
each candidate prices OVERFLOW-D's best per-step time against the
stock 1.6 GHz / 9 MB part and a part-cost proxy.  The objective
minimizes cost subject to ``rel_stock <= 1.05``.

**worst-faults** — "worst-case fault spec under a budget."  The
space enumerates fault alternatives (link degradation severities,
the §4.6.2 boot-cpuset contention, and combinations) crossed with
BT-MZ process counts; the objective *minimizes* delivered Gflop/s —
i.e. finds the spec that hurts most — under a candidate budget.
Path faults and the boot-cpuset/MPT anomalies reach the closed-form
timing models through the injector, so the whole study runs at
analytic-tier throughput.

**cheapest-machine** — "cheapest zoo machine that keeps BT-MZ within
5% of Columbia."  The machine-zoo redesign makes the *machine itself*
a searchable axis: the space's only dimension is ``machine.config``
over every registered preset, so each candidate cell builds a whole
different cluster through the registry.  The cell prices BT-MZ
throughput against the Columbia preset and a name-free
:func:`~repro.machine.zoo.cluster_cost` proxy; the objective
minimizes cost subject to ``rel_columbia >= 0.95``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.explore.driver import ExploreDriver, ExploreResult
from repro.explore.objective import Objective
from repro.explore.space import SearchSpace, search_space
from repro.run.workloads import workload
from repro.surrogate.registry import register_exact

__all__ = [
    "STUDIES",
    "part_cost",
    "run_study",
    "study_driver",
]

#: The stock BX2b part the cheapest-bx2 study is anchored to.
STOCK_CLOCK_GHZ = 1.6
STOCK_L3_MB = 9

#: Within-5%-of-stock feasibility bound (the ROADMAP's phrasing).
REL_STOCK_BOUND = 1.05


def part_cost(clock_ghz: float, l3_mb: float) -> float:
    """Relative part-cost proxy (stock = 1.0).

    Faster clock bins price superlinearly (binning yield) and L3
    SRAM prices roughly linearly in megabytes; normalized so the
    stock 1.6 GHz / 9 MB part costs exactly 1.  A procurement study
    would substitute real price points — the *objective plumbing* is
    what this study demonstrates.
    """
    raw = (clock_ghz / STOCK_CLOCK_GHZ) ** 2 + 0.15 * l3_mb
    stock = 1.0 + 0.15 * STOCK_L3_MB
    return round(raw / stock, 6)


@lru_cache(maxsize=None)
def _overflow_step(clock_ghz: float, l3_mb: int, cpus: int) -> float:
    """Best OVERFLOW-D per-step time on one custom BX2 variant.

    Memoized: the stock reference recomputes per candidate otherwise,
    and the rotor-system grouping inside the model is the expensive
    part of a cell.
    """
    from repro.apps.overflow import OverflowModel
    from repro.machine.cluster import custom_bx2

    model = OverflowModel(cluster=custom_bx2(clock_ghz, l3_mb))
    return model.best_step_time(cpus).exec


@workload("explore.overflow_variant")
def _overflow_variant_cell(
    clock_ghz: float, l3_mb: int, cpus: int = 256
) -> list[tuple]:
    """One BX2-variant candidate: step time, ratio to stock, cost.

    Columns: ``(clock_ghz, l3_mb, cpus, step_s, rel_stock, cost)``.
    Closed-form end to end (the OVERFLOW model never touches the
    DES), so the analytic tier serves it inline.
    """
    step = _overflow_step(clock_ghz, l3_mb, cpus)
    stock = _overflow_step(STOCK_CLOCK_GHZ, STOCK_L3_MB, cpus)
    return [(
        clock_ghz, l3_mb, cpus,
        round(step, 4), round(step / stock, 4),
        part_cost(clock_ghz, l3_mb),
    )]


register_exact("explore.overflow_variant")


def cheapest_bx2_space(cpus: int = 256) -> SearchSpace:
    """Clock bins x L3 bins around (and below) the stock BX2b."""
    return search_space(
        "explore.overflow_variant",
        {
            "clock_ghz": (1.3, 1.4, 1.5, 1.6, 1.7),
            "l3_mb": (3, 6, 9, 12),
        },
        base={"cpus": cpus},
    )


def cheapest_bx2_objective() -> Objective:
    """Minimize part cost subject to rel_stock <= 1.05 (columns of
    :func:`_overflow_variant_cell`: 4 = rel_stock, 5 = cost)."""
    return Objective(
        metric=5, mode="min",
        constraint=4, constraint_max=REL_STOCK_BOUND,
    )


def worst_faults_space() -> SearchSpace:
    """Fault alternatives x BT-MZ process counts (fig9's cell).

    Every alternative is analytic-visible: link degradations reprice
    the network paths, the boot-cpuset/MPT anomalies stretch compute
    in the MZ timing model.  ``threads=2`` keeps full-node layouts in
    range so the boot-cpuset contention can actually bite.
    """
    return search_space(
        "fig9.cell",
        {
            "faults": (
                "none",
                "boot_cpuset",
                "degrade:link_class=any,latency_factor=4",
                "degrade:link_class=any,latency_factor=8,bandwidth_factor=0.25",
                "degrade:link_class=intra_node,latency_factor=16"
                ";boot_cpuset",
                "degrade:link_class=any,latency_factor=8,"
                "bandwidth_factor=0.125;boot_cpuset",
            ),
            "processes": (16, 64, 256),
        },
        base={"threads": 2},
    )


def worst_faults_objective(repeats: int = 5, seed: int = 0) -> Objective:
    """Minimize delivered Gflop/s (fig9 column 3) at the p95 of
    seeded replicates — "worst case" on both axes: the nastiest spec,
    judged by its bad tail rather than its mean.  On the analytic
    tier the closed-form model is noise-free, so the replicates
    degenerate to identical values (every quantile equals them); the
    same study at ``--fidelity full`` spreads the tail out — the
    quantile plumbing is identical either way."""
    return Objective(
        metric=3, mode="min", quantile=0.95,
        repeats=repeats, seed=seed,
    )


#: Within-5%-of-Columbia feasibility bound for cheapest-machine
#: (rel_columbia is a higher-is-better throughput ratio).
REL_COLUMBIA_BOUND = 0.95


@lru_cache(maxsize=None)
def _btmz_gflops(config: str, cpus: int) -> float:
    """BT-MZ class C delivered Gflop/s on one zoo preset (memoized —
    the Columbia reference reprices per candidate otherwise)."""
    from repro.compare import _mz_layout
    from repro.machine.placement import Placement
    from repro.machine.zoo import build_machine
    from repro.npb.hybrid import MZTimingModel
    from repro.npb.multizone import mz_problem

    cluster = build_machine(config)
    n_zones = mz_problem("bt-mz", "C").spec.n_zones
    ranks, threads = _mz_layout(cpus, n_zones)
    placement = Placement(cluster, n_ranks=ranks, threads_per_rank=threads)
    return MZTimingModel("bt-mz", "C", placement).total_gflops()


@workload("explore.machine_candidate")
def _machine_candidate_cell(cluster, cpus: int = 256) -> list[tuple]:
    """One zoo-machine candidate: BT-MZ rate, ratio to Columbia, cost.

    Columns: ``(cpus, gflops, rel_columbia, cost)``.  The machine
    arrives as the built cluster (the ``machine.config`` dimension
    routed through the registry), so the cell itself is name-free —
    the cost proxy reads the hardware, not the label.
    """
    from repro.compare import _mz_layout
    from repro.machine.placement import Placement
    from repro.machine.zoo import cluster_cost
    from repro.npb.hybrid import MZTimingModel
    from repro.npb.multizone import mz_problem

    n_zones = mz_problem("bt-mz", "C").spec.n_zones
    ranks, threads = _mz_layout(cpus, n_zones)
    placement = Placement(cluster, n_ranks=ranks, threads_per_rank=threads)
    gflops = MZTimingModel("bt-mz", "C", placement).total_gflops()
    reference = _btmz_gflops("columbia", cpus)
    return [(
        cpus, round(gflops, 4), round(gflops / reference, 4),
        round(cluster_cost(cluster), 4),
    )]


register_exact("explore.machine_candidate")


def cheapest_machine_space(cpus: int = 256) -> SearchSpace:
    """Every registered zoo preset as one categorical dimension."""
    from repro.machine.zoo import list_machines

    return search_space(
        "explore.machine_candidate",
        {"machine.config": tuple(list_machines())},
        base={"cpus": cpus},
    )


def cheapest_machine_objective() -> Objective:
    """Minimize machine cost subject to rel_columbia >= 0.95 (columns
    of :func:`_machine_candidate_cell`: 2 = rel_columbia, 3 = cost)."""
    return Objective(
        metric=3, mode="min",
        constraint=2, constraint_min=REL_COLUMBIA_BOUND,
    )


#: study name -> (space factory, objective factory, default optimizer).
STUDIES = {
    "cheapest-bx2": (cheapest_bx2_space, cheapest_bx2_objective, "grid"),
    "worst-faults": (worst_faults_space, worst_faults_objective, "evolve"),
    "cheapest-machine": (
        cheapest_machine_space, cheapest_machine_objective, "grid",
    ),
}


def study_driver(
    name: str,
    seed: int = 0,
    runner=None,
    journal=None,
    max_cells: int | None = None,
    max_seconds: float | None = None,
    optimizer: str | None = None,
) -> ExploreDriver:
    """An :class:`ExploreDriver` for one named study."""
    from repro.errors import ConfigurationError

    entry = STUDIES.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown study {name!r}; expected one of {sorted(STUDIES)}"
        )
    space_fn, objective_fn, default_opt = entry
    return ExploreDriver(
        space_fn(), objective_fn(),
        optimizer=optimizer or default_opt, seed=seed,
        runner=runner, journal=journal,
        max_cells=max_cells, max_seconds=max_seconds,
    )


def run_study(name: str, **kwargs) -> ExploreResult:
    """Run one named study end to end."""
    return study_driver(name, **kwargs).run()
