"""Ambient fault context: which injector (if any) is active.

Mirrors :func:`repro.obs.spans.use_tracer`: installing an injector
process-wide means the machine model, the network cost model, and the
MPI layer pick it up at construction time without signature changes
anywhere.  ``current_injector()`` returns ``None`` on a healthy
machine, so every per-call check stays a plain load + branch.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["use_faults", "current_injector"]

_current: Optional["FaultInjector"] = None  # noqa: F821 - forward ref


def current_injector():
    """The active :class:`~repro.faults.injector.FaultInjector`, or
    ``None`` when the machine is healthy."""
    return _current


class use_faults:
    """Install a fault context for the duration of the ``with`` block.

    ``faults`` may be a :class:`~repro.faults.spec.FaultSpec` (an
    injector is built from it, seeded deterministically with ``salt``
    — typically the scenario key, so every cell draws an independent
    but reproducible stream), an already-built
    :class:`~repro.faults.injector.FaultInjector`, or ``None``/an
    empty spec (both leave the machine healthy).  ``with`` yields the
    installed injector (or ``None``).  Re-entrant: the previous
    context is restored on exit.

    A plain class rather than ``@contextmanager``: the surrogate fast
    path enters a fault context per evaluated cell, and the generator
    machinery costs a multiple of this two-method protocol.
    """

    __slots__ = ("_faults", "_salt", "_previous")

    def __init__(self, faults, salt: str = "") -> None:
        self._faults = faults
        self._salt = salt

    def __enter__(self):
        global _current
        faults = self._faults
        if faults is None:
            injector = None
        else:
            from repro.faults.injector import FaultInjector

            if isinstance(faults, FaultInjector):
                injector = faults
            elif faults.faults:
                injector = FaultInjector(faults, salt=self._salt)
            else:
                injector = None
        self._previous = _current
        _current = injector
        return injector

    def __exit__(self, *exc) -> None:
        global _current
        _current = self._previous
