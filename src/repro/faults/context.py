"""Ambient fault context: which injector (if any) is active.

Mirrors :func:`repro.obs.spans.use_tracer`: installing an injector
process-wide means the machine model, the network cost model, and the
MPI layer pick it up at construction time without signature changes
anywhere.  ``current_injector()`` returns ``None`` on a healthy
machine, so every per-call check stays a plain load + branch.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["use_faults", "current_injector"]

_current: Optional["FaultInjector"] = None  # noqa: F821 - forward ref


def current_injector():
    """The active :class:`~repro.faults.injector.FaultInjector`, or
    ``None`` when the machine is healthy."""
    return _current


@contextmanager
def use_faults(faults, salt: str = "") -> Iterator:
    """Install a fault context for the duration of the ``with`` block.

    ``faults`` may be a :class:`~repro.faults.spec.FaultSpec` (an
    injector is built from it, seeded deterministically with ``salt``
    — typically the scenario key, so every cell draws an independent
    but reproducible stream), an already-built
    :class:`~repro.faults.injector.FaultInjector`, or ``None``/an
    empty spec (both leave the machine healthy).  Yields the installed
    injector (or ``None``).  Re-entrant: the previous context is
    restored on exit.
    """
    global _current
    from repro.faults.injector import FaultInjector

    if faults is None:
        injector = None
    elif isinstance(faults, FaultInjector):
        injector = faults
    else:
        injector = FaultInjector(faults, salt=salt) if faults.faults else None
    previous = _current
    _current = injector
    try:
        yield injector
    finally:
        _current = previous
