"""Fault specifications: frozen, hashable descriptions of degraded modes.

Columbia was characterized *while misbehaving*: §4.6.2 reports a
released-MPT anomaly making SP-MZ ~40% slower over InfiniBand, a boot
cpuset stealing 10-15% from full-512-CPU runs, and Fig. 10 shows IB
penalties worsening with node count.  Instead of baking those
observations into the cost formulas, each one is a *fault spec* — pure
data describing a degraded condition — that an experiment injects into
the simulation.  A healthy machine (no spec installed) shows none of
them.

Every spec is a frozen dataclass of JSON-safe scalars, so a
:class:`FaultSpec` can ride on a :class:`~repro.run.scenario.Scenario`
and participate in the result-cache key: two cells that differ only in
their injected faults hash (and cache) differently.

The §4.6.2 constants live here (not in the machine model) so the
calibration index points at one module:

* :data:`BOOT_CPUSET_PENALTY` — full-node runs contend with system
  software on the boot cpuset CPUs;
* :data:`MPT_ANOMALY_LATENCY` / :data:`MPT_ANOMALY_EXCESS` /
  :data:`MPT_ANOMALY_REFERENCE_CPUS` — the released MPT library's
  per-message overhead and the SP-MZ per-step excess it produces.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields
from typing import Any, Iterable

from repro.errors import ConfigurationError
from repro.units import usec

__all__ = [
    "BOOT_CPUSET_PENALTY",
    "MPT_ANOMALY_LATENCY",
    "MPT_ANOMALY_EXCESS",
    "MPT_ANOMALY_REFERENCE_CPUS",
    "Fault",
    "LinkDegradation",
    "LinkFlap",
    "RouterFailover",
    "Straggler",
    "OsJitter",
    "MessageDrop",
    "MptAnomaly",
    "BootCpuset",
    "FaultSpec",
    "parse_faults",
    "format_faults",
    "columbia_degraded",
    "COLUMBIA_DEGRADED",
]

#: §4.6.2: "the performance of 512-processor runs in a single node
#: dropped by 10-15%" — the multiplier a full-node job pays when its
#: ranks land on the CPUs reserved for system software.
BOOT_CPUSET_PENALTY = 1.12

#: Extra per-message latency (seconds) charged by the released MPT
#: library (mpt1.11r) on InfiniBand inter-node paths; absent in the
#: beta.  Calibrated with :data:`MPT_ANOMALY_EXCESS` to §4.6.2's
#: "40% slower at 256 CPUs, improving at larger counts".
MPT_ANOMALY_LATENCY = usec(14.0)

#: Fractional SP-MZ per-step compute excess at the reference CPU count.
MPT_ANOMALY_EXCESS = 0.40

#: CPU count at which the §4.6.2 40% deficit was measured.
MPT_ANOMALY_REFERENCE_CPUS = 256

#: Link classes a path fault may select (mirrors
#: :meth:`repro.mpi.comm.MPIWorld.link_info`); ``"any"`` matches all.
_LINK_CLASSES = ("any", "intra_brick", "intra_node", "inter_node")


def _check_link_class(link_class: str) -> None:
    if link_class not in _LINK_CLASSES:
        raise ConfigurationError(
            f"unknown link class {link_class!r}; expected one of {_LINK_CLASSES}"
        )


@dataclass(frozen=True)
class Fault:
    """Base class of all fault specs (pure data; see subclasses)."""

    #: short name used in ``--faults`` strings and payloads.
    kind = "fault"

    def payload(self) -> dict[str, Any]:
        """Canonical JSON-safe dict (cache-key participation)."""
        out: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


@dataclass(frozen=True)
class LinkDegradation(Fault):
    """A persistently degraded link class: scaled latency/bandwidth.

    Models a failing cable, a congested switch stage, or a misrouted
    plane: every path of ``link_class`` pays
    ``latency * latency_factor + extra_latency`` at
    ``bandwidth * bandwidth_factor``.
    """

    kind = "degrade"

    link_class: str = "inter_node"
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    extra_latency: float = 0.0

    def __post_init__(self) -> None:
        _check_link_class(self.link_class)
        if self.latency_factor < 1.0 or not 0.0 < self.bandwidth_factor <= 1.0:
            raise ConfigurationError(
                f"degrade: latency_factor must be >= 1 and bandwidth_factor "
                f"in (0, 1], got {self.latency_factor}/{self.bandwidth_factor}"
            )
        if self.extra_latency < 0.0:
            raise ConfigurationError(
                f"degrade: negative extra_latency {self.extra_latency}"
            )


@dataclass(frozen=True)
class LinkFlap(Fault):
    """A link that goes bad periodically (deterministic duty cycle).

    For ``down_time`` out of every ``period`` simulated seconds
    (starting at ``phase``), messages on ``link_class`` pay
    ``latency_factor`` x latency — the retransmission storms of a
    flapping port, without randomness so runs stay reproducible.
    """

    kind = "flap"

    link_class: str = "inter_node"
    period: float = 1.0e-3
    down_time: float = 1.0e-4
    latency_factor: float = 10.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        _check_link_class(self.link_class)
        if self.period <= 0 or not 0 <= self.down_time <= self.period:
            raise ConfigurationError(
                f"flap: need 0 <= down_time <= period, got "
                f"{self.down_time}/{self.period}"
            )
        if self.latency_factor < 1.0:
            raise ConfigurationError(
                f"flap: latency_factor must be >= 1, got {self.latency_factor}"
            )

    def is_down(self, now: float) -> bool:
        return (now - self.phase) % self.period < self.down_time


@dataclass(frozen=True)
class RouterFailover(Fault):
    """One node's NUMAlink router failed over to a spare route.

    Paths touching ``node`` detour ``extra_hops`` additional router
    hops, priced with that node's interconnect per-hop parameters
    (:mod:`repro.machine.interconnect`) — the topology-aware reroute.
    """

    kind = "failover"

    node: int = 0
    extra_hops: int = 2

    def __post_init__(self) -> None:
        if self.node < 0 or self.extra_hops < 1:
            raise ConfigurationError(
                f"failover: need node >= 0 and extra_hops >= 1, got "
                f"{self.node}/{self.extra_hops}"
            )


@dataclass(frozen=True)
class Straggler(Fault):
    """A slow rank (or a whole slow node): compute stretched by ``factor``.

    Models a CPU stuck in a low-power state or a node with a noisy
    neighbor; exactly one of ``rank``/``node`` should be set.
    """

    kind = "straggler"

    rank: int | None = None
    node: int | None = None
    factor: float = 2.0

    def __post_init__(self) -> None:
        if (self.rank is None) == (self.node is None):
            raise ConfigurationError(
                "straggler: set exactly one of rank= or node="
            )
        if self.factor <= 1.0:
            raise ConfigurationError(
                f"straggler: factor must be > 1, got {self.factor}"
            )


@dataclass(frozen=True)
class OsJitter(Fault):
    """Random OS interference on compute spans.

    Each compute segment stretches by ``1 + Exp(amplitude)`` drawn
    from the injector's seeded RNG — the system-software noise behind
    §4.6.2's observation that full-node runs fight the boot cpuset.
    Deterministic given the same ``(spec, scenario, seed)``.
    """

    kind = "jitter"

    amplitude: float = 0.02

    def __post_init__(self) -> None:
        if self.amplitude <= 0:
            raise ConfigurationError(
                f"jitter: amplitude must be > 0, got {self.amplitude}"
            )


@dataclass(frozen=True)
class MessageDrop(Fault):
    """Messages dropped with probability ``probability`` per attempt.

    The MPI layer retries after ``timeout`` seconds, backing off
    exponentially (``timeout * backoff**attempt``), up to
    ``max_retries`` retransmissions; exhausting them raises a
    :class:`~repro.errors.CommunicationError` and fails the cell.
    Each retry is surfaced as a ``retry`` span and an ``mpi.retries``
    counter in :mod:`repro.obs`.
    """

    kind = "drop"

    probability: float = 0.01
    timeout: float = usec(50.0)
    max_retries: int = 5
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ConfigurationError(
                f"drop: probability must be in [0, 1), got {self.probability}"
            )
        if self.timeout <= 0 or self.max_retries < 0 or self.backoff < 1.0:
            raise ConfigurationError(
                f"drop: need timeout > 0, max_retries >= 0, backoff >= 1; got "
                f"{self.timeout}/{self.max_retries}/{self.backoff}"
            )


@dataclass(frozen=True)
class MptAnomaly(Fault):
    """§4.6.2: the released MPT library's InfiniBand anomaly.

    When the cluster runs the *released* library (mpt1.11r) over
    InfiniBand, every inter-node message pays ``extra_latency``, and
    SP-MZ additionally loses ``excess * (reference_cpus / P)`` of its
    per-step compute time (the per-process share of the per-message
    software overhead; the paper never found the root cause).  Clusters
    on the beta library are untouched — the fault describes what the
    released runtime does, the machine spec says which runtime is
    loaded.
    """

    kind = "mpt_anomaly"

    extra_latency: float = MPT_ANOMALY_LATENCY
    excess: float = MPT_ANOMALY_EXCESS
    reference_cpus: int = MPT_ANOMALY_REFERENCE_CPUS

    def __post_init__(self) -> None:
        if self.extra_latency < 0 or self.excess < 0 or self.reference_cpus < 1:
            raise ConfigurationError("mpt_anomaly: bad parameters")

    def step_excess(self, total_cpus: int) -> float:
        """Fractional per-step compute excess at ``total_cpus``."""
        return self.excess * (float(self.reference_cpus) / total_cpus)


@dataclass(frozen=True)
class BootCpuset(Fault):
    """§4.6.2: system software contends with full-node jobs.

    A job whose ranks occupy *every* CPU of a node shares cycles with
    the system processes pinned to the boot cpuset; its compute
    stretches by ``penalty``.  Jobs leaving even a few CPUs free (the
    paper's 508-CPU remedy) are untouched — the occupancy condition
    lives in :meth:`repro.machine.placement.Placement.uses_boot_cpuset`.
    """

    kind = "boot_cpuset"

    penalty: float = BOOT_CPUSET_PENALTY

    def __post_init__(self) -> None:
        if self.penalty < 1.0:
            raise ConfigurationError(
                f"boot_cpuset: penalty must be >= 1, got {self.penalty}"
            )


#: kind -> class, for parsing and payload round-trips.
_FAULT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        LinkDegradation, LinkFlap, RouterFailover, Straggler, OsJitter,
        MessageDrop, MptAnomaly, BootCpuset,
    )
}


@dataclass(frozen=True)
class FaultSpec:
    """An ordered bundle of faults plus the injection seed.

    Frozen and hashable so it can sit on a
    :class:`~repro.run.scenario.Scenario`; :meth:`payload` is the
    canonical JSON form that joins the scenario's cache key.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(f, Fault):
                raise ConfigurationError(
                    f"FaultSpec entries must be Fault specs, got {f!r}"
                )

    def __bool__(self) -> bool:
        return bool(self.faults)

    def payload(self) -> dict[str, Any]:
        return {
            "faults": [f.payload() for f in self.faults],
            "seed": self.seed,
        }

    def merge(self, other: "FaultSpec | None") -> "FaultSpec":
        """This spec with ``other``'s faults appended (other's seed
        wins when set) — how a CLI ``--faults`` overlay combines with
        an experiment's own declared faults."""
        if other is None or not other.faults and other.seed == 0:
            return self
        return FaultSpec(
            faults=self.faults + other.faults,
            seed=other.seed if other.seed else self.seed,
        )

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "FaultSpec":
        faults = []
        for entry in payload.get("faults", ()):
            entry = dict(entry)
            kind = entry.pop("kind")
            cls = _FAULT_KINDS.get(kind)
            if cls is None:
                raise ConfigurationError(f"unknown fault kind {kind!r}")
            faults.append(cls(**entry))
        return FaultSpec(faults=tuple(faults), seed=payload.get("seed", 0))


def columbia_degraded(seed: int = 0) -> FaultSpec:
    """The standing §4.6.2 machine state the paper measured under.

    Every Columbia measurement carried the boot-cpuset contention, and
    runs on the released MPT library carried the InfiniBand anomaly;
    the experiments reproducing the paper's tables inject this spec so
    their degraded-mode rows are *produced by* injection.
    """
    return FaultSpec(faults=(BootCpuset(), MptAnomaly()), seed=seed)


#: Shared instance of :func:`columbia_degraded` for sweep declarations.
COLUMBIA_DEGRADED = columbia_degraded()


# -- the --faults mini-language ----------------------------------------------

_DURATION_RE = re.compile(r"^([-+0-9.eE]+)(us|ms|s)?$")
_DURATION_SCALE = {None: 1.0, "s": 1.0, "ms": 1.0e-3, "us": 1.0e-6}


def _parse_value(text: str) -> Any:
    """One clause value: int, float (with optional us/ms/s suffix), str."""
    m = _DURATION_RE.match(text)
    if m and m.group(2) is not None:
        return float(m.group(1)) * _DURATION_SCALE[m.group(2)]
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text in ("none", "None"):
        return None
    return text


def parse_faults(text: str) -> FaultSpec:
    """Parse a ``--faults`` string into a :class:`FaultSpec`.

    Grammar: semicolon-separated clauses; each is either ``seed=N`` or
    ``<kind>`` / ``<kind>:key=value,key=value``.  Durations accept
    ``us``/``ms``/``s`` suffixes.  Examples::

        drop:probability=0.02,timeout=50us,max_retries=4
        straggler:rank=3,factor=2.5;jitter:amplitude=0.05;seed=7
        degrade:link_class=inter_node,latency_factor=3;flap
        boot_cpuset;mpt_anomaly
    """
    faults: list[Fault] = []
    seed = 0
    for clause in filter(None, (c.strip() for c in text.split(";"))):
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):])
            except ValueError:
                raise ConfigurationError(
                    f"--faults: bad seed in {clause!r}"
                ) from None
            continue
        kind, _, argtext = clause.partition(":")
        cls = _FAULT_KINDS.get(kind.strip())
        if cls is None:
            raise ConfigurationError(
                f"--faults: unknown fault kind {kind.strip()!r}; expected one "
                f"of {sorted(_FAULT_KINDS)} or seed=N"
            )
        kwargs: dict[str, Any] = {}
        for pair in filter(None, (p.strip() for p in argtext.split(","))):
            key, eq, value = pair.partition("=")
            if not eq:
                raise ConfigurationError(
                    f"--faults: expected key=value in {clause!r}, got {pair!r}"
                )
            kwargs[key.strip()] = _parse_value(value.strip())
        try:
            faults.append(cls(**kwargs))
        except TypeError as exc:
            raise ConfigurationError(f"--faults: {clause!r}: {exc}") from None
    return FaultSpec(faults=tuple(faults), seed=seed)


def format_faults(spec: FaultSpec) -> str:
    """Inverse of :func:`parse_faults` (defaults elided)."""
    clauses = []
    for f in spec.faults:
        defaults = type(f)() if f.kind not in ("straggler",) else None
        args = []
        for fld in fields(f):
            value = getattr(f, fld.name)
            if defaults is not None and value == getattr(defaults, fld.name):
                continue
            if value is None:
                continue
            args.append(f"{fld.name}={value}")
        clauses.append(f"{f.kind}:{','.join(args)}" if args else f.kind)
    if spec.seed:
        clauses.append(f"seed={spec.seed}")
    return ";".join(clauses)


def iter_kinds() -> Iterable[str]:
    """Registered fault kinds (for CLI help and docs)."""
    return sorted(_FAULT_KINDS)
