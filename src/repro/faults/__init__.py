"""Deterministic fault injection for the simulated machine.

The paper characterized Columbia *while it misbehaved* (§4.6.2: the
released-MPT InfiniBand anomaly, the boot-cpuset penalty).  This
package models degraded modes as injectable, seed-deterministic fault
specs instead of constants baked into the cost formulas:

* :mod:`repro.faults.spec` — frozen fault dataclasses + the
  ``--faults`` mini-language;
* :mod:`repro.faults.injector` — applies a spec to path costs,
  compute spans and the MPI send path;
* :mod:`repro.faults.context` — the ambient ``use_faults()`` context
  the run pipeline installs per cell.
"""

from repro.faults.context import current_injector, use_faults
from repro.faults.injector import FaultInjector, build_injector
from repro.faults.spec import (
    BOOT_CPUSET_PENALTY,
    COLUMBIA_DEGRADED,
    MPT_ANOMALY_EXCESS,
    MPT_ANOMALY_LATENCY,
    MPT_ANOMALY_REFERENCE_CPUS,
    BootCpuset,
    Fault,
    FaultSpec,
    LinkDegradation,
    LinkFlap,
    MessageDrop,
    MptAnomaly,
    OsJitter,
    RouterFailover,
    Straggler,
    columbia_degraded,
    format_faults,
    parse_faults,
)

__all__ = [
    "BOOT_CPUSET_PENALTY",
    "COLUMBIA_DEGRADED",
    "MPT_ANOMALY_EXCESS",
    "MPT_ANOMALY_LATENCY",
    "MPT_ANOMALY_REFERENCE_CPUS",
    "BootCpuset",
    "Fault",
    "FaultInjector",
    "FaultSpec",
    "LinkDegradation",
    "LinkFlap",
    "MessageDrop",
    "MptAnomaly",
    "OsJitter",
    "RouterFailover",
    "Straggler",
    "build_injector",
    "columbia_degraded",
    "current_injector",
    "format_faults",
    "parse_faults",
    "use_faults",
]
