"""The fault injector: applies a :class:`FaultSpec` to a simulation.

One injector is built per experiment cell (see
:func:`repro.run.runner.execute_scenario`), seeded from
``sha256(spec payload | salt | spec.seed)`` — the same ``(scenario,
fault spec, seed)`` always draws the same random stream, so injected
runs are bit-identical between sequential and parallel sweeps.

Hook points (all no-ops on a healthy machine, where the ambient
injector is ``None`` and none of this code runs):

* :meth:`adjust_path` — static path faults (link degradation, router
  failover, the released-MPT latency), applied once per computed path
  in :meth:`repro.netmodel.costs.NetworkModel.path`;
* :meth:`compute_seconds` — stragglers and OS jitter, applied per
  compute span in :meth:`repro.mpi.comm.MPIComm.compute`;
* :meth:`flap_factor` / :meth:`send_plan` — time-dependent link flaps
  and drop-with-retry, applied per message in the MPI send path;
* :meth:`boot_cpuset_penalty` / :meth:`mpt_anomaly` — the §4.6.2
  degraded modes consumed by the analytic timing models.
"""

from __future__ import annotations

import hashlib
import itertools
import json

from repro.errors import CommunicationError
from repro.faults.spec import (
    BootCpuset,
    FaultSpec,
    LinkDegradation,
    LinkFlap,
    MessageDrop,
    MptAnomaly,
    OsJitter,
    RouterFailover,
    Straggler,
)

__all__ = ["FaultInjector", "build_injector"]

#: Process-unique injector serials; the network cost model keys its
#: shared route tables on ``(placement.generation, injector.serial)``
#: so fault-adjusted paths never leak into healthy contexts (or into
#: differently-faulted ones).
_injector_serials = itertools.count(1)

#: Random draws fetched per RNG refill.  Each randomness-consuming
#: fault owns an independent substream (see ``_derive_seed``'s tag),
#: so uniforms/exponentials can be prefetched in chunks — a NumPy
#: ``Generator`` produces bit-identical values whether drawn one at a
#: time or as an array, so chunking changes cost, not the stream.
_CHUNK = 256


def _derive_seed(spec: FaultSpec, salt: str, tag: str = "") -> int:
    blob = json.dumps(spec.payload(), sort_keys=True) + "|" + salt
    if tag:
        blob += "|" + tag
    return int.from_bytes(hashlib.sha256(blob.encode()).digest()[:8], "big")


class _DropStream:
    """One :class:`MessageDrop`'s private uniform stream, chunked.

    The per-message lottery consumes one uniform in the (overwhelmingly
    common) no-drop case; buffering ``_CHUNK`` draws turns the per-send
    RNG call into a list subscript.  The MPI fast path inlines
    :meth:`next` — keep the field layout in sync with
    ``repro.mpi.comm._FaultedMPIComm.isend``.
    """

    __slots__ = ("probability", "timeout", "max_retries", "backoff",
                 "rng", "buf", "i")

    def __init__(self, fault: MessageDrop, seed: int) -> None:
        from repro.sim.rng import make_rng

        self.probability = fault.probability
        self.timeout = fault.timeout
        self.max_retries = fault.max_retries
        self.backoff = fault.backoff
        self.rng = make_rng(seed)
        self.buf: list[float] = []
        self.i = 0

    def next(self) -> float:
        i = self.i
        buf = self.buf
        if i >= len(buf):
            buf = self.buf = self.rng.random(_CHUNK).tolist()
            i = 0
        self.i = i + 1
        return buf[i]


class _JitterStream:
    """One :class:`OsJitter`'s private exponential stream, chunked."""

    __slots__ = ("amplitude", "rng", "buf", "i")

    def __init__(self, fault: OsJitter, seed: int) -> None:
        from repro.sim.rng import make_rng

        self.amplitude = fault.amplitude
        self.rng = make_rng(seed)
        self.buf: list[float] = []
        self.i = 0

    def next(self) -> float:
        i = self.i
        buf = self.buf
        if i >= len(buf):
            buf = self.buf = self.rng.exponential(self.amplitude, _CHUNK).tolist()
            i = 0
        self.i = i + 1
        return buf[i]


class FaultInjector:
    """Deterministic application of one :class:`FaultSpec`."""

    def __init__(self, spec: FaultSpec, salt: str = "") -> None:
        self.spec = spec
        self.salt = salt
        self.serial = next(_injector_serials)
        self._rng = None  # built lazily: most faults never draw
        self._path_faults = tuple(
            f for f in spec.faults
            if isinstance(f, (LinkDegradation, RouterFailover, MptAnomaly))
        )
        self._flaps = tuple(f for f in spec.faults if isinstance(f, LinkFlap))
        self._stragglers = tuple(
            f for f in spec.faults if isinstance(f, Straggler)
        )
        self._jitters = tuple(f for f in spec.faults if isinstance(f, OsJitter))
        self._drops = tuple(
            f for f in spec.faults if isinstance(f, MessageDrop)
        )
        self._boot = next(
            (f for f in spec.faults if isinstance(f, BootCpuset)), None
        )
        self._mpt = next(
            (f for f in spec.faults if isinstance(f, MptAnomaly)), None
        )
        #: independent chunked substreams, one per randomness-consuming
        #: fault — seeded from the spec/salt plus a per-fault tag, so a
        #: drop lottery and a jitter draw never interleave on one
        #: stream (which is what lets both be prefetched in chunks).
        #: Zero-probability drops draw nothing and get no stream,
        #: mirroring the ``send_plan`` skip.
        self._drop_streams = tuple(
            _DropStream(f, _derive_seed(spec, salt, f"drop#{i}"))
            for i, f in enumerate(self._drops)
            if f.probability > 0.0
        )
        self._jitter_streams = tuple(
            _JitterStream(f, _derive_seed(spec, salt, f"jitter#{i}"))
            for i, f in enumerate(self._jitters)
        )
        #: link_class -> precomputed flap windows, filled on first use.
        self._flap_windows: dict = {}
        #: observability: totals a workload (or test) can read back.
        self.retries = 0
        self.dropped_messages = 0

    # -- classification --------------------------------------------------------

    @property
    def has_path_faults(self) -> bool:
        """Does this injector change static path costs?"""
        return bool(self._path_faults)

    @property
    def has_des_faults(self) -> bool:
        """Does this injector act on the DES per-message/compute path?"""
        return bool(
            self._flaps or self._stragglers or self._jitters or self._drops
        )

    def rng(self):
        if self._rng is None:
            from repro.sim.rng import make_rng

            self._rng = make_rng(_derive_seed(self.spec, self.salt))
        return self._rng

    # -- static path faults ----------------------------------------------------

    def adjust_path(
        self, cluster, cpu_a: int, cpu_b: int, latency: float, bandwidth: float
    ) -> tuple[float, float]:
        """Fault-adjusted ``(latency, bandwidth)`` of one path.

        Called once per *computed* path (results are cached in the
        injector-keyed route table), so the classification cost here
        is off the per-message path.
        """
        na = cluster.node_of(cpu_a)
        nb = cluster.node_of(cpu_b)
        if na != nb:
            link = "inter_node"
        else:
            hops = cluster.nodes[na].hops(
                cluster.local_cpu(cpu_a), cluster.local_cpu(cpu_b)
            )
            link = "intra_brick" if hops == 0 else "intra_node"
        for fault in self._path_faults:
            if isinstance(fault, LinkDegradation):
                if fault.link_class in ("any", link):
                    latency = latency * fault.latency_factor + fault.extra_latency
                    bandwidth = bandwidth * fault.bandwidth_factor
            elif isinstance(fault, RouterFailover):
                if fault.node in (na, nb) and (na != nb or link == "intra_node"):
                    # The detour takes extra hops through this node's
                    # router fabric, priced with its per-hop parameters.
                    ic = cluster.nodes[fault.node % len(cluster.nodes)].interconnect
                    latency += fault.extra_hops * ic.per_hop_latency
                    bandwidth /= 1.0 + fault.extra_hops * ic.per_hop_bw_derate
            else:  # MptAnomaly
                if link == "inter_node" and cluster.fabric == "infiniband":
                    from repro.machine.infiniband import MPTVersion

                    if cluster.mpt is MPTVersion.MPT_1_11R:
                        latency += fault.extra_latency
        return latency, bandwidth

    # -- §4.6.2 degraded modes (analytic models) -------------------------------

    def boot_cpuset_penalty(self) -> float:
        """Compute multiplier for a placement that occupies the boot
        cpuset (the occupancy condition is the placement's to check)."""
        return self._boot.penalty if self._boot is not None else 1.0

    def mpt_anomaly(self) -> MptAnomaly | None:
        """The released-MPT anomaly spec, if injected."""
        return self._mpt

    # -- DES hooks -------------------------------------------------------------

    def straggler_factor(self, world, rank: int) -> float:
        """Combined straggler stretch for one rank (1.0 = untouched).

        Rank- and node-targeted stragglers are static for a given
        placement, so the per-rank comm handle computes this product
        once at construction instead of per compute span.
        """
        factor = 1.0
        for fault in self._stragglers:
            if fault.rank is not None:
                if fault.rank == rank:
                    factor *= fault.factor
            else:
                placement = world.network.placement
                node = placement.cluster.node_of(placement.cpu_of(rank))
                if node == fault.node:
                    factor *= fault.factor
        return factor

    def compute_seconds(self, world, rank: int, seconds: float) -> float:
        """Stretch one compute span by straggler factors and jitter."""
        for fault in self._stragglers:
            if fault.rank is not None:
                if fault.rank == rank:
                    seconds *= fault.factor
            else:
                placement = world.network.placement
                node = placement.cluster.node_of(placement.cpu_of(rank))
                if node == fault.node:
                    seconds *= fault.factor
        if self._jitter_streams and seconds > 0:
            for stream in self._jitter_streams:
                seconds *= 1.0 + stream.next()
        return seconds

    def flap_windows(self, link_class: str) -> tuple:
        """Precomputed ``(period, phase, down_time, latency_factor)``
        rows of every flap matching ``link_class``.

        The link-class filter runs once per (comm, dest); the
        per-message check is then a float modulo against the window —
        the flap duty cycle is periodic, so the closed form replaces
        any per-message window search.
        """
        windows = self._flap_windows.get(link_class)
        if windows is None:
            windows = self._flap_windows[link_class] = tuple(
                (f.period, f.phase, f.down_time, f.latency_factor)
                for f in self._flaps
                if f.link_class in ("any", link_class)
            )
        return windows

    def flap_factor(self, link_class: str, now: float) -> float:
        """Latency multiplier from flaps currently in a down window."""
        factor = 1.0
        for period, phase, down_time, latency_factor in self.flap_windows(
            link_class
        ):
            if (now - phase) % period < down_time:
                factor *= latency_factor
        return factor

    def send_plan(self, nbytes: float) -> tuple[float, ...]:
        """Per-failed-attempt wait times for one message (empty: no drop).

        Draws the per-attempt drop lottery; each failed attempt waits
        ``timeout * backoff**attempt`` before the retransmission.  A
        message that exhausts ``max_retries`` raises
        :class:`~repro.errors.CommunicationError` (the cell fails, and
        the runner reports it).
        """
        delays: list[float] = []
        for stream in self._drop_streams:
            probability = stream.probability
            fails = 0
            while stream.next() < probability:
                if fails >= stream.max_retries:
                    self.dropped_messages += 1
                    raise CommunicationError(
                        f"message of {nbytes:.0f} bytes dropped after "
                        f"{stream.max_retries} retries (MessageDrop "
                        f"p={probability})"
                    )
                delays.append(stream.timeout * stream.backoff ** fails)
                fails += 1
        self.retries += len(delays)
        return tuple(delays)


def build_injector(spec: FaultSpec, salt: str = "") -> FaultInjector:
    """Convenience constructor (mirrors the context-manager path)."""
    return FaultInjector(spec, salt=salt)
