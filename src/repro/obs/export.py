"""Trace exporters: Chrome trace-event / Perfetto JSON and CSV.

``write_chrome_trace(tracer, path)`` produces a JSON file that loads
directly in `ui.perfetto.dev <https://ui.perfetto.dev>`_ (or Chrome's
``about:tracing``): one process per simulated rank, one thread per
compute thread plus the send/receive lanes, complete (``ph: "X"``)
events for spans, flow arrows (``ph: "s"``/``"f"``) following each
message from sender to receiver, and counter tracks (``ph: "C"``).
Simulated seconds map to trace microseconds.

The module doubles as a validator::

    python -m repro.obs.export --validate trace.json

checks a file against the trace-event schema (the same checks the
``make trace-smoke`` target and the golden-file test run).
"""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.spans import RECV_LANE, SEND_LANE, Tracer

__all__ = [
    "chrome_trace_events",
    "spans_to_csv",
    "to_chrome_json",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Simulated seconds -> trace-event timestamp units (microseconds).
_US = 1e6


def _lane_name(thread: int) -> str:
    if thread >= SEND_LANE:
        if thread % 2 == SEND_LANE % 2:
            return f"mpi-send{(thread - SEND_LANE) // 2 or ''}"
        return f"mpi-recv{(thread - RECV_LANE) // 2 or ''}"
    return f"thread {thread}"


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The trace-event list for ``tracer`` (metadata first, then spans
    sorted by start time, then message flows, then counters)."""
    events: list[dict] = []
    threads_per_rank: dict[int, set[int]] = {}
    for s in tracer.spans:
        threads_per_rank.setdefault(s.rank, set()).add(s.thread)

    for rank in sorted(threads_per_rank):
        events.append({
            "ph": "M", "pid": rank, "tid": 0, "name": "process_name",
            "args": {"name": f"rank {rank}"},
        })
        for thread in sorted(threads_per_rank[rank]):
            events.append({
                "ph": "M", "pid": rank, "tid": thread, "name": "thread_name",
                "args": {"name": _lane_name(thread)},
            })

    for s in sorted(tracer.spans, key=lambda s: (s.t0, -s.t1, s.rank, s.thread)):
        event = {
            "ph": "X", "pid": s.rank, "tid": s.thread,
            "cat": s.cat, "name": s.name,
            "ts": s.t0 * _US, "dur": (s.t1 - s.t0) * _US,
        }
        if s.args:
            event["args"] = dict(sorted(s.args.items()))
        events.append(event)

    # Flow arrows bind to the enclosing slice at (pid, tid, ts), so
    # look up the lane each message's send / recv-wait span landed on
    # (sends and overlapping receives spill across lanes).
    send_lane: dict[int, int] = {}
    recv_lane: dict[int, int] = {}
    for s in tracer.spans:
        if s.args and "msg" in s.args:
            if s.cat == "send":
                send_lane[s.args["msg"]] = s.thread
            elif s.cat == "wait" and s.name.startswith("recv"):
                recv_lane[s.args["msg"]] = s.thread

    for msg_id, m in enumerate(tracer.messages):
        if m.arrival < 0:
            continue  # legacy record without an arrival time
        common = {"cat": "msg", "name": f"msg{m.tag}", "id": msg_id}
        events.append({
            "ph": "s", "pid": m.source,
            "tid": send_lane.get(msg_id, SEND_LANE),
            "ts": m.time * _US, **common,
        })
        events.append({
            "ph": "f", "bp": "e", "pid": m.dest,
            "tid": recv_lane.get(msg_id, RECV_LANE),
            "ts": m.arrival * _US, **common,
        })

    for name in tracer.counters.names():
        for t, value in tracer.counters.series(name):
            events.append({
                "ph": "C", "pid": 0, "tid": 0, "name": name,
                "ts": t * _US, "args": {"value": value},
            })
    return events


def to_chrome_json(tracer: Tracer, indent: int | None = None) -> str:
    """The full Chrome trace JSON document as a string."""
    doc = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(tracer),
        "otherData": {
            "spans": len(tracer.spans),
            "dropped_spans": tracer.dropped_spans,
            "messages": len(tracer.messages),
        },
    }
    return json.dumps(doc, sort_keys=True, indent=indent)


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the Perfetto-loadable JSON for ``tracer`` to ``path``."""
    if not tracer.spans and not tracer.messages:
        raise ObservabilityError(
            "refusing to export an empty trace (no spans, no messages)"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_chrome_json(tracer, indent=1) + "\n")
    return path


def spans_to_csv(tracer: Tracer) -> str:
    """Spans as CSV (rank, thread, category, name, t0, t1, duration)."""
    import csv

    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["rank", "thread", "cat", "name", "t0_s", "t1_s", "dur_s"])
    for s in sorted(tracer.spans, key=lambda s: (s.t0, -s.t1, s.rank, s.thread)):
        writer.writerow(
            [s.rank, s.thread, s.cat, s.name,
             repr(s.t0), repr(s.t1), repr(s.t1 - s.t0)]
        )
    return buf.getvalue()


# -- validation ---------------------------------------------------------------

#: Required fields per event phase (beyond pid/ts common to all).
_PHASE_FIELDS = {
    "X": ("name", "dur"),
    "M": ("name", "args"),
    "C": ("name", "args"),
    "s": ("name", "id"),
    "f": ("name", "id"),
}


def validate_chrome_trace(doc) -> list[str]:
    """Schema problems in a parsed Chrome trace document (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, want object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASE_FIELDS:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid missing or not an integer")
        if ph != "M" and not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: ts missing or not a number")
        for field in _PHASE_FIELDS[ph]:
            if field not in event:
                problems.append(f"{where}: phase {ph!r} needs {field!r}")
        if ph == "X":
            dur = event.get("dur")
            if isinstance(dur, (int, float)) and dur < 0:
                problems.append(f"{where}: negative duration {dur}")
    return problems


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin CLI
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="Validate a Chrome trace-event JSON file."
    )
    parser.add_argument("path", help="trace JSON file to validate")
    parser.add_argument("--validate", action="store_true",
                        help="(default action; flag kept for readability)")
    args = parser.parse_args(argv)
    try:
        doc = json.loads(Path(args.path).read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"invalid: {p}", file=sys.stderr)
        return 1
    n = len(doc["traceEvents"])
    print(f"{args.path}: valid Chrome trace ({n} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
