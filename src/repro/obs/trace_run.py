"""``repro trace <experiment-id>``: capture one representative trace.

Running a whole experiment sweep under the tracer would interleave
hundreds of cells into one unreadable timeline, so the ``trace`` verb
instead executes one *representative DES cell* for the experiment —
a multi-zone step with the process/thread shape the experiment
studies — and writes its Perfetto-loadable Chrome trace plus a spans
CSV.  The id is validated against the experiment registry (same
close-match suggestions as ``repro run``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.obs.critical_path import (
    critical_path,
    decompose,
    format_critical_path,
)
from repro.obs.export import spans_to_csv, write_chrome_trace
from repro.obs.spans import Tracer

__all__ = ["TraceRunResult", "trace_experiment"]


@dataclass(frozen=True)
class TraceRunResult:
    """Everything ``repro trace`` needs to print and report."""

    experiment_id: str
    cell: str
    tracer: Tracer
    trace_path: Path
    csv_path: Path

    def report(self) -> str:
        """Decomposition table + critical path + written files."""
        d = decompose(self.tracer)
        path = critical_path(self.tracer)
        lines = [
            f"traced cell: {self.cell}",
            "",
            d.format(),
            "",
            format_critical_path(path),
            "",
            f"wrote {self.trace_path} "
            f"({self.tracer.span_count} spans, "
            f"{len(self.tracer.messages)} messages; "
            f"load at https://ui.perfetto.dev)",
            f"wrote {self.csv_path}",
        ]
        return "\n".join(lines)


#: experiment id -> (benchmark, class, ranks, threads) of the
#: representative DES multi-zone cell.  Ids not listed trace the
#: default BT-MZ shape.
_SPECS: dict[str, tuple[str, str, int, int]] = {
    "fig7": ("sp-mz", "W", 8, 2),   # SP-MZ pinning study
    "fig9": ("bt-mz", "W", 8, 2),   # BT-MZ process x thread grid
    "fig11": ("bt-mz", "W", 16, 1), # NPB-MZ across networks
    "fig6": ("bt-mz", "W", 8, 1),   # NPB per-CPU rates
}
_DEFAULT_SPEC = ("bt-mz", "W", 8, 2)


def trace_experiment(experiment_id: str, out_dir: str | Path) -> TraceRunResult:
    """Run the representative traced cell for ``experiment_id``.

    Returns the live tracer plus the written file paths; raises
    :class:`~repro.errors.ConfigurationError` for unknown ids.
    """
    from repro.core.registry import resolve_experiment
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.npb.mz_des import des_step_time

    resolve_experiment(experiment_id)  # unknown ids fail here
    benchmark, cls, ranks, threads = _SPECS.get(experiment_id, _DEFAULT_SPEC)

    cluster = single_node(NodeType.BX2B)
    placement = Placement(
        cluster=cluster, n_ranks=ranks, threads_per_rank=threads
    )
    tracer = Tracer()
    des_step_time(benchmark, cls, placement, tracer=tracer)

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = write_chrome_trace(tracer, out / f"{experiment_id}.trace.json")
    csv_path = out / f"{experiment_id}.spans.csv"
    csv_path.write_text(spans_to_csv(tracer))

    cell = f"{benchmark} class {cls}, {ranks} ranks x {threads} threads (DES step)"
    return TraceRunResult(
        experiment_id=experiment_id,
        cell=cell,
        tracer=tracer,
        trace_path=trace_path,
        csv_path=csv_path,
    )
