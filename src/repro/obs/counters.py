"""Monotonic counters and gauges sampled on simulated time.

A :class:`CounterSet` holds named time series: *counters* accumulate
deltas (bytes per link class, messages, router hops, OpenMP chunks)
and *gauges* record point-in-time values (queue depth, events
executed).  Every update carries the simulated timestamp; the set
keeps at most one sample per ``interval`` of simulated time per
series (``interval=0`` keeps one sample per distinct timestamp), so a
long run produces a bounded, plottable series rather than one point
per event.

:class:`EngineSampler` is the bridge to the DES core: attached as
``Simulator.observer`` it snapshots engine gauges (pending events,
events executed) whenever the simulated clock crosses the next sample
boundary — the engine itself only pays a ``None``-check per timestamp
batch when no sampler is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CounterSeries", "CounterSet", "EngineSampler"]


@dataclass
class CounterSeries:
    """One named series: a running value plus (time, value) samples."""

    name: str
    kind: str = "counter"  # "counter" (monotonic) or "gauge"
    value: float = 0.0
    samples: list[tuple[float, float]] = field(default_factory=list)
    #: next simulated time at which a sample may be appended.
    _next_sample: float = field(default=float("-inf"), repr=False)


class CounterSet:
    """Named counters/gauges with interval-limited sampling."""

    __slots__ = ("interval", "_series")

    def __init__(self, interval: float = 0.0) -> None:
        self.interval = interval
        self._series: dict[str, CounterSeries] = {}

    def _record(self, series: CounterSeries, t: float) -> None:
        if t >= series._next_sample:
            series.samples.append((t, series.value))
            series._next_sample = t + self.interval
        else:
            # Within the current sample window: fold into the last
            # sample so the series always ends on the latest value.
            series.samples[-1] = (series.samples[-1][0], series.value)

    def add(self, name: str, delta: float, t: float) -> None:
        """Accumulate ``delta`` into counter ``name`` at time ``t``."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = CounterSeries(name, "counter")
        series.value += delta
        self._record(series, t)

    def set(self, name: str, value: float, t: float) -> None:
        """Record gauge ``name`` = ``value`` at time ``t``."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = CounterSeries(name, "gauge")
        series.value = value
        self._record(series, t)

    def get(self, name: str) -> float:
        """Current value of a series (0 if never touched)."""
        series = self._series.get(name)
        return series.value if series is not None else 0.0

    def series(self, name: str) -> list[tuple[float, float]]:
        """The (time, value) samples of one series."""
        series = self._series.get(name)
        return list(series.samples) if series is not None else []

    def totals(self) -> dict[str, float]:
        """Final value of every series, by name."""
        return {name: s.value for name, s in sorted(self._series.items())}

    def names(self) -> list[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)


class EngineSampler:
    """Samples DES engine gauges when the simulated clock advances.

    Attach via ``sim.observer = EngineSampler(counters)``; the engine
    calls :meth:`sample` whenever ``sim.now`` crosses
    ``next_sample``.  The sampler never schedules events of its own,
    so it cannot keep a drained queue alive or perturb determinism.
    """

    __slots__ = ("counters", "interval", "next_sample")

    def __init__(self, counters: CounterSet, interval: float = 0.0) -> None:
        self.counters = counters
        self.interval = interval
        self.next_sample = float("-inf")

    def sample(self, sim) -> None:
        now = sim.now
        counters = self.counters
        counters.set("engine.pending_events", sim.pending_events, now)
        counters.set("engine.events_executed", sim.events_executed, now)
        self.next_sample = now + self.interval
