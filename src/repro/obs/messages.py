"""Message records and the statistics a trace analyst asks of them.

The record type and every summary computation live here, as free
functions over any iterable of message-like records (anything with
``time``/``source``/``dest``/``tag``/``nbytes`` attributes).
:class:`repro.obs.spans.Tracer` delegates to these, so any trace
front-end shares one definition of what "traffic matrix" means.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable, NamedTuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "MessageRecord",
    "bytes_by_rank",
    "size_histogram",
    "summary",
    "traffic_matrix",
    "window",
]

#: Default message-size histogram bucket edges (bytes).
SIZE_EDGES = (0, 64, 1024, 65536, 1 << 20, float("inf"))


class MessageRecord(NamedTuple):
    """One simulated message: injection time plus endpoints and size.

    ``arrival`` is when the message lands in the destination mailbox
    (``-1.0`` when unknown, e.g. records imported from the legacy
    shim, which never carried it).
    """

    time: float
    source: int
    dest: int
    tag: int
    nbytes: float
    arrival: float = -1.0


def bytes_by_rank(records: Iterable) -> dict[int, float]:
    """Bytes injected per source rank."""
    out: dict[int, float] = defaultdict(float)
    for r in records:
        out[r.source] += r.nbytes
    return dict(out)


def traffic_matrix(records: Iterable, n_ranks: int) -> np.ndarray:
    """Bytes sent from each rank to each rank."""
    if n_ranks < 1:
        raise ConfigurationError(f"n_ranks must be >= 1: {n_ranks}")
    m = np.zeros((n_ranks, n_ranks))
    for r in records:
        m[r.source, r.dest] += r.nbytes
    return m


def size_histogram(records: Iterable, edges=SIZE_EDGES) -> dict[str, int]:
    """Message counts per size bucket."""
    counts: Counter = Counter()
    labels = [
        f"[{int(lo)}, {'inf' if hi == float('inf') else int(hi)})"
        for lo, hi in zip(edges, edges[1:])
    ]
    for r in records:
        for label, lo, hi in zip(labels, edges, edges[1:]):
            if lo <= r.nbytes < hi:
                counts[label] += 1
                break
    return {label: counts.get(label, 0) for label in labels}


def window(records: Iterable, t0: float, t1: float) -> list:
    """Records whose send time falls in ``[t0, t1)``."""
    if t1 < t0:
        raise ConfigurationError(f"empty window [{t0}, {t1})")
    return [r for r in records if t0 <= r.time < t1]


def summary(records, total_bytes: float | None = None) -> str:
    """One-paragraph human-readable digest of a message list."""
    records = list(records)
    if not records:
        return "trace: no messages"
    if total_bytes is None:
        total_bytes = sum(r.nbytes for r in records)
    times = [r.time for r in records]
    busiest = max(bytes_by_rank(records).items(), key=lambda kv: kv[1])[0]
    return (
        f"trace: {len(records)} messages, "
        f"{total_bytes:.3g} bytes total, "
        f"t in [{min(times):.3g}, {max(times):.3g}] s, "
        f"busiest sender rank {busiest}"
    )
