"""Simulated-time spans: the tracer at the heart of ``repro.obs``.

A :class:`Tracer` records what every simulated rank (and OpenMP
thread) was doing and when, in *simulated* seconds: nested spans with
a category (``compute``, ``send``, ``wait``, ``collective``,
``omp_region``, ``barrier``, ``cache_lookup``), message records with
send/arrival times, and counters (:mod:`repro.obs.counters`).

Track layout
------------
Spans are attributed to ``(rank, thread)`` tracks.  Thread ``0`` is a
rank's main program flow (compute segments, collectives, OpenMP
regions); OpenMP worker threads use ``1..T-1``.  Because sends and
receives are *asynchronous* — an injection can still be draining, or
several receives can be outstanding, while the main flow computes —
they are placed on dedicated per-rank lanes (:data:`SEND_LANE` and
:data:`RECV_LANE` upward) chosen so spans on any single track never
overlap except by proper nesting.  That invariant is what makes the
Chrome trace render correctly and the critical-path walk well-defined.

Fast path
---------
Instrumented layers hold a tracer reference that is ``None`` when
tracing is off, so the untraced hot path costs one attribute load and
an ``is None`` branch per operation.  :class:`NullTracer` exists for
call sites that want an always-valid object; all of its methods are
no-ops and it buffers nothing.

Ambient tracing
---------------
:func:`use_tracer` installs a process-wide current tracer that
``MPIWorld``/``run_mpi``/``run_parallel_for`` pick up by default —
this is how the run pipeline captures per-cell traces without
threading a tracer argument through every workload signature.
"""

from __future__ import annotations

from collections import defaultdict, deque
from contextlib import contextmanager
from typing import Any, NamedTuple

from repro.errors import ObservabilityError
from repro.obs.counters import CounterSet, EngineSampler
from repro.obs.messages import MessageRecord

__all__ = [
    "CATEGORIES",
    "NULL_TRACER",
    "NullTracer",
    "RECV_LANE",
    "SEND_LANE",
    "Span",
    "Tracer",
    "current_tracer",
    "use_tracer",
]

#: Span categories the exporters and the critical-path walk understand.
CATEGORIES = frozenset(
    ("compute", "send", "recv", "wait", "collective", "omp_region",
     "barrier", "cache_lookup", "retry")
)

#: First per-rank lane (Perfetto ``tid``) carrying send-injection
#: spans; concurrent outstanding sends spill to SEND_LANE+2, +4, ...
SEND_LANE = 64
#: First per-rank lane carrying receive-wait spans; overlapping
#: outstanding receives spill to RECV_LANE+2, +4, ...  (send lanes are
#: even, receive lanes odd, so both families grow without colliding).
RECV_LANE = 65


def _free_lane(lanes: list[float], base: int, t0: float, t1: float) -> int:
    """First lane of a family free over ``[t0, t1]``; marks it busy.

    ``lanes`` holds a busy-until time per allocated slot; slot ``i``
    maps to track ``base + 2*i`` (send and receive families interleave
    on even/odd tids so both can grow unboundedly).
    """
    for i, busy_until in enumerate(lanes):
        if busy_until <= t0:
            lanes[i] = t1
            return base + 2 * i
    lanes.append(t1)
    return base + 2 * (len(lanes) - 1)


class Span(NamedTuple):
    """One closed simulated-time span on a ``(rank, thread)`` track."""

    rank: int
    thread: int
    cat: str
    name: str
    t0: float
    t1: float
    args: dict | None = None


class Tracer:
    """Collects spans, message records and counters for one run.

    ``capacity`` bounds the span buffer (a ring: oldest spans drop
    first, counted in :attr:`dropped_spans`); ``None`` means
    unbounded.  ``counter_interval`` limits counter sampling density
    in simulated seconds.
    """

    enabled = True

    def __init__(
        self,
        capacity: int | None = None,
        counter_interval: float = 0.0,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.spans: deque[Span] = deque(maxlen=capacity)
        self.messages: list[MessageRecord] = []
        self.counters = CounterSet(interval=counter_interval)
        self.dropped_spans = 0
        #: open begin/end stacks per (rank, thread) track.
        self._stacks: dict[tuple[int, int], list] = defaultdict(list)
        #: in-flight message ids per (source, dest, tag), FIFO — the
        #: same matching order the mailbox uses, so wait spans pair
        #: with the send that actually satisfied them.
        self._msg_fifo: dict[tuple[int, int, int], deque[int]] = defaultdict(deque)
        #: per-rank lane occupancy (busy-until time per lane slot) for
        #: the send and receive lane families, so concurrent
        #: outstanding operations never partially overlap on a track.
        self._send_lanes: dict[int, list[float]] = defaultdict(list)
        self._recv_lanes: dict[int, list[float]] = defaultdict(list)

    # -- spans ---------------------------------------------------------------

    def _append(self, span: Span) -> None:
        if self.capacity is not None and len(self.spans) == self.capacity:
            self.dropped_spans += 1
        self.spans.append(span)

    def begin(self, rank: int, cat: str, name: str, t: float,
              thread: int = 0, args: dict | None = None) -> list:
        """Open a nested span; returns a handle for :meth:`end`."""
        handle = [rank, thread, cat, name, t, args]
        self._stacks[(rank, thread)].append(handle)
        return handle

    def end(self, handle: list, t: float) -> None:
        """Close a span opened with :meth:`begin` at time ``t``.

        Out-of-order closes (a parent closed while children are still
        open, e.g. generators torn down after a simulated deadlock)
        implicitly close the children at the same instant; closing a
        handle twice is an error.
        """
        rank, thread, cat, name, t0, args = handle
        stack = self._stacks[(rank, thread)]
        if not any(entry is handle for entry in stack):
            raise ObservabilityError(
                f"span {name!r} on track ({rank}, {thread}) ended twice "
                f"or never begun"
            )
        while stack:
            top = stack.pop()
            r, th, c, n, start, a = top
            if t < start:
                raise ObservabilityError(
                    f"span {n!r} ends at {t} before it began at {start}"
                )
            self._append(Span(r, th, c, n, start, t, a))
            if top is handle:
                break

    def complete(self, rank: int, cat: str, name: str, t0: float, t1: float,
                 thread: int = 0, args: dict | None = None) -> None:
        """Record an already-closed span (no nesting stack involved)."""
        if t1 < t0:
            raise ObservabilityError(
                f"span {name!r} ends at {t1} before it began at {t0}"
            )
        self._append(Span(rank, thread, cat, name, t0, t1, args))

    def instant(self, rank: int, cat: str, name: str, t: float,
                thread: int = 0, args: dict | None = None) -> None:
        """Record a zero-duration marker."""
        self._append(Span(rank, thread, cat, name, t, t, args))

    # -- MPI hooks -----------------------------------------------------------

    def record_send(
        self,
        t: float,
        source: int,
        dest: int,
        tag: int,
        nbytes: float,
        inject_start: float,
        inject_end: float,
        arrival: float,
        link_class: str | None = None,
        hops: int = 0,
    ) -> int:
        """Record one message injection; returns the message id.

        The send span covers the *actual* injection window
        ``[inject_start, inject_end]`` (injections serialize behind
        the rank's link); when the send queued behind an earlier one
        (``inject_start > t``), the queueing delay is recorded as a
        ``wait`` span on the send lane.
        """
        msg_id = len(self.messages)
        self.messages.append(
            MessageRecord(t, source, dest, tag, nbytes, arrival)
        )
        self._msg_fifo[(source, dest, tag)].append(msg_id)
        args = {"msg": msg_id, "bytes": nbytes, "tag": tag}
        lane = _free_lane(self._send_lanes[source], SEND_LANE, t, inject_end)
        if t < inject_start:
            self._append(Span(source, lane, "wait", "inject_queue",
                              t, inject_start, {"msg": msg_id}))
        self._append(Span(source, lane, "send", f"send->{dest}",
                          inject_start, inject_end, args))
        counters = self.counters
        counters.add("mpi.messages", 1, t)
        counters.add("mpi.bytes", nbytes, t)
        if link_class is not None:
            counters.add(f"mpi.bytes.{link_class}", nbytes, t)
        if hops:
            counters.add("net.router_hops", hops, t)
        return msg_id

    def _wait_lane(self, rank: int, t0: float, t1: float) -> int:
        """First receive lane free over ``[t0, t1]`` for ``rank``."""
        return _free_lane(self._recv_lanes[rank], RECV_LANE, t0, t1)

    def on_recv_posted(self, rank: int, source: int, tag: int,
                       t_post: float, event) -> None:
        """Arm a posted receive: when ``event`` fires, a ``wait`` span
        from post to completion is recorded and paired with the
        message that satisfied it."""

        def completed(ev) -> None:
            msg = ev.value
            t1 = ev.sim.now
            msg_id: int | None = None
            if msg is not None:
                fifo = self._msg_fifo.get((msg.source, rank, msg.tag))
                if fifo:
                    msg_id = fifo.popleft()
            lane = self._wait_lane(rank, t_post, t1)
            args = None if msg_id is None else {"msg": msg_id}
            name = f"recv<-{msg.source}" if msg is not None else "recv"
            self._append(Span(rank, lane, "wait", name, t_post, t1, args))
            self.counters.add("mpi.recvs", 1, t1)

        event.add_callback(completed)

    # -- engine hook ---------------------------------------------------------

    def attach_engine(self, sim, interval: float = 0.0) -> None:
        """Sample engine gauges from ``sim`` as its clock advances."""
        sim.observer = EngineSampler(self.counters, interval=interval)

    # -- queries -------------------------------------------------------------

    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def elapsed(self) -> float:
        """Latest span end / message arrival seen (0 for an empty trace)."""
        latest = 0.0
        for s in self.spans:
            if s.t1 > latest:
                latest = s.t1
        for m in self.messages:
            if m.arrival > latest:
                latest = m.arrival
        return latest

    def ranks(self) -> list[int]:
        """Ranks that recorded at least one span."""
        return sorted({s.rank for s in self.spans})

    def spans_for(self, rank: int, thread: int | None = None) -> list[Span]:
        return [
            s for s in self.spans
            if s.rank == rank and (thread is None or s.thread == thread)
        ]

    def by_category(self) -> dict[str, int]:
        """Span counts per category."""
        out: dict[str, int] = defaultdict(int)
        for s in self.spans:
            out[s.cat] += 1
        return dict(sorted(out.items()))

    def message_summary(self) -> str:
        from repro.obs import messages as mstats

        return mstats.summary(self.messages)


class NullTracer:
    """A tracer that records nothing and allocates nothing.

    Satisfies the full :class:`Tracer` API so call sites can hold an
    always-valid object; its buffers are permanently empty.  Layers
    that instead keep ``None`` for "off" (the MPI hot path) never even
    reach these methods.
    """

    enabled = False
    spans: tuple = ()
    messages: tuple = ()
    dropped_spans = 0
    capacity = 0

    def __init__(self) -> None:
        self.counters = CounterSet()

    def begin(self, rank, cat, name, t, thread=0, args=None):
        return None

    def end(self, handle, t) -> None:
        pass

    def complete(self, rank, cat, name, t0, t1, thread=0, args=None) -> None:
        pass

    def instant(self, rank, cat, name, t, thread=0, args=None) -> None:
        pass

    def record_send(self, t, source, dest, tag, nbytes, inject_start,
                    inject_end, arrival, link_class=None, hops=0) -> int:
        return -1

    def on_recv_posted(self, rank, source, tag, t_post, event) -> None:
        pass

    def attach_engine(self, sim, interval: float = 0.0) -> None:
        pass

    @property
    def span_count(self) -> int:
        return 0

    @property
    def elapsed(self) -> float:
        return 0.0

    def ranks(self) -> list[int]:
        return []

    def spans_for(self, rank, thread=None) -> list:
        return []

    def by_category(self) -> dict:
        return {}

    def message_summary(self) -> str:
        return "trace: no messages"


#: Shared no-op tracer for callers that want a default object.
NULL_TRACER = NullTracer()

#: The ambient tracer installed by :func:`use_tracer` (None = off).
_current: Tracer | NullTracer | None = None


def current_tracer() -> Tracer | NullTracer | None:
    """The ambient tracer, or ``None`` when tracing is off."""
    return _current


@contextmanager
def use_tracer(tracer: Tracer | NullTracer | None):
    """Install ``tracer`` as the ambient tracer for the ``with`` body.

    Instrumented layers constructed inside the body (``MPIWorld``,
    ``run_parallel_for``, ``mlp_step_time``) record into it without
    any explicit argument threading.
    """
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
