"""``repro.obs`` — observability for the simulated machine.

Simulated-time tracing and analysis, in four layers:

* :mod:`repro.obs.spans` — the :class:`~repro.obs.spans.Tracer`:
  nested spans per (rank, thread) track, message records, and the
  ambient-tracer mechanism (:func:`~repro.obs.spans.use_tracer`) the
  instrumented layers (MPI, collectives, OpenMP, MLP, the DES engine)
  pick up;
* :mod:`repro.obs.counters` — monotonic counters and gauges sampled
  on simulated-time intervals;
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON and
  CSV exporters plus a schema validator;
* :mod:`repro.obs.critical_path` — per-rank compute/comm/wait
  decomposition and the critical-path walk over the span/message
  graph.

Tracing is strictly *observational*: traced and untraced runs take
identical simulated time, and with no tracer installed the
instrumented hot paths cost one attribute load and branch.
"""

from repro.obs.counters import CounterSet, EngineSampler
from repro.obs.critical_path import (
    Decomposition,
    RankBreakdown,
    critical_path,
    decompose,
    format_critical_path,
)
from repro.obs.export import (
    spans_to_csv,
    to_chrome_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.messages import MessageRecord
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "CounterSet",
    "Decomposition",
    "EngineSampler",
    "MessageRecord",
    "NULL_TRACER",
    "NullTracer",
    "RankBreakdown",
    "Span",
    "Tracer",
    "critical_path",
    "current_tracer",
    "decompose",
    "format_critical_path",
    "spans_to_csv",
    "to_chrome_json",
    "use_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
]
