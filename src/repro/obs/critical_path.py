"""Critical-path extraction and time decomposition over a span trace.

Two analyses, both in the style the paper uses to *explain* its
numbers (why BT-MZ outruns SP-MZ, where b_eff time goes at scale):

* :func:`decompose` — per-rank compute / communication / wait totals
  and fractions.  Compute is the exclusive time of ``compute`` and
  ``omp_region`` spans on a rank's main flow (OpenMP worker-lane
  chunks are detail *inside* that time, not extra); communication is
  send-injection time plus the exclusive (own) time of collective
  spans; wait is receive/queue waiting plus barriers.

* :func:`critical_path` — the dependency chain that determined the
  run's elapsed time, walked backward from the last span to finish:
  within a rank, to the latest span ending at or before the current
  one starts; across ranks, from a receive-wait span to the send span
  of the message that satisfied it (the tracer pairs them FIFO, the
  same order the mailbox matches).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass

from repro.obs.spans import SEND_LANE, Span, Tracer

__all__ = [
    "Decomposition",
    "RankBreakdown",
    "critical_path",
    "decompose",
    "format_critical_path",
]

#: span category -> decomposition bucket.
BUCKET_OF = {
    "compute": "compute",
    "omp_region": "compute",
    "send": "comm",
    "collective": "comm",
    "cache_lookup": "comm",
    "recv": "wait",
    "wait": "wait",
    "barrier": "wait",
}

#: Relative slack when chaining spans whose float endpoints should
#: coincide (an event scheduled at t can execute at t + a few ulps).
_EPS = 1e-9


def _exclusive_times(spans: list[Span]) -> dict[str, float]:
    """Category -> exclusive (self, minus children) time for one track.

    Spans on a track are properly nested by construction, so a
    start-sorted stack sweep attributes every instant to the innermost
    covering span.
    """
    out: dict[str, float] = defaultdict(float)
    stack: list[Span] = []
    for span in sorted(spans, key=lambda s: (s.t0, -s.t1)):
        while stack and stack[-1].t1 <= span.t0 + _EPS * max(1.0, abs(span.t0)):
            stack.pop()
        if stack:
            # span is nested: its duration is not the parent's own time.
            out[stack[-1].cat] -= span.t1 - span.t0
        out[span.cat] += span.t1 - span.t0
        stack.append(span)
    return dict(out)


@dataclass(frozen=True)
class RankBreakdown:
    """One rank's time decomposition (seconds)."""

    rank: int
    compute: float
    comm: float
    wait: float

    @property
    def total(self) -> float:
        return self.compute + self.comm + self.wait

    def fraction(self, bucket: str) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return getattr(self, bucket) / total


@dataclass(frozen=True)
class Decomposition:
    """Per-rank breakdowns plus trace-wide aggregates."""

    ranks: tuple[RankBreakdown, ...]
    elapsed: float

    def totals(self) -> RankBreakdown:
        """All-rank sums (rank = -1)."""
        return RankBreakdown(
            rank=-1,
            compute=sum(r.compute for r in self.ranks),
            comm=sum(r.comm for r in self.ranks),
            wait=sum(r.wait for r in self.ranks),
        )

    def fraction(self, bucket: str) -> float:
        """Trace-wide fraction of ``bucket`` in compute+comm+wait."""
        return self.totals().fraction(bucket)

    def format(self) -> str:
        """The text decomposition table the ``trace`` verb prints."""
        lines = [
            f"{'rank':>5}  {'compute':>11}  {'comm':>11}  {'wait':>11}"
            f"  {'comp%':>6}  {'comm%':>6}  {'wait%':>6}"
        ]
        rows = list(self.ranks) + ([self.totals()] if len(self.ranks) > 1 else [])
        for row in rows:
            label = "all" if row.rank < 0 else str(row.rank)
            lines.append(
                f"{label:>5}  {row.compute:11.6f}  {row.comm:11.6f}"
                f"  {row.wait:11.6f}"
                f"  {100 * row.fraction('compute'):6.1f}"
                f"  {100 * row.fraction('comm'):6.1f}"
                f"  {100 * row.fraction('wait'):6.1f}"
            )
        lines.append(f"elapsed: {self.elapsed:.6f} s (simulated)")
        return "\n".join(lines)


def decompose(tracer: Tracer) -> Decomposition:
    """Per-rank compute/comm/wait decomposition of a recorded trace."""
    per_track: dict[tuple[int, int], list[Span]] = defaultdict(list)
    for span in tracer.spans:
        per_track[(span.rank, span.thread)].append(span)

    buckets: dict[int, dict[str, float]] = defaultdict(
        lambda: {"compute": 0.0, "comm": 0.0, "wait": 0.0}
    )
    for (rank, thread), spans in per_track.items():
        if 0 < thread < SEND_LANE:
            # OpenMP worker lanes: per-chunk detail inside the rank's
            # compute time, already counted on the main flow.
            continue
        for cat, seconds in _exclusive_times(spans).items():
            bucket = BUCKET_OF.get(cat)
            if bucket is not None:
                buckets[rank][bucket] += seconds

    ranks = tuple(
        RankBreakdown(rank=r, **buckets[r]) for r in sorted(buckets)
    )
    return Decomposition(ranks=ranks, elapsed=tracer.elapsed)


def critical_path(tracer: Tracer, max_len: int = 100_000) -> list[Span]:
    """The backward dependency chain ending at the last span to finish.

    Returned in forward (time) order.  ``max_len`` bounds the walk as
    a safety net on degenerate traces.
    """
    spans = list(tracer.spans)
    if not spans:
        return []
    by_rank: dict[int, list[Span]] = defaultdict(list)
    msg_send: dict[int, Span] = {}
    for span in spans:
        by_rank[span.rank].append(span)
        if span.cat == "send" and span.args and "msg" in span.args:
            msg_send[span.args["msg"]] = span
    ends: dict[int, list[float]] = {}
    for rank, rank_spans in by_rank.items():
        rank_spans.sort(key=lambda s: (s.t1, s.t0))
        ends[rank] = [s.t1 for s in rank_spans]

    # Start at the globally last (innermost, on ties) span to end.
    current = max(spans, key=lambda s: (s.t1, s.t0))
    path = [current]
    seen = {id(current)}
    while len(path) < max_len:
        nxt: Span | None = None
        # Cross-rank hop: a wait span chains to the send that fed it.
        if current.cat == "wait" and current.args and current.args.get("msg") is not None:
            nxt = msg_send.get(current.args["msg"])
        if nxt is None or id(nxt) in seen:
            # Same-rank hop: latest span ending at/before our start.
            rank_spans = by_rank[current.rank]
            slack = _EPS * max(1.0, abs(current.t0))
            i = bisect_right(ends[current.rank], current.t0 + slack) - 1
            while i >= 0 and id(rank_spans[i]) in seen:
                i -= 1
            nxt = rank_spans[i] if i >= 0 else None
        if nxt is None:
            break
        path.append(nxt)
        seen.add(id(nxt))
        current = nxt
    path.reverse()
    return path


def format_critical_path(path: list[Span], limit: int = 20) -> str:
    """A readable rendering of a critical path (longest spans first
    elided to ``limit`` chronological entries)."""
    if not path:
        return "critical path: empty trace"
    total = path[-1].t1 - path[0].t0
    lines = [
        f"critical path: {len(path)} spans, "
        f"{total:.6f} s from t={path[0].t0:.6f} to t={path[-1].t1:.6f}"
    ]
    shown = path if len(path) <= limit else path[:limit]
    for span in shown:
        lines.append(
            f"  [{span.cat:<11}] rank {span.rank:<3} {span.name:<18} "
            f"{span.t0:.6f} -> {span.t1:.6f} ({span.t1 - span.t0:.6f} s)"
        )
    if len(path) > limit:
        lines.append(f"  ... {len(path) - limit} more spans")
    return "\n".join(lines)
