"""Calibration provenance index.

Every tuned constant in the model, where it lives, and which paper
statement anchors it.  The constants themselves stay next to the code
that uses them (so the modules are self-contained); this index is the
audit trail, and :func:`calibration_report` renders it for the docs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CalibratedConstant", "CALIBRATION", "calibration_report"]


@dataclass(frozen=True)
class CalibratedConstant:
    name: str
    module: str
    anchored_to: str


CALIBRATION: tuple[CalibratedConstant, ...] = (
    CalibratedConstant(
        "DGEMM_EFFICIENCY = 0.90", "repro.hpcc.dgemm",
        "§4.1.1: BX2b DGEMM 5.75 Gflop/s, ~6% over the 1.5 GHz parts",
    ),
    CalibratedConstant(
        "ALTIX_FSB (4.0 GB/s bus, 3.8 GB/s single CPU)", "repro.machine.memory",
        "§4.2: 1-CPU STREAM ~3.8 GB/s, dense ~2 GB/s, Triad 1.9x strided",
    ),
    CalibratedConstant(
        "NODE_QUIRK[3700] = 1.01", "repro.hpcc.stream",
        "§4.1.1: Triad ~1% better on 3700 (unexplained by the authors too)",
    ),
    CalibratedConstant(
        "NUMALINK3/4 latency & bandwidth parameters", "repro.machine.interconnect",
        "Table 1 bandwidths; Fig. 5 latency ranges and node-type ordering",
    ),
    CalibratedConstant(
        "plane_factor (NL3 0.35, NL4 1.0)", "repro.machine.interconnect",
        "§4.1.2: FT ~2x on BX2 at 256 CPUs; OpenMP up to 2x at 128 threads",
    ),
    CalibratedConstant(
        "MPI_MEMCPY_BANDWIDTH = 1.9 GB/s @1.5 GHz", "repro.machine.node",
        "§4.1.1: natural-ring bandwidth determined by processor speed",
    ),
    CalibratedConstant(
        "INFINIBAND (0.82 GB/s, 5.6 us, degradation per node)",
        "repro.machine.infiniband",
        "Fig. 10: IB latency/bandwidth penalties, worse at four nodes",
    ),
    CalibratedConstant(
        "MPT_ANOMALY_LATENCY = 1.4e-05", "repro.faults.spec",
        "§4.6.2: released MPT extra per-message latency over IB",
    ),
    CalibratedConstant(
        "MPT_ANOMALY_EXCESS = 0.4", "repro.faults.spec",
        "§4.6.2: released MPT 40% slower for SP-MZ over IB at 256 CPUs "
        "(MZ step excess = 0.40*(256/P))",
    ),
    CalibratedConstant(
        "BOOT_CPUSET_PENALTY = 1.12", "repro.faults.spec",
        "§4.6.2: full-512-CPU runs dropped 10-15%",
    ),
    CalibratedConstant(
        "unpinned locality penalty (migration x spread model)",
        "repro.machine.placement",
        "Fig. 7: pinning matters most for many threads and many CPUs",
    ),
    CalibratedConstant(
        "compiler_factor matrix", "repro.machine.compilers",
        "Fig. 8 and Table 4 compiler orderings, incl. the MG crossover",
    ),
    CalibratedConstant(
        "KERNEL_PERF (base_eff/reuse/OMP params per NPB kernel)",
        "repro.npb.timing",
        "Fig. 6 rate bands; §4.1.2 cache-jump and bandwidth sentences",
    ),
    CalibratedConstant(
        "thread_efficiency = 1/(1 + 0.11 (t-1)^1.25)", "repro.npb.hybrid",
        "Fig. 9: strong at 2 threads, dropping quickly beyond",
    ),
    CalibratedConstant(
        "INS3D SERIAL_STEP (39230 / 26430 s), OMP fraction 0.72/0.75, MLP_OVERHEAD 1.10",
        "repro.apps.ins3d",
        "Table 2 (the first row is the paper's own baseline measurement)",
    ),
    CalibratedConstant(
        "turbopump/rotor block-size distributions", "repro.apps.overset.grids",
        "§3.4-§3.5 block counts/total points; §4.1.4 load-balance collapse at 508",
    ),
    CalibratedConstant(
        "OVERFLOW constants (FLOPS_PER_POINT 5000, TRAFFIC 30000 B, WS 160 B/pt, "
        "FRINGE_EFF 0.13, POLL 4 MB/partner, fabric-dependent thread eff)",
        "repro.apps.overflow",
        "§4.1.4 efficiency percentages, comm/exec ratios, BX2b 2x/3x claims; "
        "§4.6.4 NL4 ~10% better exec with lower IB comm timers",
    ),
    CalibratedConstant(
        "MD FLOPS_PER_PAIR 45, COMPUTE_EFF 0.10", "repro.apps.md.scaling",
        "§4.6.3: flat time/step at 64k atoms/CPU, insignificant comm",
    ),
)


def calibration_report() -> str:
    """Human-readable audit trail of every calibrated constant."""
    lines = ["Calibrated constants and their provenance:", ""]
    for c in CALIBRATION:
        lines.append(f"* {c.name}")
        lines.append(f"    in {c.module}")
        lines.append(f"    anchored to: {c.anchored_to}")
    return "\n".join(lines)
