"""The characterization harness (the paper's primary deliverable).

The paper's contribution is an *application-based performance
characterization*: a structured set of experiments spanning
microbenchmarks, synthetic benchmarks and full applications, each
isolating one machine dimension (node type, interconnect, pinning,
stride, compiler, process/thread mix).  This package is that harness,
re-targeted at the simulated Columbia:

* :mod:`repro.core.experiment` — experiment/result containers;
* :mod:`repro.core.registry` — every table and figure by id
  (``run_experiment("table2")`` etc.);
* :mod:`repro.core.paper` — the paper's reported values (with
  ``reconstructed`` flags where the source text is garbled), used by
  EXPERIMENTS.md and the comparison tests;
* :mod:`repro.core.calibration` — the provenance index of every
  calibrated constant in the model.
"""

from repro.core.experiment import ExperimentResult
from repro.core.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    experiment,
    experiment_specs,
    list_experiments,
    resolve_experiment,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "EXPERIMENTS",
    "experiment",
    "experiment_specs",
    "list_experiments",
    "resolve_experiment",
    "run_experiment",
]
