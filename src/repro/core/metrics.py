"""Performance metrics used across the harness.

Small, heavily-tested helpers for the quantities the paper reports:
speedup, parallel efficiency, Gflop/s conversions, and the aggregate
means HPCC uses (geometric for ring trials, harmonic for rates).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "speedup",
    "parallel_efficiency",
    "weak_scaling_efficiency",
    "geometric_mean",
    "harmonic_mean",
    "gflops_rate",
    "comm_fraction",
]


def speedup(t_serial: float, t_parallel: float) -> float:
    """Classic speedup T1 / Tp."""
    if t_serial <= 0 or t_parallel <= 0:
        raise ConfigurationError("times must be positive")
    return t_serial / t_parallel


def parallel_efficiency(t_serial: float, t_parallel: float, p: int) -> float:
    """Strong-scaling efficiency T1 / (p Tp) — §4.1.4's metric."""
    if p < 1:
        raise ConfigurationError(f"p must be >= 1: {p}")
    return speedup(t_serial, t_parallel) / p


def weak_scaling_efficiency(t_one: float, t_p: float) -> float:
    """Weak-scaling efficiency T(1) / T(p) at fixed per-CPU work —
    Table 5's metric (1.0 = perfect)."""
    if t_one <= 0 or t_p <= 0:
        raise ConfigurationError("times must be positive")
    return t_one / t_p


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (how HPCC aggregates random-ring trials)."""
    if not values:
        raise ConfigurationError("need at least one value")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (the right average for rates over equal work)."""
    if not values:
        raise ConfigurationError("need at least one value")
    if any(v <= 0 for v in values):
        raise ConfigurationError("harmonic mean needs positive values")
    return len(values) / sum(1.0 / v for v in values)


def gflops_rate(flops: float, seconds: float) -> float:
    """Gflop/s from a flop count and a duration."""
    if seconds <= 0:
        raise ConfigurationError(f"duration must be positive: {seconds}")
    if flops < 0:
        raise ConfigurationError(f"negative flop count: {flops}")
    return flops / seconds / 1e9


def comm_fraction(comm: float, total: float) -> float:
    """Communication share of execution (Table 3's diagnostic)."""
    if total <= 0 or comm < 0 or comm > total:
        raise ConfigurationError(
            f"need 0 <= comm <= total, got comm={comm}, total={total}"
        )
    return comm / total
