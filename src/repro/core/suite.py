"""Full-report generation: the whole characterization in one call.

``write_report(output_dir)`` regenerates every experiment, runs the
claims certificate, and writes a browsable report directory:

* ``README.md`` — index with the certificate summary;
* ``<experiment_id>.md`` + ``<experiment_id>.csv`` per experiment;
* ``claims.md`` — the certificate;
* ``machine.md`` — Table 1 + topology metrics;
* ``calibration.md`` — the provenance index.

CLI: ``python -m repro report --output DIR [--fast]``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.calibration import calibration_report
from repro.core.claims import format_claims, verify_claims
from repro.core.export import to_csv, to_markdown
from repro.core.registry import experiment_specs
from repro.errors import ConfigurationError
from repro.machine.specs import format_table1
from repro.machine.topology import topology_report

__all__ = ["write_report"]


def write_report(
    output_dir: str | Path,
    fast: bool = True,
    experiment_ids: list[str] | None = None,
    include_claims: bool = True,
    runner=None,
) -> list[Path]:
    """Generate the report; returns the files written.

    ``runner`` (a :class:`repro.run.Runner`) is shared across every
    experiment, so ``--jobs``/cache settings apply to the whole
    report generation.
    """
    out = Path(output_dir)
    if out.exists() and not out.is_dir():
        raise ConfigurationError(f"{out} exists and is not a directory")
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    selected = experiment_specs()
    if experiment_ids is not None:
        known = {spec.experiment_id for spec in selected}
        unknown = [e for e in experiment_ids if e not in known]
        if unknown:
            raise ConfigurationError(f"unknown experiments: {unknown}")
        selected = [
            spec for spec in selected if spec.experiment_id in experiment_ids
        ]

    index = [
        "# Columbia characterization report",
        "",
        "Regenerated from the simulated machine "
        f"({'fast sweeps' if fast else 'full sweeps'}).",
        "",
        "## Experiments",
        "",
    ]
    for spec in selected:
        eid = spec.experiment_id
        result = spec.run(fast=fast, runner=runner)
        md = out / f"{eid}.md"
        md.write_text(to_markdown(result) + "\n")
        csv = out / f"{eid}.csv"
        csv.write_text(to_csv(result))
        written.extend([md, csv])
        index.append(f"* [{eid}]({eid}.md) — {spec.title} ({spec.anchor})")

    machine_md = out / "machine.md"
    machine_md.write_text(
        "# The simulated Columbia\n\n```\n"
        + format_table1() + "\n\n" + topology_report() + "\n```\n"
    )
    written.append(machine_md)
    index.append("")
    index.append("## Machine\n\n* [machine.md](machine.md)")

    calib_md = out / "calibration.md"
    calib_md.write_text("# Calibration provenance\n\n" + calibration_report() + "\n")
    written.append(calib_md)
    index.append("* [calibration.md](calibration.md)")

    if include_claims:
        results = verify_claims()
        claims_md = out / "claims.md"
        claims_md.write_text("# Certificate\n\n```\n" + format_claims(results) + "\n```\n")
        written.append(claims_md)
        n_pass = sum(r.passed for r in results)
        index.append(f"* [claims.md](claims.md) — {n_pass}/{len(results)} claims pass")

    if runner is not None and runner.stats.failures:
        index.append("")
        index.append("## Failed cells")
        index.append("")
        for line in runner.stats.failure_lines():
            index.append(f"* `{line}`")

    index_md = out / "README.md"
    index_md.write_text("\n".join(index) + "\n")
    written.append(index_md)
    return written
