"""The reproduction certificate: every prose claim, checked.

The paper's findings are sentences, not just tables.  Each
:class:`Claim` pairs one sentence with an executable check against the
simulated machine; :func:`verify_claims` runs them all and reports
pass/fail with the measured value — the quickest way to see what this
reproduction does and does not capture (``python -m repro claims``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["Claim", "ClaimResult", "CLAIMS", "verify_claims"]


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper."""

    claim_id: str
    paper_ref: str
    statement: str
    #: returns (passed, measured-description)
    check: Callable[[], tuple[bool, str]]


@dataclass(frozen=True)
class ClaimResult:
    claim_id: str
    paper_ref: str
    statement: str
    passed: bool
    measured: str


# -- check implementations (lazy imports keep module import cheap) -----------


def _dgemm_bx2b():
    from repro.hpcc import predict_dgemm
    from repro.machine.node import NodeType, build_node

    rate = predict_dgemm(build_node(NodeType.BX2B)).gflops_per_cpu
    return abs(rate - 5.75) / 5.75 < 0.01, f"{rate:.2f} Gflop/s"


def _dgemm_advantage():
    from repro.hpcc import predict_dgemm
    from repro.machine.node import NodeType, build_node

    bx = predict_dgemm(build_node(NodeType.BX2B)).gflops_per_cpu
    t37 = predict_dgemm(build_node(NodeType.A3700)).gflops_per_cpu
    ratio = bx / t37
    return 1.04 < ratio < 1.09, f"{(ratio - 1) * 100:.1f}%"


def _stream_stride():
    from repro.machine.memory import ALTIX_FSB

    gain = ALTIX_FSB.per_cpu_bandwidth(1) / ALTIX_FSB.per_cpu_bandwidth(2)
    return abs(gain - 1.9) < 0.05, f"{gain:.2f}x"


def _ft_2x():
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.npb.timing import npb_gflops_per_cpu

    r = [
        npb_gflops_per_cpu("ft", "B", Placement(single_node(nt), n_ranks=256))
        for nt in (NodeType.BX2A, NodeType.A3700)
    ]
    ratio = r[0] / r[1]
    return 1.6 < ratio < 2.6, f"{ratio:.2f}x"


def _mg_bt_cache_jump():
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.npb.timing import npb_gflops_per_cpu

    jumps = []
    for bm in ("mg", "bt"):
        r = [
            npb_gflops_per_cpu(bm, "B", Placement(single_node(nt), n_ranks=64))
            for nt in (NodeType.BX2B, NodeType.BX2A)
        ]
        jumps.append(r[0] / r[1])
    ok = all(1.3 < j < 1.9 for j in jumps)
    return ok, f"MG {jumps[0]:.2f}x, BT {jumps[1]:.2f}x"


def _openmp_2x():
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.npb.timing import npb_gflops_per_cpu

    ratios = []
    for bm in ("ft", "bt"):
        r = [
            npb_gflops_per_cpu(
                bm, "B",
                Placement(single_node(nt), n_ranks=1, threads_per_rank=128),
                "openmp",
            )
            for nt in (NodeType.BX2A, NodeType.A3700)
        ]
        ratios.append(r[0] / r[1])
    return max(ratios) > 1.5, f"FT {ratios[0]:.2f}x, BT {ratios[1]:.2f}x"


def _ins3d_50pct():
    from repro.apps.ins3d import INS3DModel
    from repro.machine.node import NodeType

    t37 = INS3DModel(node_type=NodeType.A3700).step_time(36, 4)
    tbx = INS3DModel(node_type=NodeType.BX2B).step_time(36, 4)
    ratio = t37 / tbx
    return 1.3 < ratio < 1.8, f"{(ratio - 1) * 100:.0f}% faster"


def _ins3d_thread_decay():
    from repro.apps.ins3d import INS3DModel

    m = INS3DModel()
    early = m.step_time(36, 2) / m.step_time(36, 4)
    late = m.step_time(36, 8) / m.step_time(36, 14)
    return early > 1.3 and late < 1.2, f"2->4: {early:.2f}x, 8->14: {late:.2f}x"


def _overflow_3x():
    from repro.apps.overflow import OverflowModel
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType

    t37 = OverflowModel(cluster=single_node(NodeType.A3700)).best_step_time(508).exec
    tbx = OverflowModel(cluster=single_node(NodeType.BX2B)).best_step_time(508).exec
    ratio = t37 / tbx
    return ratio > 3.0, f"{ratio:.1f}x at 508 CPUs"


def _overflow_imbalance():
    from repro.apps.overset.grids import rotor_system
    from repro.apps.overset.grouping import group_blocks

    s = rotor_system()
    imb = group_blocks(s, 508, "binpack").imbalance
    return imb > 4.0, f"max/mean load {imb:.1f} at 508 groups"


def _pure_mpi_three_nodes():
    from repro.machine.infiniband import max_mpi_procs_per_node

    cap3 = max_mpi_procs_per_node(3)
    cap4 = max_mpi_procs_per_node(4)
    return cap3 >= 512 > cap4, f"cap: {cap3}@3 nodes, {cap4}@4 nodes"


def _pinning():
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement, PinningMode

    def penalty(threads):
        return Placement(
            single_node(NodeType.BX2B), n_ranks=64 // threads,
            threads_per_rank=threads, pinning=PinningMode.UNPINNED,
        ).locality_penalty()

    hybrid, pure = penalty(16), penalty(1)
    return hybrid > 1.5 and pure < hybrid, f"hybrid {hybrid:.2f}x, pure {pure:.2f}x"


def _compiler_mg_crossover():
    from repro.machine.compilers import Compiler, compiler_factor

    low = compiler_factor(Compiler.V7_1, "mg", 16) > compiler_factor(Compiler.V8_1, "mg", 16)
    mid = compiler_factor(Compiler.V8_1, "mg", 64) > compiler_factor(Compiler.V7_1, "mg", 64)
    return low and mid, "7.1 wins <32 threads, 8.1 wins 32-128"


def _btmz_linear():
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.npb.hybrid import MZTimingModel

    cluster = single_node(NodeType.BX2B)
    t16 = MZTimingModel("bt-mz", "C", Placement(cluster, n_ranks=16)).total_gflops()
    t64 = MZTimingModel("bt-mz", "C", Placement(cluster, n_ranks=64)).total_gflops()
    ratio = t64 / t16
    return ratio > 3.3, f"16->64 processes: {ratio:.1f}x"


def _spmz_dips():
    from repro.machine.cluster import multinode
    from repro.machine.placement import Placement
    from repro.npb.hybrid import mz_gflops_per_cpu

    c = multinode(2)
    even = mz_gflops_per_cpu("sp-mz", "E", Placement(c, n_ranks=512, spread_nodes=True))
    dip = mz_gflops_per_cpu("sp-mz", "E", Placement(c, n_ranks=768, spread_nodes=True))
    return dip < 0.95 * even, f"768-CPU rate {dip / even * 100:.0f}% of 512's"


def _mpt_anomaly():
    # The anomaly is a degraded mode, reproduced through fault
    # injection (the paper never root-caused it): COLUMBIA_DEGRADED
    # carries the released-MPT fault, and the model gates where it
    # bites (SP-MZ, multi-node, IB, mpt1.11r).
    from repro.faults import COLUMBIA_DEGRADED, use_faults
    from repro.machine.cluster import multinode
    from repro.machine.infiniband import MPTVersion
    from repro.machine.placement import Placement
    from repro.npb.hybrid import mz_gflops_per_cpu

    def rate(mpt):
        c = multinode(4, fabric="infiniband", mpt=mpt)
        return mz_gflops_per_cpu(
            "sp-mz", "E", Placement(c, n_ranks=256, spread_nodes=True)
        )

    with use_faults(COLUMBIA_DEGRADED):
        rel, beta = rate(MPTVersion.MPT_1_11R), rate(MPTVersion.MPT_1_11B)
    deficit = 1 - rel / beta
    return 0.2 < deficit < 0.5, f"released MPT {deficit * 100:.0f}% slower"


def _boot_cpuset():
    from repro.faults import COLUMBIA_DEGRADED, use_faults
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement

    with use_faults(COLUMBIA_DEGRADED):
        full = Placement(single_node(NodeType.BX2B), n_ranks=512).boot_cpuset_penalty()
        reduced = Placement(single_node(NodeType.BX2B), n_ranks=508).boot_cpuset_penalty()
    return full > 1.05 and reduced == 1.0, f"512-CPU penalty {full:.2f}x, 508: none"


def _md_weak_scaling():
    from repro.apps.md.scaling import MDScalingModel

    m = MDScalingModel()
    eff = m.efficiency(2040)
    comm_share = m.comm_time_per_step(2040) / m.step_time(2040)
    return eff > 0.9 and comm_share < 0.05, (
        f"efficiency {eff:.3f}, comm {comm_share * 100:.1f}% of step"
    )


def _md_energy():
    from repro.apps.md import MDSimulation

    sim = MDSimulation(cells=2, dt=0.004, seed=1)
    sim.step(40)
    drift = sim.energy_drift()
    return drift < 0.01, f"NVE drift {drift:.2e} over 40 steps"


def _table6_inversion():
    from repro.apps.overflow import OverflowModel
    from repro.machine.cluster import multinode

    nl = OverflowModel(cluster=multinode(4, fabric="numalink4")).reported(1008)
    ib = OverflowModel(cluster=multinode(4, fabric="infiniband")).reported(1008)
    ok = ib.exec > nl.exec and ib.comm < nl.comm
    return ok, (
        f"exec NL4 {nl.exec:.2f}s vs IB {ib.exec:.2f}s; "
        f"comm NL4 {nl.comm:.2f}s vs IB {ib.comm:.2f}s"
    )


def _ib_ring_collapse():
    from repro.hpcc import random_ring
    from repro.machine.cluster import multinode
    from repro.machine.placement import Placement

    nl = Placement(multinode(2, fabric="numalink4", n_cpus=64), n_ranks=128, spread_nodes=True)
    ib = Placement(multinode(2, fabric="infiniband", n_cpus=64), n_ranks=128, spread_nodes=True)
    r_nl = random_ring(nl, trials=1)
    r_ib = random_ring(ib, trials=1)
    ratio = r_ib.bandwidth_per_cpu / r_nl.bandwidth_per_cpu
    return ratio < 0.5, f"IB random ring at {ratio * 100:.0f}% of NL4"


CLAIMS: tuple[Claim, ...] = (
    Claim("dgemm_rate", "§4.1.1", "BX2b DGEMM reaches 5.75 Gflop/s", _dgemm_bx2b),
    Claim("dgemm_gap", "§4.1.1", "BX2b DGEMM ~6% over 3700/BX2a", _dgemm_advantage),
    Claim("stride_triad", "§4.2", "Strided STREAM Triad 1.9x over dense", _stream_stride),
    Claim("ft_bandwidth", "§4.1.2", "FT ~2x faster on BX2 at 256 CPUs", _ft_2x),
    Claim("cache_jump", "§4.1.2", "MG/BT jump ~50% on BX2b at 64 CPUs (9MB L3)", _mg_bt_cache_jump),
    Claim("openmp_bandwidth", "§4.1.2", "OpenMP gap up to 2x at 128 threads (FT/BT)", _openmp_2x),
    Claim("ins3d_bx2b", "§4.1.3", "INS3D ~50% faster per iteration on BX2b", _ins3d_50pct),
    Claim("ins3d_threads", "§4.1.3", "INS3D thread scaling decays beyond 8", _ins3d_thread_decay),
    Claim("overflow_3x", "§4.1.4", "OVERFLOW-D >3x faster on BX2b at 508 CPUs", _overflow_3x),
    Claim("overflow_balance", "§4.1.4", "1679 blocks defeat balancing at 508 processes", _overflow_imbalance),
    Claim("ib_connection_cap", "§2", "Pure MPI fully uses at most 3 nodes over IB", _pure_mpi_three_nodes),
    Claim("pinning", "§4.3", "Pinning matters most for hybrid many-thread runs", _pinning),
    Claim("mg_compiler", "§4.4", "MG compiler ranking flips with thread count", _compiler_mg_crossover),
    Claim("btmz_mpi", "§4.5", "BT-MZ MPI scales near-linearly until imbalance", _btmz_linear),
    Claim("spmz_divisibility", "§4.6.2", "SP-MZ dips when zones don't divide processes", _spmz_dips),
    Claim("mpt_anomaly", "§4.6.2", "Released MPT ~40% slower for SP-MZ over IB at 256", _mpt_anomaly),
    Claim("boot_cpuset", "§4.6.2", "Full-node 512-CPU runs drop 10-15%", _boot_cpuset),
    Claim("md_scaling", "§4.6.3", "MD weak-scales almost perfectly to 2040 CPUs", _md_weak_scaling),
    Claim("md_physics", "§3.3", "Velocity Verlet conserves energy (NVE)", _md_energy),
    Claim("table6_inversion", "§4.6.4", "NL4 ~10% better exec; IB comm timers lower", _table6_inversion),
    Claim("ib_random_ring", "§4.6.1", "IB random ring far below NL4 across nodes", _ib_ring_collapse),
)


def verify_claims(claim_ids: list[str] | None = None) -> list[ClaimResult]:
    """Run every (or the named) claim check; never raises on failure."""
    selected = CLAIMS
    if claim_ids is not None:
        by_id = {c.claim_id: c for c in CLAIMS}
        unknown = [cid for cid in claim_ids if cid not in by_id]
        if unknown:
            raise ConfigurationError(f"unknown claims: {unknown}")
        selected = tuple(by_id[cid] for cid in claim_ids)
    results = []
    for claim in selected:
        try:
            passed, measured = claim.check()
        except Exception as exc:  # a crash is a failed claim
            passed, measured = False, f"check crashed: {exc}"
        results.append(
            ClaimResult(claim.claim_id, claim.paper_ref, claim.statement,
                        passed, measured)
        )
    return results


def format_claims(results: list[ClaimResult]) -> str:
    """Render the certificate."""
    lines = ["Reproduction certificate", "=" * 72]
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        lines.append(f"[{mark}] {r.paper_ref:<8} {r.statement}")
        lines.append(f"       measured: {r.measured}")
    n_pass = sum(r.passed for r in results)
    lines.append("=" * 72)
    lines.append(f"{n_pass}/{len(results)} claims reproduced")
    return "\n".join(lines)
