"""Experiment and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """The outcome of one table/figure reproduction.

    ``rows`` are printable tuples matching ``columns``; ``format()``
    renders the same rows/series the paper reports.
    """

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: str = ""

    def add(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"{self.experiment_id}: row of {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        """All values of one column (for tests and plots)."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ConfigurationError(
                f"{self.experiment_id}: no column {name!r}; "
                f"have {self.columns}"
            ) from None
        return [row[idx] for row in self.rows]

    def select(self, **filters: Any) -> list[tuple]:
        """Rows whose named columns equal the given values."""
        idxs = {self.columns.index(k): v for k, v in filters.items()}
        return [
            row
            for row in self.rows
            if all(row[i] == v for i, v in idxs.items())
        ]

    def value(self, column: str, **filters: Any) -> Any:
        """The single value of ``column`` in the row matching
        ``filters`` (errors if not exactly one row matches)."""
        rows = self.select(**filters)
        if len(rows) != 1:
            raise ConfigurationError(
                f"{self.experiment_id}: {len(rows)} rows match {filters}"
            )
        return rows[0][self.columns.index(column)]

    def format(self, float_fmt: str = "{:.3g}") -> str:
        """Render as an aligned text table."""
        header = [str(c) for c in self.columns]
        body = [
            [
                float_fmt.format(v) if isinstance(v, float) else str(v)
                for v in row
            ]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)
