"""Export experiment results (CSV / Markdown / JSON-compatible dicts).

The paper's tables and figures end up in three places downstream:
spreadsheets (CSV), reports (Markdown) and scripted comparisons
(records).  All three renderings share the ExperimentResult rows.
"""

from __future__ import annotations

import io
import json

from repro.core.experiment import ExperimentResult
from repro.errors import ConfigurationError

__all__ = ["to_csv", "to_markdown", "to_records", "to_json"]


def to_csv(result: ExperimentResult) -> str:
    """Comma-separated rendering, header first."""
    import csv

    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow(row)
    return buf.getvalue()


def to_markdown(result: ExperimentResult) -> str:
    """GitHub-flavored Markdown table with the title as a heading."""
    lines = [f"### {result.title}", ""]
    lines.append("| " + " | ".join(str(c) for c in result.columns) + " |")
    lines.append("|" + "|".join("---" for _ in result.columns) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    if result.notes:
        lines.append("")
        lines.append(f"*{result.notes}*")
    return "\n".join(lines)


def to_records(result: ExperimentResult) -> list[dict]:
    """One dict per row, keyed by column name."""
    return [dict(zip(result.columns, row)) for row in result.rows]


def to_json(result: ExperimentResult) -> str:
    """JSON document with metadata + records."""
    doc = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "notes": result.notes,
        "rows": to_records(result),
    }
    try:
        return json.dumps(doc, indent=2, default=_jsonable)
    except TypeError as exc:  # pragma: no cover - defensive
        raise ConfigurationError(f"unserializable result: {exc}") from exc


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def _jsonable(v):
    if hasattr(v, "item"):
        return v.item()
    return str(v)
