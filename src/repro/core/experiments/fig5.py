"""Fig. 5: b_eff bandwidth and latency on 3700 / BX2a / BX2b.

Three patterns (ping-pong, natural ring, random ring) swept over CPU
counts within a single node of each type — the paper's single-box
interconnect comparison.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.hpcc import natural_ring, pingpong, random_ring
from repro.machine.cluster import single_node
from repro.machine.node import NodeType
from repro.machine.placement import Placement
from repro.units import to_gb_per_s, to_usec

__all__ = ["run", "CPU_COUNTS"]

CPU_COUNTS = (4, 8, 16, 32, 64, 128, 256, 512)
FAST_CPU_COUNTS = (4, 16, 64)


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5: b_eff latency (us) and bandwidth (GB/s) per node type",
        columns=(
            "node_type", "cpus", "pattern", "latency_us", "bandwidth_gb_s",
        ),
    )
    counts = FAST_CPU_COUNTS if fast else CPU_COUNTS
    for nt in NodeType:
        cluster = single_node(nt)
        for p in counts:
            pl = Placement(cluster, n_ranks=p)
            pp = pingpong(pl, max_pairs=8 if fast else 16)
            result.add(nt.value, p, "pingpong",
                       round(to_usec(pp.avg_latency), 2),
                       round(to_gb_per_s(pp.avg_bandwidth), 2))
            nr = natural_ring(pl)
            result.add(nt.value, p, "natural_ring",
                       round(to_usec(nr.latency), 2),
                       round(to_gb_per_s(nr.bandwidth_per_cpu), 2))
            rr = random_ring(pl, trials=1 if fast else 3)
            result.add(nt.value, p, "random_ring",
                       round(to_usec(rr.latency), 2),
                       round(to_gb_per_s(rr.bandwidth_per_cpu), 2))
    return result
