"""Fig. 5: b_eff bandwidth and latency on 3700 / BX2a / BX2b.

Three patterns (ping-pong, natural ring, random ring) swept over CPU
counts within a single node of each type — the paper's single-box
interconnect comparison.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import MachineSpec, PlacementSpec, build_result, sweep, workload

__all__ = ["run", "scenarios", "CPU_COUNTS"]

CPU_COUNTS = (4, 8, 16, 32, 64, 128, 256, 512)
FAST_CPU_COUNTS = (4, 16, 64)


@workload("fig5.cell")
def _cell(placement, node_type: str, cpus: int, max_pairs: int,
          trials: int) -> list[tuple]:
    from repro.hpcc import natural_ring, pingpong, random_ring
    from repro.units import to_gb_per_s, to_usec

    pp = pingpong(placement, max_pairs=max_pairs)
    nr = natural_ring(placement)
    rr = random_ring(placement, trials=trials)
    return [
        (node_type, cpus, "pingpong",
         round(to_usec(pp.avg_latency), 2),
         round(to_gb_per_s(pp.avg_bandwidth), 2)),
        (node_type, cpus, "natural_ring",
         round(to_usec(nr.latency), 2),
         round(to_gb_per_s(nr.bandwidth_per_cpu), 2)),
        (node_type, cpus, "random_ring",
         round(to_usec(rr.latency), 2),
         round(to_gb_per_s(rr.bandwidth_per_cpu), 2)),
    ]


def scenarios(fast: bool = False):
    return sweep(
        "fig5.cell",
        {
            "node_type": ("3700", "BX2a", "BX2b"),
            "cpus": FAST_CPU_COUNTS if fast else CPU_COUNTS,
        },
        base={"max_pairs": 8 if fast else 16, "trials": 1 if fast else 3},
        machine=lambda p: MachineSpec.legacy(node_type=p["node_type"]),
        placement=lambda p: PlacementSpec(n_ranks=p["cpus"]),
    )


@experiment(
    'fig5',
    title='b_eff latency/bandwidth per node type',
    anchor='Fig. 5',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="fig5",
        title="Fig. 5: b_eff latency (us) and bandwidth (GB/s) per node type",
        columns=(
            "node_type", "cpus", "pattern", "latency_us", "bandwidth_gb_s",
        ),
        scenarios=scenarios(fast),
        runner=runner,
    )
