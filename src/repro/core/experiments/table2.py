"""Table 2: INS3D runtime per iteration on 3700 and BX2b."""

from __future__ import annotations

from repro.apps.ins3d import INS3DModel
from repro.core.experiment import ExperimentResult
from repro.machine.node import NodeType

__all__ = ["run", "LAYOUTS"]

#: Table 2's layouts: (groups, threads, total CPUs).
LAYOUTS = (
    (1, 1, 1),
    (36, 1, 36),
    (36, 2, 72),
    (36, 4, 144),
    (36, 8, 288),
    (36, 12, 432),
    (36, 14, 504),
)


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table2",
        title="Table 2: INS3D runtime per iteration (s), 3700 vs BX2b",
        columns=("cpus", "layout", "t_3700_s", "t_bx2b_s"),
        notes="Layouts are MLP-groups x OpenMP-threads; the paper "
              "reports the 36x12 point only on the 3700 and 36x14 only "
              "on the BX2b.",
    )
    m37 = INS3DModel(node_type=NodeType.A3700)
    mbx = INS3DModel(node_type=NodeType.BX2B)
    for groups, threads, cpus in LAYOUTS:
        result.add(
            cpus,
            f"{groups}x{threads}",
            round(m37.step_time(groups, threads), 1),
            round(mbx.step_time(groups, threads), 1),
        )
    return result
