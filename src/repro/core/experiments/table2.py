"""Table 2: INS3D runtime per iteration on 3700 and BX2b."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, scenario, workload

__all__ = ["run", "scenarios", "LAYOUTS"]

#: Table 2's layouts: (groups, threads, total CPUs).
LAYOUTS = (
    (1, 1, 1),
    (36, 1, 36),
    (36, 2, 72),
    (36, 4, 144),
    (36, 8, 288),
    (36, 12, 432),
    (36, 14, 504),
)


@workload("table2.cell")
def _cell(groups: int, threads: int, cpus: int) -> list[tuple]:
    from repro.apps.ins3d import INS3DModel
    from repro.machine.node import NodeType

    m37 = INS3DModel(node_type=NodeType.A3700)
    mbx = INS3DModel(node_type=NodeType.BX2B)
    return [(
        cpus,
        f"{groups}x{threads}",
        round(m37.step_time(groups, threads), 1),
        round(mbx.step_time(groups, threads), 1),
    )]


def scenarios(fast: bool = False):
    return tuple(
        scenario("table2.cell", groups=groups, threads=threads, cpus=cpus)
        for groups, threads, cpus in LAYOUTS
    )


@experiment(
    'table2',
    title='INS3D MLP groups x OpenMP threads',
    anchor='Table 2',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="table2",
        title="Table 2: INS3D runtime per iteration (s), 3700 vs BX2b",
        columns=("cpus", "layout", "t_3700_s", "t_bx2b_s"),
        scenarios=scenarios(fast),
        runner=runner,
        notes="Layouts are MLP-groups x OpenMP-threads; the paper "
              "reports the 36x12 point only on the 3700 and 36x14 only "
              "on the BX2b.",
    )
