"""Ablation experiments — isolating the design choices the paper's
hardware comparisons entangle.

The BX2b differs from the BX2a in *both* clock (1.6 vs 1.5 GHz) and L3
(9 vs 6 MB); the paper infers which effect dominates per benchmark
from indirect evidence.  The simulator can simply build the two
hypothetical intermediate machines (1.5 GHz/9 MB and 1.6 GHz/6 MB) and
measure — via :func:`repro.machine.cluster.custom_bx2`, the same
builder the Scenario layer's ``MachineSpec`` overrides use.  Further
ablations cover the OVERFLOW-D grouping strategy, the InfiniBand
per-node card count, and the §5 future-work SHMEM port.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, sweep, workload

__all__ = [
    "run_cache_ablation",
    "run_clock_ablation",
    "run_grouping_ablation",
    "run_ibcards_ablation",
    "run_shmem_ablation",
    "cache_scenarios",
    "clock_scenarios",
    "grouping_scenarios",
    "ibcards_scenarios",
    "shmem_scenarios",
]


@workload("ablation.variant_pair")
def _variant_pair_cell(benchmark: str, cpus: int, clock_a: float, l3_a: int,
                       clock_b: float, l3_b: int,
                       gain_digits: int = 2) -> list[tuple]:
    """NPB rate on two hypothetical BX2 variants, plus the gain."""
    from repro.machine.cluster import custom_bx2
    from repro.machine.placement import Placement
    from repro.npb.timing import npb_gflops_per_cpu

    a = custom_bx2(clock_a, l3_a)
    b = custom_bx2(clock_b, l3_b)
    ra = npb_gflops_per_cpu(benchmark, "B", Placement(a, n_ranks=cpus))
    rb = npb_gflops_per_cpu(benchmark, "B", Placement(b, n_ranks=cpus))
    return [(benchmark, cpus, round(ra, 3), round(rb, 3),
             round(rb / ra, gain_digits))]


def cache_scenarios(fast: bool = False):
    return sweep(
        "ablation.variant_pair",
        {
            "benchmark": ("mg", "bt", "ft", "cg"),
            "cpus": (64,) if fast else (16, 64, 256),
        },
        base={"clock_a": 1.5, "l3_a": 6, "clock_b": 1.5, "l3_b": 9},
    )


@experiment(
    'ablation_cache',
    title='L3 size at fixed clock',
    anchor='ablation',
    scenarios=cache_scenarios,
)
def run_cache_ablation(fast: bool = False, runner=None) -> ExperimentResult:
    """L3 6 MB -> 9 MB at fixed 1.5 GHz: the pure cache effect."""
    return build_result(
        experiment_id="ablation_cache",
        title="Ablation: L3 size at fixed 1.5 GHz clock (NPB MPI, class B)",
        columns=("benchmark", "cpus", "l3_6mb", "l3_9mb", "cache_gain"),
        scenarios=cache_scenarios(fast),
        runner=runner,
    )


def clock_scenarios(fast: bool = False):
    return sweep(
        "ablation.variant_pair",
        {
            "benchmark": ("mg", "bt", "ft", "cg"),
            "cpus": (64,) if fast else (16, 64, 256),
        },
        base={"clock_a": 1.5, "l3_a": 6, "clock_b": 1.6, "l3_b": 6,
              "gain_digits": 3},
    )


@experiment(
    'ablation_clock',
    title='Clock at fixed L3 size',
    anchor='ablation',
    scenarios=clock_scenarios,
)
def run_clock_ablation(fast: bool = False, runner=None) -> ExperimentResult:
    """1.5 -> 1.6 GHz at fixed 6 MB L3: the pure clock effect."""
    return build_result(
        experiment_id="ablation_clock",
        title="Ablation: clock speed at fixed 6 MB L3 (NPB MPI, class B)",
        columns=("benchmark", "cpus", "ghz_15", "ghz_16", "clock_gain"),
        scenarios=clock_scenarios(fast),
        runner=runner,
    )


@workload("ablation.grouping")
def _grouping_cell(groups: int, scale: float) -> list[tuple]:
    from repro.apps.overset.connectivity import find_overlaps
    from repro.apps.overset.grids import rotor_system
    from repro.apps.overset.grouping import group_blocks

    system = rotor_system(scale=scale)
    overlaps = find_overlaps(system)
    conn = group_blocks(system, groups, "binpack-connectivity", overlaps=overlaps)
    lpt = group_blocks(system, groups, "binpack")
    rr = group_blocks(system, groups, "round-robin")
    return [(groups, round(conn.imbalance, 2), round(lpt.imbalance, 2),
             round(rr.imbalance, 2))]


def grouping_scenarios(fast: bool = False):
    return sweep(
        "ablation.grouping",
        {"groups": (64, 256) if fast else (36, 64, 128, 256, 508)},
        base={"scale": 0.05 if fast else 1.0},
    )


@experiment(
    'ablation_grouping',
    title='Grouping strategies vs imbalance',
    anchor='ablation',
    scenarios=grouping_scenarios,
)
def run_grouping_ablation(fast: bool = False, runner=None) -> ExperimentResult:
    """OVERFLOW-D grouping strategies: the paper's bin-packing with
    connectivity test vs pure LPT vs round-robin (§3.5 / ref [5])."""
    return build_result(
        experiment_id="ablation_grouping",
        title="Ablation: OVERFLOW-D grouping strategy vs load imbalance",
        columns=("groups", "binpack_conn", "binpack", "round_robin"),
        scenarios=grouping_scenarios(fast),
        runner=runner,
        notes="Values are max/mean group load (1.0 = perfect).",
    )


@workload("ablation.ibcards")
def _ibcards_cell(nodes: int) -> list[tuple]:
    from repro.machine.infiniband import max_mpi_procs_per_node

    caps = {c: max_mpi_procs_per_node(nodes, cards_per_node=c)
            for c in (4, 8, 16)}
    return [(nodes, caps[4], caps[8], caps[16], caps[8] >= 512)]


def ibcards_scenarios(fast: bool = False):
    return sweep("ablation.ibcards", {"nodes": (2, 3, 4, 6, 8, 12, 20)})


@experiment(
    'ablation_ibcards',
    title='IB card count vs MPI process cap',
    anchor='ablation',
    scenarios=ibcards_scenarios,
)
def run_ibcards_ablation(fast: bool = False, runner=None) -> ExperimentResult:
    """The §2 InfiniBand connection limit vs per-node card count."""
    return build_result(
        experiment_id="ablation_ibcards",
        title="Ablation: InfiniBand cards per node vs pure-MPI process cap",
        columns=("nodes", "cards_4", "cards_8", "cards_16", "full_node_ok_with_8"),
        scenarios=ibcards_scenarios(fast),
        runner=runner,
        notes="Cap = sqrt(cards x 64K / (nodes-1)) processes per node "
              "(§2); 'ok' = a full 512-CPU node can run pure MPI.",
    )


@workload("ablation.shmem")
def _shmem_cell(message_bytes: int) -> list[tuple]:
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.netmodel.costs import NetworkModel
    from repro.shmem import ShmemModel
    from repro.units import to_usec

    pl = Placement(single_node(NodeType.BX2B), n_ranks=64)
    net = NetworkModel(pl)
    shmem = ShmemModel(pl)
    t_mpi = net.message_time(0, 37, message_bytes)
    t_shm = shmem.put_time(0, 37, message_bytes)
    return [(message_bytes, round(to_usec(t_mpi), 2),
             round(to_usec(t_shm), 2), round(t_mpi / t_shm, 2))]


def shmem_scenarios(fast: bool = False):
    sizes = (1024, 65536) if fast else (64, 1024, 8192, 65536, 1048576)
    return sweep("ablation.shmem", {"message_bytes": sizes})


@experiment(
    'ablation_shmem',
    title='§5 future work: SHMEM vs MPI',
    anchor='§5',
    scenarios=shmem_scenarios,
)
def run_shmem_ablation(fast: bool = False, runner=None) -> ExperimentResult:
    """§5 future work: port INS3D's exchanges to SHMEM.

    Compares MPI vs SHMEM one-sided transfer time for the typical
    overset boundary message sizes, on a BX2b node.
    """
    return build_result(
        experiment_id="ablation_shmem",
        title="Ablation (paper §5 future work): MPI vs SHMEM transfer times (BX2b)",
        columns=("message_bytes", "mpi_us", "shmem_put_us", "shmem_gain"),
        scenarios=shmem_scenarios(fast),
        runner=runner,
    )
