"""Ablation experiments — isolating the design choices the paper's
hardware comparisons entangle.

The BX2b differs from the BX2a in *both* clock (1.6 vs 1.5 GHz) and L3
(9 vs 6 MB); the paper infers which effect dominates per benchmark
from indirect evidence.  The simulator can simply build the two
hypothetical intermediate machines (1.5 GHz/9 MB and 1.6 GHz/6 MB) and
measure.  Further ablations cover the OVERFLOW-D grouping strategy,
the InfiniBand per-node card count, and the §5 future-work SHMEM port.
"""

from __future__ import annotations

from dataclasses import replace

from repro.apps.overset.grids import rotor_system
from repro.apps.overset.grouping import group_blocks
from repro.core.experiment import ExperimentResult
from repro.machine.brick import CBrick
from repro.machine.cluster import Cluster, single_node
from repro.machine.infiniband import max_mpi_procs_per_node
from repro.machine.interconnect import NUMALINK4
from repro.machine.memory import ALTIX_FSB
from repro.machine.node import AltixNode, NodeType, build_node
from repro.machine.placement import Placement
from repro.machine.processor import ProcessorSpec, _itanium2_caches
from repro.netmodel.costs import NetworkModel
from repro.npb.timing import npb_gflops_per_cpu
from repro.shmem import ShmemModel
from repro.units import TERA, to_usec

__all__ = [
    "run_cache_ablation",
    "run_clock_ablation",
    "run_grouping_ablation",
    "run_ibcards_ablation",
    "run_shmem_ablation",
]


def _custom_bx2(clock_ghz: float, l3_mb: int) -> Cluster:
    """A hypothetical BX2 variant with the given clock and L3."""
    proc = ProcessorSpec(
        name=f"Itanium2 {clock_ghz}GHz/{l3_mb}MB",
        clock_hz=clock_ghz * 1e9,
        flops_per_cycle=4,
        fp_registers=128,
        caches=_itanium2_caches(l3_mb),
    )
    template = build_node(NodeType.BX2A)
    brick = CBrick(
        cpus=template.brick.cpus,
        memory_bytes=template.brick.memory_bytes,
        processor=proc,
        fsb=ALTIX_FSB,
        shubs=template.brick.shubs,
    )
    node = AltixNode(
        node_type=NodeType.BX2A,
        n_cpus=512,
        brick=brick,
        interconnect=NUMALINK4,
        memory_bytes=1.0 * TERA,
    )
    return Cluster(nodes=(node,))


def run_cache_ablation(fast: bool = False) -> ExperimentResult:
    """L3 6 MB -> 9 MB at fixed 1.5 GHz: the pure cache effect."""
    result = ExperimentResult(
        experiment_id="ablation_cache",
        title="Ablation: L3 size at fixed 1.5 GHz clock (NPB MPI, class B)",
        columns=("benchmark", "cpus", "l3_6mb", "l3_9mb", "cache_gain"),
    )
    small = _custom_bx2(1.5, 6)
    big = _custom_bx2(1.5, 9)
    counts = (64,) if fast else (16, 64, 256)
    for bm in ("mg", "bt", "ft", "cg"):
        for p in counts:
            r6 = npb_gflops_per_cpu(bm, "B", Placement(small, n_ranks=p))
            r9 = npb_gflops_per_cpu(bm, "B", Placement(big, n_ranks=p))
            result.add(bm, p, round(r6, 3), round(r9, 3), round(r9 / r6, 2))
    return result


def run_clock_ablation(fast: bool = False) -> ExperimentResult:
    """1.5 -> 1.6 GHz at fixed 6 MB L3: the pure clock effect."""
    result = ExperimentResult(
        experiment_id="ablation_clock",
        title="Ablation: clock speed at fixed 6 MB L3 (NPB MPI, class B)",
        columns=("benchmark", "cpus", "ghz_15", "ghz_16", "clock_gain"),
    )
    slow = _custom_bx2(1.5, 6)
    fast_clock = _custom_bx2(1.6, 6)
    counts = (64,) if fast else (16, 64, 256)
    for bm in ("mg", "bt", "ft", "cg"):
        for p in counts:
            r15 = npb_gflops_per_cpu(bm, "B", Placement(slow, n_ranks=p))
            r16 = npb_gflops_per_cpu(bm, "B", Placement(fast_clock, n_ranks=p))
            result.add(bm, p, round(r15, 3), round(r16, 3), round(r16 / r15, 3))
    return result


def run_grouping_ablation(fast: bool = False) -> ExperimentResult:
    """OVERFLOW-D grouping strategies: the paper's bin-packing with
    connectivity test vs pure LPT vs round-robin (§3.5 / ref [5])."""
    result = ExperimentResult(
        experiment_id="ablation_grouping",
        title="Ablation: OVERFLOW-D grouping strategy vs load imbalance",
        columns=("groups", "binpack_conn", "binpack", "round_robin"),
        notes="Values are max/mean group load (1.0 = perfect).",
    )
    system = rotor_system(scale=0.05 if fast else 1.0)
    counts = (64, 256) if fast else (36, 64, 128, 256, 508)
    from repro.apps.overset.connectivity import find_overlaps

    overlaps = find_overlaps(system)
    for g in counts:
        conn = group_blocks(system, g, "binpack-connectivity", overlaps=overlaps)
        lpt = group_blocks(system, g, "binpack")
        rr = group_blocks(system, g, "round-robin")
        result.add(g, round(conn.imbalance, 2), round(lpt.imbalance, 2),
                   round(rr.imbalance, 2))
    return result


def run_ibcards_ablation(fast: bool = False) -> ExperimentResult:
    """The §2 InfiniBand connection limit vs per-node card count."""
    result = ExperimentResult(
        experiment_id="ablation_ibcards",
        title="Ablation: InfiniBand cards per node vs pure-MPI process cap",
        columns=("nodes", "cards_4", "cards_8", "cards_16", "full_node_ok_with_8"),
        notes="Cap = sqrt(cards x 64K / (nodes-1)) processes per node "
              "(§2); 'ok' = a full 512-CPU node can run pure MPI.",
    )
    for n in (2, 3, 4, 6, 8, 12, 20):
        caps = {c: max_mpi_procs_per_node(n, cards_per_node=c) for c in (4, 8, 16)}
        result.add(n, caps[4], caps[8], caps[16], caps[8] >= 512)
    return result


def run_shmem_ablation(fast: bool = False) -> ExperimentResult:
    """§5 future work: port INS3D's exchanges to SHMEM.

    Compares MPI vs SHMEM one-sided transfer time for the typical
    overset boundary message sizes, on a BX2b node.
    """
    result = ExperimentResult(
        experiment_id="ablation_shmem",
        title="Ablation (paper §5 future work): MPI vs SHMEM transfer times (BX2b)",
        columns=("message_bytes", "mpi_us", "shmem_put_us", "shmem_gain"),
    )
    cluster = single_node(NodeType.BX2B)
    pl = Placement(cluster, n_ranks=64)
    net = NetworkModel(pl)
    shmem = ShmemModel(pl)
    sizes = (1024, 65536) if fast else (64, 1024, 8192, 65536, 1048576)
    for nbytes in sizes:
        t_mpi = net.message_time(0, 37, nbytes)
        t_shm = shmem.put_time(0, 37, nbytes)
        result.add(nbytes, round(to_usec(t_mpi), 2), round(to_usec(t_shm), 2),
                   round(t_mpi / t_shm, 2))
    return result
