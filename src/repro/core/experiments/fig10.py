"""Fig. 10: multinode b_eff — NUMAlink4 vs InfiniBand across BX2b nodes.

Latency and bandwidth for ping-pong / natural ring / random ring at
64-2048 CPUs spread over one, two or four nodes, under each fabric.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import MachineSpec, PlacementSpec, build_result, sweep, workload

__all__ = ["run", "scenarios", "CONFIGS"]

#: (label, n_nodes, fabric) — one node has no inter-node fabric.
CONFIGS = (
    ("1 node", 1, None),
    ("2n NUMAlink4", 2, "numalink4"),
    ("4n NUMAlink4", 4, "numalink4"),
    ("2n InfiniBand", 2, "infiniband"),
    ("4n InfiniBand", 4, "infiniband"),
)

CPU_COUNTS = (64, 256, 512, 1024, 2048)
FAST_CPU_COUNTS = (64, 512)


def _fits(point: dict) -> bool:
    cpus, n_nodes = point["cpus"], point["n_nodes"]
    if cpus > n_nodes * 512:
        return False
    return not (n_nodes > 1 and cpus < n_nodes)


@workload("fig10.cell")
def _cell(placement, config: str, n_nodes: int, fabric: str | None,
          cpus: int, max_pairs: int, trials: int) -> list[tuple]:
    from repro.hpcc import natural_ring, pingpong, random_ring
    from repro.units import to_gb_per_s, to_usec

    pp = pingpong(placement, max_pairs=max_pairs)
    nr = natural_ring(placement)
    rr = random_ring(placement, trials=trials)
    return [
        (config, cpus, "pingpong",
         round(to_usec(pp.avg_latency), 2),
         round(to_gb_per_s(pp.avg_bandwidth), 3)),
        (config, cpus, "natural_ring",
         round(to_usec(nr.latency), 2),
         round(to_gb_per_s(nr.bandwidth_per_cpu), 3)),
        (config, cpus, "random_ring",
         round(to_usec(rr.latency), 2),
         round(to_gb_per_s(rr.bandwidth_per_cpu), 3)),
    ]


def _machine(point: dict) -> MachineSpec:
    if point["n_nodes"] == 1:
        return MachineSpec.legacy(node_type="BX2b")
    return MachineSpec.legacy(
        node_type="BX2b", n_nodes=point["n_nodes"], fabric=point["fabric"]
    )


def scenarios(fast: bool = False):
    cells = []
    for label, n_nodes, fabric in CONFIGS:
        cells.extend(sweep(
            "fig10.cell",
            {"cpus": FAST_CPU_COUNTS if fast else CPU_COUNTS},
            base={
                "config": label, "n_nodes": n_nodes, "fabric": fabric,
                "max_pairs": 8 if fast else 16,
                "trials": 1 if fast else 2,
            },
            where=_fits,
            machine=_machine,
            placement=lambda p: PlacementSpec(
                n_ranks=p["cpus"], spread_nodes=p["n_nodes"] > 1
            ),
        ))
    return tuple(cells)


@experiment(
    'fig10',
    title='Multinode b_eff: NUMAlink4 vs InfiniBand',
    anchor='Fig. 10',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="fig10",
        title="Fig. 10: multinode b_eff, NUMAlink4 vs InfiniBand (BX2b nodes)",
        columns=(
            "config", "cpus", "pattern", "latency_us", "bandwidth_gb_s",
        ),
        scenarios=scenarios(fast),
        runner=runner,
    )
