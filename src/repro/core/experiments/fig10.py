"""Fig. 10: multinode b_eff — NUMAlink4 vs InfiniBand across BX2b nodes.

Latency and bandwidth for ping-pong / natural ring / random ring at
64-2048 CPUs spread over one, two or four nodes, under each fabric.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.hpcc import natural_ring, pingpong, random_ring
from repro.machine.cluster import multinode, single_node
from repro.machine.node import NodeType
from repro.machine.placement import Placement
from repro.units import to_gb_per_s, to_usec

__all__ = ["run", "CONFIGS"]

#: (label, n_nodes, fabric) — one node has no inter-node fabric.
CONFIGS = (
    ("1 node", 1, None),
    ("2n NUMAlink4", 2, "numalink4"),
    ("4n NUMAlink4", 4, "numalink4"),
    ("2n InfiniBand", 2, "infiniband"),
    ("4n InfiniBand", 4, "infiniband"),
)

CPU_COUNTS = (64, 256, 512, 1024, 2048)
FAST_CPU_COUNTS = (64, 512)


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig10",
        title="Fig. 10: multinode b_eff, NUMAlink4 vs InfiniBand (BX2b nodes)",
        columns=(
            "config", "cpus", "pattern", "latency_us", "bandwidth_gb_s",
        ),
    )
    counts = FAST_CPU_COUNTS if fast else CPU_COUNTS
    for label, n_nodes, fabric in CONFIGS:
        cluster = (
            single_node(NodeType.BX2B)
            if n_nodes == 1
            else multinode(n_nodes, fabric=fabric)
        )
        for p in counts:
            if p > cluster.total_cpus:
                continue
            if n_nodes > 1 and p < n_nodes:
                continue
            pl = Placement(cluster, n_ranks=p, spread_nodes=n_nodes > 1)
            pp = pingpong(pl, max_pairs=8 if fast else 16)
            result.add(label, p, "pingpong",
                       round(to_usec(pp.avg_latency), 2),
                       round(to_gb_per_s(pp.avg_bandwidth), 3))
            nr = natural_ring(pl)
            result.add(label, p, "natural_ring",
                       round(to_usec(nr.latency), 2),
                       round(to_gb_per_s(nr.bandwidth_per_cpu), 3))
            rr = random_ring(pl, trials=1 if fast else 2)
            result.add(label, p, "random_ring",
                       round(to_usec(rr.latency), 2),
                       round(to_gb_per_s(rr.bandwidth_per_cpu), 3))
    return result
