"""Table 4: INS3D and OVERFLOW-D under Intel Fortran 7.1 vs 8.1."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.faults import COLUMBIA_DEGRADED
from repro.run import build_result, scenario, sweep, workload

__all__ = ["run", "scenarios"]


@workload("table4.ins3d")
def _ins3d_cell() -> list[tuple]:
    from repro.apps.ins3d import INS3DModel
    from repro.machine.compilers import Compiler
    from repro.machine.node import NodeType

    # INS3D: negligible difference.
    t71 = INS3DModel(node_type=NodeType.BX2B, compiler=Compiler.V7_1).step_time(36, 4)
    t81 = INS3DModel(node_type=NodeType.BX2B, compiler=Compiler.V8_1).step_time(36, 4)
    return [("INS3D", 144, round(t71, 1), round(t81, 1), round(t81 / t71, 3))]


@workload("table4.overflow")
def _overflow_cell(cpus: int) -> list[tuple]:
    from repro.apps.overflow import OverflowModel
    from repro.machine.cluster import single_node
    from repro.machine.compilers import Compiler
    from repro.machine.node import NodeType

    # OVERFLOW-D on the 3700: 7.1 wins 20-40% below 64 CPUs.  The
    # compiler factor keys off the job size; build a cluster just big
    # enough so small runs register as small.
    cluster = single_node(NodeType.A3700, max(32, cpus))
    t71 = OverflowModel(cluster=cluster, compiler=Compiler.V7_1).best_step_time(cpus).exec
    t81 = OverflowModel(cluster=cluster, compiler=Compiler.V8_1).best_step_time(cpus).exec
    return [("OVERFLOW-D", cpus, round(t71, 2), round(t81, 2), round(t81 / t71, 3))]


def scenarios(fast: bool = False):
    counts = (16, 32) if fast else (16, 32, 64, 128, 256)
    # The paper's 3700 runs filled their nodes, so the boot-cpuset
    # contention (§4.6.2) was in every measurement: injected here.
    return (scenario("table4.ins3d"),) + sweep(
        "table4.overflow", {"cpus": counts}, faults=COLUMBIA_DEGRADED
    )


@experiment(
    'table4',
    title='INS3D/OVERFLOW-D under Fortran 7.1 vs 8.1',
    anchor='Table 4',
    scenarios=scenarios,
    faults=COLUMBIA_DEGRADED,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="table4",
        title="Table 4: INS3D and OVERFLOW-D with Fortran 7.1 vs 8.1",
        columns=("application", "cpus", "t_71_s", "t_81_s", "ratio_81_over_71"),
        scenarios=scenarios(fast),
        runner=runner,
        notes="INS3D on the BX2b (36 groups x 4 threads); OVERFLOW-D "
              "on the 3700, as in the paper.",
    )
