"""Extension experiment: OS noise amplification at scale.

§4.6.2's boot-cpuset finding (full-node runs dropped 10-15% from
system-software interference) is one instance of a general phenomenon:
synchronized parallel programs wait for whichever rank the OS delayed,
so fixed per-rank noise costs more the wider the job.  This experiment
measures it with the DES: a compute+allreduce step at growing rank
counts, quiet vs noisy, averaged over seeds.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, sweep, workload

__all__ = ["run", "scenarios"]

RANK_COUNTS = (8, 32, 128, 512)
FAST_RANK_COUNTS = (8, 64)
NOISE = 0.25
SEEDS = 5


def _step_time(p: int, noise: float, seed: int) -> float:
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.mpi import run_mpi
    from repro.mpi.collectives import allreduce

    def prog(comm):
        yield comm.compute(1e-3)
        yield from allreduce(comm, 8, 1.0)
        return None

    placement = Placement(single_node(NodeType.BX2B), n_ranks=p)
    return run_mpi(placement, prog, os_noise=noise, noise_seed=seed).elapsed


@workload("ext_noise.cell")
def _cell(ranks: int, noise: float, n_seeds: int) -> list[tuple]:
    seeds = range(n_seeds)
    quiet = sum(_step_time(ranks, 0.0, s) for s in seeds) / n_seeds
    noisy = sum(_step_time(ranks, noise, s) for s in seeds) / n_seeds
    return [(
        ranks, round(quiet * 1e3, 4), round(noisy * 1e3, 4),
        round(noisy / quiet, 2),
    )]


def scenarios(fast: bool = False):
    return sweep(
        "ext_noise.cell",
        {"ranks": FAST_RANK_COUNTS if fast else RANK_COUNTS},
        base={"noise": NOISE, "n_seeds": 2 if fast else SEEDS},
    )


@experiment(
    'ext_noise',
    title='Extension: OS-noise amplification at scale',
    anchor='extension',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="ext_noise",
        title="Extension: OS-noise amplification of a synchronized step",
        columns=("ranks", "quiet_ms", "noisy_ms", "slowdown"),
        scenarios=scenarios(fast),
        runner=runner,
        notes=f"Noise: compute segments stretched by 1 + Exp({NOISE}); "
              f"averaged over {SEEDS} seeds.  The relative cost of the "
              "same per-rank interference grows with the job width — "
              "the general mechanism behind the §4.6.2 boot-cpuset "
              "observation.",
    )
