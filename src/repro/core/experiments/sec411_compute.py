"""§4.1.1 DGEMM and STREAM on the three node types (+ §4.6.1 internode).

Reproduces the prose findings: DGEMM correlates with processor
speed/cache (5.75 Gflop/s on BX2b, +6%), not interconnect; STREAM
Triad is ~1% better on the 3700; the internode network plays <0.5% of
a role in DGEMM and none in STREAM.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, scenario, sweep, workload

__all__ = ["run", "scenarios"]


@workload("sec411.cell")
def _cell(node_type: str, setting: str) -> list[tuple]:
    from repro.hpcc import predict_dgemm, predict_stream
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType, build_node
    from repro.machine.placement import Placement

    nt = NodeType(node_type)
    node = build_node(nt)
    dense = Placement(single_node(nt), n_ranks=8)
    d = predict_dgemm(node, dense, internode=(setting == "internode"))
    s = predict_stream(node, dense)
    return [(node_type, setting, round(d.gflops_per_cpu, 2),
             round(s.copy, 2), round(s.scale, 2), round(s.add, 2),
             round(s.triad, 2))]


def scenarios(fast: bool = False):
    # Dense runs on every node type, then the §4.6.1 internode check
    # (interconnect <0.5% for DGEMM, nothing for STREAM) on the BX2b.
    return sweep(
        "sec411.cell",
        {"node_type": ("3700", "BX2a", "BX2b")},
        base={"setting": "dense"},
    ) + (scenario("sec411.cell", node_type="BX2b", setting="internode"),)


@experiment(
    'sec411_compute',
    title='§4.1.1 DGEMM + STREAM per node type',
    anchor='§4.1.1',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="sec411_compute",
        title="§4.1.1: DGEMM and STREAM per CPU on 3700 / BX2a / BX2b",
        columns=(
            "node_type", "setting", "dgemm_gflops",
            "stream_copy", "stream_scale", "stream_add", "stream_triad",
        ),
        scenarios=scenarios(fast),
        runner=runner,
        notes="STREAM columns in GB/s per CPU; 'dense' = both CPUs of "
              "each FSB active, 'internode' = across NUMAlink4-coupled "
              "nodes (§4.6.1).",
    )
