"""§4.1.1 DGEMM and STREAM on the three node types (+ §4.6.1 internode).

Reproduces the prose findings: DGEMM correlates with processor
speed/cache (5.75 Gflop/s on BX2b, +6%), not interconnect; STREAM
Triad is ~1% better on the 3700; the internode network plays <0.5% of
a role in DGEMM and none in STREAM.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.hpcc import predict_dgemm, predict_stream
from repro.machine.cluster import single_node
from repro.machine.node import NodeType, build_node
from repro.machine.placement import Placement

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="sec411_compute",
        title="§4.1.1: DGEMM and STREAM per CPU on 3700 / BX2a / BX2b",
        columns=(
            "node_type", "setting", "dgemm_gflops",
            "stream_copy", "stream_scale", "stream_add", "stream_triad",
        ),
        notes="STREAM columns in GB/s per CPU; 'dense' = both CPUs of "
              "each FSB active, 'internode' = across NUMAlink4-coupled "
              "nodes (§4.6.1).",
    )
    for nt in NodeType:
        node = build_node(nt)
        cluster = single_node(nt)
        dense = Placement(cluster, n_ranks=8)
        d = predict_dgemm(node, dense)
        s = predict_stream(node, dense)
        result.add(nt.value, "dense", round(d.gflops_per_cpu, 2),
                   round(s.copy, 2), round(s.scale, 2), round(s.add, 2),
                   round(s.triad, 2))
    # Internode runs (§4.6.1): interconnect plays <0.5% for DGEMM,
    # nothing for STREAM.
    node = build_node(NodeType.BX2B)
    cluster = single_node(NodeType.BX2B)
    dense = Placement(cluster, n_ranks=8)
    d = predict_dgemm(node, dense, internode=True)
    s = predict_stream(node, dense)
    result.add("BX2b", "internode", round(d.gflops_per_cpu, 2),
               round(s.copy, 2), round(s.scale, 2), round(s.add, 2),
               round(s.triad, 2))
    return result
