"""Fig. 8: performance of four Intel compiler versions on the OpenMP
NPBs (BX2b, -O3 -openmp)."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, sweep, workload

__all__ = ["run", "scenarios", "THREAD_COUNTS"]

THREAD_COUNTS = (4, 8, 16, 32, 64, 128, 256)
FAST_THREAD_COUNTS = (4, 16, 64)


@workload("fig8.cell")
def _cell(benchmark: str, threads: int) -> list[tuple]:
    from repro.machine.cluster import single_node
    from repro.machine.compilers import Compiler
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.npb.timing import npb_gflops_per_cpu

    cluster = single_node(NodeType.BX2B)
    pl = Placement(cluster, n_ranks=1, threads_per_rank=threads)
    rates = [
        round(npb_gflops_per_cpu(benchmark, "B", pl, "openmp", compiler), 3)
        for compiler in (
            Compiler.V7_1, Compiler.V8_0, Compiler.V8_1, Compiler.V9_0B
        )
    ]
    return [(benchmark, threads, *rates)]


def scenarios(fast: bool = False):
    return sweep(
        "fig8.cell",
        {
            "benchmark": ("cg", "ft", "mg", "bt"),
            "threads": FAST_THREAD_COUNTS if fast else THREAD_COUNTS,
        },
    )


@experiment(
    'fig8',
    title='Four compiler versions on OpenMP NPB',
    anchor='Fig. 8',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="fig8",
        title="Fig. 8: OpenMP NPB per-CPU Gflop/s under compilers 7.1/8.0/8.1/9.0b (BX2b)",
        columns=("benchmark", "threads", "v7_1", "v8_0", "v8_1", "v9_0b"),
        scenarios=scenarios(fast),
        runner=runner,
    )
