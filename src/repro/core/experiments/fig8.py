"""Fig. 8: performance of four Intel compiler versions on the OpenMP
NPBs (BX2b, -O3 -openmp)."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.machine.cluster import single_node
from repro.machine.compilers import Compiler
from repro.machine.node import NodeType
from repro.machine.placement import Placement
from repro.npb.timing import npb_gflops_per_cpu

__all__ = ["run", "THREAD_COUNTS"]

THREAD_COUNTS = (4, 8, 16, 32, 64, 128, 256)
FAST_THREAD_COUNTS = (4, 16, 64)


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig8",
        title="Fig. 8: OpenMP NPB per-CPU Gflop/s under compilers 7.1/8.0/8.1/9.0b (BX2b)",
        columns=("benchmark", "threads", "v7_1", "v8_0", "v8_1", "v9_0b"),
    )
    cluster = single_node(NodeType.BX2B)
    threads = FAST_THREAD_COUNTS if fast else THREAD_COUNTS
    for bm in ("cg", "ft", "mg", "bt"):
        for t in threads:
            pl = Placement(cluster, n_ranks=1, threads_per_rank=t)
            rates = [
                round(npb_gflops_per_cpu(bm, "B", pl, "openmp", compiler), 3)
                for compiler in (
                    Compiler.V7_1, Compiler.V8_0, Compiler.V8_1, Compiler.V9_0B
                )
            ]
            result.add(bm, t, *rates)
    return result
