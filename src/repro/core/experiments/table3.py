"""Table 3: OVERFLOW-D communication and execution time per step,
3700 vs BX2b (single node)."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, sweep, workload

__all__ = ["run", "scenarios", "CPU_COUNTS"]

CPU_COUNTS = (32, 64, 128, 256, 508)


@workload("table3.cell")
def _cell(cpus: int) -> list[tuple]:
    from repro.apps.overflow import OverflowModel
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType

    m37 = OverflowModel(cluster=single_node(NodeType.A3700))
    mbx = OverflowModel(cluster=single_node(NodeType.BX2B))
    s37 = m37.best_step_time(cpus)
    sbx = mbx.best_step_time(cpus)
    return [(
        cpus,
        round(s37.comm, 2), round(s37.exec, 2),
        round(m37.efficiency(cpus), 3),
        round(sbx.comm, 2), round(sbx.exec, 2),
        round(mbx.efficiency(cpus), 3),
    )]


def scenarios(fast: bool = False):
    counts = CPU_COUNTS[:3] if fast else CPU_COUNTS
    return sweep("table3.cell", {"cpus": counts})


@experiment(
    'table3',
    title='OVERFLOW-D 3700 vs BX2b scaling',
    anchor='Table 3',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="table3",
        title="Table 3: OVERFLOW-D per-step times (s), 3700 vs BX2b",
        columns=(
            "cpus",
            "comm_3700_s", "exec_3700_s", "eff_3700",
            "comm_bx2b_s", "exec_bx2b_s", "eff_bx2b",
        ),
        scenarios=scenarios(fast),
        runner=runner,
        notes="Best process/thread combination per CPU count, as the "
              "paper reports; a production run needs ~50,000 steps.",
    )
