"""Table 1: characteristics of the Altix node types."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, scenario, workload

__all__ = ["run", "scenarios"]


@workload("table1.rows")
def _rows() -> list[tuple]:
    from repro.machine.specs import table1_rows

    return [
        (
            r.node_type.value, r.n_processors, r.cpus_per_rack,
            r.clock_ghz, r.l3_mb, r.interconnect, r.bandwidth_gb_s,
            round(r.peak_tflops, 2), r.memory_tb,
        )
        for r in table1_rows()
    ]


def scenarios(fast: bool = False):
    return (scenario("table1.rows"),)


@experiment(
    'table1',
    title='Node characteristics (3700/BX2a/BX2b)',
    anchor='Table 1',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="table1",
        title="Table 1: Characteristics of the Altix nodes used in Columbia",
        columns=(
            "node_type", "processors", "cpus_per_rack", "clock_ghz",
            "l3_mb", "interconnect", "bandwidth_gb_s", "peak_tflops",
            "memory_tb",
        ),
        scenarios=scenarios(fast),
        runner=runner,
    )
