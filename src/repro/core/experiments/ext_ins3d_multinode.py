"""Extension experiment: the multinode INS3D the paper planned (§5).

"We want to complete the multinode version of INS3D to use it for
testing."  The model answers what that experiment would have shown:
how far past one box the turbopump case scales, and whether the
fabric matters.
"""

from __future__ import annotations

from repro.apps.ins3d import INS3DModel
from repro.apps.ins3d_multinode import INS3DMultinodeModel
from repro.core.experiment import ExperimentResult
from repro.errors import CommunicationError, ConfigurationError
from repro.machine.cluster import multinode
from repro.machine.node import NodeType

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext_ins3d_multinode",
        title="Extension (§5): multinode INS3D across BX2b nodes",
        columns=(
            "nodes", "fabric", "groups_per_node", "threads",
            "total_cpus", "step_time_s",
        ),
        notes="One-node rows use the calibrated Table 2 model.  The "
              "turbopump's 267 zones saturate around ~128 groups (the "
              "largest zone bounds the balance), so two nodes buy "
              "~1.8x and four buy little more — and the fabric barely "
              "matters, echoing the paper's OVERFLOW-D multinode "
              "finding.",
    )
    # Single node baselines.
    single = INS3DModel(node_type=NodeType.BX2B)
    for groups, threads in ((36, 14), (63, 8)):
        result.add(
            1, "-", groups, threads, groups * threads,
            round(single.step_time(groups, threads), 1),
        )
    fabrics = ("numalink4",) if fast else ("numalink4", "infiniband")
    node_counts = (2,) if fast else (2, 4)
    for fabric in fabrics:
        for n in node_counts:
            model = INS3DMultinodeModel(cluster=multinode(n, fabric=fabric))
            for groups_per_node in (32, 63):
                for threads in (4, 8):
                    if groups_per_node * threads > 508:
                        continue
                    try:
                        t = model.step_time(groups_per_node, threads)
                    except (ConfigurationError, CommunicationError):
                        continue
                    result.add(
                        n, fabric, groups_per_node, threads,
                        n * groups_per_node * threads, round(t, 1),
                    )
    return result
