"""Extension experiment: the multinode INS3D the paper planned (§5).

"We want to complete the multinode version of INS3D to use it for
testing."  The model answers what that experiment would have shown:
how far past one box the turbopump case scales, and whether the
fabric matters.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, sweep, workload

__all__ = ["run", "scenarios"]


@workload("ext_ins3d.single")
def _single_cell(groups: int, threads: int) -> list[tuple]:
    from repro.apps.ins3d import INS3DModel
    from repro.machine.node import NodeType

    single = INS3DModel(node_type=NodeType.BX2B)
    return [(
        1, "-", groups, threads, groups * threads,
        round(single.step_time(groups, threads), 1),
    )]


@workload("ext_ins3d.multi")
def _multi_cell(fabric: str, nodes: int, groups_per_node: int,
                threads: int) -> list[tuple]:
    from repro.apps.ins3d_multinode import INS3DMultinodeModel
    from repro.errors import CommunicationError, ConfigurationError
    from repro.machine.cluster import multinode

    model = INS3DMultinodeModel(cluster=multinode(nodes, fabric=fabric))
    try:
        t = model.step_time(groups_per_node, threads)
    except (ConfigurationError, CommunicationError):
        # Layout doesn't fit this cluster: a skipped point, not a
        # failed cell (mirrors the paper's sparse measurement grid).
        return []
    return [(
        nodes, fabric, groups_per_node, threads,
        nodes * groups_per_node * threads, round(t, 1),
    )]


def scenarios(fast: bool = False):
    from repro.run import scenario

    cells = tuple(
        scenario("ext_ins3d.single", groups=groups, threads=threads)
        for groups, threads in ((36, 14), (63, 8))
    )
    cells += sweep(
        "ext_ins3d.multi",
        {
            "fabric": ("numalink4",) if fast else ("numalink4", "infiniband"),
            "nodes": (2,) if fast else (2, 4),
            "groups_per_node": (32, 63),
            "threads": (4, 8),
        },
        where=lambda p: p["groups_per_node"] * p["threads"] <= 508,
    )
    return cells


@experiment(
    'ext_ins3d_multinode',
    title='§5 future work: multinode INS3D',
    anchor='§5',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="ext_ins3d_multinode",
        title="Extension (§5): multinode INS3D across BX2b nodes",
        columns=(
            "nodes", "fabric", "groups_per_node", "threads",
            "total_cpus", "step_time_s",
        ),
        scenarios=scenarios(fast),
        runner=runner,
        notes="One-node rows use the calibrated Table 2 model.  The "
              "turbopump's 267 zones saturate around ~128 groups (the "
              "largest zone bounds the balance), so two nodes buy "
              "~1.8x and four buy little more — and the fabric barely "
              "matters, echoing the paper's OVERFLOW-D multinode "
              "finding.",
    )
