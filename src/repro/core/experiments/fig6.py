"""Fig. 6: NPB per-CPU Gflop/s, MPI and OpenMP, on the three node types."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, sweep, workload

__all__ = ["run", "scenarios", "BENCHMARK_CLASSES"]

#: The paper runs class B/C problems for these comparisons; class B
#: is the size every CPU count in Fig. 6 can hold.
BENCHMARK_CLASSES = {"cg": "B", "ft": "B", "mg": "B", "bt": "B"}

CPU_COUNTS = (4, 8, 16, 32, 64, 128, 256)
FAST_CPU_COUNTS = (4, 32, 256)


@workload("fig6.cell")
def _cell(benchmark: str, npb_class: str, node_type: str, cpus: int) -> list[tuple]:
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.npb.timing import npb_gflops_per_cpu

    cluster = single_node(NodeType(node_type))
    mpi = npb_gflops_per_cpu(
        benchmark, npb_class, Placement(cluster, n_ranks=cpus), "mpi"
    )
    rows = [(benchmark, "mpi", node_type, cpus, round(mpi, 3))]
    if cpus <= 256:  # OpenMP swept to 256 threads in Fig. 6
        omp = npb_gflops_per_cpu(
            benchmark, npb_class,
            Placement(cluster, n_ranks=1, threads_per_rank=cpus),
            "openmp",
        )
        rows.append((benchmark, "openmp", node_type, cpus, round(omp, 3)))
    return rows


def scenarios(fast: bool = False):
    cells = []
    for bm, cls in BENCHMARK_CLASSES.items():
        cells.extend(sweep(
            "fig6.cell",
            {
                "node_type": ("3700", "BX2a", "BX2b"),
                "cpus": FAST_CPU_COUNTS if fast else CPU_COUNTS,
            },
            base={"benchmark": bm, "npb_class": cls},
        ))
    return tuple(cells)


@experiment(
    'fig6',
    title='NPB per-CPU rates, MPI and OpenMP',
    anchor='Fig. 6',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="fig6",
        title="Fig. 6: NPB per-CPU Gflop/s (MPI and OpenMP) per node type",
        columns=("benchmark", "paradigm", "node_type", "cpus", "gflops_per_cpu"),
        scenarios=scenarios(fast),
        runner=runner,
    )
