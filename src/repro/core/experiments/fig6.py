"""Fig. 6: NPB per-CPU Gflop/s, MPI and OpenMP, on the three node types."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.machine.cluster import single_node
from repro.machine.node import NodeType
from repro.machine.placement import Placement
from repro.npb.timing import npb_gflops_per_cpu

__all__ = ["run", "BENCHMARK_CLASSES"]

#: The paper runs class B/C problems for these comparisons; class B
#: is the size every CPU count in Fig. 6 can hold.
BENCHMARK_CLASSES = {"cg": "B", "ft": "B", "mg": "B", "bt": "B"}

CPU_COUNTS = (4, 8, 16, 32, 64, 128, 256)
FAST_CPU_COUNTS = (4, 32, 256)


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title="Fig. 6: NPB per-CPU Gflop/s (MPI and OpenMP) per node type",
        columns=("benchmark", "paradigm", "node_type", "cpus", "gflops_per_cpu"),
    )
    counts = FAST_CPU_COUNTS if fast else CPU_COUNTS
    for bm, cls in BENCHMARK_CLASSES.items():
        for nt in NodeType:
            cluster = single_node(nt)
            for p in counts:
                mpi = npb_gflops_per_cpu(
                    bm, cls, Placement(cluster, n_ranks=p), "mpi"
                )
                result.add(bm, "mpi", nt.value, p, round(mpi, 3))
                if p <= 256:  # OpenMP swept to 256 threads in Fig. 6
                    omp = npb_gflops_per_cpu(
                        bm, cls,
                        Placement(cluster, n_ranks=1, threads_per_rank=p),
                        "openmp",
                    )
                    result.add(bm, "openmp", nt.value, p, round(omp, 3))
    return result
