"""Extension experiment: Class F and the full 20-node Columbia.

The paper introduces Class F (16384 zones, 12032 x 8960 x 250 — ~27
billion points) "to stress the processors, memory, and network of the
Columbia system" (§3.2) but never publishes a Class F result.  The
machine model shows why it *couldn't* have run where the other
multi-zone tests ran: at ~60 float64 words per point, Class F needs
~13 TB of memory — more than the entire 4-node NUMAlink4 capability
subsystem (4 TB) holds.  Only a 13+-node InfiniBand job fits it, and
over InfiniBand the §2 connection limit forces hybrid layouts.  This
experiment reports the capacity ledger and then runs Class F across
the full 10,240-CPU machine.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.faults import COLUMBIA_DEGRADED
from repro.run import build_result, sweep, workload

__all__ = ["run", "scenarios"]


@workload("ext_class_f.capacity")
def _capacity_cell(npb_class: str) -> list[tuple]:
    import math

    from repro.npb.multizone import mz_problem
    from repro.units import TERA

    problem = mz_problem("bt-mz", npb_class)
    tb = problem.memory_bytes / TERA
    min_nodes = max(1, math.ceil(problem.memory_bytes / (1.0 * TERA)))
    return [(
        "capacity", "-",
        f"class {npb_class}: {tb:.2f} TB, >= {min_nodes} node(s)",
        "-", "-", "-", "-",
    )]


@workload("ext_class_f.run")
def _run_cell(benchmark: str, threads: int) -> list[tuple]:
    # Class F across the whole machine: 20 nodes x 512 CPUs over IB.
    # The §2 cap at 20 nodes is sqrt(8*64K/19) = 166 processes/node,
    # so full nodes need >= 4 threads per process.
    from repro.machine.cluster import columbia
    from repro.machine.placement import Placement
    from repro.npb.hybrid import MZTimingModel

    full = columbia(fabric="infiniband")
    ranks_per_node = 512 // threads
    full.infiniband.check_pure_mpi(len(full.nodes), ranks_per_node)
    ranks = ranks_per_node * len(full.nodes)
    pl = Placement(full, n_ranks=ranks, threads_per_rank=threads,
                   spread_nodes=True)
    m = MZTimingModel(benchmark, "F", pl)
    return [(
        "run", benchmark, "20n InfiniBand", 10240,
        f"{ranks}x{threads}",
        round(m.gflops_per_cpu(), 3), round(m.total_gflops(), 0),
    )]


def scenarios(fast: bool = False):
    cells = sweep("ext_class_f.capacity", {"npb_class": ("C", "D", "E", "F")})
    if not fast:
        cells += sweep(
            "ext_class_f.run",
            {"benchmark": ("bt-mz", "sp-mz"), "threads": (4, 8)},
            # Full-machine runs fill every node: the boot-cpuset
            # contention (§4.6.2) applies, as on the real Columbia.
            faults=COLUMBIA_DEGRADED,
        )
    return cells


@experiment(
    'ext_class_f',
    title='Extension: Class F on the full Columbia',
    anchor='extension',
    scenarios=scenarios,
    faults=COLUMBIA_DEGRADED,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="ext_class_f",
        title="Extension: NPB-MZ Class F — capacity ledger and the full Columbia",
        columns=(
            "row_kind", "benchmark", "detail", "cpus", "layout",
            "gflops_per_cpu", "total_gflops",
        ),
        scenarios=scenarios(fast),
        runner=runner,
        notes="Capacity rows: memory footprint per class and the "
              "minimum 1 TB nodes it needs — Class F exceeds the "
              "whole 4-node NUMAlink4 subsystem, which is why the "
              "paper could not have measured it there.  Run rows: "
              "Class F across all 20 nodes over InfiniBand (hybrid "
              "layouts per the §2 connection limit).",
    )
