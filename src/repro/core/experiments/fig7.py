"""Fig. 7: pinning versus no pinning for SP-MZ Class C on the BX2b.

Each curve fixes a total CPU count (64 / 128 / 256) and varies the
number of OpenMP threads per MPI process; the y-axis is execution
time, so lower is better.  Pinning helps most in hybrid mode with many
threads; pure process mode (Px1) is least affected.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, sweep, workload

__all__ = ["run", "scenarios", "TOTAL_CPUS", "THREAD_COUNTS"]

TOTAL_CPUS = (64, 128, 256)
THREAD_COUNTS = (1, 2, 4, 8, 16, 32, 64)

#: SP-MZ Class C zone count bounds the rank count (set at import of
#: the scenario list, so the `where` filter stays a pure function).
def _fits(point: dict) -> bool:
    from repro.npb.multizone import MZ_CLASSES

    total, t = point["total_cpus"], point["threads_per_proc"]
    ranks = total // t
    if ranks < 1 or ranks * t != total:
        return False
    return ranks <= MZ_CLASSES["C"].n_zones


@workload("fig7.cell")
def _cell(total_cpus: int, threads_per_proc: int) -> list[tuple]:
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement, PinningMode
    from repro.npb.hybrid import MZTimingModel
    from repro.npb.multizone import MZ_CLASSES

    cluster = single_node(NodeType.BX2B)
    steps = MZ_CLASSES["C"].steps
    ranks = total_cpus // threads_per_proc
    pinned = MZTimingModel(
        "sp-mz", "C",
        Placement(cluster, n_ranks=ranks, threads_per_rank=threads_per_proc),
    ).total_time_per_step() * steps
    unpinned = MZTimingModel(
        "sp-mz", "C",
        Placement(cluster, n_ranks=ranks, threads_per_rank=threads_per_proc,
                  pinning=PinningMode.UNPINNED),
    ).total_time_per_step() * steps
    return [(total_cpus, threads_per_proc, round(pinned, 1), round(unpinned, 1))]


def scenarios(fast: bool = False):
    return sweep(
        "fig7.cell",
        {
            "total_cpus": TOTAL_CPUS[:2] if fast else TOTAL_CPUS,
            "threads_per_proc": THREAD_COUNTS[::2] if fast else THREAD_COUNTS,
        },
        where=_fits,
    )


@experiment(
    'fig7',
    title='SP-MZ pinning vs no pinning',
    anchor='Fig. 7',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    from repro.npb.multizone import MZ_CLASSES

    return build_result(
        experiment_id="fig7",
        title="Fig. 7: SP-MZ Class C execution time (s), pinning vs no pinning (BX2b)",
        columns=("total_cpus", "threads_per_proc", "pinned_s", "unpinned_s"),
        scenarios=scenarios(fast),
        runner=runner,
        notes="Execution time for the full run "
              f"({MZ_CLASSES['C'].steps} steps); MPI processes = "
              "total_cpus / threads.",
    )
