"""Fig. 7: pinning versus no pinning for SP-MZ Class C on the BX2b.

Each curve fixes a total CPU count (64 / 128 / 256) and varies the
number of OpenMP threads per MPI process; the y-axis is execution
time, so lower is better.  Pinning helps most in hybrid mode with many
threads; pure process mode (Px1) is least affected.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.machine.cluster import single_node
from repro.machine.node import NodeType
from repro.machine.placement import Placement, PinningMode
from repro.npb.hybrid import MZTimingModel
from repro.npb.multizone import MZ_CLASSES

__all__ = ["run", "TOTAL_CPUS", "THREAD_COUNTS"]

TOTAL_CPUS = (64, 128, 256)
THREAD_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig7",
        title="Fig. 7: SP-MZ Class C execution time (s), pinning vs no pinning (BX2b)",
        columns=("total_cpus", "threads_per_proc", "pinned_s", "unpinned_s"),
        notes="Execution time for the full run "
              f"({MZ_CLASSES['C'].steps} steps); MPI processes = "
              "total_cpus / threads.",
    )
    cluster = single_node(NodeType.BX2B)
    steps = MZ_CLASSES["C"].steps
    totals = TOTAL_CPUS[:2] if fast else TOTAL_CPUS
    threads = THREAD_COUNTS[::2] if fast else THREAD_COUNTS
    for total in totals:
        for t in threads:
            ranks = total // t
            if ranks < 1 or ranks * t != total:
                continue
            if ranks > MZ_CLASSES["C"].n_zones:
                continue
            pinned = MZTimingModel(
                "sp-mz", "C",
                Placement(cluster, n_ranks=ranks, threads_per_rank=t),
            ).total_time_per_step() * steps
            unpinned = MZTimingModel(
                "sp-mz", "C",
                Placement(cluster, n_ranks=ranks, threads_per_rank=t,
                          pinning=PinningMode.UNPINNED),
            ).total_time_per_step() * steps
            result.add(total, t, round(pinned, 1), round(unpinned, 1))
    return result
