"""Table 5: molecular dynamics weak scaling over NUMAlink4."""

from __future__ import annotations

from repro.apps.md.scaling import MDScalingModel
from repro.core.experiment import ExperimentResult

__all__ = ["run", "PROC_COUNTS"]

PROC_COUNTS = (1, 8, 64, 252, 504, 1020, 2040)


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table5",
        title="Table 5: MD weak scaling (64,000 atoms per CPU, 100 steps, NUMAlink4)",
        columns=(
            "processors", "particles", "time_per_step_s",
            "total_time_s", "efficiency",
        ),
        notes="§4.6.3: 'almost perfect scalability all the way up to "
              "2040 processors'; 130.56 million atoms at the top end.",
    )
    model = MDScalingModel()
    counts = PROC_COUNTS[::3] if fast else PROC_COUNTS
    for row in model.table5(proc_counts=counts, steps=100):
        result.add(
            row["processors"],
            row["particles"],
            round(row["time_per_step"], 3),
            round(row["total_time"], 1),
            round(row["efficiency"], 3),
        )
    return result
