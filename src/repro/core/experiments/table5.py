"""Table 5: molecular dynamics weak scaling over NUMAlink4."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, sweep, workload

__all__ = ["run", "scenarios", "PROC_COUNTS"]

PROC_COUNTS = (1, 8, 64, 252, 504, 1020, 2040)


@workload("table5.cell")
def _cell(processors: int, steps: int) -> list[tuple]:
    from repro.apps.md.scaling import MDScalingModel

    model = MDScalingModel()
    return [
        (
            row["processors"],
            row["particles"],
            round(row["time_per_step"], 3),
            round(row["total_time"], 1),
            round(row["efficiency"], 3),
        )
        for row in model.table5(proc_counts=(processors,), steps=steps)
    ]


def scenarios(fast: bool = False):
    counts = PROC_COUNTS[::3] if fast else PROC_COUNTS
    return sweep("table5.cell", {"processors": counts}, base={"steps": 100})


@experiment(
    'table5',
    title='MD weak scaling to 2040 CPUs',
    anchor='Table 5',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="table5",
        title="Table 5: MD weak scaling (64,000 atoms per CPU, 100 steps, NUMAlink4)",
        columns=(
            "processors", "particles", "time_per_step_s",
            "total_time_s", "efficiency",
        ),
        scenarios=scenarios(fast),
        runner=runner,
        notes="§4.6.3: 'almost perfect scalability all the way up to "
              "2040 processors'; 130.56 million atoms at the top end.",
    )
