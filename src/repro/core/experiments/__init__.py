"""One module per reproduced table/figure.

Every module exposes ``run(fast: bool = False) -> ExperimentResult``.
``fast=True`` trims CPU-count sweeps and DES sizes for test/benchmark
loops; the default regenerates the full table/figure.
"""
