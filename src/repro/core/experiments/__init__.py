"""One module per reproduced table/figure.

Every module declares its cells as :class:`repro.run.Scenario` sweeps
(``scenarios(fast)``) and exposes
``run(fast: bool = False, runner: Runner | None = None)`` returning an
:class:`~repro.core.experiment.ExperimentResult`.  ``fast=True`` trims
CPU-count sweeps and DES sizes for test/benchmark loops; the default
regenerates the full table/figure.  The shared runner handles
caching and parallel cell execution (``repro all --jobs N``).
"""
