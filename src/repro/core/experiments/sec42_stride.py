"""§4.2 "CPU Stride": HPCC in a spread-out fashion.

Reproduces: DGEMM differences under 0.5%; STREAM per-CPU numbers at
stride 2 or 4 equal to the 1-CPU case (Triad 1.9x over dense);
ping-pong and random-ring slightly worse when spread out; natural ring
inconclusive (small latency improvement, none for bandwidth).
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.hpcc import natural_ring, pingpong, predict_dgemm, predict_stream, random_ring
from repro.machine.cluster import single_node
from repro.machine.node import NodeType, build_node
from repro.machine.placement import Placement
from repro.units import to_gb_per_s, to_usec

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="sec42_stride",
        title="§4.2: HPCC at CPU stride 1 / 2 / 4 (BX2b)",
        columns=(
            "stride", "dgemm_gflops", "triad_gb_s",
            "pingpong_lat_us", "pingpong_bw_gb_s",
            "natring_lat_us", "natring_bw_gb_s",
            "rndring_lat_us", "rndring_bw_gb_s",
        ),
    )
    node = build_node(NodeType.BX2B)
    cluster = single_node(NodeType.BX2B)
    n_ranks = 16 if fast else 64
    for stride in (1, 2, 4):
        pl = Placement(cluster, n_ranks=n_ranks, stride=stride)
        d = predict_dgemm(node, pl)
        s = predict_stream(node, pl)
        pp = pingpong(pl, max_pairs=8 if fast else 24)
        nr = natural_ring(pl)
        rr = random_ring(pl, trials=1 if fast else 3)
        result.add(
            stride,
            round(d.gflops_per_cpu, 3),
            round(s.triad, 2),
            round(to_usec(pp.avg_latency), 2),
            round(to_gb_per_s(pp.avg_bandwidth), 2),
            round(to_usec(nr.latency), 2),
            round(to_gb_per_s(nr.bandwidth_per_cpu), 2),
            round(to_usec(rr.latency), 2),
            round(to_gb_per_s(rr.bandwidth_per_cpu), 2),
        )
    return result
