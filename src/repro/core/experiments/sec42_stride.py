"""§4.2 "CPU Stride": HPCC in a spread-out fashion.

Reproduces: DGEMM differences under 0.5%; STREAM per-CPU numbers at
stride 2 or 4 equal to the 1-CPU case (Triad 1.9x over dense);
ping-pong and random-ring slightly worse when spread out; natural ring
inconclusive (small latency improvement, none for bandwidth).
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import MachineSpec, PlacementSpec, build_result, sweep, workload

__all__ = ["run", "scenarios"]


@workload("sec42.cell")
def _cell(placement, stride: int, n_ranks: int, max_pairs: int,
          trials: int) -> list[tuple]:
    from repro.hpcc import (
        natural_ring, pingpong, predict_dgemm, predict_stream, random_ring,
    )
    from repro.machine.node import NodeType, build_node
    from repro.units import to_gb_per_s, to_usec

    node = build_node(NodeType.BX2B)
    d = predict_dgemm(node, placement)
    s = predict_stream(node, placement)
    pp = pingpong(placement, max_pairs=max_pairs)
    nr = natural_ring(placement)
    rr = random_ring(placement, trials=trials)
    return [(
        stride,
        round(d.gflops_per_cpu, 3),
        round(s.triad, 2),
        round(to_usec(pp.avg_latency), 2),
        round(to_gb_per_s(pp.avg_bandwidth), 2),
        round(to_usec(nr.latency), 2),
        round(to_gb_per_s(nr.bandwidth_per_cpu), 2),
        round(to_usec(rr.latency), 2),
        round(to_gb_per_s(rr.bandwidth_per_cpu), 2),
    )]


def scenarios(fast: bool = False):
    return sweep(
        "sec42.cell",
        {"stride": (1, 2, 4)},
        base={
            "n_ranks": 16 if fast else 64,
            "max_pairs": 8 if fast else 24,
            "trials": 1 if fast else 3,
        },
        machine=MachineSpec.legacy(node_type="BX2b"),
        placement=lambda p: PlacementSpec(
            n_ranks=p["n_ranks"], stride=p["stride"]
        ),
    )


@experiment(
    'sec42_stride',
    title='§4.2 CPU stride effects on HPCC',
    anchor='§4.2',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="sec42_stride",
        title="§4.2: HPCC at CPU stride 1 / 2 / 4 (BX2b)",
        columns=(
            "stride", "dgemm_gflops", "triad_gb_s",
            "pingpong_lat_us", "pingpong_bw_gb_s",
            "natring_lat_us", "natring_bw_gb_s",
            "rndring_lat_us", "rndring_bw_gb_s",
        ),
        scenarios=scenarios(fast),
        runner=runner,
    )
