"""Table 6: OVERFLOW-D across multiple BX2b nodes, NUMAlink4 vs
InfiniBand."""

from __future__ import annotations

from repro.apps.overflow import OverflowModel
from repro.core.experiment import ExperimentResult
from repro.machine.cluster import multinode

__all__ = ["run", "CONFIGS"]

#: (n_nodes, total CPU counts measured) — up to four BX2b nodes.
CONFIGS = (
    (2, (252, 504)),
    (4, (504, 1008, 2016)),
)


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table6",
        title="Table 6: OVERFLOW-D per-step times across BX2b nodes, NUMAlink4 vs InfiniBand",
        columns=(
            "nodes", "cpus",
            "nl4_comm_s", "nl4_exec_s", "ib_comm_s", "ib_exec_s",
        ),
        notes="NUMAlink4 execution ~10% better; InfiniBand's *reported* "
              "communication lower (asynchronous RDMA completes "
              "off-CPU) — the §4.6.4 inversion.",
    )
    for n_nodes, cpu_counts in CONFIGS:
        nl = OverflowModel(cluster=multinode(n_nodes, fabric="numalink4"))
        ib = OverflowModel(cluster=multinode(n_nodes, fabric="infiniband"))
        counts = cpu_counts[:1] if fast else cpu_counts
        for cpus in counts:
            s_nl = nl.reported(cpus)
            s_ib = ib.reported(cpus)
            result.add(
                n_nodes, cpus,
                round(s_nl.comm, 2), round(s_nl.exec, 2),
                round(s_ib.comm, 2), round(s_ib.exec, 2),
            )
    return result
