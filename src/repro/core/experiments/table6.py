"""Table 6: OVERFLOW-D across multiple BX2b nodes, NUMAlink4 vs
InfiniBand."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.run import build_result, scenario, workload

__all__ = ["run", "scenarios", "CONFIGS"]

#: (n_nodes, total CPU counts measured) — up to four BX2b nodes.
CONFIGS = (
    (2, (252, 504)),
    (4, (504, 1008, 2016)),
)


@workload("table6.cell")
def _cell(nodes: int, cpus: int) -> list[tuple]:
    from repro.apps.overflow import OverflowModel
    from repro.machine.cluster import multinode

    nl = OverflowModel(cluster=multinode(nodes, fabric="numalink4"))
    ib = OverflowModel(cluster=multinode(nodes, fabric="infiniband"))
    s_nl = nl.reported(cpus)
    s_ib = ib.reported(cpus)
    return [(
        nodes, cpus,
        round(s_nl.comm, 2), round(s_nl.exec, 2),
        round(s_ib.comm, 2), round(s_ib.exec, 2),
    )]


def scenarios(fast: bool = False):
    return tuple(
        scenario("table6.cell", nodes=n_nodes, cpus=cpus)
        for n_nodes, cpu_counts in CONFIGS
        for cpus in (cpu_counts[:1] if fast else cpu_counts)
    )


@experiment(
    'table6',
    title='OVERFLOW-D multinode NL4 vs InfiniBand',
    anchor='Table 6',
    scenarios=scenarios,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="table6",
        title="Table 6: OVERFLOW-D per-step times across BX2b nodes, NUMAlink4 vs InfiniBand",
        columns=(
            "nodes", "cpus",
            "nl4_comm_s", "nl4_exec_s", "ib_comm_s", "ib_exec_s",
        ),
        scenarios=scenarios(fast),
        runner=runner,
        notes="NUMAlink4 execution ~10% better; InfiniBand's *reported* "
              "communication lower (asynchronous RDMA completes "
              "off-CPU) — the §4.6.4 inversion.",
    )
