"""Fig. 11: NPB-MZ Class E under three networks.

Top row: per-CPU Gflop/s with NUMAlink4 across four BX2b nodes versus
within a single node, at one and two threads per process.  Bottom row:
total Gflop/s for the best thread combination, NUMAlink4 versus
InfiniBand — including the released-vs-beta MPT library anomaly for
SP-MZ.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.faults import COLUMBIA_DEGRADED
from repro.run import build_result, sweep, workload

__all__ = ["run", "scenarios", "CPU_COUNTS"]

CPU_COUNTS = (256, 512, 768, 1024, 1536, 2048)
FAST_CPU_COUNTS = (256, 1024)

#: (label, fabric, mpt) — fabric None means a single BX2b node.
NETWORKS = (
    ("in-node", None, None),
    ("NUMAlink4", "numalink4", None),
    ("InfiniBand(beta)", "infiniband", "mpt1.11b"),
    ("InfiniBand(released)", "infiniband", "mpt1.11r"),
)


def _fits(point: dict) -> bool:
    total = 512 if point["fabric"] is None else 4 * 512
    cpus, threads = point["cpus"], point["threads"]
    if cpus > total:
        return False
    ranks = cpus // threads
    if ranks * threads != cpus or ranks < 1:
        return False
    return ranks <= 4096  # class E zone count


@workload("fig11.cell")
def _cell(benchmark: str, network: str, fabric: str | None,
          mpt: str | None, cpus: int, threads: int) -> list[tuple]:
    from repro.machine.cluster import multinode, single_node
    from repro.machine.infiniband import MPTVersion
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.npb.hybrid import MZTimingModel

    if fabric is None:
        cluster = single_node(NodeType.BX2B)
    elif fabric == "numalink4":
        cluster = multinode(4, fabric="numalink4")
    else:
        cluster = multinode(4, fabric="infiniband", mpt=MPTVersion(mpt))
    ranks = cpus // threads
    pl = Placement(
        cluster, n_ranks=ranks, threads_per_rank=threads,
        spread_nodes=fabric is not None,
    )
    m = MZTimingModel(benchmark, "E", pl)
    return [(
        benchmark, network, cpus, threads,
        round(m.gflops_per_cpu(), 3),
        round(m.total_gflops(), 1),
    )]


def scenarios(fast: bool = False):
    cells = []
    for bm in ("bt-mz", "sp-mz"):
        for label, fabric, mpt in NETWORKS:
            cells.extend(sweep(
                "fig11.cell",
                {
                    "cpus": FAST_CPU_COUNTS if fast else CPU_COUNTS,
                    "threads": (1, 2),
                },
                base={
                    "benchmark": bm, "network": label,
                    "fabric": fabric, "mpt": mpt,
                },
                where=_fits,
                # The paper measured Fig. 11 on Columbia as it stood:
                # boot-cpuset contention on full nodes and the
                # released-MPT anomaly are injected faults, not
                # machine properties (§4.6.2).
                faults=COLUMBIA_DEGRADED,
            ))
    return tuple(cells)


@experiment(
    'fig11',
    title='NPB-MZ Class E under three networks',
    anchor='Fig. 11',
    scenarios=scenarios,
    faults=COLUMBIA_DEGRADED,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="fig11",
        title="Fig. 11: NPB-MZ Class E per-CPU Gflop/s under three networks",
        columns=(
            "benchmark", "network", "cpus", "threads",
            "gflops_per_cpu", "total_gflops",
        ),
        scenarios=scenarios(fast),
        runner=runner,
        notes="'in-node' rows exist only up to 512 CPUs; 512-CPU "
              "in-node runs include the boot-cpuset penalty (§4.6.2).",
    )
