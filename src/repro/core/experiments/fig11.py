"""Fig. 11: NPB-MZ Class E under three networks.

Top row: per-CPU Gflop/s with NUMAlink4 across four BX2b nodes versus
within a single node, at one and two threads per process.  Bottom row:
total Gflop/s for the best thread combination, NUMAlink4 versus
InfiniBand — including the released-vs-beta MPT library anomaly for
SP-MZ.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.machine.cluster import multinode, single_node
from repro.machine.infiniband import MPTVersion
from repro.machine.node import NodeType
from repro.machine.placement import Placement
from repro.npb.hybrid import MZTimingModel

__all__ = ["run", "CPU_COUNTS"]

CPU_COUNTS = (256, 512, 768, 1024, 1536, 2048)
FAST_CPU_COUNTS = (256, 1024)

NETWORKS = (
    ("in-node", None, None),
    ("NUMAlink4", "numalink4", None),
    ("InfiniBand(beta)", "infiniband", MPTVersion.MPT_1_11B),
    ("InfiniBand(released)", "infiniband", MPTVersion.MPT_1_11R),
)


def _cluster(network, mpt):
    if network is None:
        return single_node(NodeType.BX2B)
    if network == "numalink4":
        return multinode(4, fabric="numalink4")
    return multinode(4, fabric="infiniband", mpt=mpt)


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig11",
        title="Fig. 11: NPB-MZ Class E per-CPU Gflop/s under three networks",
        columns=(
            "benchmark", "network", "cpus", "threads",
            "gflops_per_cpu", "total_gflops",
        ),
        notes="'in-node' rows exist only up to 512 CPUs; 512-CPU "
              "in-node runs include the boot-cpuset penalty (§4.6.2).",
    )
    counts = FAST_CPU_COUNTS if fast else CPU_COUNTS
    for bm in ("bt-mz", "sp-mz"):
        for label, network, mpt in NETWORKS:
            cluster = _cluster(network, mpt)
            for cpus in counts:
                if cpus > cluster.total_cpus:
                    continue
                for threads in (1, 2):
                    ranks = cpus // threads
                    if ranks * threads != cpus or ranks < 1:
                        continue
                    if ranks > 4096:  # class E zone count
                        continue
                    pl = Placement(
                        cluster, n_ranks=ranks, threads_per_rank=threads,
                        spread_nodes=network is not None,
                    )
                    m = MZTimingModel(bm, "E", pl)
                    result.add(
                        bm, label, cpus, threads,
                        round(m.gflops_per_cpu(), 3),
                        round(m.total_gflops(), 1),
                    )
    return result
