"""Fig. 9: effects of varying MPI processes and OpenMP threads on
BT-MZ (one BX2b node).

Left panel: fixed threads, sweep processes (MPI scales near-linearly
until load imbalance).  Right panel: fixed processes, sweep threads
(OpenMP limited beyond two threads).
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.machine.cluster import single_node
from repro.machine.node import NodeType
from repro.machine.placement import Placement
from repro.npb.hybrid import MZTimingModel
from repro.npb.multizone import MZ_CLASSES

__all__ = ["run"]

PROCESS_COUNTS = (1, 4, 16, 64, 256)
THREAD_COUNTS = (1, 2, 4, 8, 16)


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig9",
        title="Fig. 9: BT-MZ Class C total Gflop/s for process x thread combinations (BX2b)",
        columns=("processes", "threads", "total_cpus", "total_gflops", "imbalance"),
    )
    cluster = single_node(NodeType.BX2B)
    procs = PROCESS_COUNTS[1:4] if fast else PROCESS_COUNTS
    threads = THREAD_COUNTS[:3] if fast else THREAD_COUNTS
    n_zones = MZ_CLASSES["C"].n_zones
    for p in procs:
        if p > n_zones:
            continue
        for t in threads:
            if p * t > 512:
                continue
            m = MZTimingModel(
                "bt-mz", "C", Placement(cluster, n_ranks=p, threads_per_rank=t)
            )
            result.add(p, t, p * t, round(m.total_gflops(), 1),
                       round(m.imbalance(), 2))
    return result
