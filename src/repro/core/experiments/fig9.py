"""Fig. 9: effects of varying MPI processes and OpenMP threads on
BT-MZ (one BX2b node).

Left panel: fixed threads, sweep processes (MPI scales near-linearly
until load imbalance).  Right panel: fixed processes, sweep threads
(OpenMP limited beyond two threads).
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.faults import COLUMBIA_DEGRADED
from repro.run import build_result, sweep, workload

__all__ = ["run", "scenarios"]

PROCESS_COUNTS = (1, 4, 16, 64, 256)
THREAD_COUNTS = (1, 2, 4, 8, 16)


def _fits(point: dict) -> bool:
    from repro.npb.multizone import MZ_CLASSES

    p, t = point["processes"], point["threads"]
    return p <= MZ_CLASSES["C"].n_zones and p * t <= 512


@workload("fig9.cell")
def _cell(processes: int, threads: int) -> list[tuple]:
    from repro.machine.cluster import single_node
    from repro.machine.node import NodeType
    from repro.machine.placement import Placement
    from repro.npb.hybrid import MZTimingModel

    cluster = single_node(NodeType.BX2B)
    m = MZTimingModel(
        "bt-mz", "C",
        Placement(cluster, n_ranks=processes, threads_per_rank=threads),
    )
    return [(processes, threads, processes * threads,
             round(m.total_gflops(), 1), round(m.imbalance(), 2))]


def scenarios(fast: bool = False):
    return sweep(
        "fig9.cell",
        {
            "processes": PROCESS_COUNTS[1:4] if fast else PROCESS_COUNTS,
            "threads": THREAD_COUNTS[:3] if fast else THREAD_COUNTS,
        },
        where=_fits,
        # Full-node (512-CPU) combinations pay the boot-cpuset
        # contention the paper's Columbia had (§4.6.2) — injected, so
        # a healthy-machine sweep of the same grid shows none of it.
        faults=COLUMBIA_DEGRADED,
    )


@experiment(
    'fig9',
    title='BT-MZ process x thread combinations',
    anchor='Fig. 9',
    scenarios=scenarios,
    faults=COLUMBIA_DEGRADED,
)
def run(fast: bool = False, runner=None) -> ExperimentResult:
    return build_result(
        experiment_id="fig9",
        title="Fig. 9: BT-MZ Class C total Gflop/s for process x thread combinations (BX2b)",
        columns=("processes", "threads", "total_cpus", "total_gflops", "imbalance"),
        scenarios=scenarios(fast),
        runner=runner,
    )
