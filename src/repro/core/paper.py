"""The paper's reported results, as machine-readable records.

Values marked ``reconstructed=True`` could not be read directly from
the available scan (garbled OCR in parts of Tables 3, 5, 6 and the
figure axes); they are reconstructed from the prose — efficiency
percentages, ratios ("~2x", "about 7% worse", "40% slower"), and
qualitative descriptions — and should be compared by *shape*, not
digit-for-digit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperValue", "PAPER", "paper_value"]


@dataclass(frozen=True)
class PaperValue:
    """One number (or claim) the paper reports."""

    experiment_id: str
    key: str
    value: float
    unit: str
    reconstructed: bool = False
    source: str = ""


_VALUES: list[PaperValue] = [
    # -- Table 1 / §2 ---------------------------------------------------------
    PaperValue("table1", "total_cpus", 10240, "CPUs", False, "§1"),
    PaperValue("table1", "peak_3700_tflops", 3.07, "Tflop/s", False, "Table 1"),
    PaperValue("table1", "peak_bx2b_tflops", 3.28, "Tflop/s", False, "Table 1"),
    PaperValue("table1", "nl3_bandwidth", 3.2, "GB/s", False, "Table 1"),
    PaperValue("table1", "nl4_bandwidth", 6.4, "GB/s", False, "Table 1"),
    PaperValue("table1", "capability_subsystem_tflops", 13.0, "Tflop/s", False, "§2"),
    # -- §4.1.1 HPCC ------------------------------------------------------------
    PaperValue("sec411_compute", "dgemm_bx2b_gflops", 5.75, "Gflop/s", False, "§4.1.1"),
    PaperValue("sec411_compute", "dgemm_bx2b_advantage", 1.06, "x", False, "§4.1.1"),
    PaperValue("sec411_compute", "stream_3700_advantage", 1.01, "x", False, "§4.1.1"),
    # -- §4.2 stride ------------------------------------------------------------
    PaperValue("sec42_stride", "stream_1cpu_gb_s", 3.8, "GB/s", False, "§4.2"),
    PaperValue("sec42_stride", "stream_dense_gb_s", 2.0, "GB/s", False, "§4.2"),
    PaperValue("sec42_stride", "triad_stride_gain", 1.9, "x", False, "§4.2"),
    PaperValue("sec42_stride", "dgemm_stride_effect_max", 0.005, "fraction", False, "§4.2"),
    # -- §4.1.2 NPB ---------------------------------------------------------------
    PaperValue("fig6", "ft_bx2_over_3700_at_256", 2.0, "x", False, "§4.1.2"),
    PaperValue("fig6", "mg_bt_bx2b_jump_at_64", 1.5, "x", False, "§4.1.2"),
    PaperValue("fig6", "openmp_bw_gap_at_128", 2.0, "x", False, "§4.1.2"),
    # -- Table 2 INS3D ------------------------------------------------------------
    PaperValue("table2", "serial_3700_s", 39230.0, "s", False, "Table 2"),
    PaperValue("table2", "serial_bx2b_s", 26430.0, "s", False, "Table 2"),
    PaperValue("table2", "g36_t1_3700_s", 1223.0, "s", False, "Table 2"),
    PaperValue("table2", "g36_t2_3700_s", 796.0, "s", False, "Table 2"),
    PaperValue("table2", "g36_t4_3700_s", 554.2, "s", False, "Table 2"),
    PaperValue("table2", "g36_t8_3700_s", 454.7, "s", False, "Table 2"),
    PaperValue("table2", "g36_t12_3700_s", 409.1, "s", False, "Table 2"),
    PaperValue("table2", "g36_t1_bx2b_s", 825.2, "s", False, "Table 2"),
    PaperValue("table2", "g36_t2_bx2b_s", 508.4, "s", False, "Table 2"),
    PaperValue("table2", "g36_t4_bx2b_s", 331.8, "s", False, "Table 2"),
    PaperValue("table2", "g36_t8_bx2b_s", 287.7, "s", False, "Table 2"),
    PaperValue("table2", "g36_t14_bx2b_s", 247.6, "s", False, "Table 2"),
    PaperValue("table2", "steps_per_rotation", 720, "steps", False, "§4.1.3"),
    # -- Table 3 / §4.1.4 OVERFLOW-D ------------------------------------------------
    PaperValue("table3", "eff_3700_128", 0.26, "fraction", False, "§4.1.4"),
    PaperValue("table3", "eff_3700_256", 0.19, "fraction", False, "§4.1.4"),
    PaperValue("table3", "eff_3700_508", 0.07, "fraction", False, "§4.1.4"),
    PaperValue("table3", "eff_bx2b_128", 0.61, "fraction", False, "§4.1.4"),
    PaperValue("table3", "eff_bx2b_256", 0.37, "fraction", False, "§4.1.4"),
    PaperValue("table3", "eff_bx2b_508", 0.27, "fraction", False, "§4.1.4"),
    PaperValue("table3", "comm_exec_ratio_256_3700", 0.3, "ratio", False, "§4.1.4"),
    PaperValue("table3", "comm_exec_ratio_508_3700", 0.5, "ratio (lower bound)", False, "§4.1.4"),
    PaperValue("table3", "bx2b_speedup_avg", 2.0, "x", False, "§4.1.4"),
    PaperValue("table3", "bx2b_speedup_508", 3.0, "x (lower bound)", False, "§4.1.4"),
    PaperValue("table3", "points_per_task_508", 150_000, "points", False, "§4.1.4"),
    PaperValue("table3", "steps_production", 50_000, "steps", False, "§4.1.4"),
    # -- Fig 7 pinning -----------------------------------------------------------
    PaperValue("fig7", "pinning_matters_hybrid", 1.0, "boolean", False, "§4.3"),
    # -- Table 4 compilers ----------------------------------------------------------
    PaperValue("table4", "ins3d_71_81_delta_max", 0.02, "fraction", False, "Table 4"),
    PaperValue("table4", "overflow_71_advantage_small", 1.3, "x (20-40%)", False, "§4.4"),
    # -- Fig 11 / §4.6.2 NPB-MZ ------------------------------------------------------
    PaperValue("fig11", "class_e_zones", 4096, "zones", False, "§3.2"),
    PaperValue("fig11", "class_e_points", 1.3e9, "points", False, "§4.6.2"),
    PaperValue("fig11", "btmz_ib_deficit", 0.07, "fraction", False, "§4.6.2"),
    PaperValue("fig11", "spmz_mpt_anomaly_256", 0.40, "fraction", False, "§4.6.2"),
    PaperValue("fig11", "spmz_2thread_gain", 0.11, "fraction", False, "§4.6.2"),
    PaperValue("fig11", "boot_cpuset_drop", 0.12, "fraction (10-15%)", False, "§4.6.2"),
    # -- Table 5 MD -------------------------------------------------------------------
    PaperValue("table5", "atoms_per_proc", 64_000, "atoms", False, "§4.6.3"),
    PaperValue("table5", "max_procs", 2040, "CPUs", False, "§4.6.3"),
    PaperValue("table5", "max_atoms", 130_560_000, "atoms", False, "§4.6.3"),
    PaperValue("table5", "steps", 100, "steps", False, "§4.6.3"),
    PaperValue("table5", "weak_scaling_eff", 0.95, "fraction", True, "§4.6.3 'almost perfect'"),
    PaperValue("table5", "time_per_step", 1.0, "s", True, "Table 5 OCR garbled; order-of-magnitude from model"),
    # -- Table 6 ------------------------------------------------------------------------
    PaperValue("table6", "nl4_exec_advantage", 1.10, "x", False, "§4.6.4"),
    PaperValue("table6", "ib_comm_lower", 1.0, "boolean", False, "§4.6.4"),
    # -- §2 InfiniBand limits --------------------------------------------------------------
    PaperValue("sec2_ib", "max_pure_mpi_nodes", 3, "nodes", False, "§2"),
    PaperValue("sec2_ib", "ib_cards_per_node", 8, "cards", False, "§2"),
]

PAPER: dict[tuple[str, str], PaperValue] = {
    (v.experiment_id, v.key): v for v in _VALUES
}


def paper_value(experiment_id: str, key: str) -> PaperValue:
    """Look up one reported value; raises KeyError if unknown."""
    return PAPER[(experiment_id, key)]
