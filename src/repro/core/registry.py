"""The experiment registry: every table/figure by id.

Each experiment registers itself with the :func:`experiment`
decorator, which wraps the module's ``run(fast=, runner=)`` entry
point in a frozen :class:`ExperimentSpec` carrying the things every
consumer used to fish out of module attributes: the paper anchor, the
human title, the scenario sweep factory and the default fault
overlay.  ``repro run``/``repro trace``, the suite report and the
serve smoke harness all consume the spec — the modules themselves are
an implementation detail.

The experiment modules are imported at the *bottom* of this module,
in the paper's presentation order: importing the registry populates
it, and iteration order everywhere (CLI listing, ``repro all``, the
suite report) is that curated order.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable

from repro.core.experiment import ExperimentResult
from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "experiment",
    "experiment_specs",
    "list_experiments",
    "resolve_experiment",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment, fully described.

    ``run(fast=, runner=)`` produces the
    :class:`~repro.core.experiment.ExperimentResult`; ``scenarios``
    (``fast=`` keyword) yields the raw sweep cells for callers that
    drive the Runner or the serve layer directly.  ``faults`` is the
    default fault overlay the sweep bakes in (informational — the
    factory applies it itself), shown by ``repro list``.
    """

    experiment_id: str
    title: str
    #: where in the paper this reproduces ("Fig. 9", "Table 4",
    #: "§4.1.1"), or "extension" for beyond-the-paper studies.
    anchor: str
    run: Callable[..., ExperimentResult] = field(repr=False, compare=False)
    scenarios: Callable | None = field(
        default=None, repr=False, compare=False
    )
    faults: FaultSpec | None = None


#: experiment id -> spec, in registration (= paper presentation) order.
EXPERIMENTS: dict[str, ExperimentSpec] = {}


def experiment(
    experiment_id: str,
    title: str,
    anchor: str,
    scenarios: Callable | None = None,
    faults: FaultSpec | None = None,
) -> Callable:
    """Register the decorated ``run`` function as an experiment.

    Re-decorating the same function (module reimport) is a no-op;
    two *different* functions claiming one id is a bug and raises.
    """

    def register(run_fn: Callable[..., ExperimentResult]) -> Callable:
        existing = EXPERIMENTS.get(experiment_id)
        if existing is not None:
            # Qualname alone is useless here — nearly every experiment
            # entry point is a module-level ``run``; the module must
            # match too for this to be a re-import no-op.
            if (existing.run.__module__, existing.run.__qualname__) == (
                run_fn.__module__, run_fn.__qualname__
            ):
                return run_fn
            raise ConfigurationError(
                f"experiment id {experiment_id!r} registered twice: "
                f"{existing.run.__module__}.{existing.run.__qualname__} "
                f"and {run_fn.__module__}.{run_fn.__qualname__}"
            )
        EXPERIMENTS[experiment_id] = ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            anchor=anchor,
            run=run_fn,
            scenarios=scenarios,
            faults=faults,
        )
        return run_fn

    return register


def resolve_experiment(experiment_id: str) -> ExperimentSpec:
    """The :class:`ExperimentSpec` for a registered experiment id.

    Unknown ids raise :class:`~repro.errors.ConfigurationError` with
    close-match suggestions — shared by ``run_experiment`` and the
    ``trace`` CLI verb so both complain identically.
    """
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        close = difflib.get_close_matches(
            experiment_id, EXPERIMENTS, n=3, cutoff=0.5
        )
        hint = (
            f"; did you mean {' or '.join(repr(c) for c in close)}?"
            if close
            else f"; known: {sorted(EXPERIMENTS)}"
        )
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}{hint}"
        ) from None


def run_experiment(
    experiment_id: str, fast: bool = False, runner=None
) -> ExperimentResult:
    """Run one registered experiment and return its result.

    ``runner`` is an optional :class:`repro.run.Runner` controlling
    caching and parallelism; by default a shared sequential runner
    with an in-memory cell cache is used.
    """
    return resolve_experiment(experiment_id).run(fast=fast, runner=runner)


def list_experiments() -> list[tuple[str, str]]:
    """(id, title) pairs for every registered experiment."""
    return [(spec.experiment_id, spec.title) for spec in EXPERIMENTS.values()]


def experiment_specs() -> list[ExperimentSpec]:
    """Every registered spec, in paper presentation order."""
    return list(EXPERIMENTS.values())


# Populate the registry.  Import order IS presentation order; these
# sit at the bottom because each module imports the decorator above.
from repro.core.experiments import (  # noqa: E402,F401
    table1,
    sec411_compute,
    fig5,
    fig6,
    table2,
    table3,
    sec42_stride,
    fig7,
    fig8,
    table4,
    fig9,
    fig10,
    fig11,
    table5,
    table6,
    ablations,
    ext_ins3d_multinode,
    ext_class_f,
    ext_noise,
)
