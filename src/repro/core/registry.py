"""The experiment registry: every table/figure by id."""

from __future__ import annotations

import difflib
from typing import Callable

from repro.core.experiment import ExperimentResult
from repro.core.experiments import (
    ablations,
    ext_class_f,
    ext_ins3d_multinode,
    ext_noise,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    sec42_stride,
    sec411_compute,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.errors import ConfigurationError

__all__ = [
    "EXPERIMENTS",
    "list_experiments",
    "resolve_experiment",
    "run_experiment",
]

#: experiment id -> (description, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {
    "table1": ("Node characteristics (3700/BX2a/BX2b)", table1.run),
    "sec411_compute": ("§4.1.1 DGEMM + STREAM per node type", sec411_compute.run),
    "fig5": ("b_eff latency/bandwidth per node type", fig5.run),
    "fig6": ("NPB per-CPU rates, MPI and OpenMP", fig6.run),
    "table2": ("INS3D MLP groups x OpenMP threads", table2.run),
    "table3": ("OVERFLOW-D 3700 vs BX2b scaling", table3.run),
    "sec42_stride": ("§4.2 CPU stride effects on HPCC", sec42_stride.run),
    "fig7": ("SP-MZ pinning vs no pinning", fig7.run),
    "fig8": ("Four compiler versions on OpenMP NPB", fig8.run),
    "table4": ("INS3D/OVERFLOW-D under Fortran 7.1 vs 8.1", table4.run),
    "fig9": ("BT-MZ process x thread combinations", fig9.run),
    "fig10": ("Multinode b_eff: NUMAlink4 vs InfiniBand", fig10.run),
    "fig11": ("NPB-MZ Class E under three networks", fig11.run),
    "table5": ("MD weak scaling to 2040 CPUs", table5.run),
    "table6": ("OVERFLOW-D multinode NL4 vs InfiniBand", table6.run),
    "ablation_cache": ("L3 size at fixed clock", ablations.run_cache_ablation),
    "ablation_clock": ("Clock at fixed L3 size", ablations.run_clock_ablation),
    "ablation_grouping": ("Grouping strategies vs imbalance", ablations.run_grouping_ablation),
    "ablation_ibcards": ("IB card count vs MPI process cap", ablations.run_ibcards_ablation),
    "ablation_shmem": ("§5 future work: SHMEM vs MPI", ablations.run_shmem_ablation),
    "ext_ins3d_multinode": (
        "§5 future work: multinode INS3D", ext_ins3d_multinode.run,
    ),
    "ext_class_f": (
        "Extension: Class F on the full Columbia", ext_class_f.run,
    ),
    "ext_noise": (
        "Extension: OS-noise amplification at scale", ext_noise.run,
    ),
}


def resolve_experiment(experiment_id: str) -> tuple[str, Callable]:
    """``(description, run_fn)`` for a registered experiment id.

    Unknown ids raise :class:`~repro.errors.ConfigurationError` with
    close-match suggestions — shared by ``run_experiment`` and the
    ``trace`` CLI verb so both complain identically.
    """
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        close = difflib.get_close_matches(
            experiment_id, EXPERIMENTS, n=3, cutoff=0.5
        )
        hint = (
            f"; did you mean {' or '.join(repr(c) for c in close)}?"
            if close
            else f"; known: {sorted(EXPERIMENTS)}"
        )
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}{hint}"
        ) from None


def run_experiment(
    experiment_id: str, fast: bool = False, runner=None
) -> ExperimentResult:
    """Run one registered experiment and return its result.

    ``runner`` is an optional :class:`repro.run.Runner` controlling
    caching and parallelism; by default a shared sequential runner
    with an in-memory cell cache is used.
    """
    _, run_fn = resolve_experiment(experiment_id)
    return run_fn(fast=fast, runner=runner)


def list_experiments() -> list[tuple[str, str]]:
    """(id, description) pairs for every registered experiment."""
    return [(eid, desc) for eid, (desc, _) in EXPERIMENTS.items()]
