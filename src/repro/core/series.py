"""Figure-series rendering: ASCII charts for the terminal.

The paper's figures plot rates/latencies against CPU counts, one curve
per node type or network.  ``plot_series`` renders the same curves as
an ASCII chart so ``python -m repro run fig6 --format chart`` shows
shape at a glance without any plotting dependency.
"""

from __future__ import annotations

import math

from repro.core.experiment import ExperimentResult
from repro.errors import ConfigurationError

__all__ = ["plot_series", "chart_experiment"]

_MARKS = "*o+x#@%&"


def plot_series(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    log_x: bool = True,
) -> str:
    """Render named (x, y) curves as an ASCII chart.

    X values are laid out on a log2 axis by default (CPU-count sweeps
    double); Y is linear from 0 to the max.
    """
    if not series or all(not pts for pts in series.values()):
        raise ConfigurationError("nothing to plot")
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_hi = max(ys) or 1.0

    def col(x: float) -> int:
        if x_hi == x_lo:
            return 0
        if log_x:
            if x <= 0 or x_lo <= 0:
                raise ConfigurationError("log axis needs positive x")
            frac = (math.log2(x) - math.log2(x_lo)) / (
                math.log2(x_hi) - math.log2(x_lo)
            )
        else:
            frac = (x - x_lo) / (x_hi - x_lo)
        return min(width - 1, int(round(frac * (width - 1))))

    def row(y: float) -> int:
        frac = y / y_hi
        return min(height - 1, int(round(frac * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (name, pts) in enumerate(series.items()):
        mark = _MARKS[i % len(_MARKS)]
        legend.append(f"{mark} = {name}")
        for x, y in pts:
            r, c = row(y), col(x)
            grid[height - 1 - r][c] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:8.3g} +" + "-" * width)
    for raw in grid:
        lines.append(" " * 9 + "|" + "".join(raw))
    lines.append(f"{0:8.3g} +" + "-" * width)
    lines.append(
        " " * 10 + f"{x_lo:<8.3g}" + " " * max(0, width - 16) + f"{x_hi:>8.3g}"
    )
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def chart_experiment(
    result: ExperimentResult,
    x: str,
    y: str,
    series_by: str,
    width: int = 64,
    height: int = 16,
    **filters,
) -> str:
    """Chart one experiment: ``y`` vs ``x``, one curve per value of
    ``series_by``, optionally filtered by other columns."""
    rows = result.select(**filters) if filters else list(result.rows)
    if not rows:
        raise ConfigurationError(f"no rows match {filters}")
    xi = result.columns.index(x)
    yi = result.columns.index(y)
    si = result.columns.index(series_by)
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        series.setdefault(str(row[si]), []).append((float(row[xi]), float(row[yi])))
    for pts in series.values():
        pts.sort()
    return plot_series(series, width=width, height=height, title=result.title)


#: Default chart projections per figure experiment: (x, y, series_by,
#: filters).  Used by the CLI's ``--format chart``.
CHART_HINTS: dict[str, tuple[str, str, str, dict]] = {
    "fig5": ("cpus", "bandwidth_gb_s", "node_type", {"pattern": "random_ring"}),
    "fig6": ("cpus", "gflops_per_cpu", "node_type", {"benchmark": "ft", "paradigm": "mpi"}),
    "fig7": ("threads_per_proc", "unpinned_s", "total_cpus", {}),
    "fig8": ("threads", "v7_1", "benchmark", {}),
    "fig9": ("total_cpus", "total_gflops", "processes", {}),
    "fig10": ("cpus", "latency_us", "config", {"pattern": "pingpong"}),
    "fig11": ("cpus", "gflops_per_cpu", "network", {"benchmark": "sp-mz", "threads": 1}),
    "table5": ("processors", "time_per_step_s", "particles", {}),
}


def chart_by_hint(result: ExperimentResult, width: int = 64, height: int = 16) -> str:
    """Chart an experiment using its registered projection."""
    hint = CHART_HINTS.get(result.experiment_id)
    if hint is None:
        raise ConfigurationError(
            f"no chart projection for {result.experiment_id!r}; "
            f"available: {sorted(CHART_HINTS)}"
        )
    x, y, series_by, filters = hint
    return chart_experiment(result, x=x, y=y, series_by=series_by,
                            width=width, height=height, **filters)
