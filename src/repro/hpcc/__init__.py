"""HPC Challenge microbenchmarks (paper §3.1, §4.1.1, §4.2, §4.6.1).

Three components, as in the paper:

* :mod:`repro.hpcc.dgemm` — double-precision matrix multiply (peak
  floating-point probe);
* :mod:`repro.hpcc.stream` — memory bandwidth (copy/scale/add/triad);
* :mod:`repro.hpcc.beff` — b_eff message-passing latency/bandwidth in
  ping-pong, natural-ring and random-ring patterns.

Each benchmark has a ``run_*`` function that *actually executes* the
kernel with NumPy (used for verification and as a live measurement on
the host), and a ``predict_*`` function that evaluates the benchmark
against the simulated Columbia machine (used to regenerate the paper's
results).
"""

from repro.hpcc.dgemm import DGEMMResult, predict_dgemm, run_dgemm
from repro.hpcc.stream import StreamResult, predict_stream, run_stream
from repro.hpcc.beff import (
    PingPongResult,
    RingResult,
    pingpong,
    natural_ring,
    random_ring,
)

__all__ = [
    "DGEMMResult",
    "predict_dgemm",
    "run_dgemm",
    "StreamResult",
    "predict_stream",
    "run_stream",
    "PingPongResult",
    "RingResult",
    "pingpong",
    "natural_ring",
    "random_ring",
]
