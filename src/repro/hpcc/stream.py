"""HPCC STREAM: sustainable memory bandwidth.

Paper §3.1: "tests memory bandwidth by doing simple operations on very
long vectors": copy, scale, add, triad; vectors sized to ~75% of
available memory.

Findings reproduced:

* §4.1.1: STREAM Triad ~1% better on the 3700 than either BX2 (the
  paper itself found no architectural explanation; we carry it as a
  documented calibration quirk);
* §4.2: linear scaling from 2 to 7500 CPUs at ~2 GB/s per CPU dense,
  ~3.8 GB/s single-CPU, 1.9x Triad recovery at stride 2/4 (each bus
  is shared by two CPUs);
* §4.6.1: the internode network plays no role at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, VerificationError
from repro.machine.node import AltixNode, NodeType
from repro.machine.placement import Placement
from repro.units import to_gb_per_s

__all__ = ["StreamResult", "run_stream", "predict_stream", "STREAM_OPS"]

STREAM_OPS = ("copy", "scale", "add", "triad")

#: Bytes moved per vector element for each operation (float64):
#: copy/scale read one vector and write one; add/triad read two and
#: write one.
_BYTES_PER_ELEMENT = {"copy": 16, "scale": 16, "add": 24, "triad": 24}

#: §4.1.1: the 3700 measured ~1% better on Triad than either BX2 type;
#: "Nothing about published architecture differences indicates why".
NODE_QUIRK = {NodeType.A3700: 1.01, NodeType.BX2A: 1.00, NodeType.BX2B: 1.00}

#: add/triad sustain slightly less than copy/scale on the Itanium2 bus
#: (three streams vs two).
_OP_EFFICIENCY = {"copy": 1.00, "scale": 0.99, "add": 0.965, "triad": 0.96}


@dataclass(frozen=True)
class StreamResult:
    """Per-CPU STREAM bandwidths in GB/s, one per operation."""

    copy: float
    scale: float
    add: float
    triad: float
    n_cpus: int = 1

    def __getitem__(self, op: str) -> float:
        if op not in STREAM_OPS:
            raise ConfigurationError(f"unknown STREAM op {op!r}")
        return getattr(self, op)

    @property
    def total_triad(self) -> float:
        """Aggregate Triad bandwidth across all measured CPUs."""
        return self.triad * self.n_cpus


def run_stream(n: int = 2_000_000, repeats: int = 3) -> StreamResult:
    """Actually execute the four STREAM kernels with NumPy and verify.

    ``n`` is the vector length; HPCC sizes it to 75% of memory, here it
    defaults to something comfortably bigger than any host cache.
    """
    if n < 1000:
        raise ConfigurationError(f"vector too short for timing: {n}")
    a = np.full(n, 1.0)
    b = np.full(n, 2.0)
    c = np.full(n, 0.0)
    scalar = 3.0
    results = {}

    def timed(op, fn):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        results[op] = to_gb_per_s(_BYTES_PER_ELEMENT[op] * n / best)

    timed("copy", lambda: np.copyto(c, a))  # c = a        -> 1.0
    timed("scale", lambda: np.multiply(c, scalar, out=b))  # b = 3c -> 3.0
    timed("add", lambda: np.add(a, b, out=c))  # c = a + b  -> 4.0
    timed("triad", lambda: np.add(a, scalar * c, out=b))  # b = a+3c -> 13.0
    # Verification, STREAM style: after the kernel sequence every
    # element has a closed-form value.
    if not (np.all(a == 1.0) and np.all(c == 4.0) and np.all(b == 13.0)):
        raise VerificationError("STREAM result verification failed")
    return StreamResult(n_cpus=1, **results)


def predict_stream(
    node: AltixNode,
    placement: Placement | None = None,
) -> StreamResult:
    """STREAM bandwidths per CPU on the simulated machine.

    Dense placements share each FSB between two CPUs; strided
    placements (stride >= 2) give each CPU a private bus (§4.2).
    """
    active = placement.active_per_fsb() if placement is not None else 1
    n_cpus = placement.total_cpus if placement is not None else 1
    # Zoo node types (plain string labels) carry no Columbia quirk.
    base = node.fsb.per_cpu_bandwidth(active) * NODE_QUIRK.get(node.node_type, 1.0)
    values = {
        op: to_gb_per_s(base) * _OP_EFFICIENCY[op] for op in STREAM_OPS
    }
    return StreamResult(n_cpus=n_cpus, **values)
