"""HPCC-style output summary.

The HPC Challenge suite writes a single ``hpccoutf.txt`` with every
component's headline numbers.  ``hpcc_summary`` assembles the same
block for one simulated configuration — handy for eyeballing a node
type the way the paper's authors eyeballed the real machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hpcc.beff import natural_ring, pingpong, random_ring
from repro.hpcc.dgemm import predict_dgemm
from repro.hpcc.stream import predict_stream
from repro.machine.cluster import Cluster, single_node
from repro.machine.node import NodeType
from repro.machine.placement import Placement
from repro.units import to_gb_per_s, to_usec

__all__ = ["HPCCSummary", "hpcc_summary"]


@dataclass(frozen=True)
class HPCCSummary:
    """Headline numbers of one HPCC run."""

    node_type: str
    n_cpus: int
    dgemm_gflops: float
    stream_triad_gb_s: float
    pingpong_latency_us: float
    pingpong_bandwidth_gb_s: float
    natural_ring_latency_us: float
    natural_ring_bandwidth_gb_s: float
    random_ring_latency_us: float
    random_ring_bandwidth_gb_s: float

    def format(self) -> str:
        lines = [
            "Begin of Summary section.",
            f"CommWorldProcs={self.n_cpus}",
            f"NodeType={self.node_type}",
            f"StarDGEMM_Gflops={self.dgemm_gflops:.4f}",
            f"StarSTREAM_Triad={self.stream_triad_gb_s:.4f}",
            f"MaxPingPongLatency_usec={self.pingpong_latency_us:.4f}",
            f"MaxPingPongBandwidth_GBytes={self.pingpong_bandwidth_gb_s:.4f}",
            f"NaturallyOrderedRingLatency_usec={self.natural_ring_latency_us:.4f}",
            f"NaturallyOrderedRingBandwidth_GBytes={self.natural_ring_bandwidth_gb_s:.4f}",
            f"RandomlyOrderedRingLatency_usec={self.random_ring_latency_us:.4f}",
            f"RandomlyOrderedRingBandwidth_GBytes={self.random_ring_bandwidth_gb_s:.4f}",
            "End of Summary section.",
        ]
        return "\n".join(lines)


def hpcc_summary(
    node_type: NodeType = NodeType.BX2B,
    n_cpus: int = 64,
    cluster: Cluster | None = None,
    trials: int = 2,
) -> HPCCSummary:
    """Run the HPCC subset on one configuration and summarize."""
    cluster = cluster if cluster is not None else single_node(node_type)
    placement = Placement(cluster, n_ranks=n_cpus)
    node = cluster.nodes[0]
    dgemm = predict_dgemm(node, placement)
    stream = predict_stream(node, placement)
    pp = pingpong(placement, max_pairs=12)
    nr = natural_ring(placement)
    rr = random_ring(placement, trials=trials)
    return HPCCSummary(
        node_type=node.node_type.value,
        n_cpus=n_cpus,
        dgemm_gflops=dgemm.gflops_per_cpu,
        stream_triad_gb_s=stream.triad,
        pingpong_latency_us=to_usec(pp.avg_latency),
        pingpong_bandwidth_gb_s=to_gb_per_s(pp.avg_bandwidth),
        natural_ring_latency_us=to_usec(nr.latency),
        natural_ring_bandwidth_gb_s=to_gb_per_s(nr.bandwidth_per_cpu),
        random_ring_latency_us=to_usec(rr.latency),
        random_ring_bandwidth_gb_s=to_gb_per_s(rr.bandwidth_per_cpu),
    )
