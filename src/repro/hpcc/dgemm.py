"""HPCC DGEMM: optimum floating-point performance.

Paper §3.1: "a double-precision matrix-matrix multiplication routine
that uses a level-3 BLAS package ... input arrays are sized so as to
use about 75% of the memory available on the subset of the CPUs being
tested".

Findings reproduced (§4.1.1, §4.2, §4.6.1):

* BX2b reaches 5.75 Gflop/s, ~6% better than 3700/BX2a (which are
  essentially identical) — correlated with clock+cache, *not*
  interconnect;
* CPU stride changes DGEMM by under 0.5%;
* the internode network plays under 0.5% of a role.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, VerificationError
from repro.machine.node import AltixNode
from repro.machine.placement import Placement
from repro.sim.rng import make_rng
from repro.units import to_gflops

__all__ = ["DGEMMResult", "run_dgemm", "predict_dgemm", "dgemm_problem_size"]

#: Fraction of Itanium2 peak a well-blocked BLAS3 DGEMM sustains.
#: Calibrated so 1.5 GHz parts give ~5.42 and 1.6 GHz parts ~5.76
#: Gflop/s — the paper's 6% BX2b advantage around 5.75 Gflop/s.
DGEMM_EFFICIENCY = 0.90

#: §4.2: stride changed DGEMM by "less than 0.5%" — a compute-bound,
#: cache-blocked kernel barely notices the memory bus.
STRIDE_SENSITIVITY = 0.002


@dataclass(frozen=True)
class DGEMMResult:
    """Outcome of a DGEMM run or prediction."""

    n: int
    gflops_per_cpu: float
    n_cpus: int = 1

    @property
    def total_gflops(self) -> float:
        return self.gflops_per_cpu * self.n_cpus


def dgemm_problem_size(memory_bytes: float, fraction: float = 0.75) -> int:
    """HPCC sizing: the largest N with three NxN float64 matrices
    filling ``fraction`` of ``memory_bytes``."""
    if memory_bytes <= 0 or not 0 < fraction <= 1:
        raise ConfigurationError("bad memory sizing arguments")
    return int(np.sqrt(memory_bytes * fraction / (3 * 8)))


def run_dgemm(n: int = 512, seed: int | None = None, repeats: int = 3) -> DGEMMResult:
    """Actually execute C = alpha*A@B + beta*C and measure flop rate.

    Verifies the result against a column-sampled reference computation
    (as HPCC verifies a residual) before reporting the rate.
    """
    if n < 2:
        raise ConfigurationError(f"matrix order must be >= 2, got {n}")
    rng = make_rng(seed)
    a = rng.random((n, n))
    b = rng.random((n, n))
    c = rng.random((n, n))
    alpha, beta = 1.5, -0.5
    best = float("inf")
    result = None
    for _ in range(repeats):
        c_in = c.copy()
        t0 = time.perf_counter()
        result = alpha * (a @ b) + beta * c_in
        best = min(best, time.perf_counter() - t0)
    # Residual check on a sampled column.
    j = n // 2
    ref = alpha * a @ b[:, j] + beta * c[:, j]
    err = np.max(np.abs(result[:, j] - ref)) / (n * np.finfo(np.float64).eps)
    if err > 1e3:
        raise VerificationError(f"DGEMM residual too large: {err}")
    flops = 2.0 * n**3 + 2.0 * n**2
    return DGEMMResult(n=n, gflops_per_cpu=to_gflops(flops / best))


def predict_dgemm(
    node: AltixNode,
    placement: Placement | None = None,
    internode: bool = False,
) -> DGEMMResult:
    """Per-CPU DGEMM rate on the simulated machine.

    ``placement`` contributes only its stride (sub-0.5% effect) and CPU
    count; ``internode`` marks multi-box runs (sub-0.5% effect) —
    reproducing the paper's finding that DGEMM tracks processor speed
    and cache size only.
    """
    peak = node.processor.peak_flops
    gflops = to_gflops(peak) * DGEMM_EFFICIENCY
    n_cpus = 1
    if placement is not None:
        n_cpus = placement.total_cpus
        if placement.stride > 1:
            # Strided runs measured at most 0.5% different (§4.2).
            gflops *= 1.0 + STRIDE_SENSITIVITY
    if internode:
        gflops *= 1.0 - 0.004  # "less than 0.5%" (§4.6.1)
    n = dgemm_problem_size(node.brick.memory_bytes / node.brick.cpus)
    return DGEMMResult(n=n, gflops_per_cpu=gflops, n_cpus=n_cpus)
