"""HPCC b_eff: MPI latency and bandwidth patterns (paper §3.1).

Three patterns, as the paper uses:

* **Ping-Pong** — average one-way latency (8-byte messages) and
  bandwidth (2,000,000-byte messages, per HPCC) over a deterministic
  sample of rank pairs;
* **Natural Ring** — every rank exchanges with its MPI_COMM_WORLD
  neighbors simultaneously; mostly-local communication;
* **Random Ring** — neighbors under a random permutation: mostly
  *remote* communication; reported as a geometric mean over several
  orderings (as the HPCC benchmark reports).

All three are *executed* message-by-message on the DES against the
simulated machine.  Ring bandwidths are additionally derated by the
analytic cross-node contention factor (the DES prices paths unloaded;
a ring loads every path at once — on InfiniBand that saturates the
per-node card capacity, which is the §4.6.1 "severe problems with
scalability of InfiniBand" mechanism).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.placement import Placement
from repro.mpi import MPIComm, run_mpi
from repro.mpi.collectives import barrier
from repro.netmodel.contention import (
    cross_node_flow_factor,
    random_permutation_factor,
)
from repro.sim.rng import make_rng

__all__ = ["PingPongResult", "RingResult", "pingpong", "natural_ring", "random_ring"]

#: HPCC message sizes: 8 bytes for latency, 2,000,000 for bandwidth.
LATENCY_BYTES = 8
BANDWIDTH_BYTES = 2_000_000


@dataclass(frozen=True)
class PingPongResult:
    """Average ping-pong results over sampled pairs."""

    n_cpus: int
    avg_latency: float  # seconds, one-way
    avg_bandwidth: float  # bytes/s, one direction


@dataclass(frozen=True)
class RingResult:
    """Ring benchmark results (natural or random ordering)."""

    n_cpus: int
    latency: float  # seconds per ring iteration with 8-byte messages
    bandwidth_per_cpu: float  # bytes/s through each CPU (both directions)


def _pair_sample(p: int, max_pairs: int, seed: int) -> list[tuple[int, int]]:
    """Deterministic sample of distinct rank pairs."""
    if p < 2:
        raise ConfigurationError("ping-pong needs at least 2 ranks")
    all_count = p * (p - 1) // 2
    if all_count <= max_pairs:
        return [(i, j) for i in range(p) for j in range(i + 1, p)]
    rng = make_rng(seed)
    pairs = set()
    while len(pairs) < max_pairs:
        i, j = rng.integers(0, p, size=2)
        if i != j:
            pairs.add((int(min(i, j)), int(max(i, j))))
    return sorted(pairs)


def pingpong(
    placement: Placement, max_pairs: int = 64, seed: int = 0
) -> PingPongResult:
    """HPCC ping-pong: averages over sampled communicating pairs.

    Each pair plays one 8-byte and one 2 MB ping-pong on the DES; the
    "average" results the paper quotes (§3.1) are arithmetic means.
    """
    pairs = _pair_sample(placement.n_ranks, max_pairs, seed)

    def prog_for(pair: tuple[int, int], nbytes: int):
        a, b = pair

        def prog(comm: MPIComm):
            if comm.rank == a:
                t0 = comm.now
                yield from comm.send(b, nbytes)
                yield from comm.recv(b)
                return (comm.now - t0) / 2.0  # one-way
            elif comm.rank == b:
                yield from comm.recv(a)
                yield from comm.send(a, nbytes)
            return None

        return prog

    latencies, bandwidths = [], []
    for pair in pairs:
        lat = run_mpi(placement, prog_for(pair, LATENCY_BYTES)).values[pair[0]]
        oneway = run_mpi(placement, prog_for(pair, BANDWIDTH_BYTES)).values[pair[0]]
        latencies.append(lat)
        bandwidths.append(BANDWIDTH_BYTES / oneway)
    return PingPongResult(
        n_cpus=placement.total_cpus,
        avg_latency=float(np.mean(latencies)),
        avg_bandwidth=float(np.mean(bandwidths)),
    )


def _ring_times(
    placement: Placement, order: list[int], nbytes: int
) -> np.ndarray:
    """Per-rank exchange times for one ring iteration under the DES.

    ``order`` is the ring permutation: rank ``order[k]`` exchanges with
    ``order[k-1]`` and ``order[(k+1) % p]`` simultaneously.  Each
    rank's time reflects its own two neighbor paths: over the many
    pipelined iterations b_eff runs, independent pairs stream at their
    own rate, so the benchmark's per-process results follow the
    per-pair path quality (HPCC averages over processes).
    """
    p = placement.n_ranks
    pos = {rank: k for k, rank in enumerate(order)}

    def prog(comm: MPIComm):
        k = pos[comm.rank]
        right = order[(k + 1) % p]
        left = order[(k - 1) % p]
        yield from barrier(comm)
        t0 = comm.now
        # Bidirectional exchange with both neighbors, as b_eff does.
        comm.isend(right, nbytes, tag=1)
        comm.isend(left, nbytes, tag=2)
        yield comm.irecv(left, tag=1)
        yield comm.irecv(right, tag=2)
        return comm.now - t0

    result = run_mpi(placement, prog)
    return np.asarray(result.values, dtype=float)


def natural_ring(placement: Placement) -> RingResult:
    """Ring over adjacent MPI ranks ("natural" ordering).

    Latency is the worst per-process time, as the paper notes the
    benchmark "reports the worst-case process-to-process latency for
    the entire ring communication" (§4.6.1); bandwidth is the mean
    per-process sustained rate.
    """
    p = placement.n_ranks
    order = list(range(p))
    lat = float(np.max(_ring_times(placement, order, LATENCY_BYTES)))
    bw_times = _ring_times(placement, order, BANDWIDTH_BYTES)
    # Few neighbor pairs cross nodes in natural order.
    cross = cross_node_flow_factor(placement, concurrent_fraction=2.0 / max(2, p))
    per_cpu = float(np.mean(2.0 * BANDWIDTH_BYTES / bw_times)) / cross
    return RingResult(placement.total_cpus, lat, per_cpu)


def random_ring(placement: Placement, trials: int = 3, seed: int = 1) -> RingResult:
    """Ring over randomly permuted ranks; geometric mean over trials
    (HPCC reports "a geometric mean of the results from a number of
    trials", §3.1).

    Latency is the mean per-process time (most pairs are remote, so
    the mean is what grows with CPU count as in Fig. 5); bandwidth is
    the mean sustained rate derated by the full cross-node contention
    factor (every rank has remote flows in flight at once).
    """
    p = placement.n_ranks
    rng = make_rng(seed)
    lats, bws = [], []
    cross = cross_node_flow_factor(placement, concurrent_fraction=1.0)
    cross *= random_permutation_factor(p / placement.n_nodes_used())
    for _ in range(max(1, trials)):
        order = [int(r) for r in rng.permutation(p)]
        lats.append(float(np.mean(_ring_times(placement, order, LATENCY_BYTES))))
        bw_times = _ring_times(placement, order, BANDWIDTH_BYTES)
        bws.append(float(np.mean(2.0 * BANDWIDTH_BYTES / bw_times)) / cross)
    geo = lambda xs: float(math.exp(np.mean(np.log(xs))))
    return RingResult(placement.total_cpus, geo(lats), geo(bws))
