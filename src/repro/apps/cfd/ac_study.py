"""Sub-iteration study with the real artificial-compressibility solver.

Paper §3.4: "the equations are iterated to convergence in pseudo-time
for each physical time step ... The total number of sub-iterations
required varies depending on the problem, time step size, and the
artificial compressibility parameter.  Typically, the number ranges
from 10 to 30 sub-iterations."

This module measures that statement with the real 2D solver: starting
from an already-converged state, perturb it the way one physical time
step does, and count the sub-iterations needed to recover the
divergence tolerance, across a sweep of the compressibility parameter
beta.  The beta *dependence* — including an interior optimum — comes
out of the real numerics.

Absolute counts land higher than INS3D's 10-30 because this
mini-solver marches pseudo-time *explicitly* (stability-capped step),
while INS3D solves each pseudo-step with the implicit Gauss-Seidel
line relaxation precisely so that "a large pseudo-time step [can] be
taken" (§3.4).  The ratio of our counts to the paper's band is thus a
measurement of what the line-relaxation scheme buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.cfd.artificial_compressibility import ACSolver
from repro.errors import ConfigurationError
from repro.sim.rng import make_rng

__all__ = ["SubiterationPoint", "subiteration_study"]


@dataclass(frozen=True)
class SubiterationPoint:
    """Sub-iterations needed at one beta."""

    beta: float
    sub_iterations: int
    converged: bool
    final_divergence: float


def subiteration_study(
    betas: tuple[float, ...] = (0.3, 0.6, 1.0, 2.0, 4.0),
    n: int = 32,
    tolerance: float = 2e-3,
    perturbation: float = 0.02,
    seed: int | None = None,
) -> list[SubiterationPoint]:
    """Count per-physical-step sub-iterations across beta values.

    For each beta: converge once from scratch (the spin-up the paper's
    production runs have long passed), then apply a physical-step-like
    velocity perturbation and count the sub-iterations back to
    tolerance.
    """
    if not betas:
        raise ConfigurationError("need at least one beta")
    if perturbation <= 0:
        raise ConfigurationError(f"perturbation must be positive: {perturbation}")
    rng = make_rng(seed)
    # One shared perturbation: every beta recovers from the *same*
    # physical-step disturbance, so counts are directly comparable.
    bump = rng.standard_normal((n, n)) * perturbation
    points = []
    for beta in betas:
        if beta <= 0:
            raise ConfigurationError(f"beta must be positive: {beta}")
        solver = ACSolver(n=n, beta=beta, seed=seed)
        solver.subiterate(tolerance=tolerance, max_sub=2000)
        # A "physical time step": the outer solution advances, leaving
        # the velocity field slightly non-solenoidal again.
        solver.u = solver.u + bump
        result = solver.subiterate(tolerance=tolerance, max_sub=2000)
        points.append(
            SubiterationPoint(
                beta=beta,
                sub_iterations=result.sub_iterations,
                converged=result.converged,
                final_divergence=result.final_divergence,
            )
        )
    return points
