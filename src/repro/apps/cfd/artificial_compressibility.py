"""Artificial-compressibility incompressible Navier-Stokes (INS3D).

Paper §3.4: "the incompressible formulation does not explicitly yield
the pressure field from an equation of state ... an artificial
compressibility method ... introduces a time-derivative of the
pressure term into the continuity equation", turning the
elliptic-parabolic system hyperbolic-parabolic; "the equations are
iterated to convergence in pseudo-time for each physical time step
until the divergence of the velocity field has been reduced below a
specified tolerance value", typically taking 10-30 sub-iterations.

This is a real 2D implementation of exactly that scheme on a periodic
domain (vectorized central differences, forward-Euler pseudo-time).
The verification invariant is the paper's own criterion: the velocity
divergence falls below tolerance within a few dozen sub-iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, VerificationError
from repro.sim.rng import make_rng

__all__ = ["ACSolver", "ACResult"]


def _ddx(f: np.ndarray, h: float) -> np.ndarray:
    return (np.roll(f, -1, 0) - np.roll(f, 1, 0)) / (2 * h)


def _ddy(f: np.ndarray, h: float) -> np.ndarray:
    return (np.roll(f, -1, 1) - np.roll(f, 1, 1)) / (2 * h)


def _lap(f: np.ndarray, h: float) -> np.ndarray:
    return (
        np.roll(f, 1, 0) + np.roll(f, -1, 0)
        + np.roll(f, 1, 1) + np.roll(f, -1, 1)
        - 4 * f
    ) / (h * h)


@dataclass(frozen=True)
class ACResult:
    """Outcome of the pseudo-time sub-iteration loop."""

    sub_iterations: int
    divergence_history: tuple[float, ...]
    converged: bool

    @property
    def final_divergence(self) -> float:
        return self.divergence_history[-1]


class ACSolver:
    """2D incompressible Navier-Stokes via artificial compressibility.

    Parameters
    ----------
    n:
        Grid points per side (periodic square).
    beta:
        The artificial compressibility parameter (the paper notes the
        sub-iteration count depends on it).
    viscosity:
        Kinematic viscosity.
    """

    def __init__(self, n: int = 32, beta: float = 1.0, viscosity: float = 0.05,
                 seed: int | None = None) -> None:
        if n < 8:
            raise ConfigurationError(f"grid too small: {n}")
        if beta <= 0 or viscosity < 0:
            raise ConfigurationError("beta must be > 0, viscosity >= 0")
        self.n = n
        self.h = 1.0 / n
        self.beta = beta
        self.viscosity = viscosity
        rng = make_rng(seed)
        # Smooth random initial velocity (not divergence-free) and
        # zero pressure.
        k = rng.standard_normal((2, 4, 4))
        x = np.arange(n) * self.h
        X, Y = np.meshgrid(x, x, indexing="ij")
        self.u = sum(
            k[0, a, b] * np.sin(2 * np.pi * ((a + 1) * X + (b + 1) * Y))
            for a in range(4) for b in range(4)
        ) * 0.05
        self.v = sum(
            k[1, a, b] * np.cos(2 * np.pi * ((a + 1) * X + (b + 1) * Y))
            for a in range(4) for b in range(4)
        ) * 0.05
        self.p = np.zeros_like(self.u)

    # -- physics -------------------------------------------------------------

    def divergence(self) -> np.ndarray:
        return _ddx(self.u, self.h) + _ddy(self.v, self.h)

    def divergence_norm(self) -> float:
        d = self.divergence()
        return float(np.sqrt(np.mean(d * d)))

    def _pseudo_step(self, dtau: float) -> None:
        u, v, p, h, nu = self.u, self.v, self.p, self.h, self.viscosity
        conv_u = u * _ddx(u, h) + v * _ddy(u, h)
        conv_v = u * _ddx(v, h) + v * _ddy(v, h)
        du = -conv_u - _ddx(p, h) + nu * _lap(u, h)
        dv = -conv_v - _ddy(p, h) + nu * _lap(v, h)
        # Artificial compressibility: dp/dtau = -beta * div(u).
        dp = -self.beta * self.divergence()
        self.u = u + dtau * du
        self.v = v + dtau * dv
        self.p = p + dtau * dp

    def subiterate(self, tolerance: float = 1e-4, max_sub: int = 400,
                   dtau: float | None = None) -> ACResult:
        """Drive the divergence below ``tolerance`` in pseudo-time.

        Raises :class:`VerificationError` if the loop fails to converge
        within ``max_sub`` sub-iterations — the INS3D convergence
        criterion (paper: typically 10 to 30 sub-iterations per
        physical time step at production tolerances).
        """
        if dtau is None:
            # Stability: the acoustic CFL bound and the explicit
            # viscous bound, whichever is tighter.
            wave = np.sqrt(self.beta) + 1.0
            dtau = 0.3 * self.h / wave
            if self.viscosity > 0:
                dtau = min(dtau, 0.2 * self.h * self.h / self.viscosity)
        history = [self.divergence_norm()]
        for it in range(1, max_sub + 1):
            self._pseudo_step(dtau)
            history.append(self.divergence_norm())
            if history[-1] < tolerance:
                return ACResult(it, tuple(history), True)
            if not np.isfinite(history[-1]):
                raise VerificationError(
                    f"artificial-compressibility iteration diverged at {it}"
                )
        return ACResult(max_sub, tuple(history), False)
