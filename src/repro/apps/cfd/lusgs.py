"""LU-SGS with wavefront ("pipeline") ordering (OVERFLOW-D's solver).

Paper §3.5: "The linear solver of the application, called LU-SGS, was
reimplemented using a pipeline algorithm to enhance efficiency which
is dictated by the type of data dependencies inherent in the solution
algorithm."  (OVERFLOW-D was designed for vector machines; Columbia's
cache-based superscalar Itanium2 needed the wavefront restructuring.)

LU-SGS approximately factors ``A = D + L + U`` (7-point stencil) as
``(D + L) D^-1 (D + U)`` and solves by a forward then backward sweep.
The data dependency of each sweep follows the grid diagonals: all
cells on a hyperplane ``i + j + k = const`` are independent — the
pipeline ordering vectorizes over those hyperplanes, which is exactly
what we do with precomputed index lists.

Verified by tests: the preconditioned Richardson iteration built on
these sweeps converges to the direct sparse solution.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["hyperplane_ordering", "lusgs_sweep", "lusgs_solve"]


@lru_cache(maxsize=32)
def hyperplane_ordering(shape: tuple[int, int, int]) -> tuple[tuple[np.ndarray, ...], ...]:
    """Index arrays of each wavefront ``i + j + k = s``.

    Returns a tuple over ``s`` of ``(ii, jj, kk)`` arrays; cells within
    one wavefront have no mutual dependency in an LU-SGS sweep, so the
    solver updates each wavefront as one vector operation.
    """
    nx, ny, nz = shape
    if min(nx, ny, nz) < 1:
        raise ConfigurationError(f"bad grid shape {shape}")
    i, j, k = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    s = (i + j + k).ravel()
    order = np.argsort(s, kind="stable")
    flat_i, flat_j, flat_k = i.ravel()[order], j.ravel()[order], k.ravel()[order]
    s_sorted = s[order]
    planes = []
    for value in range(nx + ny + nz - 2):
        sel = slice(
            np.searchsorted(s_sorted, value),
            np.searchsorted(s_sorted, value + 1),
        )
        planes.append((flat_i[sel], flat_j[sel], flat_k[sel]))
    return tuple(planes)


def lusgs_sweep(
    rhs: np.ndarray, diag: float, off: float, forward: bool
) -> np.ndarray:
    """One triangular solve of LU-SGS over the wavefronts.

    Solves ``(D + L) x = rhs`` (forward) or ``(D + U) x = rhs``
    (backward) for the 7-point stencil with constant coefficients:
    diagonal ``diag``, off-diagonals ``off`` toward lower (forward) or
    higher (backward) indices.
    """
    if rhs.ndim != 3:
        raise ConfigurationError(f"need a 3D array, got shape {rhs.shape}")
    if diag == 0:
        raise ConfigurationError("zero diagonal in LU-SGS sweep")
    x = np.zeros_like(rhs)
    planes = hyperplane_ordering(rhs.shape)
    ordered = planes if forward else tuple(reversed(planes))
    step = -1 if forward else 1
    for ii, jj, kk in ordered:
        acc = rhs[ii, jj, kk].copy()
        for axis, (di, dj, dk) in enumerate(((step, 0, 0), (0, step, 0), (0, 0, step))):
            ni, nj, nk = ii + di, jj + dj, kk + dk
            valid = (
                (ni >= 0) & (ni < rhs.shape[0])
                & (nj >= 0) & (nj < rhs.shape[1])
                & (nk >= 0) & (nk < rhs.shape[2])
            )
            acc[valid] -= off * x[ni[valid], nj[valid], nk[valid]]
        x[ii, jj, kk] = acc / diag
    return x


def lusgs_solve(
    b: np.ndarray,
    diag: float = 6.5,
    off: float = -1.0,
    iterations: int = 30,
) -> tuple[np.ndarray, list[float]]:
    """Solve ``A u = b`` for the 7-point operator
    ``A = diag*I + off*(sum of 6 neighbor shifts)`` (Dirichlet) by
    LU-SGS-preconditioned Richardson iteration.

    Returns the iterate and residual-norm history.
    """
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1: {iterations}")
    u = np.zeros_like(b)
    history = []
    for _ in range(iterations):
        r = b - _apply(u, diag, off)
        # M^-1 r with M = (D+L) D^-1 (D+U): forward sweep, scale, back sweep.
        y = lusgs_sweep(r, diag, off, forward=True)
        z = lusgs_sweep(y * diag, diag, off, forward=False)
        u = u + z
        res = float(np.sqrt(np.mean((b - _apply(u, diag, off)) ** 2)))
        history.append(res)
    return u, history


def _apply(u: np.ndarray, diag: float, off: float) -> np.ndarray:
    """Apply the 7-point operator with zero (Dirichlet) boundaries."""
    out = diag * u
    for axis in range(3):
        for shift in (1, -1):
            rolled = np.roll(u, shift, axis)
            # Zero the wrapped-around plane.
            idx = [slice(None)] * 3
            idx[axis] = 0 if shift == 1 else -1
            rolled[tuple(idx)] = 0.0
            out = out + off * rolled
    return out
