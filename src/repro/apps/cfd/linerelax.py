"""Gauss-Seidel line relaxation (INS3D's matrix solver).

Paper §3.4: "The matrix equation is solved iteratively by using a
non-factored Gauss-Seidel type line-relaxation scheme, which maintains
stability and allows a large pseudo-time step to be taken."

Implemented for the model 2D Poisson problem: each relaxation sweep
solves a tridiagonal system along every x-line (direct Thomas solve,
vectorized over lines with ``scipy.linalg.solve_banded``), using the
latest values of the neighboring lines Gauss-Seidel style, then does
the same along y-lines.  Verified against a direct sparse solve.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_banded

from repro.errors import ConfigurationError

__all__ = ["line_relax_poisson"]


def _sweep_lines(u: np.ndarray, f: np.ndarray, h2: float, axis: int) -> np.ndarray:
    """One Gauss-Seidel pass of line solves along ``axis``.

    Dirichlet zero boundaries; the tridiagonal system per line is
    ``(u[i-1] - 4u[i] + u[i+1])/h2 = f - (cross-line neighbors)/h2``.
    """
    if axis == 1:
        return _sweep_lines(u.T, f.T, h2, 0).T
    n, m = u.shape
    # Tridiagonal bands for one line of length m (interior points).
    ab = np.zeros((3, m))
    ab[0, 1:] = 1.0
    ab[1, :] = -4.0
    ab[2, :-1] = 1.0
    out = u.copy()
    for i in range(n):
        above = out[i - 1] if i > 0 else np.zeros(m)
        below = u[i + 1] if i + 1 < n else np.zeros(m)
        rhs = f[i] * h2 - above - below
        out[i] = solve_banded((1, 1), ab, rhs)
    return out


def line_relax_poisson(
    f: np.ndarray,
    sweeps: int = 50,
    h: float | None = None,
    u0: np.ndarray | None = None,
) -> tuple[np.ndarray, list[float]]:
    """Solve ``laplacian(u) = f`` (Dirichlet 0) by line relaxation.

    ``u0`` warm-starts the iteration (the overset outer loop resumes
    from the previous composite state).  Returns the iterate and the
    residual-norm history (one entry per sweep pair), which must
    decrease monotonically — the tested invariant — and converge to
    the direct solution.
    """
    if f.ndim != 2:
        raise ConfigurationError(f"need a 2D right-hand side, got {f.shape}")
    if sweeps < 1:
        raise ConfigurationError(f"sweeps must be >= 1: {sweeps}")
    n, m = f.shape
    h = h if h is not None else 1.0 / (n + 1)
    h2 = h * h
    if u0 is not None:
        if u0.shape != f.shape:
            raise ConfigurationError(
                f"u0 shape {u0.shape} does not match f {f.shape}"
            )
        u = u0.copy()
    else:
        u = np.zeros_like(f)
    history = []
    for _ in range(sweeps):
        u = _sweep_lines(u, f, h2, axis=0)
        u = _sweep_lines(u, f, h2, axis=1)
        history.append(_residual_norm(u, f, h2))
    return u, history


def _residual_norm(u: np.ndarray, f: np.ndarray, h2: float) -> float:
    n, m = u.shape
    padded = np.zeros((n + 2, m + 2))
    padded[1:-1, 1:-1] = u
    lap = (
        padded[:-2, 1:-1] + padded[2:, 1:-1]
        + padded[1:-1, :-2] + padded[1:-1, 2:]
        - 4 * u
    ) / h2
    r = f - lap
    return float(np.sqrt(np.mean(r * r)))
