"""CFD numerics used by the paper's applications.

* :mod:`repro.apps.cfd.artificial_compressibility` — INS3D's method
  (§3.4): incompressible Navier-Stokes closed with a pseudo-time
  pressure derivative, iterated to a divergence-free velocity field;
* :mod:`repro.apps.cfd.linerelax` — the Gauss-Seidel line-relaxation
  solver INS3D uses for its matrix equation;
* :mod:`repro.apps.cfd.lusgs` — the LU-SGS solver OVERFLOW-D uses,
  re-implemented with the wavefront ("pipeline") ordering that made it
  efficient on Columbia's cache-based superscalar CPUs (§3.5).
"""

from repro.apps.cfd.artificial_compressibility import ACSolver, ACResult
from repro.apps.cfd.linerelax import line_relax_poisson
from repro.apps.cfd.lusgs import lusgs_solve, hyperplane_ordering

__all__ = [
    "ACSolver",
    "ACResult",
    "line_relax_poisson",
    "lusgs_solve",
    "hyperplane_ordering",
]
