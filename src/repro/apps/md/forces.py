"""Lennard-Jones forces (cutoff, periodic, vectorized).

Paper §3.3: "The potential energy between two atoms is modeled by the
Lennard-Jones potential ... We used a cutoff radius of 5.0 beyond
which interactions between atoms are not calculated."

Two implementations, cross-verified by tests:

* :func:`lj_forces_naive` — all-pairs with a cutoff mask (O(N^2)),
  the trusted reference;
* :func:`lj_forces` — cell-list accelerated (O(N)), the production
  path (and the analogue of the paper's linked-list neighbor search).
"""

from __future__ import annotations

import numpy as np

from repro.apps.md.cells import CellList
from repro.errors import ConfigurationError

__all__ = ["lj_forces", "lj_forces_naive", "DEFAULT_RCUT"]

#: The paper's cutoff radius (reduced units).
DEFAULT_RCUT = 5.0


def _pair_forces(
    rij: np.ndarray, r2: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """LJ force vectors and potential energies for displacement rows.

    ``rij`` are minimum-image displacement vectors, ``r2`` the squared
    distances (must be > 0 and <= rcut^2 already).
    """
    inv_r2 = 1.0 / r2
    inv_r6 = inv_r2 * inv_r2 * inv_r2
    # U = 4 (r^-12 - r^-6); F = 24 (2 r^-12 - r^-6) / r^2 * rij
    energy = 4.0 * inv_r6 * (inv_r6 - 1.0)
    fmag = 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0)
    return fmag[:, None] * rij, energy


def lj_forces_naive(
    positions: np.ndarray, box: float, rcut: float = DEFAULT_RCUT
) -> tuple[np.ndarray, float]:
    """All-pairs LJ forces and total potential energy (reference)."""
    n = len(positions)
    if n < 2:
        return np.zeros_like(positions), 0.0
    if rcut <= 0 or box <= 0:
        raise ConfigurationError("box and rcut must be positive")
    delta = positions[:, None, :] - positions[None, :, :]
    delta -= box * np.round(delta / box)  # minimum image
    r2 = (delta**2).sum(axis=-1)
    iu = np.triu_indices(n, k=1)
    mask = r2[iu] <= rcut * rcut
    rows, cols = iu[0][mask], iu[1][mask]
    fvec, energy = _pair_forces(delta[rows, cols], r2[rows, cols])
    forces = np.zeros_like(positions)
    np.add.at(forces, rows, fvec)
    np.add.at(forces, cols, -fvec)
    return forces, float(energy.sum())


def lj_forces(
    positions: np.ndarray, box: float, rcut: float = DEFAULT_RCUT
) -> tuple[np.ndarray, float]:
    """Cell-list LJ forces and total potential energy.

    Falls back to the all-pairs path when the box is too small to fit
    3x3x3 distinct cells of width >= rcut (the cell method needs at
    least 3 cells per edge to avoid double-visiting periodic images).
    """
    cl = CellList(positions, box, rcut)
    if cl.n_cells < 3:
        return lj_forces_naive(positions, box, rcut)
    forces = np.zeros_like(positions)
    total_energy = 0.0
    rcut2 = rcut * rcut
    n = cl.n_cells
    visited: set[tuple[int, int]] = set()
    for cell in range(n**3):
        atoms_a = cl.atoms_in(cell)
        if len(atoms_a) == 0:
            continue
        for ncell in cl.neighbor_cells(cell):
            key = (min(cell, ncell), max(cell, ncell))
            if key in visited:
                continue
            visited.add(key)
            atoms_b = cl.atoms_in(ncell)
            if len(atoms_b) == 0:
                continue
            if cell == ncell:
                if len(atoms_a) < 2:
                    continue
                ia, ib = np.triu_indices(len(atoms_a), k=1)
                rows, cols = atoms_a[ia], atoms_a[ib]
            else:
                rows = np.repeat(atoms_a, len(atoms_b))
                cols = np.tile(atoms_b, len(atoms_a))
            delta = positions[rows] - positions[cols]
            delta -= box * np.round(delta / box)
            r2 = (delta**2).sum(axis=-1)
            mask = r2 <= rcut2
            if not mask.any():
                continue
            fvec, energy = _pair_forces(delta[mask], r2[mask])
            np.add.at(forces, rows[mask], fvec)
            np.add.at(forces, cols[mask], -fvec)
            total_energy += float(energy.sum())
    return forces, total_energy
