"""Cell lists for O(N) short-range force evaluation.

Paper §3.3 describes the per-processor data structures: atoms binned
into boxes with "neighbor linked lists to permit easy deletions and
insertions as atoms move between boxes".  In vectorized NumPy the
equivalent is a sorted cell index: atoms are bucketed into cells at
least one cutoff wide, and force evaluation only visits the 27
neighboring cells.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CellList"]


class CellList:
    """Atoms bucketed into a periodic grid of cubic cells."""

    def __init__(self, positions: np.ndarray, box: float, rcut: float) -> None:
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ConfigurationError(f"positions must be (N,3): {positions.shape}")
        if box <= 0 or rcut <= 0:
            raise ConfigurationError("box and rcut must be positive")
        self.box = box
        self.rcut = rcut
        #: cells per edge; each cell >= rcut wide so neighbors suffice.
        self.n_cells = max(1, int(np.floor(box / rcut)))
        self.cell_width = box / self.n_cells
        wrapped = np.mod(positions, box)
        idx3 = np.minimum(
            (wrapped / self.cell_width).astype(int), self.n_cells - 1
        )
        self.cell_of = (
            idx3[:, 0] * self.n_cells**2 + idx3[:, 1] * self.n_cells + idx3[:, 2]
        )
        #: atom indices sorted by cell, plus per-cell start offsets.
        self.order = np.argsort(self.cell_of, kind="stable")
        sorted_cells = self.cell_of[self.order]
        self.starts = np.searchsorted(
            sorted_cells, np.arange(self.n_cells**3 + 1)
        )

    def atoms_in(self, cell: int) -> np.ndarray:
        """Atom indices in flat cell id ``cell``."""
        if not 0 <= cell < self.n_cells**3:
            raise ConfigurationError(f"cell {cell} out of range")
        return self.order[self.starts[cell]:self.starts[cell + 1]]

    def neighbor_cells(self, cell: int) -> np.ndarray:
        """Flat ids of the 27 periodic neighbor cells (incl. self)."""
        n = self.n_cells
        cx, cy, cz = cell // (n * n), (cell // n) % n, cell % n
        out = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    out.append(
                        ((cx + dx) % n) * n * n + ((cy + dy) % n) * n + (cz + dz) % n
                    )
        return np.unique(out)

    @property
    def occupancy(self) -> np.ndarray:
        """Atoms per cell (diagnostics/tests)."""
        return np.diff(self.starts)
