"""MD weak-scaling performance model (paper §4.6.3, Table 5).

The paper's study: 64,000 atoms per processor (weak scaling; 130.56
million atoms at 2040 processors), 100 steps, run across the
NUMAlink4-coupled BX2b nodes.  "Results show almost perfect
scalability all the way up to 2040 processors.  The communication
costs are insignificant for this test case."

Model per step and per processor:

* **compute** — pair interactions of the processor's atoms: the
  neighbor count per atom comes from the density and the paper's 5.0
  cutoff; flop cost per pair from the LJ kernel;
* **comm** — exchanging the ghost shell (one cutoff deep around the
  processor's sub-box) with the 26 neighbor boxes: entirely local
  communication, hence insignificant and nearly flat in P.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.apps.md.forces import DEFAULT_RCUT
from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster, multinode
from repro.machine.placement import Placement
from repro.netmodel.costs import NetworkModel

__all__ = ["MDScalingModel"]

#: Flop per pair interaction per step (distance, LJ kernel, update).
FLOPS_PER_PAIR = 45.0
#: Fraction of peak the (gather-heavy) pair loop sustains.
COMPUTE_EFF = 0.10
#: Bytes exchanged per ghost atom per step (position coordinates; the
#: paper's second data structure "stores only position coordinates of
#: atoms in neighboring boxes").
BYTES_PER_GHOST = 3 * 8


@dataclass
class MDScalingModel:
    """Weak-scaling timing of the MD code (Table 5)."""

    atoms_per_proc: int = 64_000
    density: float = 0.8442
    rcut: float = DEFAULT_RCUT
    cluster: Cluster | None = None

    def __post_init__(self) -> None:
        if self.atoms_per_proc < 1 or self.density <= 0 or self.rcut <= 0:
            raise ConfigurationError("bad MD scaling parameters")

    def _cluster_for(self, n_procs: int) -> Cluster:
        if self.cluster is not None:
            return self.cluster
        n_nodes = max(1, math.ceil(n_procs / 510))
        return multinode(min(4, n_nodes), fabric="numalink4")

    def neighbors_per_atom(self) -> float:
        """Average pair partners within the cutoff sphere."""
        return self.density * 4.0 / 3.0 * math.pi * self.rcut**3

    def compute_time_per_step(self, node) -> float:
        pairs = self.atoms_per_proc * self.neighbors_per_atom() / 2.0
        return pairs * FLOPS_PER_PAIR / (node.processor.peak_flops * COMPUTE_EFF)

    def ghost_atoms_per_proc(self) -> float:
        """Atoms in the one-cutoff-deep shell around a sub-box."""
        side = (self.atoms_per_proc / self.density) ** (1.0 / 3.0)
        shell_volume = (side + 2 * self.rcut) ** 3 - side**3
        return self.density * shell_volume

    def comm_time_per_step(self, n_procs: int) -> float:
        if n_procs <= 1:
            return 0.0
        cluster = self._cluster_for(n_procs)
        placement = Placement(
            cluster, n_ranks=min(n_procs, cluster.total_cpus),
            spread_nodes=len(cluster.nodes) > 1,
        )
        net = NetworkModel(placement)
        path = net.neighbor_path(0)
        volume = self.ghost_atoms_per_proc() * BYTES_PER_GHOST
        # 26 neighbor boxes, exchanges overlap pairwise (13 rounds),
        # plus per-message latency.
        return 13 * path.latency + volume / path.bandwidth

    def step_time(self, n_procs: int) -> float:
        """Wall-clock seconds per MD step at ``n_procs`` processors."""
        if n_procs < 1:
            raise ConfigurationError(f"n_procs must be >= 1: {n_procs}")
        cluster = self._cluster_for(n_procs)
        node = cluster.nodes[0]
        return self.compute_time_per_step(node) + self.comm_time_per_step(n_procs)

    def total_atoms(self, n_procs: int) -> int:
        return self.atoms_per_proc * n_procs

    def efficiency(self, n_procs: int) -> float:
        """Weak-scaling efficiency vs one processor."""
        return self.step_time(1) / self.step_time(n_procs)

    def table5(self, proc_counts=(1, 4, 16, 64, 256, 1020, 2040),
               steps: int = 100) -> list[dict]:
        """Rows of Table 5: processors, particles, time per step."""
        rows = []
        for p in proc_counts:
            per_step = self.step_time(p)
            rows.append(
                {
                    "processors": p,
                    "particles": self.total_atoms(p),
                    "time_per_step": per_step,
                    "total_time": per_step * steps,
                    "efficiency": self.efficiency(p),
                }
            )
        return rows
