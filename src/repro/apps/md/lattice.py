"""Initial conditions: fcc lattice and Maxwell velocities.

Paper §3.3: "The simulation starts with atoms on a force cubic center
(fcc) lattice with randomized velocities at a given temperature."
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import make_rng

__all__ = ["fcc_lattice", "maxwell_velocities"]

#: The four basis atoms of the fcc unit cell (in cell units).
_FCC_BASIS = np.array(
    [
        [0.0, 0.0, 0.0],
        [0.5, 0.5, 0.0],
        [0.5, 0.0, 0.5],
        [0.0, 0.5, 0.5],
    ]
)


def fcc_lattice(cells: int, density: float = 0.8442) -> tuple[np.ndarray, float]:
    """Atoms on an fcc lattice.

    Parameters
    ----------
    cells:
        Unit cells per box edge; the box holds ``4 * cells**3`` atoms.
    density:
        Reduced number density (0.8442 is the classic LJ solid point).

    Returns
    -------
    (positions, box_length)
    """
    if cells < 1:
        raise ConfigurationError(f"cells must be >= 1: {cells}")
    if density <= 0:
        raise ConfigurationError(f"density must be positive: {density}")
    n_atoms = 4 * cells**3
    box = (n_atoms / density) ** (1.0 / 3.0)
    a = box / cells  # lattice constant
    ii, jj, kk = np.meshgrid(np.arange(cells), np.arange(cells), np.arange(cells),
                             indexing="ij")
    corners = np.stack([ii, jj, kk], axis=-1).reshape(-1, 1, 3).astype(float)
    positions = (corners + _FCC_BASIS[None, :, :]).reshape(-1, 3) * a
    return positions, box


def maxwell_velocities(
    n_atoms: int, temperature: float = 0.72, seed: int | None = None
) -> np.ndarray:
    """Maxwell-Boltzmann velocities with zero net momentum, rescaled
    to exactly the requested temperature (reduced units, mass = 1)."""
    if n_atoms < 1:
        raise ConfigurationError(f"n_atoms must be >= 1: {n_atoms}")
    if temperature < 0:
        raise ConfigurationError(f"temperature must be >= 0: {temperature}")
    if temperature == 0:
        return np.zeros((n_atoms, 3))
    rng = make_rng(seed)
    v = rng.standard_normal((n_atoms, 3)) * np.sqrt(temperature)
    v -= v.mean(axis=0)  # zero total momentum
    if n_atoms > 1:
        current = (v**2).sum() / (3.0 * n_atoms)
        if current > 0:
            v *= np.sqrt(temperature / current)
    return v
