"""Temperature control for equilibration (paper §3.3's "at a given
temperature").

The NVE simulation drifts from the lattice's initial temperature as
potential energy converts to kinetic during melting.  To *study* a
state point one first equilibrates with a thermostat, then releases to
NVE for measurement.  Implemented: velocity rescaling (exact) and the
Berendsen weak-coupling thermostat (gentler).
"""

from __future__ import annotations

import numpy as np

from repro.apps.md.simulation import MDSimulation
from repro.errors import ConfigurationError

__all__ = ["rescale_velocities", "berendsen_factor", "equilibrate"]


def rescale_velocities(
    velocities: np.ndarray, target_temperature: float
) -> np.ndarray:
    """Scale velocities to hit the target temperature exactly."""
    if target_temperature <= 0:
        raise ConfigurationError(
            f"target temperature must be positive: {target_temperature}"
        )
    n = len(velocities)
    current = float((velocities**2).sum()) / (3.0 * n)
    if current == 0:
        raise ConfigurationError("cannot rescale a frozen system")
    return velocities * np.sqrt(target_temperature / current)


def berendsen_factor(
    current: float, target: float, dt: float, tau: float
) -> float:
    """Berendsen scaling factor lambda = sqrt(1 + dt/tau (T0/T - 1))."""
    if current <= 0 or target <= 0:
        raise ConfigurationError("temperatures must be positive")
    if tau <= 0 or dt <= 0 or dt > tau:
        raise ConfigurationError(f"need 0 < dt <= tau, got dt={dt}, tau={tau}")
    return float(np.sqrt(1.0 + (dt / tau) * (target / current - 1.0)))


def equilibrate(
    sim: MDSimulation,
    target_temperature: float,
    steps: int = 100,
    method: str = "berendsen",
    tau: float = 0.1,
    rescale_every: int = 10,
) -> list[float]:
    """Equilibrate ``sim`` to the target temperature in place.

    Returns the temperature history.  ``method='rescale'`` hard-resets
    every ``rescale_every`` steps; ``'berendsen'`` weak-couples every
    step.
    """
    if method not in ("rescale", "berendsen"):
        raise ConfigurationError(f"unknown thermostat {method!r}")
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1: {steps}")
    history: list[float] = []
    for step in range(steps):
        sim.step(1)
        state = sim.state
        t = state.temperature
        if method == "rescale":
            if (step + 1) % rescale_every == 0:
                state.velocities = rescale_velocities(
                    state.velocities, target_temperature
                )
        else:
            lam = berendsen_factor(t, target_temperature, sim.dt, tau)
            state.velocities = state.velocities * lam
        history.append(state.temperature)
    return history
