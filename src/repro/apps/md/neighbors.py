"""Verlet neighbor lists with a skin radius.

The cell list in :mod:`repro.apps.md.cells` answers "who is near atom
i *right now*"; a Verlet list answers it for the next several steps.
Candidate pairs are gathered once within ``rcut + skin`` and reused
every step; the list is rebuilt only when some atom has moved more
than ``skin / 2`` since the build, which is exactly the condition
under which a pair could have crossed the ``rcut`` sphere without
being on the list (both partners approaching at ``skin / 2`` each).

Force evaluation over the list reproduces
:func:`repro.apps.md.forces.lj_forces_naive` *bit for bit*: candidate
pairs are kept in lexicographic ``(i, j)`` order with ``i < j``, so
after the cutoff mask the surviving pair stream — and therefore the
``np.add.at`` accumulation order and the energy summation order — is
identical to the reference's ``triu_indices`` stream.
"""

from __future__ import annotations

import numpy as np

from repro.apps.md.cells import CellList
from repro.apps.md.forces import _pair_forces
from repro.errors import ConfigurationError

__all__ = ["VerletList", "DEFAULT_SKIN"]

#: Default skin radius in reduced (sigma) units.  At the paper's
#: liquid state point (T*=0.72, rho*=0.8442, dt=0.004) atoms drift
#: ~0.006 sigma per step, so 0.3 amortizes one rebuild over roughly
#: 20-25 steps while keeping the candidate list only ~(1 + skin/rcut)^3
#: times the minimal one.  See docs/modeling.md for the trade-off.
DEFAULT_SKIN = 0.3


class VerletList:
    """Reusable candidate-pair list for short-range forces.

    Parameters
    ----------
    box:
        Periodic cubic box edge.
    rcut:
        Interaction cutoff radius.
    skin:
        Extra shell beyond ``rcut`` captured at build time.  Larger
        skins rebuild less often but evaluate more candidate pairs per
        step; ``0`` degenerates to a rebuild every step.

    Attributes
    ----------
    rebuilds:
        Number of times the pair list has been (re)built.
    n_pairs:
        Candidate pairs currently on the list.
    """

    def __init__(self, box: float, rcut: float, skin: float = DEFAULT_SKIN) -> None:
        if box <= 0 or rcut <= 0:
            raise ConfigurationError("box and rcut must be positive")
        if skin < 0:
            raise ConfigurationError(f"skin must be >= 0, got {skin}")
        self.box = box
        self.rcut = rcut
        self.skin = skin
        self.rebuilds = 0
        self._rows: np.ndarray | None = None
        self._cols: np.ndarray | None = None
        self._ref_positions: np.ndarray | None = None
        #: rebuild threshold: max displacement^2 allowed before a pair
        #: could have entered the cutoff sphere unseen.
        self._half_skin2 = (skin / 2.0) ** 2

    @property
    def n_pairs(self) -> int:
        return 0 if self._rows is None else len(self._rows)

    # -- building ------------------------------------------------------------

    def _candidate_pairs(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All ``i < j`` pairs within ``rcut + skin``, lexicographic."""
        n = len(positions)
        reach = self.rcut + self.skin
        if n < 2:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        if int(np.floor(self.box / reach)) >= 3:
            rows, cols = self._cell_pairs(positions, reach)
        else:
            # Small box: the 3x3x3 cell walk would double-visit
            # periodic images, so screen the dense triangle instead.
            iu = np.triu_indices(n, k=1)
            rows, cols = iu[0], iu[1]
        delta = positions[rows] - positions[cols]
        delta -= self.box * np.round(delta / self.box)
        r2 = (delta**2).sum(axis=-1)
        keep = r2 <= reach * reach
        return rows[keep], cols[keep]

    def _cell_pairs(self, positions: np.ndarray, reach: float) -> tuple[np.ndarray, np.ndarray]:
        """Candidate pairs from a cell walk, normalized to ``i < j``
        and sorted lexicographically (the bit-identity requirement)."""
        cl = CellList(positions, self.box, reach)
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        visited: set[tuple[int, int]] = set()
        for cell in range(cl.n_cells**3):
            atoms_a = cl.atoms_in(cell)
            if len(atoms_a) == 0:
                continue
            for ncell in cl.neighbor_cells(cell):
                key = (min(cell, ncell), max(cell, ncell))
                if key in visited:
                    continue
                visited.add(key)
                atoms_b = cl.atoms_in(ncell)
                if len(atoms_b) == 0:
                    continue
                if cell == ncell:
                    if len(atoms_a) < 2:
                        continue
                    ia, ib = np.triu_indices(len(atoms_a), k=1)
                    a, b = atoms_a[ia], atoms_a[ib]
                else:
                    a = np.repeat(atoms_a, len(atoms_b))
                    b = np.tile(atoms_b, len(atoms_a))
                row_parts.append(np.minimum(a, b))
                col_parts.append(np.maximum(a, b))
        if not row_parts:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)
        order = np.lexsort((cols, rows))
        return rows[order], cols[order]

    # -- stepping ------------------------------------------------------------

    def update(self, positions: np.ndarray) -> bool:
        """Ensure the list is valid for ``positions``; returns whether
        it was rebuilt.

        The list stays valid while every atom's minimum-image
        displacement since the build is below ``skin / 2`` (positions
        may be wrapped by the integrator, hence minimum image).
        """
        if self._ref_positions is not None:
            disp = positions - self._ref_positions
            disp -= self.box * np.round(disp / self.box)
            if float((disp**2).sum(axis=-1).max()) <= self._half_skin2:
                return False
        self._rows, self._cols = self._candidate_pairs(positions)
        self._ref_positions = positions.copy()
        self.rebuilds += 1
        return True

    def compute(self, positions: np.ndarray) -> tuple[np.ndarray, float]:
        """LJ forces and potential energy over the (current) list.

        Callers step via ``update(x); compute(x)``.  The result is
        bit-identical to ``lj_forces_naive(x, box, rcut)`` whenever
        the list is valid for ``x``.
        """
        rows, cols = self._rows, self._cols
        if rows is None:
            raise ConfigurationError("call update() before compute()")
        forces = np.zeros_like(positions)
        if len(rows) == 0:
            return forces, 0.0
        delta = positions[rows] - positions[cols]
        delta -= self.box * np.round(delta / self.box)
        r2 = (delta**2).sum(axis=-1)
        mask = r2 <= self.rcut * self.rcut
        in_rows, in_cols = rows[mask], cols[mask]
        fvec, energy = _pair_forces(delta[mask], r2[mask])
        np.add.at(forces, in_rows, fvec)
        np.add.at(forces, in_cols, -fvec)
        return forces, float(energy.sum())

    def forces(self, positions: np.ndarray) -> tuple[np.ndarray, float]:
        """Convenience: ``update`` then ``compute`` in one call (the
        integrator's force-function shape)."""
        self.update(positions)
        return self.compute(positions)
