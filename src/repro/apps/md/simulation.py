"""The MD simulation driver (real execution).

Holds state, steps the system with Velocity Verlet, and tracks the
conserved quantities tests verify: total energy (NVE drift), linear
momentum, and temperature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.md.forces import DEFAULT_RCUT, lj_forces
from repro.apps.md.integrator import velocity_verlet_step
from repro.apps.md.lattice import fcc_lattice, maxwell_velocities
from repro.apps.md.neighbors import DEFAULT_SKIN, VerletList
from repro.errors import ConfigurationError

__all__ = ["MDState", "MDSimulation"]


@dataclass
class MDState:
    """Instantaneous state of the system."""

    positions: np.ndarray
    velocities: np.ndarray
    forces: np.ndarray
    potential_energy: float
    box: float

    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    @property
    def kinetic_energy(self) -> float:
        return float(0.5 * (self.velocities**2).sum())

    @property
    def total_energy(self) -> float:
        return self.kinetic_energy + self.potential_energy

    @property
    def temperature(self) -> float:
        """Instantaneous reduced temperature (mass = kB = 1)."""
        return 2.0 * self.kinetic_energy / (3.0 * self.n_atoms)

    @property
    def momentum(self) -> np.ndarray:
        return self.velocities.sum(axis=0)


class MDSimulation:
    """A Lennard-Jones NVE simulation on an fcc start (paper §3.3)."""

    def __init__(
        self,
        cells: int = 3,
        density: float = 0.8442,
        temperature: float = 0.72,
        rcut: float | None = None,
        dt: float = 0.004,
        seed: int | None = None,
        record_trajectory: bool = False,
        skin: float = DEFAULT_SKIN,
    ) -> None:
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive: {dt}")
        positions, box = fcc_lattice(cells, density)
        # The paper's cutoff is 5.0; in small test boxes the minimum-
        # image convention caps the usable cutoff at half the box.
        self.rcut = min(DEFAULT_RCUT if rcut is None else rcut, box / 2.0)
        self.dt = dt
        velocities = maxwell_velocities(len(positions), temperature, seed)
        #: Verlet neighbor list reused across steps; bit-identical to
        #: the all-pairs reference path while valid (see neighbors.py).
        self.neighbors = VerletList(box, self.rcut, skin=skin)
        forces, potential = self.neighbors.forces(positions)
        self.state = MDState(positions, velocities, forces, potential, box)
        self.energy_history: list[float] = [self.state.total_energy]
        self.temperature_history: list[float] = [self.state.temperature]
        #: Unwrapped positions per frame (for MSD/transport analysis;
        #: §3.3's "studying their trajectories as a function of time").
        self.record_trajectory = record_trajectory
        self._unwrapped = positions.copy()
        self.trajectory: list = [positions.copy()] if record_trajectory else []

    def step(self, n: int = 1) -> MDState:
        """Advance ``n`` Velocity Verlet steps."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        import numpy as np

        s = self.state
        for _ in range(n):
            old_positions = s.positions
            pos, vel, frc, pot = velocity_verlet_step(
                s.positions, s.velocities, s.forces, self.dt,
                self.neighbors.forces, s.box,
            )
            if self.record_trajectory:
                # Unwrap: the true displacement is the minimum-image
                # difference of the wrapped positions.
                disp = pos - old_positions
                disp -= s.box * np.round(disp / s.box)
                self._unwrapped = self._unwrapped + disp
                self.trajectory.append(self._unwrapped.copy())
            s = MDState(pos, vel, frc, pot, s.box)
            self.energy_history.append(s.total_energy)
            self.temperature_history.append(s.temperature)
        self.state = s
        return s

    def trajectory_array(self):
        """The recorded unwrapped trajectory as (frames, atoms, 3)."""
        import numpy as np

        if not self.record_trajectory:
            raise ConfigurationError(
                "construct with record_trajectory=True to analyze motion"
            )
        return np.asarray(self.trajectory)

    def energy_drift(self) -> float:
        """Relative NVE energy drift over the run so far."""
        e = np.asarray(self.energy_history)
        return float(abs(e[-1] - e[0]) / max(1e-12, abs(e[0])))
