"""Velocity Verlet integration.

Paper §3.3: "a sophisticated integrator designed to further improve
the velocity evaluations ... The Velocity Verlet algorithm provides
both the atomic positions and velocities at the same instant of time,
and therefore is regarded as the most complete form of the Verlet
algorithm."
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["velocity_verlet_step"]

ForceFn = Callable[[np.ndarray], tuple[np.ndarray, float]]


def velocity_verlet_step(
    positions: np.ndarray,
    velocities: np.ndarray,
    forces: np.ndarray,
    dt: float,
    force_fn: ForceFn,
    box: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """One Velocity Verlet step (mass = 1, reduced units).

    v(t+dt/2) = v(t) + dt/2 f(t)
    x(t+dt)   = x(t) + dt v(t+dt/2)          (wrapped into the box)
    f(t+dt)   = force(x(t+dt))
    v(t+dt)   = v(t+dt/2) + dt/2 f(t+dt)

    Returns (positions, velocities, forces, potential_energy) at t+dt.
    """
    if dt <= 0:
        raise ConfigurationError(f"dt must be positive: {dt}")
    half = velocities + 0.5 * dt * forces
    new_positions = np.mod(positions + dt * half, box)
    new_forces, potential = force_fn(new_positions)
    new_velocities = half + 0.5 * dt * new_forces
    return new_positions, new_velocities, new_forces, potential
