"""Spatial decomposition (paper §3.3).

"To parallelize the algorithm, we use a spatial decomposition method,
in which the physical domain is subdivided into small three-dimensional
boxes, one for each processor. ... a processor needs to know the
locations of atoms only in nearby boxes; thus, communication is
entirely local."

``decompose`` splits atoms into a 3D grid of sub-boxes; ``ghost_atoms``
returns the shell of remote atoms (within the cutoff of a sub-box's
faces) each processor must import.  ``decomposed_forces`` verifies the
decomposition: forces computed per-subdomain with ghosts must equal
the global computation (tested invariant).
"""

from __future__ import annotations

import numpy as np

from repro.apps.md.forces import lj_forces_naive
from repro.errors import ConfigurationError

__all__ = ["decompose", "ghost_atoms", "decomposed_forces", "owner_of"]


def owner_of(positions: np.ndarray, box: float, grid: tuple[int, int, int]) -> np.ndarray:
    """Sub-box index (flat) owning each atom."""
    gx, gy, gz = grid
    if min(grid) < 1:
        raise ConfigurationError(f"bad decomposition grid {grid}")
    wrapped = np.mod(positions, box)
    ix = np.minimum((wrapped[:, 0] / box * gx).astype(int), gx - 1)
    iy = np.minimum((wrapped[:, 1] / box * gy).astype(int), gy - 1)
    iz = np.minimum((wrapped[:, 2] / box * gz).astype(int), gz - 1)
    return ix * gy * gz + iy * gz + iz


def decompose(
    positions: np.ndarray, box: float, grid: tuple[int, int, int]
) -> list[np.ndarray]:
    """Atom indices per sub-box, flat-order."""
    owners = owner_of(positions, box, grid)
    n_domains = grid[0] * grid[1] * grid[2]
    return [np.where(owners == d)[0] for d in range(n_domains)]


def _domain_bounds(d: int, box: float, grid: tuple[int, int, int]):
    gx, gy, gz = grid
    ix, iy, iz = d // (gy * gz), (d // gz) % gy, d % gz
    lo = np.array([ix * box / gx, iy * box / gy, iz * box / gz])
    hi = lo + np.array([box / gx, box / gy, box / gz])
    return lo, hi


def ghost_atoms(
    positions: np.ndarray,
    box: float,
    grid: tuple[int, int, int],
    domain: int,
    rcut: float,
) -> np.ndarray:
    """Indices of atoms outside ``domain`` but within ``rcut`` of its
    boundary (periodic) — the neighbor-box shell a processor imports."""
    owners = owner_of(positions, box, grid)
    lo, hi = _domain_bounds(domain, box, grid)
    outside = np.where(owners != domain)[0]
    if len(outside) == 0:
        return outside
    pos = np.mod(positions[outside], box)
    # Periodic distance from each point to the box [lo, hi]: per axis,
    # zero inside the interval, else the shorter way round the circle
    # to either end.
    dist2 = np.zeros(len(outside))
    for axis in range(3):
        x = pos[:, axis]
        inside = (x >= lo[axis]) & (x <= hi[axis])
        d_axis = np.where(
            inside,
            0.0,
            np.minimum((lo[axis] - x) % box, (x - hi[axis]) % box),
        )
        dist2 += d_axis**2
    return outside[np.sqrt(dist2) <= rcut]


def decomposed_forces(
    positions: np.ndarray,
    box: float,
    grid: tuple[int, int, int],
    rcut: float,
) -> np.ndarray:
    """Forces computed independently per sub-domain with ghost shells.

    Each domain evaluates LJ interactions among (own + ghost) atoms
    and keeps the force rows of its own atoms — the spatial-
    decomposition algorithm executed sequentially.  Must match the
    global all-pairs forces exactly (tested).
    """
    n_domains = grid[0] * grid[1] * grid[2]
    owned = decompose(positions, box, grid)
    forces = np.zeros_like(positions)
    for d in range(n_domains):
        own = owned[d]
        if len(own) == 0:
            continue
        ghosts = ghost_atoms(positions, box, grid, d, rcut)
        local = np.concatenate([own, ghosts])
        f_local, _ = lj_forces_naive(positions[local], box, rcut)
        forces[own] = f_local[: len(own)]
    return forces
