"""Bulk-property extraction from MD trajectories (paper §3.3).

"After integrating for some time when sufficient information on the
motion of the individual atoms has been collected, one uses
statistical methods to deduce the bulk properties of the material.
These properties may include the structure, thermodynamics, and
transport properties."

Implemented here:

* :func:`radial_distribution` — g(r), the structural fingerprint (an
  fcc solid shows sharp shells, a liquid broad ones);
* :func:`mean_squared_displacement` — MSD(t), whose slope gives the
  diffusion coefficient (transport);
* :func:`velocity_autocorrelation` — VACF(t), the other route to
  transport coefficients;
* :func:`pressure_virial` — instantaneous virial pressure
  (thermodynamics).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "radial_distribution",
    "mean_squared_displacement",
    "diffusion_coefficient",
    "velocity_autocorrelation",
    "pressure_virial",
]


def radial_distribution(
    positions: np.ndarray, box: float, n_bins: int = 50,
    r_max: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pair distribution function g(r) with minimum-image distances.

    Returns ``(r_centers, g)``; for an ideal gas g == 1 everywhere,
    for an fcc solid g spikes at the shell radii.
    """
    n = len(positions)
    if n < 2:
        raise ConfigurationError("g(r) needs at least two atoms")
    if n_bins < 2:
        raise ConfigurationError(f"need >= 2 bins, got {n_bins}")
    r_max = r_max if r_max is not None else box / 2.0
    if not 0 < r_max <= box / 2.0 + 1e-12:
        raise ConfigurationError(
            f"r_max must be in (0, box/2], got {r_max} with box {box}"
        )
    delta = positions[:, None, :] - positions[None, :, :]
    delta -= box * np.round(delta / box)
    r = np.sqrt((delta**2).sum(-1))
    iu = np.triu_indices(n, k=1)
    dists = r[iu]
    dists = dists[dists < r_max]
    counts, edges = np.histogram(dists, bins=n_bins, range=(0.0, r_max))
    centers = 0.5 * (edges[:-1] + edges[1:])
    # Normalize by the ideal-gas shell population.
    density = n / box**3
    shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    ideal = density * shell_volumes * n / 2.0
    g = np.where(ideal > 0, counts / ideal, 0.0)
    return centers, g


def mean_squared_displacement(trajectory: np.ndarray) -> np.ndarray:
    """MSD(t) from an unwrapped trajectory of shape (frames, atoms, 3).

    MSD(k) averages |x(t0+k) - x(t0)|^2 over atoms and time origins.
    """
    traj = np.asarray(trajectory, dtype=float)
    if traj.ndim != 3 or traj.shape[2] != 3:
        raise ConfigurationError(
            f"trajectory must be (frames, atoms, 3): {traj.shape}"
        )
    frames = traj.shape[0]
    if frames < 2:
        raise ConfigurationError("need at least two frames")
    msd = np.zeros(frames)
    for lag in range(1, frames):
        disp = traj[lag:] - traj[:-lag]
        msd[lag] = float((disp**2).sum(-1).mean())
    return msd


def diffusion_coefficient(msd: np.ndarray, dt: float,
                          fit_fraction: float = 0.5) -> float:
    """Einstein relation: D = slope(MSD) / 6 from the late-time tail."""
    if dt <= 0:
        raise ConfigurationError(f"dt must be positive: {dt}")
    if not 0 < fit_fraction <= 1:
        raise ConfigurationError(f"bad fit fraction {fit_fraction}")
    n = len(msd)
    if n < 4:
        raise ConfigurationError("MSD too short to fit")
    start = max(1, int(n * (1 - fit_fraction)))
    times = np.arange(n) * dt
    slope = np.polyfit(times[start:], msd[start:], 1)[0]
    return float(slope / 6.0)


def velocity_autocorrelation(velocities: np.ndarray) -> np.ndarray:
    """Normalized VACF(t) from (frames, atoms, 3) velocity history."""
    v = np.asarray(velocities, dtype=float)
    if v.ndim != 3 or v.shape[2] != 3:
        raise ConfigurationError(f"velocities must be (frames, atoms, 3): {v.shape}")
    frames = v.shape[0]
    if frames < 2:
        raise ConfigurationError("need at least two frames")
    c0 = float((v[0] * v[0]).sum(-1).mean())
    if c0 == 0:
        raise ConfigurationError("zero initial kinetic energy")
    out = np.empty(frames)
    for lag in range(frames):
        out[lag] = float((v[0] * v[lag]).sum(-1).mean()) / c0
    return out


def pressure_virial(
    positions: np.ndarray, velocities: np.ndarray, box: float, rcut: float
) -> float:
    """Instantaneous virial pressure P = (N kT + W/3) / V with
    W = sum r_ij . f_ij over pairs (reduced units, mass = kB = 1)."""
    from repro.apps.md.forces import _pair_forces

    n = len(positions)
    if n < 2:
        raise ConfigurationError("pressure needs at least two atoms")
    delta = positions[:, None, :] - positions[None, :, :]
    delta -= box * np.round(delta / box)
    r2 = (delta**2).sum(-1)
    iu = np.triu_indices(n, k=1)
    mask = r2[iu] <= rcut * rcut
    rows, cols = iu[0][mask], iu[1][mask]
    fvec, _ = _pair_forces(delta[rows, cols], r2[iu][mask])
    virial = float((delta[rows, cols] * fvec).sum())
    kinetic = float((velocities**2).sum())  # 2 x KE = N 3 kT
    volume = box**3
    return (kinetic + virial) / (3.0 * volume)
