"""INS3D turbopump performance model (paper §3.4, §4.1.3, Table 2).

INS3D runs under MLP: coarse-grain parallelism from forked process
groups sharing a memory arena, fine-grain from OpenMP threads inside
each group.  The model composes:

* the measured single-group, single-thread baseline per physical time
  step (Table 2's first row: 39,230 s on the 3700, 26,430 s on the
  BX2b — the paper's own calibration runs; 720 such steps complete one
  inducer rotation);
* group-level load imbalance from actually bin-packing the 267-block
  turbopump grid system into MLP groups, plus a fixed MLP/arena
  overhead;
* Amdahl thread scaling.  Fitting Table 2's 3700 column gives an
  OpenMP-parallel fraction of ~0.72 (e.g. 1223/554.2 = 2.21x at 4
  threads vs the Amdahl prediction 2.17x), and ~0.75 on the BX2b —
  the NUMAlink4 fabric feeds threads a little better.  Scaling
  "begins to decay as the number of threads increases beyond eight"
  falls out of the same curve;
* the §4.1.3 caution that adding MLP groups (unlike threads) can
  deteriorate convergence: exposed as :meth:`convergence_factor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

from repro.apps.overset.grids import OversetSystem, turbopump_system
from repro.apps.overset.grouping import group_blocks
from repro.errors import ConfigurationError
from repro.machine.compilers import Compiler, compiler_factor
from repro.machine.node import NodeType

__all__ = ["INS3DModel", "SERIAL_STEP_SECONDS"]

#: Table 2, first row: baseline runtime of one physical time step with
#: one MLP group and one OpenMP thread.
SERIAL_STEP_SECONDS: dict[NodeType, float] = {
    NodeType.A3700: 39230.0,
    NodeType.BX2B: 26430.0,
    # Not in Table 2; same processor as the 3700, so the same compute
    # baseline (INS3D's serial step does not exercise the fabric).
    NodeType.BX2A: 39230.0,
}

#: Amdahl OpenMP-parallel fraction, fitted to Table 2 (see module doc).
OMP_PARALLEL_FRACTION: dict[NodeType, float] = {
    NodeType.A3700: 0.72,
    NodeType.BX2A: 0.74,
    NodeType.BX2B: 0.75,
}

#: MLP bookkeeping + arena boundary archiving, as a multiplier on the
#: per-group compute (calibrated so 36x1 on the 3700 gives ~1223 s:
#: 39230/36 x imbalance x overhead).
MLP_OVERHEAD = 1.10


@dataclass
class INS3DModel:
    """Per-iteration timing of the INS3D turbopump case."""

    node_type: NodeType = NodeType.BX2B
    compiler: Compiler = Compiler.V7_1
    system: OversetSystem = field(default_factory=turbopump_system)

    def __post_init__(self) -> None:
        if self.node_type not in SERIAL_STEP_SECONDS:
            raise ConfigurationError(f"no INS3D baseline for {self.node_type}")
        self._imbalance_cache: dict[int, float] = {}

    @property
    def serial_step(self) -> float:
        """One-group one-thread physical-step time (Table 2 row 1)."""
        return SERIAL_STEP_SECONDS[self.node_type]

    def group_imbalance(self, groups: int) -> float:
        """max/mean group load from bin-packing the 267 zones."""
        if groups < 1:
            raise ConfigurationError(f"groups must be >= 1: {groups}")
        if groups == 1:
            return 1.0
        if groups not in self._imbalance_cache:
            self._imbalance_cache[groups] = group_blocks(
                self.system, groups, strategy="binpack"
            ).imbalance
        return self._imbalance_cache[groups]

    def step_time(self, groups: int, threads: int) -> float:
        """Average runtime per physical time step (Table 2's body)."""
        if groups < 1 or threads < 1:
            raise ConfigurationError(
                f"groups and threads must be >= 1: {groups}x{threads}"
            )
        if groups * threads > 512:
            raise ConfigurationError(
                f"{groups}x{threads} exceeds one 512-CPU Altix node"
            )
        f = OMP_PARALLEL_FRACTION[self.node_type]
        amdahl = (1.0 - f) + f / threads
        cf = compiler_factor(self.compiler, "ins3d", groups * threads)
        per_group = self.serial_step / groups * self.group_imbalance(groups)
        # Fork/arena bookkeeping only exists once there are groups to
        # coordinate; the 1x1 layout IS the measured baseline.
        overhead = MLP_OVERHEAD if groups > 1 else 1.0
        return per_group * overhead * amdahl / cf

    def thread_speedup(self, threads: int) -> float:
        """Speedup of adding OpenMP threads at fixed groups."""
        return self.step_time(36, 1) / self.step_time(36, threads)

    def convergence_factor(self, groups: int, reference_groups: int = 36) -> float:
        """Relative number of iterations to converge.

        §4.1.3: "varying the number of MLP groups may deteriorate
        convergence.  This will lead to more iterations even though
        faster runtime per iteration is achieved" — because more
        groups weaken the implicit coupling across group boundaries.
        Threads never change convergence (factor is thread-free).
        """
        if groups < 1:
            raise ConfigurationError(f"groups must be >= 1: {groups}")
        if groups <= reference_groups:
            return 1.0
        return 1.0 + 0.08 * math.log2(groups / reference_groups)

    def time_to_solution(self, groups: int, threads: int, steps: int = 720) -> float:
        """Wall time for ``steps`` physical steps (720 = one inducer
        rotation, §4.1.3), including the convergence deterioration
        from aggressive grouping."""
        return self.step_time(groups, threads) * steps * self.convergence_factor(groups)
