"""Multinode INS3D — the paper's §5 future work, built out.

"For the final version of this paper ... we want to complete the
multinode version of INS3D to use it for testing."  The single-node
INS3D runs MLP (forked groups + shared arena); crossing node
boundaries needs a hybrid: MLP groups inside each node, MPI between
nodes for the overset boundary archive (the arena cannot span boxes —
and over InfiniBand only MPI is available at all, §2).

The model composes the calibrated single-node INS3D pieces with the
machine's inter-node fabric:

* zones are first partitioned across nodes (one bin-packing level),
  then across each node's MLP groups (a second level);
* per step, the cross-node share of the overset boundary archive
  moves over NUMAlink4 or InfiniBand instead of the shared arena.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.apps.ins3d import (
    MLP_OVERHEAD,
    OMP_PARALLEL_FRACTION,
    SERIAL_STEP_SECONDS,
)
from repro.apps.overset.grids import OversetSystem, turbopump_system
from repro.apps.overset.grouping import group_blocks
from repro.errors import CommunicationError, ConfigurationError
from repro.machine.cluster import Cluster, multinode
from repro.machine.node import NodeType

__all__ = ["INS3DMultinodeModel"]

#: Boundary-archive bytes per zone surface point per step (all flow
#: variables, both directions of the interpolation update).
BOUNDARY_BYTES_PER_POINT = 2 * 5 * 8

#: Effective fraction of fabric bandwidth the archive exchange
#: sustains (pack/unpack of interpolation fringes).
EXCHANGE_EFF = 0.35


@dataclass
class INS3DMultinodeModel:
    """Per-step timing of INS3D across NUMAlink4/InfiniBand nodes."""

    cluster: Cluster = field(default_factory=lambda: multinode(4, fabric="numalink4"))
    system: OversetSystem = field(default_factory=turbopump_system)

    def __post_init__(self) -> None:
        for node in self.cluster.nodes:
            if node.node_type is not NodeType.BX2B:
                raise ConfigurationError(
                    "the multinode INS3D study targets the BX2b capability "
                    "subsystem (paper §2)"
                )

    @property
    def n_nodes(self) -> int:
        return len(self.cluster.nodes)

    def _check_fabric(self, groups_per_node: int) -> None:
        if self.n_nodes > 1 and self.cluster.fabric == "infiniband":
            # MPI-over-IB is fine; but each group is one MPI process,
            # so the §2 connection limit applies to groups.
            self.cluster.infiniband.check_pure_mpi(self.n_nodes, groups_per_node)

    def step_time(self, groups_per_node: int, threads: int) -> float:
        """Average runtime per physical step for the hybrid layout."""
        if groups_per_node < 1 or threads < 1:
            raise ConfigurationError(
                f"bad layout: {groups_per_node} groups/node x {threads} threads"
            )
        if groups_per_node * threads > self.cluster.cpus_per_node:
            raise ConfigurationError(
                f"{groups_per_node}x{threads} exceeds a "
                f"{self.cluster.cpus_per_node}-CPU node"
            )
        self._check_fabric(groups_per_node)
        total_groups = groups_per_node * self.n_nodes
        if total_groups > self.system.n_blocks:
            raise ConfigurationError(
                f"{total_groups} groups exceed {self.system.n_blocks} zones"
            )
        # Two-level partition: zones -> nodes -> groups.
        node_assignment = group_blocks(self.system, max(1, self.n_nodes), "binpack")
        imbalance = group_blocks(self.system, total_groups, "binpack").imbalance
        f = OMP_PARALLEL_FRACTION[NodeType.BX2B]
        amdahl = (1.0 - f) + f / threads
        serial = SERIAL_STEP_SECONDS[NodeType.BX2B]
        compute = (
            serial / total_groups * imbalance
            * (MLP_OVERHEAD if total_groups > 1 else 1.0)
            * amdahl
        )
        return compute + self._exchange_time(node_assignment)

    def _exchange_time(self, node_assignment) -> float:
        """Cross-node boundary-archive exchange per step."""
        if self.n_nodes == 1:
            return 0.0
        # The archive share crossing node boundaries ~ the fraction of
        # zone surface in zones whose overlap partners live elsewhere;
        # with bin-packed nodes approximate by the random-pair bound.
        cross_fraction = 1.0 - 1.0 / self.n_nodes
        cross_bytes = (
            self.system.total_surface_points
            * BOUNDARY_BYTES_PER_POINT
            * cross_fraction
            * 0.5  # connectivity-aware node packing keeps half local
        )
        per_node = cross_bytes / self.n_nodes
        if self.cluster.fabric == "infiniband":
            lat, bw = self.cluster.infiniband.point_to_point(self.n_nodes)
            channels = self.cluster.infiniband.cards_per_node
        else:
            from repro.netmodel.contention import NUMALINK4_UPLINKS_PER_NODE

            lat, bw = self.cluster.nodes[0].interconnect.point_to_point(
                0, internode=True
            )
            channels = NUMALINK4_UPLINKS_PER_NODE
        effective = bw * channels * EXCHANGE_EFF
        messages = self.n_nodes - 1
        return per_node / effective + messages * lat

    def best_layout(self, cpus_per_node: int = 508) -> tuple[int, int, float]:
        """(groups_per_node, threads, step_time) minimizing step time
        with at most ``cpus_per_node`` CPUs used per node."""
        best: tuple[int, int, float] | None = None
        for threads in (1, 2, 4, 8):
            groups = cpus_per_node // threads
            if groups < 1:
                continue
            try:
                t = self.step_time(groups, threads)
            except (ConfigurationError, CommunicationError):
                continue
            if best is None or t < best[2]:
                best = (groups, threads, t)
        if best is None:
            raise ConfigurationError("no feasible multinode INS3D layout")
        return best
