"""OVERFLOW-D rotor-wake performance model (paper §3.5, §4.1.4, §4.6.4).

The hybrid MPI+OpenMP OVERFLOW-D groups the 1679 rotor-system blocks
with the bin-packing grouping, assigns one group per MPI process, and
exchanges inter-group boundary data with asynchronous MPI every step
("an all-to-all communication pattern every time step").

Model components (constants calibrated to §4.1.4's efficiency
sentences — see ``repro.core.calibration``):

* **compute** — per-point flop cost plus a block-sweep memory term:
  the mean block's working set (~7 MB) sits *between* the 6 MB and
  9 MB L3 sizes, which is precisely why "the reduction in the BX2b
  computation time can be attributed to its larger L3 cache";
* **imbalance** — max/mean group load from actually grouping the
  synthetic rotor system; with 508 processes and only 1679 blocks the
  heavy size tail defeats any grouping (§4.1.4);
* **threads** — the grid-loop OpenMP threading is bandwidth-hungry, so
  thread efficiency is fabric-dependent: useful on NUMAlink4, nearly
  useless on the 3700.  Table 3's "best combination of processes and
  threads" therefore lands on hybrid layouts on the BX2b and pure MPI
  on the 3700;
* **communication** — fringe gather/scatter transfers over the loaded
  fabric plus a per-partner progress/poll term that grows with the
  process count (the §4.1.4 "insufficient computational work per
  processor ... compared to the communication overhead").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.apps.overset.grids import OversetSystem, rotor_system
from repro.apps.overset.grouping import group_blocks
from repro.errors import ConfigurationError
from repro.machine.cache import miss_fraction
from repro.machine.cluster import Cluster, single_node
from repro.machine.compilers import Compiler, compiler_factor
from repro.machine.node import NodeType
from repro.machine.placement import Placement
from repro.netmodel.contention import cross_node_flow_factor

__all__ = ["OverflowModel", "StepTime", "overflow_thread_efficiency"]

#: Flop per grid point per time step (implicit RHS + LU-SGS sweeps).
FLOPS_PER_POINT = 5000.0
#: Sustained fraction of peak for the flop part.
COMPUTE_EFF = 0.10
#: DRAM bytes per point per step charged at the block-sweep miss rate.
TRAFFIC_PER_POINT = 30_000.0
#: Working-set bytes per point of a block sweep (q, rhs, metrics,
#: solver workspace) — puts the mean block's window at ~7 MB.
WS_PER_POINT = 160.0
#: Fringe data per surface point per exchange (5 variables, 2 layers).
BOUNDARY_BYTES_PER_POINT = 5 * 8 * 2
#: Fringe exchanges per physical step (dual-time sub-iterations x
#: both transfer directions).
EXCHANGES_PER_STEP = 60
#: Efficiency of fringe gather/scatter relative to streaming fabric
#: bandwidth (irregular per-point interpolation traffic).
FRINGE_EFF = 0.13
#: Per-partner progress/polling cost, expressed as equivalent bytes
#: through the loaded fabric (MPI_Waitall over p async requests).
POLL_BYTES_PER_PARTNER = 4.0e6
#: Fraction of compute behind which InfiniBand's offloaded RDMA
#: transfers can hide (OVERFLOW-D posts asynchronous sends, §3.5).
IB_OVERLAP_FRACTION = 0.1
#: Fraction of the offloaded transfer the IB comm *timer* still sees.
IB_TIMER_FRACTION = 0.3
#: CPU cycles the InfiniBand MPI progress engine steals from
#: computation on multi-node runs — the source of Table 6's ~10%
#: NUMAlink4 advantage in *total* execution time.
IB_PROGRESS_OVERHEAD = 0.12


def overflow_thread_efficiency(node, threads: int) -> float:
    """Grid-loop OpenMP efficiency, fabric dependent.

    The multi-threaded grid loop streams whole blocks through the
    NUMAlink; on NUMAlink4 two threads run at ~80% efficiency, on the
    3700's NUMAlink3 threads are hardly worth their CPUs — which is
    why the 3700's best Table 3 combinations are pure MPI.
    """
    if threads < 1:
        raise ConfigurationError(f"threads must be >= 1: {threads}")
    if threads == 1:
        return 1.0
    base = 0.80 if node.interconnect.plane_factor >= 1.0 else 0.45
    return base ** math.log2(threads)


@dataclass(frozen=True)
class StepTime:
    """Per-step timing, Table 3/6 style."""

    comm: float
    exec: float  # total execution time per step (includes comm)
    ranks: int
    threads: int

    @property
    def compute(self) -> float:
        return self.exec - self.comm


@dataclass
class OverflowModel:
    """Per-time-step timing of the OVERFLOW-D rotor case."""

    cluster: Cluster = field(default_factory=lambda: single_node(NodeType.BX2B))
    compiler: Compiler = Compiler.V8_1  # Tables 3/6 use the 8.1 compiler
    system: OversetSystem = field(default_factory=rotor_system)
    #: Compute the remote boundary fraction from the actual overlap
    #: graph (exact halo accounting) instead of the calibrated closed
    #: form.  Slower and, on the synthetic geometry, more pessimistic
    #: (see ``repro.apps.overset.halo``).
    exact_halos: bool = False

    def __post_init__(self) -> None:
        self._group_cache: dict[int, object] = {}
        self._overlaps = None
        self._halo_cache: dict[int, float] = {}

    def _remote_fraction(self, ranks: int) -> float:
        if not self.exact_halos:
            blocks_per_group = self.system.n_blocks / ranks
            return min(1.0, 1.35 / blocks_per_group)
        if ranks not in self._halo_cache:
            from repro.apps.overset.connectivity import find_overlaps
            from repro.apps.overset.halo import halo_volumes

            if self._overlaps is None:
                self._overlaps = find_overlaps(self.system)
            volumes = halo_volumes(self.system, self._grouping(ranks), self._overlaps)
            self._halo_cache[ranks] = volumes.remote_fraction
        return self._halo_cache[ranks]

    # -- pieces -----------------------------------------------------------------

    def _grouping(self, n_groups: int):
        if n_groups not in self._group_cache:
            self._group_cache[n_groups] = group_blocks(
                self.system, n_groups, strategy="binpack"
            )
        return self._group_cache[n_groups]

    def per_point_time(self, node) -> float:
        """Seconds per grid point per step on one CPU."""
        cf = compiler_factor(self.compiler, "overflow", self.cluster.total_cpus)
        flop_term = FLOPS_PER_POINT / (node.processor.peak_flops * COMPUTE_EFF * cf)
        mean_block = self.system.total_points / self.system.n_blocks
        ws = WS_PER_POINT * mean_block
        miss = miss_fraction(ws, node.processor.l3_bytes)
        mem_term = TRAFFIC_PER_POINT * miss / node.fsb.per_cpu_bandwidth(2)
        return flop_term + mem_term

    def serial_step_time(self) -> float:
        """Single-CPU per-step baseline (for efficiency accounting)."""
        return self.system.total_points * self.per_point_time(self.cluster.nodes[0])

    def step_time(self, ranks: int, threads: int = 1,
                  spread_nodes: bool | None = None) -> StepTime:
        """Per-step comm and total execution time for one layout."""
        if ranks < 1 or threads < 1:
            raise ConfigurationError(f"bad layout {ranks}x{threads}")
        if ranks > self.system.n_blocks:
            raise ConfigurationError(
                f"{ranks} MPI processes exceed {self.system.n_blocks} blocks"
            )
        if spread_nodes is None:
            spread_nodes = len(self.cluster.nodes) > 1
        placement = Placement(
            self.cluster, n_ranks=ranks, threads_per_rank=threads,
            spread_nodes=spread_nodes,
        )
        node = self.cluster.nodes[0]
        grouping = self._grouping(ranks)
        compute = (
            grouping.max_load
            * self.per_point_time(node)
            / (threads * overflow_thread_efficiency(node, threads))
            * placement.boot_cpuset_penalty()
            * placement.locality_penalty()
        )
        if self.cluster.fabric == "infiniband" and placement.n_nodes_used() > 1:
            compute *= 1.0 + IB_PROGRESS_OVERHEAD
        comm, exec_extra = self._comm_time(placement, compute)
        return StepTime(
            comm=comm, exec=compute + exec_extra, ranks=ranks, threads=threads
        )

    def _comm_time(self, placement: Placement, compute: float) -> tuple[float, float]:
        """(reported comm time, comm time added to execution).

        On NUMAlink, MPT sends are inline shared-memory copies: the
        comm timer sees the full transfer and all of it lands on the
        critical path.  On InfiniBand, sends are offloaded RDMA: most
        of the cross-node transfer overlaps with computation (§3.5's
        asynchronous calls) and the timer only sees the posting plus
        any exposed remainder — which is how Table 6 can show *lower*
        communication times but ~10% *higher* execution times on IB.
        """
        p = placement.n_ranks
        if p == 1:
            return 0.0, 0.0
        node = self.cluster.nodes[0]
        loaded_local = node.interconnect.loaded_bandwidth_per_cpu(node.brick.cpus)
        # Progress/polling over p async partners: local SHUB work.
        poll = p * POLL_BYTES_PER_PARTNER / loaded_local
        # Fringe transfers: the connectivity-aware grouping keeps most
        # donor pairs in-group at small counts.
        remote_fraction = self._remote_fraction(p)
        volume_per_rank = (
            self.system.total_surface_points
            * BOUNDARY_BYTES_PER_POINT
            * EXCHANGES_PER_STEP
            * remote_fraction
            / p
        )
        n_nodes = placement.n_nodes_used()
        inter_share = 1.0 - 1.0 / n_nodes if n_nodes > 1 else 0.0
        transfer_local = (
            volume_per_rank * (1.0 - inter_share) / (loaded_local * FRINGE_EFF)
        )
        if inter_share == 0.0:
            return poll + transfer_local, poll + transfer_local
        cross = cross_node_flow_factor(placement, concurrent_fraction=0.5)
        if self.cluster.fabric == "infiniband":
            ib = self.cluster.infiniband
            _, bw_inter = ib.point_to_point(len(self.cluster.nodes))
            bw_inter /= cross
            transfer_inter = volume_per_rank * inter_share / (bw_inter * FRINGE_EFF)
            exposed = max(0.0, transfer_inter - IB_OVERLAP_FRACTION * compute)
            reported = poll + transfer_local + IB_TIMER_FRACTION * transfer_inter
            return reported, poll + transfer_local + exposed
        bw_inter = loaded_local / cross
        transfer_inter = volume_per_rank * inter_share / (bw_inter * FRINGE_EFF)
        comm = poll + transfer_local + transfer_inter
        return comm, comm

    # -- tables -------------------------------------------------------------------

    def best_step_time(self, cpus: int, thread_options=(1, 2, 4)) -> StepTime:
        """Best process/thread combination at ``cpus`` total CPUs
        (what Table 3 and Table 6 report)."""
        best: StepTime | None = None
        for t in thread_options:
            if cpus % t != 0:
                continue
            ranks = cpus // t
            if ranks < 1 or ranks > self.system.n_blocks:
                continue
            if ranks * t > self.cluster.total_cpus:
                continue
            st = self.step_time(ranks, t)
            if best is None or st.exec < best.exec:
                best = st
        if best is None:
            raise ConfigurationError(f"no feasible layout for {cpus} CPUs")
        return best

    def reported(self, cpus: int) -> StepTime:
        """Alias of :meth:`best_step_time` (the fabric-specific timer
        accounting now lives inside the step model)."""
        return self.best_step_time(cpus)

    def efficiency(self, cpus: int) -> float:
        """Parallel efficiency vs the single-CPU baseline (§4.1.4)."""
        return self.serial_step_time() / (cpus * self.best_step_time(cpus).exec)
