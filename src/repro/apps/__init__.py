"""Scientific applications characterized by the paper (§3.3-§3.5).

* :mod:`repro.apps.md` — Lennard-Jones molecular dynamics with the
  Velocity Verlet integrator and spatial decomposition;
* :mod:`repro.apps.overset` — multi-block overset grid substrate
  (grids, connectivity, grouping) shared by the two CFD codes;
* :mod:`repro.apps.cfd` — the CFD numerics: artificial-compressibility
  incompressible solver (INS3D's method) and pipelined LU-SGS
  (OVERFLOW-D's re-implemented linear solver);
* :mod:`repro.apps.ins3d` — INS3D turbopump performance model
  (Tables 2 and 4);
* :mod:`repro.apps.overflow` — OVERFLOW-D rotor-wake performance
  model (Tables 3, 4 and 6).
"""

from repro.apps.ins3d import INS3DModel
from repro.apps.overflow import OverflowModel

__all__ = ["INS3DModel", "OverflowModel"]
