"""A really-executing overset solve: two grids, donor interpolation.

The overset method (paper §3.4): "the problem domain is decomposed
into a number of simple grid components ... Connectivity between
neighboring grids is established by interpolation at the grid outer
boundaries."  This module runs that machinery on a solvable model
problem: a Poisson equation on a rectangle covered by a coarse
background grid plus a finer overlapping patch.  Each outer iteration
relaxes both grids (Gauss-Seidel line relaxation — INS3D's solver)
and refreshes each grid's fringe from the *other* grid by trilinear
(here bilinear) donor interpolation — an alternating Schwarz method.

Verified by tests: the composite converges to the single-grid
solution on the overlap region, and convergence *requires* the
interpolation exchange (freezing the fringe stalls it) — the overset
connectivity is load-bearing, not decorative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.cfd.linerelax import line_relax_poisson
from repro.errors import ConfigurationError

__all__ = ["OversetPoissonResult", "solve_overset_poisson", "bilinear_sample"]


def bilinear_sample(field: np.ndarray, x: np.ndarray, y: np.ndarray,
                    x0: float, y0: float, h: float) -> np.ndarray:
    """Bilinearly interpolate ``field`` (grid origin ``(x0, y0)``,
    spacing ``h``) at physical points ``(x, y)`` — the 2D donor
    interpolation of the overset fringe update."""
    gx = (np.asarray(x) - x0) / h
    gy = (np.asarray(y) - y0) / h
    i = np.floor(gx).astype(int)
    j = np.floor(gy).astype(int)
    # Points exactly on the last grid line belong to the last cell.
    i = np.minimum(i, field.shape[0] - 2)
    j = np.minimum(j, field.shape[1] - 2)
    if (
        np.any(i < 0) or np.any(j < 0)
        or np.any(gx > field.shape[0] - 1 + 1e-9)
        or np.any(gy > field.shape[1] - 1 + 1e-9)
    ):
        raise ConfigurationError("donor point outside the donor grid")
    fx = gx - i
    fy = gy - j
    return (
        field[i, j] * (1 - fx) * (1 - fy)
        + field[i + 1, j] * fx * (1 - fy)
        + field[i, j + 1] * (1 - fx) * fy
        + field[i + 1, j + 1] * fx * fy
    )


@dataclass(frozen=True)
class OversetPoissonResult:
    """Outcome of the composite overset solve."""

    background: np.ndarray
    patch: np.ndarray
    outer_iterations: int
    fringe_change_history: tuple[float, ...]

    @property
    def converged(self) -> bool:
        return self.fringe_change_history[-1] < 1e-6


def _relax(u: np.ndarray, f: np.ndarray, h: float, sweeps: int) -> np.ndarray:
    """Line-relax ``laplacian(u) = f`` holding u's boundary ring fixed."""
    interior_f = f[1:-1, 1:-1]
    # Move the fixed boundary into the RHS of the interior problem.
    rhs = interior_f.copy()
    rhs[0, :] -= u[0, 1:-1] / (h * h)
    rhs[-1, :] -= u[-1, 1:-1] / (h * h)
    rhs[:, 0] -= u[1:-1, 0] / (h * h)
    rhs[:, -1] -= u[1:-1, -1] / (h * h)
    interior, _ = line_relax_poisson(rhs, sweeps=sweeps, h=h, u0=u[1:-1, 1:-1])
    out = u.copy()
    out[1:-1, 1:-1] = interior
    return out


def solve_overset_poisson(
    n_background: int = 33,
    n_patch: int = 21,
    patch_origin: tuple[float, float] = (0.3, 0.3),
    patch_size: float = 0.4,
    outer_iterations: int = 30,
    relax_sweeps: int = 40,
    freeze_fringe: bool = False,
) -> OversetPoissonResult:
    """Solve ``laplacian(u) = f`` on [0,1]^2 with an overset patch.

    The background grid covers the unit square (Dirichlet-zero outer
    boundary); the patch covers ``patch_size``-square at
    ``patch_origin`` with 2x finer spacing.  Each outer iteration:

    1. relax the background with its current values;
    2. interpolate the patch's boundary ring *from the background*;
    3. relax the patch;
    4. (next round the background is relaxed against the same f —
       its solution under the patch is later *replaced* by patch data
       when sampling the composite).

    ``freeze_fringe=True`` skips step 2 after the first iteration —
    the ablation showing the connectivity is essential.
    """
    if not 0 < patch_size < 1:
        raise ConfigurationError(f"bad patch size {patch_size}")
    px, py = patch_origin
    if px < 0 or py < 0 or px + patch_size > 1 or py + patch_size > 1:
        raise ConfigurationError("patch leaves the unit square")
    hb = 1.0 / (n_background - 1)
    hp = patch_size / (n_patch - 1)

    # Manufactured RHS: f = laplacian(sin(pi x) sin(pi y)).
    def exact(x, y):
        return np.sin(np.pi * x) * np.sin(np.pi * y)

    def rhs(x, y):
        return -2.0 * np.pi**2 * exact(x, y)

    xb = np.linspace(0, 1, n_background)
    Xb, Yb = np.meshgrid(xb, xb, indexing="ij")
    fb = rhs(Xb, Yb)
    xp = np.linspace(px, px + patch_size, n_patch)
    yp = np.linspace(py, py + patch_size, n_patch)
    Xp, Yp = np.meshgrid(xp, yp, indexing="ij")
    fp = rhs(Xp, Yp)

    ub = np.zeros((n_background, n_background))
    up = np.zeros((n_patch, n_patch))
    history = []
    prev_fringe = None
    for it in range(outer_iterations):
        ub = _relax(ub, fb, hb, relax_sweeps)
        if not freeze_fringe or it == 0:
            # Patch fringe from the background (donor interpolation).
            ring_x = np.concatenate([Xp[0, :], Xp[-1, :], Xp[:, 0], Xp[:, -1]])
            ring_y = np.concatenate([Yp[0, :], Yp[-1, :], Yp[:, 0], Yp[:, -1]])
            fringe = bilinear_sample(ub, ring_x, ring_y, 0.0, 0.0, hb)
            m = n_patch
            up[0, :] = fringe[:m]
            up[-1, :] = fringe[m:2 * m]
            up[:, 0] = fringe[2 * m:3 * m]
            up[:, -1] = fringe[3 * m:]
            if prev_fringe is not None:
                history.append(float(np.abs(fringe - prev_fringe).max()))
            prev_fringe = fringe
        else:
            history.append(history[-1] if history else 1.0)
        up = _relax(up, fp, hp, relax_sweeps)
    if not history:
        history = [float("inf")]
    return OversetPoissonResult(
        background=ub, patch=up, outer_iterations=outer_iterations,
        fringe_change_history=tuple(history),
    )
