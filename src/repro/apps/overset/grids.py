"""Overset grid systems.

The paper's two production grid systems:

* the **turbopump** (INS3D, §3.4): 66 million grid points in 267
  blocks/zones — inducer blades, bellows cavity, flowliner components;
* the **rotor wake** (OVERFLOW-D, §3.5): ~75 million points in 1679
  blocks of various sizes — body-fitted rotor/hub grids plus off-body
  Cartesian wake grids.

We cannot recover the proprietary geometries, so the generators build
*synthetic* systems with the documented block counts and total sizes
and a heavy-tailed block-size distribution (overset systems mix a few
huge background grids with many small connector grids; that skew is
exactly what makes load balancing hard at 508 processes — §4.1.4).
Blocks are laid out in space with controlled pairwise overlap so the
connectivity machinery has real geometry to chew on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import make_rng

__all__ = ["GridBlock", "OversetSystem", "turbopump_system", "rotor_system"]


@dataclass(frozen=True)
class GridBlock:
    """One curvilinear grid block (modeled by its bounding box)."""

    index: int
    shape: tuple[int, int, int]
    #: axis-aligned bounding box in physical space.
    lo: tuple[float, float, float]
    hi: tuple[float, float, float]

    def __post_init__(self) -> None:
        if any(s < 2 for s in self.shape):
            raise ConfigurationError(f"block {self.index}: degenerate {self.shape}")
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise ConfigurationError(f"block {self.index}: empty bounding box")

    @property
    def points(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def surface_points(self) -> int:
        """Points on the six outer faces (interpolation fringe)."""
        nx, ny, nz = self.shape
        return 2 * (nx * ny + ny * nz + nx * nz)

    def overlaps(self, other: "GridBlock") -> bool:
        """Bounding boxes intersect (the grouping connectivity test)."""
        return all(
            self.lo[d] < other.hi[d] and other.lo[d] < self.hi[d]
            for d in range(3)
        )


@dataclass(frozen=True)
class OversetSystem:
    """A complete multi-block overset grid system."""

    name: str
    blocks: tuple[GridBlock, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def total_points(self) -> int:
        return sum(b.points for b in self.blocks)

    @property
    def total_surface_points(self) -> int:
        return sum(b.surface_points for b in self.blocks)

    def weights(self) -> list[float]:
        """Block sizes, the bin-packing weights."""
        return [float(b.points) for b in self.blocks]

    @property
    def size_skew(self) -> float:
        """Largest block / mean block size."""
        pts = [b.points for b in self.blocks]
        return max(pts) / (sum(pts) / len(pts))


def _synthetic_system(
    name: str,
    n_blocks: int,
    total_points: int,
    skew_sigma: float,
    seed: int,
    max_block_fraction: float,
) -> OversetSystem:
    """Generate a synthetic overset system.

    Block point counts follow a lognormal distribution (heavy tail)
    rescaled to the exact total; blocks are placed on a jittered 3D
    lattice sized so that spatial neighbors overlap.
    """
    if n_blocks < 1 or total_points < 8 * n_blocks:
        raise ConfigurationError("unbuildable overset system")
    rng = make_rng(seed)
    raw = rng.lognormal(mean=0.0, sigma=skew_sigma, size=n_blocks)
    # Cap the tail so no block exceeds the requested fraction of total.
    raw = np.minimum(raw, raw.sum() * max_block_fraction / (1.0 - max_block_fraction))
    pts = raw / raw.sum() * total_points
    pts = np.maximum(8, pts.astype(np.int64))
    # Fix rounding drift on the largest block.
    drift = total_points - int(pts.sum())
    pts[int(np.argmax(pts))] += drift
    # Shapes: roughly cubic with mild anisotropy.
    blocks = []
    side = int(np.ceil(n_blocks ** (1.0 / 3.0)))
    spacing = 1.0
    for i in range(n_blocks):
        n = int(pts[i])
        base = n ** (1.0 / 3.0)
        ar = rng.uniform(0.7, 1.4, size=3)
        dims = np.maximum(2, np.round(base * ar / np.prod(ar) ** (1.0 / 3.0))).astype(int)
        # Reconcile the product to ~n (exactness is irrelevant here;
        # points bookkeeping uses the shape product).
        gx = (i % side, (i // side) % side, i // (side * side))
        center = np.array(gx, dtype=float) * spacing + rng.uniform(-0.2, 0.2, 3)
        half = 0.5 * spacing * 1.3 * (dims / dims.max())  # overlap neighbors
        blocks.append(
            GridBlock(
                index=i,
                shape=(int(dims[0]), int(dims[1]), int(dims[2])),
                lo=tuple(center - half),
                hi=tuple(center + half),
            )
        )
    return OversetSystem(name=name, blocks=tuple(blocks))


def turbopump_system(scale: float = 1.0, seed: int = 42) -> OversetSystem:
    """The INS3D low-pressure fuel pump grid system (§3.4).

    Paper: "66 million grid points and 267 blocks (or zones)".
    ``scale`` shrinks the point count (not the block count) for tests.
    """
    # Moderately skewed: Table 2's 36-group runs imply near-even group
    # loads (1223 s vs the ideal 1089.7 s is mostly MLP overhead), so
    # the largest zone must stay below ~1/36 of the total.
    return _synthetic_system(
        name="turbopump",
        n_blocks=267,
        total_points=int(66_000_000 * scale),
        skew_sigma=1.0,
        seed=seed,
        max_block_fraction=0.012,
    )


def rotor_system(scale: float = 1.0, seed: int = 43) -> OversetSystem:
    """The OVERFLOW-D hovering-rotor grid system (§3.5).

    Paper: "1679 blocks of various sizes, and approximately 75 million
    grid points" — about 150 thousand points per MPI task at 508
    processes (§4.1.4).  The heavy tail (a few large near-body and
    background wake grids) is what defeats load balancing at large
    process counts.
    """
    return _synthetic_system(
        name="rotor",
        n_blocks=1679,
        total_points=int(75_000_000 * scale),
        skew_sigma=1.3,
        seed=seed,
        max_block_fraction=0.013,
    )
