"""Multi-block overset grid substrate (paper §3.4-§3.5).

Both INS3D and OVERFLOW-D decompose their problem domain into
overlapping ("overset") grid blocks; connectivity between neighboring
grids is established by interpolation at the outer boundaries.  This
package provides the grid-system model: block geometry, overlap
detection, donor interpolation, the bin-packing grouping with
connectivity test that OVERFLOW-D uses, and boundary-exchange volume
accounting.
"""

from repro.apps.overset.grids import GridBlock, OversetSystem, rotor_system, turbopump_system
from repro.apps.overset.connectivity import find_overlaps, trilinear_weights
from repro.apps.overset.grouping import group_blocks

__all__ = [
    "GridBlock",
    "OversetSystem",
    "turbopump_system",
    "rotor_system",
    "find_overlaps",
    "trilinear_weights",
    "group_blocks",
]
