"""Overset connectivity: overlap detection and donor interpolation.

"Connectivity between neighboring grids is established by
interpolation at the grid outer boundaries.  Addition of new
components ... [is] achieved by establishing new connectivity without
disturbing the existing grids." (paper §3.4)

Two real pieces live here:

* :func:`find_overlaps` — the pairwise overlap test over a block
  system (spatial-hash accelerated, O(B) buckets instead of O(B^2)
  pair checks for big systems);
* :func:`trilinear_weights` / :func:`interpolate` — actual trilinear
  donor interpolation, verified exact for trilinear fields.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.apps.overset.grids import GridBlock, OversetSystem
from repro.errors import ConfigurationError

__all__ = ["find_overlaps", "trilinear_weights", "interpolate"]


def find_overlaps(system: OversetSystem) -> set[tuple[int, int]]:
    """All unordered block pairs whose bounding boxes intersect.

    Uses a uniform spatial hash over block centers so large systems
    (the 1679-block rotor case) stay fast; candidate pairs from shared
    or adjacent cells are then exactly tested.
    """
    blocks = system.blocks
    if not blocks:
        return set()
    # Cell size ~ the largest box diagonal so neighbors share cells.
    max_extent = max(
        max(h - l for l, h in zip(b.lo, b.hi)) for b in blocks
    )
    cell = max_extent if max_extent > 0 else 1.0
    buckets: dict[tuple[int, int, int], list[int]] = defaultdict(list)
    for b in blocks:
        cx = tuple(int(np.floor((lo + hi) / 2.0 / cell)) for lo, hi in zip(b.lo, b.hi))
        buckets[cx].append(b.index)
    overlaps: set[tuple[int, int]] = set()
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
    ]
    for key, members in buckets.items():
        candidates = []
        for off in offsets:
            candidates.extend(buckets.get((key[0] + off[0], key[1] + off[1], key[2] + off[2]), []))
        for i in members:
            bi = blocks[i]
            for j in candidates:
                if j <= i:
                    continue
                if bi.overlaps(blocks[j]):
                    overlaps.add((i, j))
    return overlaps


def trilinear_weights(frac: np.ndarray) -> np.ndarray:
    """Weights of the 8 donor-cell corners for a point at fractional
    offsets ``frac = (fx, fy, fz)`` within the cell (each in [0, 1]).

    Returned in corner order (0,0,0), (1,0,0), (0,1,0), (1,1,0),
    (0,0,1), (1,0,1), (0,1,1), (1,1,1); they always sum to 1.
    """
    frac = np.asarray(frac, dtype=float)
    if frac.shape != (3,) or np.any(frac < 0) or np.any(frac > 1):
        raise ConfigurationError(f"bad fractional offsets: {frac}")
    fx, fy, fz = frac
    gx, gy, gz = 1 - fx, 1 - fy, 1 - fz
    return np.array(
        [
            gx * gy * gz,
            fx * gy * gz,
            gx * fy * gz,
            fx * fy * gz,
            gx * gy * fz,
            fx * gy * fz,
            gx * fy * fz,
            fx * fy * fz,
        ]
    )


def interpolate(donor: np.ndarray, point: np.ndarray, spacing: float = 1.0) -> float:
    """Trilinearly interpolate scalar field ``donor`` (a 3D array on a
    uniform grid with ``spacing``) at physical ``point``.

    This is the fringe-point update of the overset boundary exchange;
    exact for trilinear fields (tested property).
    """
    point = np.asarray(point, dtype=float) / spacing
    idx = np.floor(point).astype(int)
    if np.any(idx < 0) or np.any(idx + 1 >= donor.shape):
        raise ConfigurationError(f"point {point} outside donor block")
    frac = point - idx
    w = trilinear_weights(frac)
    i, j, k = idx
    corners = np.array(
        [
            donor[i, j, k],
            donor[i + 1, j, k],
            donor[i, j + 1, k],
            donor[i + 1, j + 1, k],
            donor[i, j, k + 1],
            donor[i + 1, j, k + 1],
            donor[i, j + 1, k + 1],
            donor[i + 1, j + 1, k + 1],
        ]
    )
    return float(w @ corners)
