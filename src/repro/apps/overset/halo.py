"""Boundary-exchange volume accounting from the real overlap graph.

The OVERFLOW-D communication model approximates the inter-group
boundary volume with a closed-form remote fraction.  This module
computes it exactly: walk the system's overlap pairs, estimate the
interpolation fringe each pair exchanges (proportional to the smaller
block's surface), and split volumes by whether the pair's groups
coincide.  Used to validate the closed form and by the grouping
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.apps.overset.connectivity import find_overlaps
from repro.apps.overset.grids import OversetSystem
from repro.errors import ConfigurationError
from repro.npb.loadbalance import Assignment

__all__ = ["HaloVolumes", "halo_volumes"]

#: Bytes exchanged per fringe point per step (5 variables, float64,
#: two interpolation layers).
BYTES_PER_FRINGE_POINT = 5 * 8 * 2

#: Fraction of the smaller block's surface that typically lies inside
#: the overlap region (overset fringes are a band around each face).
FRINGE_SURFACE_FRACTION = 0.25


@dataclass(frozen=True)
class HaloVolumes:
    """Per-step boundary traffic of one grouping."""

    intra_group_bytes: float
    inter_group_bytes: float
    #: bytes each group sends to other groups, indexed by group.
    per_group_bytes: tuple[float, ...]

    @property
    def total_bytes(self) -> float:
        return self.intra_group_bytes + self.inter_group_bytes

    @property
    def remote_fraction(self) -> float:
        """Share of boundary traffic that crosses group boundaries —
        the quantity the OVERFLOW-D model's closed form approximates."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        return self.inter_group_bytes / total

    @property
    def max_group_bytes(self) -> float:
        return max(self.per_group_bytes) if self.per_group_bytes else 0.0


def halo_volumes(
    system: OversetSystem,
    assignment: Assignment,
    overlaps: Iterable[tuple[int, int]] | None = None,
) -> HaloVolumes:
    """Exact inter/intra-group boundary volumes for one grouping."""
    if assignment.n_bins < 1:
        raise ConfigurationError("assignment has no groups")
    owner: dict[int, int] = {}
    for g, members in enumerate(assignment.bins):
        for z in members:
            owner[z] = g
    if len(owner) != system.n_blocks:
        raise ConfigurationError(
            f"assignment covers {len(owner)} of {system.n_blocks} blocks"
        )
    pairs = overlaps if overlaps is not None else find_overlaps(system)
    intra = 0.0
    inter = 0.0
    per_group = [0.0] * assignment.n_bins
    for a, b in pairs:
        fringe_points = FRINGE_SURFACE_FRACTION * min(
            system.blocks[a].surface_points, system.blocks[b].surface_points
        )
        volume = fringe_points * BYTES_PER_FRINGE_POINT
        ga, gb = owner[a], owner[b]
        if ga == gb:
            intra += volume
        else:
            inter += volume
            per_group[ga] += volume
            per_group[gb] += volume
    return HaloVolumes(
        intra_group_bytes=intra,
        inter_group_bytes=inter,
        per_group_bytes=tuple(per_group),
    )
