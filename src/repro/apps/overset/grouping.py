"""OVERFLOW-D's bin-packing grouping (paper §3.5).

"A bin-packing algorithm clusters individual grids into groups, each
of which is then assigned to an MPI process.  The grouping strategy
uses a connectivity test that inspects for an overlap between a pair
of grids before assigning them to the same group, regardless of the
size of the boundary data."

We implement exactly that: LPT-style greedy packing that *prefers*
placing a block into the least-loaded group already containing one of
its overlap partners (keeping inter-grid updates intra-group), falling
back to the globally least-loaded group.  Round-robin grouping is
provided for the ablation benchmark.
"""

from __future__ import annotations

from typing import Iterable

from repro.apps.overset.connectivity import find_overlaps
from repro.apps.overset.grids import OversetSystem
from repro.errors import ConfigurationError
from repro.npb.loadbalance import Assignment, bin_pack, round_robin

__all__ = ["group_blocks"]


def group_blocks(
    system: OversetSystem,
    n_groups: int,
    strategy: str = "binpack-connectivity",
    overlaps: Iterable[tuple[int, int]] | None = None,
) -> Assignment:
    """Cluster the system's blocks into ``n_groups`` process groups.

    Strategies:

    * ``binpack-connectivity`` — the paper's algorithm: largest block
      first, preferring a connected, not-overfull group;
    * ``binpack`` — pure LPT on block sizes (ignores connectivity);
    * ``round-robin`` — naive ablation baseline.
    """
    weights = system.weights()
    if strategy == "binpack":
        return bin_pack(weights, n_groups)
    if strategy == "round-robin":
        return round_robin(weights, n_groups)
    if strategy != "binpack-connectivity":
        raise ConfigurationError(f"unknown grouping strategy {strategy!r}")
    if n_groups < 1 or len(weights) < n_groups:
        raise ConfigurationError(
            f"{len(weights)} blocks cannot fill {n_groups} groups"
        )
    pair_set = set(overlaps) if overlaps is not None else find_overlaps(system)
    neighbors: dict[int, set[int]] = {i: set() for i in range(len(weights))}
    for a, b in pair_set:
        neighbors[a].add(b)
        neighbors[b].add(a)

    mean_load = sum(weights) / n_groups
    loads = [0.0] * n_groups
    bins: list[list[int]] = [[] for _ in range(n_groups)]
    group_of: dict[int, int] = {}
    order = sorted(range(len(weights)), key=lambda z: -weights[z])
    for z in order:
        # Candidate groups hosting an overlap partner, not overfull.
        connected = {
            group_of[nb]
            for nb in neighbors[z]
            if nb in group_of and loads[group_of[nb]] + weights[z] <= 1.25 * mean_load
        }
        if connected:
            g = min(connected, key=lambda gi: loads[gi])
        else:
            g = min(range(n_groups), key=lambda gi: loads[gi])
        bins[g].append(z)
        loads[g] += weights[z]
        group_of[z] = g
    # Guarantee no empty group (swap in spare blocks from the fullest).
    for g in range(n_groups):
        if not bins[g]:
            donor = max(range(n_groups), key=lambda gi: len(bins[gi]))
            if len(bins[donor]) > 1:
                moved = min(bins[donor], key=lambda z: weights[z])
                bins[donor].remove(moved)
                loads[donor] -= weights[moved]
                bins[g].append(moved)
                loads[g] += weights[moved]
                group_of[moved] = g
    final_loads = tuple(sum(weights[z] for z in b) for b in bins)
    return Assignment(bins=tuple(tuple(b) for b in bins), loads=final_loads)
