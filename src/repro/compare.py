"""Cross-machine characterization: the ``repro compare`` verb.

The paper's core move is running one application suite across
contrasting architectures and reading off who wins where (Altix 3700
vs BX2a vs BX2b, NUMAlink4 vs InfiniBand) — the RZBENCH/OMI4papps
methodology.  With the machine zoo, any registered
:class:`~repro.machine.zoo.MachineConfig` can join that analysis:
``repro compare --machines columbia,fat_numa,thin_ib,gpu_node`` runs a
closed-form application suite at several CPU counts per machine
through the ordinary Scenario → Runner → fidelity pipeline and emits

* a per-(app, size) **who-wins** table,
* the **crossover** points where the winning machine changes as the
  job grows (the paper's "3700 wins small, BX2b wins large" shape),
* a perf-per-cost ranking via the name-free
  :func:`~repro.machine.zoo.cluster_cost` proxy.

Every application here is closed-form (``compare.cell`` is an exact
surrogate passthrough), so the default analytic tier serves a full
4-machine comparison in milliseconds, cache- and serve-compatible
like any other workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.run.scenario import MachineSpec, Scenario, scenario
from repro.run.workloads import workload
from repro.surrogate.registry import register_exact

__all__ = [
    "COMPARE_APPS",
    "DEFAULT_SIZES",
    "CompareResult",
    "compare_scenarios",
    "run_compare",
]

#: CPU counts compared by default — small/medium/large, feasible on
#: every shipped preset (the smallest, ``gpu_node``, holds 256 CPUs).
DEFAULT_SIZES = (16, 64, 256)

#: The application suite: name -> (metric label, unit).  All metrics
#: are higher-is-better rates, so winner logic needs no per-app mode.
COMPARE_APPS = {
    "bt-mz": ("rate", "Gflop/s"),
    "sp-mz": ("rate", "Gflop/s"),
    "overflow": ("steps", "steps/s"),
    "stream": ("triad", "GB/s"),
    "dgemm": ("rate", "Gflop/s"),
}


def _mz_layout(cpus: int, n_zones: int) -> tuple[int, int]:
    """(ranks, threads) for a multi-zone run: pure MPI until the zone
    count caps ranks, then OpenMP threads take over (§4.6.2)."""
    for threads in (1, 2, 4, 8, 16):
        if cpus % threads == 0 and cpus // threads <= n_zones:
            return cpus // threads, threads
    raise ConfigurationError(
        f"no feasible MPI+OpenMP layout for {cpus} CPUs over "
        f"{n_zones} zones"
    )


def _placement(cluster, cpus: int):
    from repro.machine.placement import Placement

    return Placement(cluster, n_ranks=cpus)


@workload("compare.cell")
def _cell(cluster, app: str, cpus: int) -> list[tuple]:
    """One (machine, app, size) cell; the machine arrives as the
    built cluster, so the cell itself is machine-name-free."""
    if app not in COMPARE_APPS:
        raise ConfigurationError(
            f"unknown compare app {app!r}; known: {sorted(COMPARE_APPS)}"
        )
    metric, unit = COMPARE_APPS[app]
    if cpus < 1 or cpus > cluster.total_cpus:
        raise ConfigurationError(
            f"{cpus} CPUs outside cluster of {cluster.total_cpus}"
        )
    if app in ("bt-mz", "sp-mz"):
        from repro.machine.placement import Placement
        from repro.npb.hybrid import MZTimingModel
        from repro.npb.multizone import mz_problem

        n_zones = mz_problem(app, "C").spec.n_zones
        ranks, threads = _mz_layout(cpus, n_zones)
        placement = Placement(cluster, n_ranks=ranks, threads_per_rank=threads)
        value = MZTimingModel(app, "C", placement).total_gflops()
    elif app == "overflow":
        from repro.apps.overflow import OverflowModel

        step = OverflowModel(cluster=cluster).best_step_time(cpus)
        value = 1.0 / step.exec
    elif app == "stream":
        from repro.hpcc.stream import predict_stream

        result = predict_stream(cluster.nodes[0], _placement(cluster, cpus))
        value = result.total_triad
    else:  # dgemm
        from repro.hpcc.dgemm import predict_dgemm

        result = predict_dgemm(
            cluster.nodes[0], _placement(cluster, cpus),
            internode=cpus > cluster.cpus_per_node,
        )
        value = result.total_gflops
    return [(app, cpus, metric, unit, round(value, 4))]


# Every branch above is a closed-form model — no DES, no RNG — so the
# cell is an exact passthrough: the analytic tier serves it inline
# with rows identical to the full path by construction.
register_exact("compare.cell")


# -- the comparison ----------------------------------------------------------


def compare_scenarios(
    machines: Sequence[str],
    apps: Sequence[str] | None = None,
    sizes: Sequence[int] | None = None,
    fidelity: str = "analytic",
) -> tuple[Scenario, ...]:
    """The cell grid: machines x apps x sizes, skipping sizes a
    machine cannot hold (logged in the result as absent rows)."""
    from repro.machine.zoo import machine_config

    apps = tuple(apps) if apps else tuple(COMPARE_APPS)
    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    for app in apps:
        if app not in COMPARE_APPS:
            raise ConfigurationError(
                f"unknown compare app {app!r}; known: {sorted(COMPARE_APPS)}"
            )
    cells = []
    for name in machines:
        capacity = machine_config(name).total_cpus  # raises on unknown
        for app in apps:
            for cpus in sizes:
                if cpus > capacity:
                    continue
                cells.append(scenario(
                    "compare.cell",
                    machine=MachineSpec(config=name),
                    fidelity=fidelity,
                    app=app, cpus=cpus,
                ))
    return tuple(cells)


@dataclass(frozen=True)
class CompareResult:
    """The cross-machine table plus its derived analysis."""

    machines: tuple[str, ...]
    apps: tuple[str, ...]
    sizes: tuple[int, ...]
    #: (machine, app, cpus, value) — higher is better, app's unit.
    rows: tuple[tuple[str, str, int, float], ...]
    #: machine cost proxies, by name.
    costs: tuple[tuple[str, float], ...]

    def value(self, machine: str, app: str, cpus: int) -> float | None:
        for m, a, c, v in self.rows:
            if (m, a, c) == (machine, app, cpus):
                return v
        return None

    def winners(self) -> tuple[tuple[str, int, str], ...]:
        """(app, cpus, winning machine) for every populated cell."""
        out = []
        for app in self.apps:
            for cpus in self.sizes:
                best = None
                for m in self.machines:
                    v = self.value(m, app, cpus)
                    if v is not None and (best is None or v > best[1]):
                        best = (m, v)
                if best is not None:
                    out.append((app, cpus, best[0]))
        return tuple(out)

    def crossovers(self) -> tuple[tuple[str, int, int, str, str], ...]:
        """(app, cpus_before, cpus_after, old winner, new winner) at
        every size step where an app's winning machine changes."""
        out = []
        for app in self.apps:
            seq = [(c, w) for (a, c, w) in self.winners() if a == app]
            for (c0, w0), (c1, w1) in zip(seq, seq[1:]):
                if w0 != w1:
                    out.append((app, c0, c1, w0, w1))
        return tuple(out)

    def perf_per_cost(self) -> tuple[tuple[str, float], ...]:
        """Machines ranked by geometric-mean win share per unit cost:
        the fraction of populated cells a machine wins, divided by its
        cost proxy (scaled x1000 for readability)."""
        costs = dict(self.costs)
        wins = {m: 0 for m in self.machines}
        total = 0
        for _, _, winner in self.winners():
            wins[winner] += 1
            total += 1
        ranked = sorted(
            (
                (m, 1000.0 * wins[m] / total / costs[m] if total else 0.0)
                for m in self.machines
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return tuple(ranked)

    # -- rendering -----------------------------------------------------------

    def format(self) -> str:
        """The deterministic who-wins/crossover report."""
        lines = []
        width = max(len(m) for m in self.machines)
        for app in self.apps:
            _, unit = COMPARE_APPS[app]
            lines.append(f"{app} ({unit}, higher is better)")
            header = "  cpus"
            for m in self.machines:
                header += f"  {m:>{max(width, 10)}}"
            lines.append(header + "  winner")
            for cpus in self.sizes:
                row = f"  {cpus:>4}"
                best = None
                for m in self.machines:
                    v = self.value(m, app, cpus)
                    if v is not None and (best is None or v > best[1]):
                        best = (m, v)
                    cellw = max(width, 10)
                    row += f"  {'-' if v is None else format(v, '.4g'):>{cellw}}"
                row += f"  {best[0] if best else '-'}"
                lines.append(row)
            lines.append("")
        xs = self.crossovers()
        if xs:
            lines.append("crossovers:")
            for app, c0, c1, w0, w1 in xs:
                lines.append(
                    f"  {app}: {w0} wins at {c0} CPUs -> {w1} wins at {c1}"
                )
        else:
            lines.append("crossovers: none (one machine wins every size)")
        lines.append("")
        lines.append("perf per unit cost (win share x1000 / cost proxy):")
        for m, score in self.perf_per_cost():
            cost = dict(self.costs)[m]
            lines.append(f"  {m:<{width}}  cost {cost:>8.0f}  score {score:.4f}")
        return "\n".join(lines) + "\n"


def run_compare(
    machines: Sequence[str],
    apps: Sequence[str] | None = None,
    sizes: Sequence[int] | None = None,
    runner=None,
    fidelity: str = "analytic",
) -> CompareResult:
    """Run the comparison grid and fold it into a
    :class:`CompareResult`.

    ``runner`` defaults to a fresh analytic-tier
    :class:`~repro.run.runner.Runner`; pass one to share a cache,
    fault overlay or trace directory with other work.  Cells that a
    machine cannot hold are skipped; cells that fail (e.g. no
    feasible layout) surface as errors through the runner's ordinary
    keep-going accounting.
    """
    from repro.machine.zoo import cluster_cost, machine_config
    from repro.run.runner import Runner

    machines = tuple(machines)
    if len(set(machines)) != len(machines):
        raise ConfigurationError(f"duplicate machines in {machines}")
    if len(machines) < 2:
        raise ConfigurationError("compare needs at least two machines")
    apps = tuple(apps) if apps else tuple(COMPARE_APPS)
    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    cells = compare_scenarios(machines, apps, sizes, fidelity=fidelity)
    if runner is None:
        runner = Runner(jobs=1, fidelity=fidelity)
    records = runner.run(list(cells))
    rows = []
    for rec in records:
        if rec.error is not None:
            continue
        machine = rec.scenario.machine.config
        for app, cpus, _metric, _unit, value in rec.rows:
            rows.append((machine, str(app), int(cpus), float(value)))
    costs = tuple(
        (name, round(cluster_cost(machine_config(name).build()), 4))
        for name in machines
    )
    return CompareResult(
        machines=machines, apps=apps, sizes=sizes,
        rows=tuple(rows), costs=costs,
    )
