"""Unit helpers used throughout the package.

All internal times are in **seconds**, sizes in **bytes**, rates in
**bytes/second** or **flop/s**.  These helpers exist so that model
constants can be written in the units the paper uses (microseconds,
GB/s, Gflop/s) without sprinkling powers of ten through the code.
"""

from __future__ import annotations

# -- scale factors ----------------------------------------------------------

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000
TERA = 1_000_000_000_000

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024
TIB = 1024 * 1024 * 1024 * 1024

US = 1e-6  # one microsecond, in seconds
MS = 1e-3  # one millisecond, in seconds


def usec(x: float) -> float:
    """Convert a value in microseconds to seconds."""
    return x * US


def msec(x: float) -> float:
    """Convert a value in milliseconds to seconds."""
    return x * MS


def to_usec(seconds: float) -> float:
    """Convert seconds to microseconds (for reporting)."""
    return seconds / US


def gb_per_s(x: float) -> float:
    """Convert a bandwidth in GB/s (decimal) to bytes/s."""
    return x * GIGA


def mb_per_s(x: float) -> float:
    """Convert a bandwidth in MB/s (decimal) to bytes/s."""
    return x * MEGA


def to_gb_per_s(bytes_per_s: float) -> float:
    """Convert bytes/s to GB/s (decimal, as HPCC reports)."""
    return bytes_per_s / GIGA


def to_mb_per_s(bytes_per_s: float) -> float:
    """Convert bytes/s to MB/s (decimal)."""
    return bytes_per_s / MEGA


def gflops(x: float) -> float:
    """Convert Gflop/s to flop/s."""
    return x * GIGA


def to_gflops(flops_per_s: float) -> float:
    """Convert flop/s to Gflop/s (as the paper reports)."""
    return flops_per_s / GIGA


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units), e.g. ``6.0 MiB``."""
    n = float(n)
    for unit, scale in (("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= scale:
            return f"{n / scale:.1f} {unit}"
    return f"{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Human-readable time, choosing s / ms / us as appropriate."""
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= MS:
        return f"{seconds / MS:.3g} ms"
    return f"{seconds / US:.3g} us"
