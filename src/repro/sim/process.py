"""Events and generator-based simulated processes.

A simulated process is a Python generator that *yields* things it
wants to wait for:

* a :class:`Timeout` — elapse simulated time (e.g. compute);
* a :class:`SimEvent` — wait for a one-shot event (message arrival,
  resource grant, ...); the event's value is sent back into the
  generator;
* another :class:`SimProcess` — join it (a process is itself an event
  that triggers with the generator's return value);
* an :class:`AllOf` — wait for several events; yields their values.

Example::

    def worker(sim):
        yield Timeout(sim, 1.5)          # compute for 1.5 s
        value = yield some_event         # block until triggered
        return value * 2

    sim = Simulator()
    proc = SimProcess(sim, worker(sim))
    sim.run()
    assert proc.value == expected
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError
from repro.sim.engine import Simulator, _CLAMP_EPS

__all__ = ["SimEvent", "Timeout", "SimProcess", "AllOf", "AnyOf"]


class SimEvent:
    """A one-shot event that simulated processes can wait on.

    The event starts untriggered.  Calling :meth:`succeed` schedules
    all registered callbacks at the current simulated time and stores
    ``value``, which is delivered to every waiter.
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        #: waiter storage, shaped for the common cases: ``None`` (no
        #: waiters yet), a bare callable (exactly one waiter — the MPI
        #: rendezvous norm, saving the list allocation per event), or
        #: a list of callables.  All consumers branch on this shape.
        self._callbacks: Any = None

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event, waking all waiters at the current time."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            # Inlined call_soon: waking waiters is the single hottest
            # sim operation, so the fast-lane append happens in place.
            sim = self.sim
            if callbacks.__class__ is list:
                seq = sim._seq
                fifo = sim._fifo
                for cb in callbacks:
                    seq += 1
                    fifo.append((seq, cb, self))
                sim._seq = seq
            else:
                sim._seq = seq = sim._seq + 1
                sim._fifo.append((seq, callbacks, self))
        return self

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Register ``callback(event)``; fires immediately if already
        triggered (scheduled at the current time, preserving order)."""
        if self.triggered:
            self.sim.call_soon(callback, self)
            return
        callbacks = self._callbacks
        if callbacks is None:
            self._callbacks = callback
        elif callbacks.__class__ is list:
            callbacks.append(callback)
        else:
            self._callbacks = [callbacks, callback]


class Timeout(SimEvent):
    """An event that triggers ``delay`` simulated seconds from now."""

    __slots__ = ()

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        # Inlined SimEvent.__init__ (one Timeout per message/compute
        # segment makes this constructor a measured hot path).
        self.sim = sim
        self.triggered = False
        self.value = None
        self._callbacks = None
        if delay < 0:
            # Mirror Simulator.schedule_at: cost-model float noise can
            # produce delays a few ulps below zero (e.g. a duration
            # reconstructed as the difference of two nearby
            # timestamps); clamp those, but keep rejecting genuinely
            # negative delays.
            if -delay <= _CLAMP_EPS * max(abs(sim.now), 1.0):
                delay = 0.0
            else:
                raise SimulationError(f"negative timeout: {delay}")
        sim.schedule_call(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if self.triggered:
            return
        # Inlined succeed() (sans the already-triggered raise, guarded
        # above): one _fire per timed message/compute segment.
        self.triggered = True
        self.value = value
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            sim = self.sim
            if callbacks.__class__ is list:
                seq = sim._seq
                fifo = sim._fifo
                for cb in callbacks:
                    seq += 1
                    fifo.append((seq, cb, self))
                sim._seq = seq
            else:
                sim._seq = seq = sim._seq + 1
                sim._fifo.append((seq, callbacks, self))


class AnyOf(SimEvent):
    """Triggers when the *first* of ``events`` triggers.

    The value is ``(index, value)`` of the winning event.  Later
    triggers of the other events are ignored.  An empty list is an
    error (it could never trigger).
    """

    __slots__ = ("_events",)

    def __init__(self, sim: Simulator, events: Iterable[SimEvent]) -> None:
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf needs at least one event")
        for index, ev in enumerate(self._events):
            ev.add_callback(lambda e, index=index: self._first(index, e))

    def _first(self, index: int, ev: SimEvent) -> None:
        if not self.triggered:
            self.succeed((index, ev.value))


class AllOf(SimEvent):
    """Triggers when every event in ``events`` has triggered.

    The value is the list of the constituent events' values, in the
    order given.  An empty list triggers immediately.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: Simulator, events: Iterable[SimEvent]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._one_done)

    def _one_done(self, _ev: SimEvent) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([ev.value for ev in self._events])


class SimProcess(SimEvent):
    """A running simulated process wrapping a generator.

    The process is itself a :class:`SimEvent` that triggers when the
    generator returns; ``value`` is the generator's return value, so
    processes can be joined by yielding them.
    """

    __slots__ = ("_gen", "name", "_wake_cb", "_send")

    def __init__(
        self,
        sim: Simulator,
        gen: Generator[SimEvent, Any, Any],
        name: str = "process",
    ) -> None:
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"SimProcess needs a generator, got {type(gen).__name__}; "
                "did you forget to call the process function?"
            )
        self._gen = gen
        self.name = name
        #: bound once: every yield registers this same callback, so
        #: rebinding the method per suspension would churn allocations.
        self._wake_cb = self._wake
        #: likewise for the generator's send (one call per resume).
        self._send = gen.send
        sim._active_processes += 1
        # Start the process at the current simulated time.
        sim.call_soon(self._resume, None)

    def _resume(self, send_value: Any) -> None:
        # ``self.sim`` is only needed off the happy path (process end,
        # bad yield, already-triggered target), so the load is deferred
        # into those branches.
        try:
            target = self._send(send_value)
        except StopIteration as stop:
            self.sim._active_processes -= 1
            self.succeed(stop.value)
            return
        # Inlined target.add_callback(self._wake_cb), with the yield
        # target validated by attribute probe instead of isinstance
        # (one registration per yield makes both measurable).
        try:
            triggered = target.triggered
            callbacks = target._callbacks
        except AttributeError:
            self.sim._active_processes -= 1
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "expected a SimEvent/Timeout/SimProcess"
            ) from None
        if triggered:
            # Inlined call_soon (one wake per already-triggered yield
            # target — the posted-receive-already-matched path).
            sim = self.sim
            sim._seq += 1
            sim._fifo.append((sim._seq, self._wake_cb, target))
        elif callbacks is None:
            # Inlined target.add_callback: the untriggered target has
            # no waiters yet (the overwhelmingly common shape), so the
            # single-waiter slot takes the bare callable.
            target._callbacks = self._wake_cb
        elif callbacks.__class__ is list:
            callbacks.append(self._wake_cb)
        else:
            target._callbacks = [callbacks, self._wake_cb]

    def _wake(self, ev: SimEvent) -> None:
        # Inlined _resume(ev.value) — the per-message wake-up path.
        try:
            target = self._send(ev.value)
        except StopIteration as stop:
            self.sim._active_processes -= 1
            self.succeed(stop.value)
            return
        try:
            triggered = target.triggered
            callbacks = target._callbacks
        except AttributeError:
            self.sim._active_processes -= 1
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "expected a SimEvent/Timeout/SimProcess"
            ) from None
        if triggered:
            # Inlined call_soon (one wake per already-triggered yield
            # target — the posted-receive-already-matched path).
            sim = self.sim
            sim._seq += 1
            sim._fifo.append((sim._seq, self._wake_cb, target))
        elif callbacks is None:
            # Inlined target.add_callback: the untriggered target has
            # no waiters yet (the overwhelmingly common shape), so the
            # single-waiter slot takes the bare callable.
            target._callbacks = self._wake_cb
        elif callbacks.__class__ is list:
            callbacks.append(self._wake_cb)
        else:
            target._callbacks = [callbacks, self._wake_cb]
