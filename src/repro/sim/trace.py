"""Message tracing and communication statistics (legacy front-end).

Attach a :class:`MessageTrace` to an :class:`~repro.mpi.comm.MPIWorld`
(via :func:`trace_world`) and every injected message is recorded with
its simulated send time, endpoints, tag and size.

This module is now a thin compatibility shim over
:mod:`repro.obs.messages`: the record type is an alias of
:class:`~repro.obs.messages.MessageRecord` and every statistic
delegates to the free functions there, shared with the full
:class:`~repro.obs.spans.Tracer`.  New code should use ``repro.obs``
directly — it additionally records spans, arrival times and counters.

**Deprecated.**  Constructing a :class:`MessageTrace` (or calling
:func:`trace_world`) emits a :class:`DeprecationWarning`; the shim is
scheduled for removal in PR 8.  See the migration note in
``docs/api.md`` — in short, trace with
:func:`repro.obs.use_tracer` and feed ``tracer.messages`` to the
:mod:`repro.obs.messages` free functions.
"""

from __future__ import annotations

import warnings

from repro.errors import ConfigurationError
from repro.obs import messages as _stats
from repro.obs.messages import SIZE_EDGES, MessageRecord

__all__ = ["TraceRecord", "MessageTrace", "trace_world"]

#: Legacy name for one recorded message injection.  An alias — code
#: that constructed ``TraceRecord(time, source, dest, tag, nbytes)``
#: keeps working, and gains the optional ``arrival`` field.
TraceRecord = MessageRecord

_DEPRECATION = (
    "repro.sim.trace.MessageTrace is deprecated and will be removed in "
    "PR 8; use repro.obs (use_tracer / Tracer.messages) with the "
    "repro.obs.messages statistics functions instead — see the "
    "migration note in docs/api.md"
)


class MessageTrace:
    """A growing list of message records plus analysis helpers."""

    __slots__ = ("records", "_total_bytes")

    def __init__(self, records: list | None = None) -> None:
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        self.records: list[MessageRecord] = list(records) if records else []
        #: running byte total, maintained by :meth:`record` so the
        #: per-message hot path never re-sums the whole list.
        self._total_bytes: float = sum(r.nbytes for r in self.records)

    def record(self, time: float, source: int, dest: int, tag: int,
               nbytes: float) -> None:
        self.records.append(MessageRecord(time, source, dest, tag, nbytes))
        self._total_bytes += nbytes

    def __eq__(self, other) -> bool:
        if not isinstance(other, MessageTrace):
            return NotImplemented
        return self.records == other.records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MessageTrace({self.records!r})"

    # -- statistics -----------------------------------------------------------

    @property
    def message_count(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> float:
        return self._total_bytes

    def bytes_by_rank(self) -> dict[int, float]:
        """Bytes injected per source rank."""
        return _stats.bytes_by_rank(self.records)

    def traffic_matrix(self, n_ranks: int):
        """Bytes sent from each rank to each rank."""
        return _stats.traffic_matrix(self.records, n_ranks)

    def size_histogram(self, edges=SIZE_EDGES):
        """Message counts per size bucket."""
        return _stats.size_histogram(self.records, edges)

    def window(self, t0: float, t1: float) -> "MessageTrace":
        """Records whose send time falls in [t0, t1)."""
        if t1 < t0:
            raise ConfigurationError(f"empty window [{t0}, {t1})")
        with warnings.catch_warnings():
            # the caller already got the warning when it built *self*
            warnings.simplefilter("ignore", DeprecationWarning)
            return MessageTrace(_stats.window(self.records, t0, t1))

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        return _stats.summary(self.records, total_bytes=self._total_bytes)


def trace_world(world) -> MessageTrace:
    """Instrument an :class:`~repro.mpi.comm.MPIWorld` in place.

    Wraps the world's mailbox-delivery path by monkey-patching the
    per-rank ``isend`` accounting hook; returns the live trace.
    """
    warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        trace = MessageTrace()
    world._trace = trace  # the comm layer checks for this attribute
    return trace
