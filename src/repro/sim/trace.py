"""Message tracing and communication statistics.

Attach a :class:`MessageTrace` to an :class:`~repro.mpi.comm.MPIWorld`
(via :func:`trace_world`) and every injected message is recorded with
its simulated send time, endpoints, tag and size.  The summary methods
answer the questions a performance analyst asks of a real trace:
message-size histogram, per-rank traffic, pairwise traffic matrix,
temporal phases.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["TraceRecord", "MessageTrace", "trace_world"]


@dataclass(frozen=True)
class TraceRecord:
    """One recorded message injection."""

    time: float
    source: int
    dest: int
    tag: int
    nbytes: float


@dataclass
class MessageTrace:
    """A growing list of message records plus analysis helpers."""

    records: list[TraceRecord] = field(default_factory=list)

    def record(self, time: float, source: int, dest: int, tag: int,
               nbytes: float) -> None:
        self.records.append(TraceRecord(time, source, dest, tag, nbytes))

    # -- statistics -----------------------------------------------------------

    @property
    def message_count(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> float:
        return sum(r.nbytes for r in self.records)

    def bytes_by_rank(self) -> dict[int, float]:
        """Bytes injected per source rank."""
        out: dict[int, float] = defaultdict(float)
        for r in self.records:
            out[r.source] += r.nbytes
        return dict(out)

    def traffic_matrix(self, n_ranks: int) -> np.ndarray:
        """Bytes sent from each rank to each rank."""
        if n_ranks < 1:
            raise ConfigurationError(f"n_ranks must be >= 1: {n_ranks}")
        m = np.zeros((n_ranks, n_ranks))
        for r in self.records:
            m[r.source, r.dest] += r.nbytes
        return m

    def size_histogram(self, edges=(0, 64, 1024, 65536, 1 << 20, float("inf"))):
        """Message counts per size bucket."""
        counts = Counter()
        labels = [
            f"[{int(lo)}, {'inf' if hi == float('inf') else int(hi)})"
            for lo, hi in zip(edges, edges[1:])
        ]
        for r in self.records:
            for label, lo, hi in zip(labels, edges, edges[1:]):
                if lo <= r.nbytes < hi:
                    counts[label] += 1
                    break
        return {label: counts.get(label, 0) for label in labels}

    def window(self, t0: float, t1: float) -> "MessageTrace":
        """Records whose send time falls in [t0, t1)."""
        if t1 < t0:
            raise ConfigurationError(f"empty window [{t0}, {t1})")
        return MessageTrace(
            [r for r in self.records if t0 <= r.time < t1]
        )

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        if not self.records:
            return "trace: no messages"
        times = [r.time for r in self.records]
        return (
            f"trace: {self.message_count} messages, "
            f"{self.total_bytes:.3g} bytes total, "
            f"t in [{min(times):.3g}, {max(times):.3g}] s, "
            f"busiest sender rank "
            f"{max(self.bytes_by_rank().items(), key=lambda kv: kv[1])[0]}"
        )


def trace_world(world) -> MessageTrace:
    """Instrument an :class:`~repro.mpi.comm.MPIWorld` in place.

    Wraps the world's mailbox-delivery path by monkey-patching the
    per-rank ``isend`` accounting hook; returns the live trace.
    """
    trace = MessageTrace()
    world._trace = trace  # the comm layer checks for this attribute
    return trace
