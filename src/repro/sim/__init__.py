"""Discrete-event simulation kernel.

A deliberately small, deterministic simpy-like kernel: a time-ordered
event queue (:class:`~repro.sim.engine.Simulator`), generator-based
simulated processes (:class:`~repro.sim.process.SimProcess`), one-shot
events, FIFO resources, bandwidth-serialized links, and mailbox
channels.  The simulated MPI/OpenMP/MLP layers in :mod:`repro.mpi`,
:mod:`repro.openmp` and :mod:`repro.mlp` are built on top of it.
"""

from repro.sim.engine import Simulator
from repro.sim.process import SimEvent, SimProcess, Timeout
from repro.sim.resources import Link, Resource
from repro.sim.channel import Channel
from repro.sim.rng import make_rng

__all__ = [
    "Simulator",
    "SimEvent",
    "SimProcess",
    "Timeout",
    "Resource",
    "Link",
    "Channel",
    "make_rng",
]
