"""Seeded random-number helpers.

Every stochastic element in the package (random-ring orderings, MD
initial velocities, zone-size jitter) draws from a generator created
here, so whole experiments are reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "derive_seed"]

_DEFAULT_SEED = 20050512  # SC 2005 submission era; arbitrary but fixed.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from ``seed``.

    ``None`` selects the package default seed (fixed, for
    reproducibility) — *not* entropy from the OS.
    """
    return np.random.default_rng(_DEFAULT_SEED if seed is None else seed)


def derive_seed(seed: int | None, *labels: object) -> int:
    """Derive a stable child seed from ``seed`` and a label tuple.

    Used so that independent components (e.g. each MPI rank's local
    RNG) get decorrelated but reproducible streams.
    """
    base = _DEFAULT_SEED if seed is None else seed
    ss = np.random.SeedSequence([base & 0xFFFFFFFF, hash(labels) & 0xFFFFFFFF])
    return int(ss.generate_state(1)[0])
