"""Shared resources with FIFO queueing.

:class:`Resource` models a counted resource (e.g. a memory bus port);
:class:`Link` models a bandwidth-serialized communication link where a
transfer of *n* bytes occupies the link for ``n / bandwidth`` seconds,
transfers queueing FIFO behind each other.  Links are how the DES
reproduces *contention*: when many simulated messages cross the same
router link (random-ring at high CPU counts, all-to-all patterns),
their service times stack up.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import SimEvent

__all__ = ["Resource", "Link"]


class Resource:
    """A counted resource with FIFO granting.

    ``acquire()`` returns a :class:`SimEvent` that triggers when a unit
    is granted; the holder must call ``release()`` exactly once.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[SimEvent] = deque()

    def acquire(self) -> SimEvent:
        """Request one unit; the returned event triggers on grant."""
        ev = SimEvent(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without acquire()")
        if self._waiters:
            # Hand the unit directly to the next waiter: in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        """Number of acquirers currently waiting."""
        return len(self._waiters)


class Link:
    """A serialized link with fixed bandwidth.

    A transfer occupies the link for ``nbytes / bandwidth`` seconds;
    concurrent transfers queue FIFO.  ``busy_until`` tracking (rather
    than a process per transfer) keeps large simulations cheap: a
    transfer's completion event is scheduled directly.
    """

    def __init__(self, sim: Simulator, bandwidth: float, name: str = "link") -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        self.sim = sim
        self.bandwidth = bandwidth  # bytes / second
        self.name = name
        self._busy_until = 0.0
        #: total bytes ever pushed through the link (for utilization stats)
        self.bytes_transferred = 0.0

    def transfer(self, nbytes: float) -> SimEvent:
        """Push ``nbytes`` through the link.

        Returns an event triggering when the last byte has left the
        link (store-and-forward at link granularity).
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        now = self.sim.now
        start = max(now, self._busy_until)
        finish = start + nbytes / self.bandwidth
        self._busy_until = finish
        self.bytes_transferred += nbytes
        ev = SimEvent(self.sim)
        self.sim.schedule(finish - now, lambda: ev.succeed())
        return ev

    @property
    def busy_until(self) -> float:
        """Simulated time at which the link next becomes idle."""
        return self._busy_until
