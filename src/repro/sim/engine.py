"""The discrete-event simulator core.

The :class:`Simulator` owns the clock and a heap-ordered queue of
scheduled callbacks.  Everything else (events, processes, resources)
is built by scheduling callbacks here.  Determinism is guaranteed by a
monotonically increasing sequence number that breaks ties between
callbacks scheduled for the same instant: two runs of the same program
always execute callbacks in the same order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import DeadlockError, SimulationError

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes
    ----------
    now:
        Current simulated time in seconds.  Starts at ``0.0`` and only
        moves forward.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], Any]]] = []
        self._seq: int = 0
        #: number of simulated processes that have started but not finished;
        #: used for deadlock detection when the event queue drains.
        self._active_processes: int = 0
        self._blocked_processes: int = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at ``now + delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback))

    def schedule_at(self, when: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at absolute simulated time ``when``."""
        self.schedule(when - self.now, callback)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns ``False`` when the queue is empty, ``True`` otherwise.
        """
        if not self._queue:
            return False
        when, _, callback = heapq.heappop(self._queue)
        if when < self.now:
            raise SimulationError(
                f"time went backwards: {when} < {self.now}"
            )
        self.now = when
        callback()
        return True

    def run(self, until: float | None = None) -> float:
        """Run until the event queue drains (or past ``until`` seconds).

        Raises
        ------
        DeadlockError
            If the queue drains while simulated processes are still
            blocked — the simulated program can never make progress.

        Returns
        -------
        float
            The simulated time at which execution stopped.
        """
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return self.now
            self.step()
        if self._blocked_processes > 0:
            raise DeadlockError(
                f"event queue empty with {self._blocked_processes} "
                f"blocked process(es) at t={self.now:.6g} s"
            )
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of callbacks currently scheduled."""
        return len(self._queue)
