"""The discrete-event simulator core.

The :class:`Simulator` owns the clock and two queues of scheduled
callbacks:

* timed callbacks live in *timestamp buckets*: a heap orders the
  distinct pending timestamps, and a dict maps each timestamp to a
  flat structure-of-arrays bucket ``[seq0, func0, arg0, seq1, ...]``
  holding every callback due at that instant in schedule order.  The
  heap only ever sees one entry per distinct timestamp, so a burst of
  same-time events costs one float heap push instead of N slot
  pushes, and the run loop drains a whole bucket with a flat index
  walk — no per-event heap subscripts, no slot-pool churn;
* a FIFO *fast lane* for zero-delay callbacks (the common case in MPI
  rendezvous chains: event completions, process wake-ups), which
  bypasses the heap entirely.

Everything else (events, processes, resources) is built by scheduling
callbacks here.  Determinism is guaranteed by a monotonically
increasing sequence number shared by both queues that breaks ties
between callbacks scheduled for the same instant: two runs of the same
program always execute callbacks in the same order, and the order is
identical to a single heap keyed on ``(when, seq)`` — the fast lane
and the buckets are implementation details, not semantic changes.
The equivalence argument, relied on throughout:

* within one bucket, entries appear in append order, and ``seq`` is
  monotonic, so a linear walk visits them in ``seq`` order — exactly
  how a ``(when, seq)`` heap would pop them;
* the fast lane interleaves by comparing its head ``seq`` against the
  next pending bucket entry's ``seq``, same as the reference heap's
  tie-break at equal ``when``;
* a callback that schedules more work *at the drained timestamp*
  necessarily gets larger ``seq`` values; its entries land in a fresh
  bucket for the same timestamp, which the outer loop picks up after
  the current flat walk — again matching the reference order.

``run`` batch-drains each bucket without re-checking the ``until``
horizon between entries, arbitrating against the fast lane with one
integer compare per event.
"""

from __future__ import annotations

import gc
import heapq
import math
import sys
from collections import deque
from typing import Any, Callable

from repro.errors import DeadlockError, SimulationError

__all__ = ["Simulator"]

#: Sentinel meaning "call ``func`` with no argument".  Queue entries
#: never carry it: no-arg callbacks are normalized to ``(_invoke,
#: callback)`` at schedule time, so the run loop calls ``func(arg)``
#: unconditionally — one less branch per executed event.  Internal
#: fast-lane callers pass a real ``arg``, paying nothing.
_NO_ARG = object()


def _invoke(callback: Callable[[], Any]) -> None:
    """Adapter putting no-arg public callbacks on the uniform
    ``func(arg)`` calling convention of the queues."""
    callback()

#: Relative tolerance for clamping sub-epsilon *negative* deltas in
#: :meth:`Simulator.schedule_at`.  ``when - now`` can come out a few
#: ulps negative when ``when`` was itself computed as ``now + delta``
#: and round-tripped through floats (e.g. ``-1e-18`` at ``now ~ 1``);
#: treating those as "schedule now" instead of raising keeps long
#: simulations from dying on float noise while still rejecting real
#: attempts to schedule in the past.
_CLAMP_EPS = 4.0 * sys.float_info.epsilon

#: Upper bound on the free bucket pool (enough for the deepest queues
#: the workloads build; beyond this, drained buckets go to the GC).
_MAX_POOL = 4096


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes
    ----------
    now:
        Current simulated time in seconds.  Starts at ``0.0`` and only
        moves forward.
    events_executed:
        Total callbacks executed so far (throughput metric for the
        benchmark-regression harness).
    """

    __slots__ = (
        "now",
        "events_executed",
        "observer",
        "_theap",
        "_buckets",
        "_fifo",
        "_seq",
        "_bpool",
        "_next_timed",
        "_active_processes",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_executed: int = 0
        #: optional engine observer (an
        #: :class:`~repro.obs.counters.EngineSampler`): sampled when
        #: the clock advances past ``observer.next_sample``.  ``None``
        #: (the default) costs one branch per timestamp batch.
        self.observer = None
        #: heap of the *distinct* pending timestamps (floats).  Never
        #: holds duplicates: a timestamp is pushed exactly when its
        #: bucket is created and popped when the bucket drains.
        self._theap: list[float] = []
        #: timestamp -> flat SoA bucket ``[seq, func, arg, ...]`` of
        #: every timed callback due then, in schedule (= seq) order.
        self._buckets: dict[float, list] = {}
        #: zero-delay fast lane: ``(seq, func, arg)`` tuples.
        self._fifo: deque[tuple[int, Callable, Any]] = deque()
        self._seq: int = 0
        #: drained buckets recycled for future timestamps.
        self._bpool: list[list] = []
        #: mirror of ``theap[0]`` (inf when empty): the run loop tests
        #: "is a timed event due?" once per fast-lane event, and a
        #: float compare is cheaper than a heap subscript.
        self._next_timed: float = math.inf
        #: number of simulated processes that have started but not
        #: finished; used for deadlock detection when the event queue
        #: drains: a live process is always either queued to run or
        #: waiting on an untriggered event, so "queue empty while
        #: processes remain" means every one of them is blocked.
        self._active_processes: int = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at ``now + delay`` simulated seconds."""
        if delay == 0.0:
            self._seq += 1
            self._fifo.append((self._seq, _invoke, callback))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        self._push(self.now + delay, _invoke, callback)

    def schedule_call(self, delay: float, func: Callable, arg: Any = _NO_ARG) -> None:
        """Like :meth:`schedule`, but runs ``func(arg)``.

        The internal fast lane: passing the argument through the queue
        entry lets sim primitives (event completion, message delivery,
        process start) avoid allocating a closure per event.
        """
        if arg is _NO_ARG:
            arg = func
            func = _invoke
        if delay == 0.0:
            self._seq += 1
            self._fifo.append((self._seq, func, arg))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        # Inlined _push: one timed insert per simulated message makes
        # the extra call frame measurable.
        when = self.now + delay
        self._seq += 1
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            bpool = self._bpool
            bucket = bpool.pop() if bpool else []
            buckets[when] = bucket
            heapq.heappush(self._theap, when)
            if when < self._next_timed:
                self._next_timed = when
        bucket += (self._seq, func, arg)

    def call_soon(self, func: Callable, arg: Any = _NO_ARG) -> None:
        """Schedule ``func(arg)`` at the current instant (fast lane)."""
        if arg is _NO_ARG:
            arg = func
            func = _invoke
        self._seq += 1
        self._fifo.append((self._seq, func, arg))

    def schedule_at(self, when: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at absolute simulated time ``when``.

        Sub-epsilon negative deltas (float round-trip noise of a few
        ulps) are clamped to "now" instead of raising.
        """
        delta = when - self.now
        if delta < 0.0 and -delta <= _CLAMP_EPS * max(abs(when), abs(self.now), 1.0):
            delta = 0.0
        self.schedule(delta, callback)

    def _push(self, when: float, func: Callable, arg: Any) -> None:
        """Append a timed event to its timestamp bucket (creating it
        — and heap-registering the timestamp — on first use)."""
        self._seq += 1
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            bpool = self._bpool
            bucket = bpool.pop() if bpool else []
            buckets[when] = bucket
            heapq.heappush(self._theap, when)
            if when < self._next_timed:
                self._next_timed = when
        bucket += (self._seq, func, arg)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns ``False`` when the queue is empty, ``True`` otherwise.
        """
        fifo = self._fifo
        if fifo:
            # A timed event at the current instant with a smaller
            # sequence number was scheduled first and must run first.
            if (
                self._next_timed <= self.now
                and self._buckets[self._next_timed][0] < fifo[0][0]
            ):
                return self._step_timed()
            _, func, arg = fifo.popleft()
            self.events_executed += 1
            func(arg)
            return True
        if not self._theap:
            return False
        return self._step_timed()

    def _step_timed(self) -> bool:
        theap = self._theap
        when = theap[0]
        if when < self.now:
            raise SimulationError(f"time went backwards: {when} < {self.now}")
        self.now = when
        observer = self.observer
        if observer is not None and when >= observer.next_sample:
            observer.sample(self)
        buckets = self._buckets
        bucket = buckets[when]
        func = bucket[1]
        arg = bucket[2]
        del bucket[:3]
        if not bucket:
            heapq.heappop(theap)
            del buckets[when]
            self._next_timed = theap[0] if theap else math.inf
            if len(self._bpool) < _MAX_POOL:
                self._bpool.append(bucket)
        self.events_executed += 1
        func(arg)
        return True

    def run(self, until: float | None = None) -> float:
        """Run until the event queue drains (or past ``until`` seconds).

        If the queue drains (or is already empty) before ``until``,
        the clock still advances to ``until`` — ``run(until=t)``
        always leaves ``now == t`` unless an event past ``t`` remains
        pending.

        Raises
        ------
        DeadlockError
            If the queue drains while simulated processes are still
            blocked — the simulated program can never make progress.

        Returns
        -------
        float
            The simulated time at which execution stopped.
        """
        fifo = self._fifo
        theap = self._theap
        buckets = self._buckets
        bpool = self._bpool
        heappop = heapq.heappop
        inf = math.inf
        horizon = inf if until is None else until
        executed = 0
        # ``now`` mirrors ``self.now`` locally: only this loop advances
        # the clock, so the mirror cannot go stale, and it turns an
        # attribute load per fast-lane event into a local read.
        now = self.now
        # Pause the *cyclic* collector for the duration of the loop:
        # per-event garbage (queue tuples, messages, fired events) is
        # acyclic and freed by refcounting the moment the last
        # reference drops, so generation-0 scans triggered by the
        # allocation rate buy nothing here — they just interrupt the
        # loop every ~700 allocations.  Cycle collection resumes (and
        # catches anything deferred) as soon as run() returns.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                if fifo:
                    when = self._next_timed
                    if when > now:
                        # No timed event is due, so every timed event
                        # a callback schedules from here (always in
                        # the future, or at worst at ``now`` with a
                        # *larger* seq) sorts after the entries
                        # currently queued — the snapshot can drain
                        # with no arbitration at all.  Entries
                        # appended *during* the drain are
                        # re-arbitrated on the next outer iteration.
                        popleft = fifo.popleft
                        for _ in range(len(fifo)):
                            _, func, arg = popleft()
                            executed += 1
                            func(arg)
                        continue
                    bucket = buckets[when]
                    if fifo[0][0] < bucket[0]:
                        # The FIFO head was scheduled before the next
                        # timed entry: it wins the tie-break.
                        _, func, arg = fifo.popleft()
                        executed += 1
                        func(arg)
                        continue
                    # Fall through: drain the due bucket (now == when,
                    # clock/observer already handled when it advanced).
                else:
                    if not theap:
                        break
                    when = theap[0]
                    if when > horizon:
                        self.now = until  # type: ignore[assignment]
                        return self.now
                    if when < now:
                        raise SimulationError(
                            f"time went backwards: {when} < {now}"
                        )
                    self.now = now = when
                    observer = self.observer
                    if observer is not None and when >= observer.next_sample:
                        observer.sample(self)
                    bucket = buckets[when]
                # Batch-drain the bucket: a flat index walk, yielding
                # to fast-lane work scheduled mid-drain whenever its
                # seq is smaller than the next bucket entry's.  Work a
                # callback schedules *at this same timestamp* lands in
                # a fresh bucket (with larger seqs) that the outer
                # loop picks up right after this walk.
                heappop(theap)
                del buckets[when]
                self._next_timed = theap[0] if theap else inf
                i = 0
                n = len(bucket)
                try:
                    if not fifo:
                        # The fast lane is empty as the walk starts, so
                        # every fast-lane entry appended by a drained
                        # callback carries a seq larger than all bucket
                        # seqs (which were assigned earlier) — the
                        # per-event arbitration can't ever fire and is
                        # dropped from the loop entirely.  This is the
                        # clock-advance path, i.e. almost every drain.
                        while i < n:
                            func = bucket[i + 1]
                            arg = bucket[i + 2]
                            i += 3
                            executed += 1
                            func(arg)
                    else:
                        while i < n:
                            seq = bucket[i]
                            if fifo and fifo[0][0] < seq:
                                _, func, arg = fifo.popleft()
                                executed += 1
                                func(arg)
                                continue
                            func = bucket[i + 1]
                            arg = bucket[i + 2]
                            i += 3
                            executed += 1
                            func(arg)
                except BaseException:
                    # Re-register the unconsumed tail so a raising
                    # callback leaves the queue resumable (the old
                    # heap kept un-popped slots implicitly).  A
                    # callback may already have opened a *new* bucket
                    # at this timestamp; its seqs are larger, so the
                    # tail goes in front.
                    if i < n:
                        tail = bucket[i:]
                        fresh = buckets.get(when)
                        if fresh is not None:
                            tail += fresh
                        else:
                            heapq.heappush(theap, when)
                        buckets[when] = tail
                        if when < self._next_timed:
                            self._next_timed = when
                    raise
                bucket.clear()  # drop refs so pooled buckets don't pin objects
                if len(bpool) < _MAX_POOL:
                    bpool.append(bucket)
        finally:
            self.events_executed += executed
            if gc_was_enabled:
                gc.enable()
        if self._active_processes > 0:
            raise DeadlockError(
                f"event queue empty with {self._active_processes} "
                f"blocked process(es) at t={self.now:.6g} s"
            )
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of callbacks currently scheduled."""
        pending = len(self._fifo)
        for bucket in self._buckets.values():
            pending += len(bucket) // 3
        return pending
