"""The discrete-event simulator core.

The :class:`Simulator` owns the clock and two queues of scheduled
callbacks:

* a heap-ordered queue of *timed* callbacks, whose entries are
  reusable four-field list slots (``[when, seq, func, arg]``) drawn
  from a free pool — the "slotted event pool" that avoids allocating
  a fresh tuple per scheduled event;
* a FIFO *fast lane* for zero-delay callbacks (the common case in MPI
  rendezvous chains: event completions, process wake-ups), which
  bypasses the heap entirely.

Everything else (events, processes, resources) is built by scheduling
callbacks here.  Determinism is guaranteed by a monotonically
increasing sequence number shared by both queues that breaks ties
between callbacks scheduled for the same instant: two runs of the same
program always execute callbacks in the same order, and the order is
identical to a single heap keyed on ``(when, seq)`` — the fast lane is
an implementation detail, not a semantic change.

``run`` batch-drains all callbacks that share a timestamp without
re-checking the ``until`` horizon between them, falling back to the
general two-queue arbitration only when a drained callback schedules
new zero-delay work.
"""

from __future__ import annotations

import heapq
import math
import sys
from collections import deque
from typing import Any, Callable

from repro.errors import DeadlockError, SimulationError

__all__ = ["Simulator"]

#: Sentinel meaning "call ``func`` with no argument" in a queue entry.
#: Internal fast-lane callers pass a real ``arg`` instead, so hot
#: paths avoid allocating a closure per scheduled callback.
_NO_ARG = object()

#: Relative tolerance for clamping sub-epsilon *negative* deltas in
#: :meth:`Simulator.schedule_at`.  ``when - now`` can come out a few
#: ulps negative when ``when`` was itself computed as ``now + delta``
#: and round-tripped through floats (e.g. ``-1e-18`` at ``now ~ 1``);
#: treating those as "schedule now" instead of raising keeps long
#: simulations from dying on float noise while still rejecting real
#: attempts to schedule in the past.
_CLAMP_EPS = 4.0 * sys.float_info.epsilon

#: Upper bound on the free slot pool (enough for the deepest queues the
#: workloads build; beyond this, slots are simply dropped to the GC).
_MAX_POOL = 4096


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes
    ----------
    now:
        Current simulated time in seconds.  Starts at ``0.0`` and only
        moves forward.
    events_executed:
        Total callbacks executed so far (throughput metric for the
        benchmark-regression harness).
    """

    __slots__ = (
        "now",
        "events_executed",
        "observer",
        "_heap",
        "_fifo",
        "_seq",
        "_pool",
        "_next_timed",
        "_active_processes",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_executed: int = 0
        #: optional engine observer (an
        #: :class:`~repro.obs.counters.EngineSampler`): sampled when
        #: the clock advances past ``observer.next_sample``.  ``None``
        #: (the default) costs one branch per timestamp batch.
        self.observer = None
        #: timed events: reusable ``[when, seq, func, arg]`` slots.
        self._heap: list[list] = []
        #: zero-delay fast lane: ``(seq, func, arg)`` tuples.
        self._fifo: deque[tuple[int, Callable, Any]] = deque()
        self._seq: int = 0
        #: free slots recycled between timed events.
        self._pool: list[list] = []
        #: mirror of ``heap[0][0]`` (inf when empty): the run loop
        #: tests "is a timed event due?" once per fast-lane event, and
        #: a float compare is cheaper than two heap subscripts.
        self._next_timed: float = math.inf
        #: number of simulated processes that have started but not
        #: finished; used for deadlock detection when the event queue
        #: drains: a live process is always either queued to run or
        #: waiting on an untriggered event, so "queue empty while
        #: processes remain" means every one of them is blocked.
        self._active_processes: int = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at ``now + delay`` simulated seconds."""
        if delay == 0.0:
            self._seq += 1
            self._fifo.append((self._seq, callback, _NO_ARG))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        self._push(self.now + delay, callback, _NO_ARG)

    def schedule_call(self, delay: float, func: Callable, arg: Any = _NO_ARG) -> None:
        """Like :meth:`schedule`, but runs ``func(arg)``.

        The internal fast lane: passing the argument through the queue
        entry lets sim primitives (event completion, message delivery,
        process start) avoid allocating a closure per event.
        """
        if delay == 0.0:
            self._seq += 1
            self._fifo.append((self._seq, func, arg))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        # Inlined _push: one timed insert per simulated message makes
        # the extra call frame measurable.
        when = self.now + delay
        self._seq += 1
        pool = self._pool
        if pool:
            slot = pool.pop()
            slot[0] = when
            slot[1] = self._seq
            slot[2] = func
            slot[3] = arg
        else:
            slot = [when, self._seq, func, arg]
        heapq.heappush(self._heap, slot)
        if when < self._next_timed:
            self._next_timed = when

    def call_soon(self, func: Callable, arg: Any = _NO_ARG) -> None:
        """Schedule ``func(arg)`` at the current instant (fast lane)."""
        self._seq += 1
        self._fifo.append((self._seq, func, arg))

    def schedule_at(self, when: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at absolute simulated time ``when``.

        Sub-epsilon negative deltas (float round-trip noise of a few
        ulps) are clamped to "now" instead of raising.
        """
        delta = when - self.now
        if delta < 0.0 and -delta <= _CLAMP_EPS * max(abs(when), abs(self.now), 1.0):
            delta = 0.0
        self.schedule(delta, callback)

    def _push(self, when: float, func: Callable, arg: Any) -> None:
        """Heap-insert a timed event, reusing a pooled slot if one is free."""
        self._seq += 1
        pool = self._pool
        if pool:
            slot = pool.pop()
            slot[0] = when
            slot[1] = self._seq
            slot[2] = func
            slot[3] = arg
        else:
            slot = [when, self._seq, func, arg]
        heapq.heappush(self._heap, slot)
        if when < self._next_timed:
            self._next_timed = when

    # -- execution ----------------------------------------------------------

    def _recycle(self, slot: list) -> None:
        """Return a popped heap slot to the free pool."""
        slot[2] = slot[3] = None  # drop refs so pooled slots don't pin objects
        if len(self._pool) < _MAX_POOL:
            self._pool.append(slot)

    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns ``False`` when the queue is empty, ``True`` otherwise.
        """
        fifo = self._fifo
        heap = self._heap
        if fifo:
            # A timed event at the current instant with a smaller
            # sequence number was scheduled first and must run first.
            if heap and heap[0][0] <= self.now and heap[0][1] < fifo[0][0]:
                return self._step_timed()
            _, func, arg = fifo.popleft()
            self.events_executed += 1
            if arg is _NO_ARG:
                func()
            else:
                func(arg)
            return True
        if not heap:
            return False
        return self._step_timed()

    def _step_timed(self) -> bool:
        heap = self._heap
        slot = heapq.heappop(heap)
        self._next_timed = heap[0][0] if heap else math.inf
        when, _, func, arg = slot
        if when < self.now:
            raise SimulationError(f"time went backwards: {when} < {self.now}")
        self.now = when
        observer = self.observer
        if observer is not None and when >= observer.next_sample:
            observer.sample(self)
        self._recycle(slot)
        self.events_executed += 1
        if arg is _NO_ARG:
            func()
        else:
            func(arg)
        return True

    def run(self, until: float | None = None) -> float:
        """Run until the event queue drains (or past ``until`` seconds).

        If the queue drains (or is already empty) before ``until``,
        the clock still advances to ``until`` — ``run(until=t)``
        always leaves ``now == t`` unless an event past ``t`` remains
        pending.

        Raises
        ------
        DeadlockError
            If the queue drains while simulated processes are still
            blocked — the simulated program can never make progress.

        Returns
        -------
        float
            The simulated time at which execution stopped.
        """
        fifo = self._fifo
        heap = self._heap
        pool = self._pool
        heappop = heapq.heappop
        no_arg = _NO_ARG
        inf = math.inf
        horizon = inf if until is None else until
        executed = 0
        try:
            while True:
                if fifo:
                    # Timed event due now?  ``_next_timed`` mirrors
                    # ``heap[0][0]`` so the common miss is one float
                    # compare.
                    if self._next_timed <= self.now:
                        if heap[0][1] < fifo[0][0]:
                            # Scheduled before the FIFO head: it wins
                            # the tie-break.
                            slot = heappop(heap)
                            self._next_timed = heap[0][0] if heap else inf
                            func = slot[2]
                            arg = slot[3]
                            slot[2] = slot[3] = None
                            if len(pool) < _MAX_POOL:
                                pool.append(slot)
                        else:
                            _, func, arg = fifo.popleft()
                        executed += 1
                        if arg is no_arg:
                            func()
                        else:
                            func(arg)
                        continue
                    # No timed event is due, so every timed event a
                    # callback schedules from here (always in the
                    # future, or at worst at ``now`` with a *larger*
                    # seq) sorts after the entries currently queued —
                    # the snapshot can drain with no arbitration at
                    # all.  Entries appended *during* the drain are
                    # re-arbitrated on the next outer iteration.
                    popleft = fifo.popleft
                    for _ in range(len(fifo)):
                        _, func, arg = popleft()
                        executed += 1
                        if arg is no_arg:
                            func()
                        else:
                            func(arg)
                    continue
                if not heap:
                    break
                when = heap[0][0]
                if when > horizon:
                    self.now = until  # type: ignore[assignment]
                    return self.now
                if when < self.now:
                    raise SimulationError(
                        f"time went backwards: {when} < {self.now}"
                    )
                self.now = when
                observer = self.observer
                if observer is not None and when >= observer.next_sample:
                    observer.sample(self)
                # Batch-drain every timed event sharing this timestamp.
                # A callback may schedule zero-delay work; bail to the
                # outer loop then so the seq tie-break is arbitrated.
                while heap and heap[0][0] == when:
                    slot = heappop(heap)
                    self._next_timed = heap[0][0] if heap else inf
                    func = slot[2]
                    arg = slot[3]
                    slot[2] = slot[3] = None
                    if len(pool) < _MAX_POOL:
                        pool.append(slot)
                    executed += 1
                    if arg is no_arg:
                        func()
                    else:
                        func(arg)
                    if fifo:
                        break
        finally:
            self.events_executed += executed
        if self._active_processes > 0:
            raise DeadlockError(
                f"event queue empty with {self._active_processes} "
                f"blocked process(es) at t={self.now:.6g} s"
            )
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of callbacks currently scheduled."""
        return len(self._heap) + len(self._fifo)
