"""Mailbox channel used by the simulated MPI layer.

A :class:`Channel` is an unbounded mailbox with *matching*: receivers
ask for a message satisfying a predicate (source/tag matching in MPI
terms); if none is buffered the receiver blocks until a matching
message is put.  Unmatched messages buffer (eager-send semantics).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.sim.engine import Simulator
from repro.sim.process import SimEvent

__all__ = ["Channel"]

MatchFn = Callable[[Any], bool]


def _match_any(_msg: Any) -> bool:
    return True


class Channel:
    """An unbounded matching mailbox."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._messages: deque[Any] = deque()
        self._getters: deque[tuple[MatchFn, SimEvent]] = deque()

    def put(self, message: Any) -> None:
        """Deliver ``message``; wakes the oldest matching getter."""
        for i, (match, ev) in enumerate(self._getters):
            if match(message):
                del self._getters[i]
                ev.succeed(message)
                return
        self._messages.append(message)

    def get(self, match: MatchFn | None = None) -> SimEvent:
        """Request a message satisfying ``match`` (default: any).

        The returned event triggers with the message as its value.
        Buffered messages are matched in FIFO order.
        """
        if match is None:
            match = _match_any
        ev = SimEvent(self.sim)
        for i, message in enumerate(self._messages):
            if match(message):
                del self._messages[i]
                ev.succeed(message)
                return ev
        self._getters.append((match, ev))
        return ev

    @property
    def buffered(self) -> int:
        """Number of messages waiting to be received."""
        return len(self._messages)

    @property
    def waiting_getters(self) -> int:
        """Number of blocked receive requests."""
        return len(self._getters)
