"""Mailbox channel used by the simulated MPI layer.

A :class:`Channel` is an unbounded mailbox with *matching*: receivers
ask for a message satisfying a predicate (source/tag matching in MPI
terms); if none is buffered the receiver blocks until a matching
message is put.  Unmatched messages buffer (eager-send semantics).

Two matching interfaces exist:

* :meth:`Channel.get` takes an arbitrary predicate (general case);
* :meth:`Channel.get_matching` takes ``(source, tag)`` with ``-1`` as
  the wildcard and stores the pair instead of a closure — the MPI
  hot path, where building and calling a predicate per message is
  measurable overhead.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.sim.engine import Simulator
from repro.sim.process import SimEvent

__all__ = ["Channel"]

MatchFn = Callable[[Any], bool]

#: Wildcard for :meth:`Channel.get_matching` (mirrors MPI ANY_SOURCE /
#: ANY_TAG, which are also ``-1``).
ANY = -1

#: pre-bound allocator for getter events — one per posted receive,
#: without the per-call ``SimEvent.__new__`` attribute lookup.
_event_new = SimEvent.__new__


def _match_any(_msg: Any) -> bool:
    return True


class Channel:
    """An unbounded matching mailbox."""

    __slots__ = ("sim", "_messages", "_getters")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._messages: deque[Any] = deque()
        #: waiting receivers: (spec, event) where spec is either a
        #: predicate or a (source, tag) pair from get_matching.
        self._getters: deque[tuple[Any, SimEvent]] = deque()

    def put(self, message: Any) -> None:
        """Deliver ``message``; wakes the oldest matching getter."""
        getters = self._getters
        if getters:
            # Fast path: a single waiting getter with a (source, tag)
            # spec matched on the first probe — the MPI rendezvous
            # shape, one per delivered message — with the event
            # trigger inlined (see _succeed for the slow-path twin).
            spec, ev = getters[0]
            if type(spec) is tuple:
                source, tag = spec
                if (source == ANY or source == message.source) and (
                    tag == ANY or tag == message.tag
                ):
                    getters.popleft()
                    ev.triggered = True
                    ev.value = message
                    callbacks = ev._callbacks
                    if callbacks is not None:
                        ev._callbacks = None
                        sim = self.sim
                        if callbacks.__class__ is list:
                            seq = sim._seq
                            fifo = sim._fifo
                            for cb in callbacks:
                                seq += 1
                                fifo.append((seq, cb, ev))
                            sim._seq = seq
                        else:
                            # single waiter: one fast-lane append, no
                            # list walk (see SimEvent._callbacks).
                            sim._seq = seq = sim._seq + 1
                            sim._fifo.append((seq, callbacks, ev))
                    return
            elif spec(message):
                getters.popleft()
                self._succeed(ev, message)
                return
            # Slow path: scan the remaining getters in FIFO order.
            for i in range(1, len(getters)):
                spec, ev = getters[i]
                if type(spec) is tuple:
                    source, tag = spec
                    if (source == ANY or source == message.source) and (
                        tag == ANY or tag == message.tag
                    ):
                        del getters[i]
                        self._succeed(ev, message)
                        return
                elif spec(message):
                    del getters[i]
                    self._succeed(ev, message)
                    return
        self._messages.append(message)

    def _succeed(self, ev: SimEvent, message: Any) -> None:
        """Inlined ``ev.succeed(message)`` for freshly matched getters.

        Getter events are created by get/get_matching and triggered at
        most once (here), so the already-triggered guard is skipped —
        this runs once per delivered message.
        """
        ev.triggered = True
        ev.value = message
        callbacks = ev._callbacks
        if callbacks is not None:
            ev._callbacks = None
            sim = self.sim
            if callbacks.__class__ is list:
                seq = sim._seq
                fifo = sim._fifo
                for cb in callbacks:
                    seq += 1
                    fifo.append((seq, cb, ev))
                sim._seq = seq
            else:
                sim._seq = seq = sim._seq + 1
                sim._fifo.append((seq, callbacks, ev))

    def get(self, match: MatchFn | None = None) -> SimEvent:
        """Request a message satisfying ``match`` (default: any).

        The returned event triggers with the message as its value.
        Buffered messages are matched in FIFO order.
        """
        if match is None:
            match = _match_any
        ev = SimEvent(self.sim)
        for i, message in enumerate(self._messages):
            if match(message):
                del self._messages[i]
                ev.succeed(message)
                return ev
        self._getters.append((match, ev))
        return ev

    def get_matching(self, source: int = ANY, tag: int = ANY) -> SimEvent:
        """Request a message by ``(source, tag)``; ``-1`` is a wildcard.

        Equivalent to ``get(lambda m: ...)`` but without allocating a
        predicate, and with the pair compared inline on every buffered
        message — the fast path :meth:`repro.mpi.comm.MPIComm.irecv`
        uses.
        """
        # Inline SimEvent construction (one per posted receive).
        ev = _event_new(SimEvent)
        ev.sim = self.sim
        ev.triggered = False
        ev.value = None
        ev._callbacks = None
        messages = self._messages
        if messages:
            for i, message in enumerate(messages):
                if (source == ANY or source == message.source) and (
                    tag == ANY or tag == message.tag
                ):
                    del messages[i]
                    self._succeed(ev, message)
                    return ev
        self._getters.append(((source, tag), ev))
        return ev

    @property
    def buffered(self) -> int:
        """Number of messages waiting to be received."""
        return len(self._messages)

    @property
    def waiting_getters(self) -> int:
        """Number of blocked receive requests."""
        return len(self._getters)
