"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    All registered experiments with descriptions.
``run <id> [--fast] [--format text|csv|markdown|json]``
    Regenerate one table/figure and print it.
``all [--fast]``
    Regenerate every experiment (the full characterization).
``machine``
    Print the Columbia configuration (Table 1).
``calibration``
    Print the calibration provenance index.
``trace <id> [--trace DIR]``
    Run the experiment's representative DES cell under the tracer and
    write a Perfetto-loadable Chrome trace + spans CSV, printing the
    compute/comm/wait decomposition and the critical path.
``serve [--host H] [--port P] [--max-queue N] [--max-batch N]
[--workers N] [--quota-rate R [--quota-burst B]]``
    Long-lived scenario service (JSON lines over TCP): queues,
    coalesces and micro-batches scenario cells against the shared
    cache; analytic-fidelity requests resolve inline through the
    surrogate.  ``--workers N`` (N > 1) runs the sharded tier — N
    worker processes behind a consistent-hashing router over a shared
    on-disk cache, same protocol, worker-death failover;
    ``--quota-rate``/``--quota-burst`` add per-client token-bucket
    admission.  See docs/api.md for the protocol and
    :class:`repro.serve.ServeClient`.
``calibrate --fidelity [--full] [--bound ERR] [--check]``
    Measure surrogate-vs-DES relative error per workload family
    across every registered experiment and persist the error table
    the fidelity dispatch consults (``--check`` verifies the
    committed table instead of rewriting it).
``explore [--study NAME | --workload ID --space SPEC --objective SPEC]``
    Design-space search over the simulated machine: a declarative
    space (machine/placement/parameter/fault dimensions), a quantile
    objective, and a seeded optimizer (``grid``/``random``/
    ``evolve``) submitting candidate batches through the serve tier
    — analytic-fidelity candidates resolve inline at ~1e5 cells/s.
    ``--journal FILE`` writes a resumable JSONL trajectory; budgets
    via ``--max-cells``/``--max-seconds``.  See docs/explore.md.

``run``, ``all`` and ``report`` share the run-pipeline options:
``--jobs N|auto`` executes cells on a process pool (output is
row-for-row identical to sequential), ``--cache-dir DIR`` points the
content-addressed cell cache somewhere specific (default
``.repro-cache``, or ``$REPRO_CACHE_DIR``), and ``--no-cache``
disables reuse entirely.  A warm cache makes ``repro all`` nearly
instant: only cells whose scenario, calibration fingerprint, or
package version changed are re-simulated.  ``--fidelity
analytic|hybrid`` routes cells through the calibrated surrogate tier
instead of the DES (transparently escalating cells it cannot vouch
for; ``--refuse-escalation`` fails them instead).
"""

from __future__ import annotations

import argparse
import sys

from repro.core import experiment_specs, run_experiment
from repro.core.calibration import calibration_report
from repro.core.export import to_csv, to_json, to_markdown
from repro.errors import ReproError
from repro.machine.specs import format_table1

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An Application-Based Performance "
            "Characterization of the Columbia Supercluster' (SC 2005)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_runner_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", default="1", metavar="N",
            help="cells to run in parallel (a number, or 'auto' for "
                 "one per CPU); default 1 (sequential)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="ignore and don't update the cell result cache",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="cell cache directory (default .repro-cache or "
                 "$REPRO_CACHE_DIR)",
        )
        p.add_argument(
            "--trace", default=None, metavar="DIR", dest="trace_dir",
            help="write a per-cell Chrome/Perfetto trace JSON into DIR "
                 "(forces cell execution; cached results are bypassed)",
        )
        p.add_argument(
            "--keep-going", action="store_true",
            help="exit 0 even when cells failed (failures still print)",
        )
        p.add_argument(
            "--faults", default=None, metavar="SPEC",
            help="inject machine faults into every cell, e.g. "
                 "'degrade:link_class=inter_node,latency_factor=2; "
                 "drop:probability=0.01; seed=1' (see docs/architecture.md)",
        )
        p.add_argument(
            "--fidelity", default=None,
            choices=("analytic", "hybrid", "full"),
            help="execution tier for cells that don't declare their "
                 "own: 'analytic' evaluates through the calibrated "
                 "surrogate (microseconds/cell, no workers), 'hybrid' "
                 "executes compute with an analytic network, 'full' "
                 "(default) runs the DES path",
        )
        p.add_argument(
            "--refuse-escalation", action="store_true",
            help="fail cells the surrogate cannot serve within the "
                 "calibrated bound instead of transparently running "
                 "them at full fidelity",
        )
        p.add_argument(
            "--retries", type=int, default=0, metavar="N",
            help="re-run a failed cell up to N times with exponential "
                 "backoff before recording the failure",
        )
        p.add_argument(
            "--checkpoint", default=None, metavar="FILE",
            help="journal completed cells to FILE (JSONL); a re-run "
                 "resumes from it instead of re-executing finished cells",
        )

    sub.add_parser("list", help="list all experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment_id", help="e.g. table2, fig5, ablation_cache")
    run_p.add_argument("--fast", action="store_true",
                       help="trimmed sweeps (for smoke runs)")
    run_p.add_argument(
        "--format", default="text",
        choices=("text", "csv", "markdown", "json", "chart"),
        help="output rendering ('chart' draws the figure as ASCII)",
    )
    add_runner_options(run_p)

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--fast", action="store_true")
    add_runner_options(all_p)

    trace_p = sub.add_parser(
        "trace",
        help="trace one experiment's representative cell "
             "(Perfetto JSON + decomposition)",
    )
    trace_p.add_argument("experiment_id", help="e.g. fig9, fig7")
    trace_p.add_argument(
        "--trace", default="out", metavar="DIR", dest="trace_dir",
        help="directory for the trace JSON + spans CSV (default ./out)",
    )

    sub.add_parser("machine", help="print the machine configuration")
    sub.add_parser("calibration", help="print calibration provenance")

    claims_p = sub.add_parser(
        "claims", help="verify every prose claim (the reproduction certificate)"
    )
    claims_p.add_argument("claim_ids", nargs="*", help="subset of claim ids")

    report_p = sub.add_parser(
        "report", help="write the full characterization report directory"
    )
    report_p.add_argument("--output", required=True, help="directory to write")
    report_p.add_argument("--fast", action="store_true", default=True)
    report_p.add_argument("--full", dest="fast", action="store_false",
                          help="full sweeps (slow: minutes of DES)")
    add_runner_options(report_p)

    advise_p = sub.add_parser(
        "advise", help="lint a job layout against the paper's lessons"
    )
    advise_p.add_argument("--nodes", type=int, default=1)
    advise_p.add_argument("--node-type", default="BX2b",
                          choices=("3700", "BX2a", "BX2b"))
    advise_p.add_argument("--fabric", default="numalink4",
                          choices=("numalink4", "infiniband"))
    advise_p.add_argument("--ranks", type=int, required=True)
    advise_p.add_argument("--threads", type=int, default=1)
    advise_p.add_argument("--stride", type=int, default=1)
    advise_p.add_argument("--unpinned", action="store_true")
    advise_p.add_argument("--released-mpt", action="store_true")
    advise_p.add_argument("--bandwidth-bound", action="store_true")

    hpcc_p = sub.add_parser(
        "hpcc", help="run the HPCC subset and print an hpccoutf-style summary"
    )
    hpcc_p.add_argument("--node-type", default="BX2b",
                        choices=("3700", "BX2a", "BX2b"))
    hpcc_p.add_argument("--cpus", type=int, default=64)

    serve_p = sub.add_parser(
        "serve", help="long-lived scenario service (JSON lines over TCP)"
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default 127.0.0.1)")
    serve_p.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default 7447; 0 lets the OS pick)",
    )
    serve_p.add_argument(
        "--max-queue", type=int, default=1024, metavar="N",
        help="queued cells before admission control rejects "
             "with a retry-after hint (default 1024)",
    )
    serve_p.add_argument(
        "--max-batch", type=int, default=32, metavar="N",
        help="most cells packed into one runner batch (default 32)",
    )
    serve_p.add_argument(
        "--batch-wait", type=float, default=0.0, metavar="SECONDS",
        help="linger before forming a batch so request bursts pack "
             "together (default 0: dispatch immediately)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes; >1 runs the sharded tier (consistent-"
             "hash router + shared on-disk result cache; requires a "
             "cache, so not with --no-cache) (default 1)",
    )
    serve_p.add_argument(
        "--quota-rate", type=float, default=None, metavar="R",
        help="per-client admission quota: sustained requests/second "
             "per client_id (token bucket; off unless set)",
    )
    serve_p.add_argument(
        "--quota-burst", type=float, default=None, metavar="B",
        help="per-client burst allowance in requests (default 10x "
             "--quota-rate)",
    )
    add_runner_options(serve_p)

    explore_p = sub.add_parser(
        "explore",
        help="design-space search over the simulated machine",
    )
    explore_p.add_argument(
        "--study", default=None, metavar="NAME",
        help="run a named worked study ('cheapest-bx2' or "
             "'worst-faults') instead of declaring a space by hand",
    )
    explore_p.add_argument(
        "--workload", default=None, metavar="ID",
        help="workload id the candidates run (e.g. fig9.cell)",
    )
    explore_p.add_argument(
        "--space", default=None, metavar="SPEC",
        help="search dimensions, e.g. 'machine.clock_ghz=1.3:1.9:4; "
             "machine.l3_mb=6,9,12; faults=none|boot_cpuset' "
             "(see docs/explore.md for the grammar)",
    )
    explore_p.add_argument(
        "--objective", default=None, metavar="SPEC",
        help="what to optimize, e.g. 'metric=3,mode=max,"
             "quantile=0.95,repeats=5' (metric is a result-row "
             "column index)",
    )
    explore_p.add_argument(
        "--base", default=None, metavar="SPEC",
        help="fixed values every candidate shares, e.g. "
             "'cpus=256,threads=2'",
    )
    explore_p.add_argument(
        "--space-fidelity", default="analytic",
        choices=("analytic", "hybrid", "full"),
        help="execution tier candidate cells run at (default "
             "analytic: the surrogate fast path)",
    )
    explore_p.add_argument(
        "--optimizer", default=None,
        choices=("grid", "random", "evolve"),
        help="search strategy (default: random, or the study's own)",
    )
    explore_p.add_argument(
        "--seed", type=int, default=0,
        help="optimizer seed (the whole exploration is deterministic "
             "from it; default 0)",
    )
    explore_p.add_argument(
        "--batch", type=int, default=64, metavar="N",
        help="candidates asked per optimizer round (default 64)",
    )
    explore_p.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="budget: most replicate cells submitted",
    )
    explore_p.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="budget: wall-clock limit for the search loop",
    )
    explore_p.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append the trajectory to FILE (JSONL); a re-run with "
             "the same space/objective/optimizer resumes from it",
    )
    add_runner_options(explore_p)

    compare_p = sub.add_parser(
        "compare",
        help="run the application suite across machine-zoo configs "
             "and report who-wins/crossover tables",
    )
    compare_p.add_argument(
        "--machines", required=True, metavar="A,B,...",
        help="comma-separated registered machine names "
             "(see repro machine for the zoo)",
    )
    compare_p.add_argument(
        "--experiments", default=None, metavar="APP,...",
        help="comma-separated apps (default: all of "
             "bt-mz,sp-mz,overflow,stream,dgemm)",
    )
    compare_p.add_argument(
        "--sizes", default=None, metavar="N,...",
        help="comma-separated CPU counts (default: 16,64,256)",
    )
    add_runner_options(compare_p)

    cal_p = sub.add_parser(
        "calibrate",
        help="measure surrogate-vs-full error and persist the table",
    )
    cal_p.add_argument(
        "--fidelity", action="store_true",
        help="calibrate the fidelity tiers: run every experiment cell "
             "through both the full path and the surrogate, record "
             "per-family relative error, verify exact-passthrough "
             "claims, and write the error table the Runner's "
             "escalate/refuse policy consults",
    )
    cal_p.add_argument(
        "--fast", action="store_true", default=True,
        help="trimmed sweeps (default)",
    )
    cal_p.add_argument(
        "--full", dest="fast", action="store_false",
        help="full sweeps (slow: minutes of DES)",
    )
    cal_p.add_argument(
        "--bound", type=float, default=None, metavar="ERR",
        help="acceptable worst-case relative error for modeled "
             "surrogates (default 0.5)",
    )
    cal_p.add_argument(
        "--output", default=None, metavar="FILE",
        help="where to write the table (default: the committed "
             "src/repro/surrogate/calibration.json)",
    )
    cal_p.add_argument(
        "--check", action="store_true",
        help="don't write: verify the committed table is fresh and "
             "every family stays within its bound (exit 1 otherwise)",
    )
    return parser


def _render(result, fmt: str) -> str:
    if fmt == "csv":
        return to_csv(result)
    if fmt == "markdown":
        return to_markdown(result)
    if fmt == "json":
        return to_json(result)
    if fmt == "chart":
        from repro.core.series import chart_by_hint

        return chart_by_hint(result)
    return result.format()


def _build_runner(args):
    """A :class:`repro.run.Runner` from the shared CLI options."""
    from repro.run import ResultCache, Runner

    cache = (
        None if args.no_cache
        else ResultCache(cache_dir=args.cache_dir)
    )
    faults = None
    if getattr(args, "faults", None):
        from repro.faults import parse_faults

        faults = parse_faults(args.faults)
    policy = (
        "refuse" if getattr(args, "refuse_escalation", False) else "escalate"
    )
    return Runner(
        jobs=args.jobs, cache=cache, trace_dir=args.trace_dir,
        faults=faults, fidelity=getattr(args, "fidelity", None),
        surrogate_policy=policy, retries=getattr(args, "retries", 0),
        checkpoint=getattr(args, "checkpoint", None),
    )


def _run_explore(args) -> int:
    """The ``repro explore`` verb: studies or hand-declared spaces."""
    from repro.explore import (
        ExploreDriver,
        parse_objective,
        parse_space,
        study_driver,
    )
    from repro.explore.space import _parse_scalar

    runner = _build_runner(args)
    try:
        if args.study is not None:
            driver = study_driver(
                args.study, seed=args.seed, runner=runner,
                journal=args.journal, max_cells=args.max_cells,
                max_seconds=args.max_seconds, optimizer=args.optimizer,
            )
        else:
            if not (args.workload and args.space and args.objective):
                print(
                    "error: pass --study NAME, or all three of "
                    "--workload/--space/--objective",
                    file=sys.stderr,
                )
                return 2
            base = {}
            if args.base:
                for pair in filter(
                    None, (p.strip() for p in args.base.split(","))
                ):
                    key, eq, value = pair.partition("=")
                    if not eq:
                        print(
                            f"error: --base expects key=value pairs, "
                            f"got {pair!r}",
                            file=sys.stderr,
                        )
                        return 2
                    base[key.strip()] = _parse_scalar(value.strip())
            space = parse_space(
                args.space, args.workload, base=base,
                fidelity=args.space_fidelity,
            )
            driver = ExploreDriver(
                space, parse_objective(args.objective),
                optimizer=args.optimizer or "random", seed=args.seed,
                runner=runner, journal=args.journal,
                max_cells=args.max_cells, max_seconds=args.max_seconds,
                batch_size=args.batch,
            )
        result = driver.run()
        print(result.report())
        # Machine-readable accounting (same contract as `repro run`).
        print(result.stats.summary(), file=sys.stderr)
        print(runner.stats.summary(), file=sys.stderr)
    finally:
        runner.close()
    return _report_failures(runner, args)


def _run_compare(args) -> int:
    """The ``repro compare`` verb: cross-machine who-wins tables."""
    from repro.compare import run_compare

    machines = tuple(
        filter(None, (m.strip() for m in args.machines.split(",")))
    )
    apps = None
    if args.experiments:
        apps = tuple(
            filter(None, (a.strip() for a in args.experiments.split(",")))
        )
    sizes = None
    if args.sizes:
        sizes = tuple(
            int(s) for s in filter(None, (x.strip() for x in args.sizes.split(",")))
        )
    runner = _build_runner(args)
    try:
        result = run_compare(
            machines, apps=apps, sizes=sizes, runner=runner,
            fidelity=getattr(args, "fidelity", None) or "analytic",
        )
        print(result.format())
        print(runner.stats.summary(), file=sys.stderr)
    finally:
        runner.close()
    return _report_failures(runner, args)


def _run_calibrate(args) -> int:
    """The ``repro calibrate --fidelity`` job."""
    from repro.surrogate.calibrate import (
        COMMITTED_TABLE,
        DEFAULT_BOUND,
        ErrorTable,
        calibrate,
    )

    if not args.fidelity:
        print(
            "error: nothing to calibrate — pass --fidelity to "
            "(re)measure the surrogate error table",
            file=sys.stderr,
        )
        return 2
    if args.check:
        table = ErrorTable.load(args.output or COMMITTED_TABLE)
        if table is None:
            print("calibration table missing or unreadable", file=sys.stderr)
            return 1
        if table.stale:
            print(
                "calibration table is STALE (constants or version "
                "changed); re-run: repro calibrate --fidelity",
                file=sys.stderr,
            )
            return 1
        bad = [
            e for e in table.entries.values() if e.rel_err > table.bound
        ]
        for e in bad:
            print(
                f"family {e.family!r} {e.mode}: rel_err "
                f"{e.rel_err:.3g} exceeds bound {table.bound:g}",
                file=sys.stderr,
            )
        print(
            f"calibration table fresh: {len(table.entries)} entries, "
            f"bound {table.bound:g}, {len(bad)} over bound"
        )
        return 1 if bad else 0
    bound = DEFAULT_BOUND if args.bound is None else args.bound
    table = calibrate(fast=args.fast, bound=bound)
    path = table.save(args.output or COMMITTED_TABLE)
    print(f"wrote {path} ({len(table.entries)} family/mode entries)")
    width = max(len(f) for f, _ in table.entries) + 2
    for (family, mode), e in sorted(table.entries.items()):
        tag = "exact" if e.exact else (
            "ok" if e.rel_err <= bound else "OVER BOUND"
        )
        print(
            f"  {family:<{width}} {mode:<9} rel_err={e.rel_err:<10.4g} "
            f"cells={e.cells:<4} {tag}"
        )
    return 0


def _report_failures(runner, args) -> int:
    """Print ``FAILED <scenario-id>: <error>`` lines; pick exit code."""
    for line in runner.stats.failure_lines():
        print(line, file=sys.stderr)
    if runner.stats.errors and not args.keep_going:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for spec in experiment_specs():
                print(
                    f"{spec.experiment_id:<20} {spec.anchor:<10} {spec.title}"
                )
        elif args.command == "run":
            runner = _build_runner(args)
            result = run_experiment(
                args.experiment_id, fast=args.fast, runner=runner
            )
            print(_render(result, args.format))
            # Machine-readable cell accounting (parsed by `make faults-smoke`).
            print(runner.stats.summary(), file=sys.stderr)
            return _report_failures(runner, args)
        elif args.command == "all":
            runner = _build_runner(args)
            for spec in experiment_specs():
                result = spec.run(fast=args.fast, runner=runner)
                print(result.format())
                print()
            # Machine-readable cell accounting (parsed by `make smoke`).
            print(runner.stats.summary(), file=sys.stderr)
            return _report_failures(runner, args)
        elif args.command == "trace":
            from repro.obs.trace_run import trace_experiment

            print(trace_experiment(args.experiment_id, args.trace_dir).report())
        elif args.command == "machine":
            from repro.machine.topology import topology_report

            print(format_table1())
            print()
            print(topology_report())
            from repro.machine.zoo import list_machines, machine_config

            print()
            print("machine zoo (repro compare --machines A,B,...):")
            for name in list_machines():
                cfg = machine_config(name)
                print(
                    f"  {name:<10} {cfg.n_nodes:>3} nodes  "
                    f"{cfg.total_cpus:>6} CPUs  fabric={cfg.fabric:<10} "
                    f"{cfg.description}"
                )
        elif args.command == "calibration":
            print(calibration_report())
        elif args.command == "claims":
            from repro.core.claims import format_claims, verify_claims

            results = verify_claims(args.claim_ids or None)
            print(format_claims(results))
            if not all(r.passed for r in results):
                return 1
        elif args.command == "report":
            from repro.core.suite import write_report

            runner = _build_runner(args)
            files = write_report(args.output, fast=args.fast, runner=runner)
            print(f"wrote {len(files)} files to {args.output}")
            return _report_failures(runner, args)
        elif args.command == "advise":
            from repro.machine.advisor import advise
            from repro.machine.cluster import multinode, single_node
            from repro.machine.infiniband import MPTVersion
            from repro.machine.node import NodeType
            from repro.machine.placement import Placement, PinningMode

            node_type = {"3700": NodeType.A3700, "BX2a": NodeType.BX2A,
                         "BX2b": NodeType.BX2B}[args.node_type]
            mpt = (MPTVersion.MPT_1_11R if args.released_mpt
                   else MPTVersion.MPT_1_11B)
            cluster = (
                single_node(node_type) if args.nodes == 1
                else multinode(args.nodes, node_type=node_type,
                               fabric=args.fabric, mpt=mpt)
            )
            placement = Placement(
                cluster, n_ranks=args.ranks, threads_per_rank=args.threads,
                stride=args.stride,
                pinning=(PinningMode.UNPINNED if args.unpinned
                         else PinningMode.PINNED),
                spread_nodes=args.nodes > 1,
            )
            advice = advise(placement, bandwidth_bound=args.bandwidth_bound)
            if not advice:
                print("layout looks clean — no paper lessons apply")
            for a in advice:
                print(f"[{a.severity:<7}] {a.rule} ({a.paper_ref}): {a.message}")
        elif args.command == "serve":
            from repro.serve import (
                DEFAULT_PORT,
                QuotaPolicy,
                serve_forever,
                serve_sharded,
            )

            quota = None
            if args.quota_rate is not None:
                burst = (
                    args.quota_burst if args.quota_burst is not None
                    else 10.0 * args.quota_rate
                )
                quota = QuotaPolicy(rate=args.quota_rate, burst=burst)
            port = DEFAULT_PORT if args.port is None else args.port
            if args.workers > 1:
                if args.no_cache:
                    print(
                        "error: --workers needs the shared result cache; "
                        "drop --no-cache",
                        file=sys.stderr,
                    )
                    return 2
                from repro.faults import parse_faults
                from repro.run.cache import default_cache_dir
                from repro.run.runner import _resolve_jobs

                return serve_sharded(
                    workers=args.workers,
                    cache_dir=args.cache_dir or default_cache_dir(),
                    host=args.host,
                    port=port,
                    jobs=_resolve_jobs(args.jobs),
                    faults=(
                        parse_faults(args.faults)
                        if getattr(args, "faults", None) else None
                    ),
                    fidelity=getattr(args, "fidelity", None),
                    surrogate_policy=(
                        "refuse"
                        if getattr(args, "refuse_escalation", False)
                        else "escalate"
                    ),
                    max_queue=args.max_queue,
                    max_batch=args.max_batch,
                    batch_wait=args.batch_wait,
                    quota=quota,
                )
            return serve_forever(
                _build_runner(args),
                host=args.host,
                port=port,
                max_queue=args.max_queue,
                max_batch=args.max_batch,
                batch_wait=args.batch_wait,
                quota=quota,
            )
        elif args.command == "explore":
            return _run_explore(args)
        elif args.command == "compare":
            return _run_compare(args)
        elif args.command == "calibrate":
            return _run_calibrate(args)
        elif args.command == "hpcc":
            from repro.hpcc.report import hpcc_summary
            from repro.machine.node import NodeType

            node_type = {"3700": NodeType.A3700, "BX2a": NodeType.BX2A,
                         "BX2b": NodeType.BX2B}[args.node_type]
            print(hpcc_summary(node_type, n_cpus=args.cpus).format())
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # piped into head etc.
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
