"""Exception hierarchy for the ``repro`` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """An inconsistency detected by the discrete-event simulator
    (e.g. time moving backwards, an event scheduled in the past)."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while simulated processes were
    still blocked — the simulated program deadlocked."""


class ConfigurationError(ReproError):
    """An invalid machine, layout, or workload configuration."""


class CommunicationError(ReproError):
    """Misuse of the simulated MPI/SHMEM layers (bad rank, tag
    mismatch, message truncation, exceeding InfiniBand connection
    limits, ...)."""


class VerificationError(ReproError):
    """A workload's numerical verification failed."""


class ObservabilityError(ReproError):
    """Misuse of the tracing/counter layer (mismatched span begin/end,
    unknown span category, exporting an empty trace, ...)."""
