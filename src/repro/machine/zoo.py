"""The machine zoo: declarative cluster configs and a preset registry.

The paper's core move is *cross-machine* characterization (3700 vs
BX2a vs BX2b, NUMAlink4 vs InfiniBand), but the model layer only ever
instantiated Columbia through three hardcoded builders.  This module
makes a whole cluster a frozen, hashable piece of *data*: a
:class:`MachineConfig` names every parameter the hardware models need
— node counts, CPUs and C-Brick packing, clock/FLOP-per-cycle/cache
hierarchy, front-side-bus and NUMAlink numbers, the inter-node fabric,
and (for post-Columbia machines) per-node accelerators priced as an
Amdahl offload term (the ExaDigiT/RAPS ``node_peak_flops`` shape).

Configs round-trip losslessly through plain dicts, JSON and TOML, can
be perturbed with dotted-path overrides (``nodes.0.node.n_cpus``), and
live in a process-wide registry.  Four contrasting presets ship:

* ``columbia``  — the 20-node supercluster re-expressed as data; its
  built :class:`~repro.machine.cluster.Cluster` compares equal to the
  legacy :func:`~repro.machine.cluster.columbia` builder's output, so
  every experiment result is byte-identical.
* ``fat_numa``  — four fat 1024-CPU NUMA nodes on a NUMAlink4 fabric.
* ``thin_ib``   — 64 thin 32-CPU nodes behind an InfiniBand switch.
* ``gpu_node``  — eight 32-CPU nodes with four V100-class devices
  each, à la Marconi100.

``repro compare`` runs the experiment suite across any subset of the
registry and reports who-wins/crossover tables like the paper's
Altix-vs-BX2 analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields as dc_fields, is_dataclass, replace
from functools import lru_cache
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.machine.brick import CBrick
from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.cluster import FABRICS, Cluster
from repro.machine.infiniband import INFINIBAND, InfiniBandSpec, MPTVersion
from repro.machine.interconnect import InterconnectSpec
from repro.machine.memory import MemoryBusSpec
from repro.machine.node import AcceleratorSpec, AltixNode, NodeType
from repro.machine.processor import ProcessorSpec
from repro.units import GIB, KIB, MIB, TERA, gb_per_s, usec

__all__ = [
    "BusConfig",
    "LinkConfig",
    "MachineConfig",
    "NodeConfig",
    "NodeGroup",
    "ProcessorConfig",
    "SwitchConfig",
    "build_machine",
    "cluster_cost",
    "list_machines",
    "load_machine",
    "machine_config",
    "machine_from_dict",
    "register_machine",
]


# -- leaf configs ------------------------------------------------------------


@dataclass(frozen=True)
class ProcessorConfig:
    """A processor, in catalogue units (GHz, KB/MB caches).

    Cache latencies and line sizes keep the Itanium2 shape (1/5/14
    cycles, 64/128-byte lines) — the miss model is capacity-driven, so
    only the sizes matter to first order.  ``l1_holds_fp`` defaults to
    the Itanium2 quirk (the L1D cannot hold floating-point data).
    """

    name: str
    clock_ghz: float
    flops_per_cycle: int = 4
    l1_kb: int = 32
    l2_kb: int = 256
    l3_mb: int = 6
    fp_registers: int = 128
    l1_holds_fp: bool = False

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0 or self.flops_per_cycle < 1:
            raise ConfigurationError(f"{self.name}: bad clock/flops_per_cycle")
        if min(self.l1_kb, self.l2_kb, self.l3_mb) <= 0:
            raise ConfigurationError(f"{self.name}: cache sizes must be positive")

    def build(self) -> ProcessorSpec:
        caches = CacheHierarchy(
            (
                CacheLevel("L1D", self.l1_kb * KIB, latency_cycles=1,
                           line_bytes=64, holds_fp=self.l1_holds_fp),
                CacheLevel("L2", self.l2_kb * KIB, latency_cycles=5,
                           line_bytes=128),
                CacheLevel("L3", self.l3_mb * MIB, latency_cycles=14,
                           line_bytes=128),
            )
        )
        return ProcessorSpec(
            name=self.name,
            clock_hz=self.clock_ghz * 1e9,
            flops_per_cycle=self.flops_per_cycle,
            fp_registers=self.fp_registers,
            caches=caches,
        )


@dataclass(frozen=True)
class BusConfig:
    """A front-side / memory bus, in GB/s.  Defaults mirror the Altix
    FSB (two CPUs per bus, §4.2)."""

    gb_s: float = 4.0
    cpu_max_gb_s: float = 3.8
    cpus_per_bus: int = 2

    def build(self) -> MemoryBusSpec:
        return MemoryBusSpec(
            fsb_bandwidth=gb_per_s(self.gb_s),
            cpu_max_bandwidth=gb_per_s(self.cpu_max_gb_s),
            cpus_per_fsb=self.cpus_per_bus,
        )


@dataclass(frozen=True)
class LinkConfig:
    """The intra-node interconnect, in GB/s and microseconds."""

    name: str
    gb_s: float
    mpi_efficiency: float
    base_latency_us: float
    per_hop_latency_us: float
    per_hop_bw_derate: float
    internode_latency_us: float
    plane_factor: float = 1.0

    def build(self) -> InterconnectSpec:
        return InterconnectSpec(
            name=self.name,
            link_bandwidth=gb_per_s(self.gb_s),
            mpi_efficiency=self.mpi_efficiency,
            base_latency=usec(self.base_latency_us),
            per_hop_latency=usec(self.per_hop_latency_us),
            per_hop_bw_derate=self.per_hop_bw_derate,
            internode_latency=usec(self.internode_latency_us),
            plane_factor=self.plane_factor,
        )


@dataclass(frozen=True)
class SwitchConfig:
    """The inter-node switch (InfiniBand-class), in GB/s and µs."""

    name: str
    gb_s: float
    base_latency_us: float
    per_extra_node_latency_us: float
    per_extra_node_bw_derate: float
    cards_per_node: int = 8
    connections_per_card: int = 64 * 1024

    def build(self) -> InfiniBandSpec:
        return InfiniBandSpec(
            name=self.name,
            bandwidth=gb_per_s(self.gb_s),
            base_latency=usec(self.base_latency_us),
            per_extra_node_latency=usec(self.per_extra_node_latency_us),
            per_extra_node_bw_derate=self.per_extra_node_bw_derate,
            cards_per_node=self.cards_per_node,
            connections_per_card=self.connections_per_card,
        )


@dataclass(frozen=True)
class NodeConfig:
    """One node model: packing, memory, processor, bus and link.

    ``type`` is a free label; when it matches a Columbia
    :class:`~repro.machine.node.NodeType` value ("3700"/"BX2a"/"BX2b")
    the built node carries the enum, so Columbia-shaped configs stay
    interchangeable with legacy builder output.
    """

    type: str
    n_cpus: int
    cpus_per_brick: int
    memory_tb: float
    processor: ProcessorConfig
    link: LinkConfig
    bus: BusConfig = BusConfig()
    brick_gib_per_cpu: float = 2.0
    accelerator: AcceleratorSpec | None = None

    def __post_init__(self) -> None:
        if self.n_cpus < 1 or self.cpus_per_brick < 1:
            raise ConfigurationError(f"{self.type}: bad CPU counts")
        if self.n_cpus % self.cpus_per_brick != 0:
            raise ConfigurationError(
                f"{self.type}: {self.n_cpus} CPUs not divisible into "
                f"{self.cpus_per_brick}-CPU bricks"
            )
        if self.memory_tb <= 0 or self.brick_gib_per_cpu <= 0:
            raise ConfigurationError(f"{self.type}: memory must be positive")

    def build(self) -> AltixNode:
        try:
            node_type: NodeType | str = NodeType(self.type)
        except ValueError:
            node_type = self.type
        brick_mem = self.brick_gib_per_cpu * GIB * self.cpus_per_brick
        if float(brick_mem).is_integer():
            brick_mem = int(brick_mem)
        brick = CBrick(
            cpus=self.cpus_per_brick,
            memory_bytes=brick_mem,
            processor=self.processor.build(),
            fsb=self.bus.build(),
            shubs=max(1, self.cpus_per_brick // 2),
        )
        return AltixNode(
            node_type=node_type,
            n_cpus=self.n_cpus,
            brick=brick,
            interconnect=self.link.build(),
            memory_bytes=self.memory_tb * TERA,
            accelerator=self.accelerator,
        )


@dataclass(frozen=True)
class NodeGroup:
    """``count`` identical nodes."""

    count: int
    node: NodeConfig

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"node group count must be >= 1: {self.count}")


# -- the machine config ------------------------------------------------------


@dataclass(frozen=True)
class MachineConfig:
    """A complete cluster as data: node groups plus the fabric.

    Frozen and hashable, so a config can sit inside a
    :class:`~repro.run.scenario.MachineSpec`, a cache key, or an
    explore :class:`~repro.explore.space.SearchSpace` dimension like
    any other scalar.
    """

    name: str
    nodes: tuple[NodeGroup, ...]
    fabric: str = "numalink4"
    mpt: str = "mpt1.11b"
    switch: SwitchConfig | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("machine config needs a name")
        if isinstance(self.nodes, list):
            object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ConfigurationError(f"{self.name}: needs at least one node group")
        if self.fabric not in FABRICS:
            raise ConfigurationError(
                f"{self.name}: unknown fabric {self.fabric!r}; "
                f"expected one of {FABRICS}"
            )
        MPTVersion(self.mpt)  # raises ValueError on an unknown runtime
        if self.switch is not None and self.fabric != "infiniband":
            raise ConfigurationError(
                f"{self.name}: a switch only applies to the infiniband fabric"
            )

    # -- shape ---------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return sum(group.count for group in self.nodes)

    @property
    def total_cpus(self) -> int:
        return sum(group.count * group.node.n_cpus for group in self.nodes)

    def build(self) -> Cluster:
        """Materialize the hardware models (memoized per config)."""
        return _build_cluster(self)

    # -- overrides -----------------------------------------------------------

    def with_overrides(self, overrides: Mapping[str, Any] |
                       tuple[tuple[str, Any], ...]) -> "MachineConfig":
        """A new config with dotted-path fields replaced.

        Paths address dataclass fields and tuple indices uniformly:
        ``fabric``, ``nodes.0.count``, ``nodes.0.node.n_cpus``,
        ``nodes.0.node.processor.clock_ghz``.  Validation reruns on
        every touched level (frozen dataclasses re-``__post_init__``
        through :func:`dataclasses.replace`).
        """
        pairs = overrides.items() if isinstance(overrides, Mapping) else overrides
        config = self
        for path, value in pairs:
            config = _replace_path(config, path, path.split("."), value)
        return config

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain nested dict (``None`` fields omitted)."""
        return _to_dict(self)

    def to_json(self) -> str:
        """Deterministic JSON (field order, 2-space indent)."""
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def to_toml(self) -> str:
        """Deterministic TOML for the restricted config schema."""
        return _to_toml(self.to_dict())


def _replace_path(obj: Any, full: str, parts: list[str], value: Any) -> Any:
    if not parts:
        return value
    head, rest = parts[0], parts[1:]
    if isinstance(obj, tuple):
        try:
            idx = int(head)
        except ValueError:
            raise ConfigurationError(
                f"override {full!r}: expected a tuple index, got {head!r}"
            ) from None
        if not 0 <= idx < len(obj):
            raise ConfigurationError(
                f"override {full!r}: index {idx} outside tuple of {len(obj)}"
            )
        return obj[:idx] + (_replace_path(obj[idx], full, rest, value),) + obj[idx + 1:]
    if is_dataclass(obj) and not isinstance(obj, type):
        names = {f.name for f in dc_fields(obj)}
        if head not in names:
            raise ConfigurationError(
                f"override {full!r}: {type(obj).__name__} has no field {head!r} "
                f"(has {sorted(names)})"
            )
        new = _replace_path(getattr(obj, head), full, rest, value)
        return replace(obj, **{head: new})
    raise ConfigurationError(
        f"override {full!r}: cannot descend into {type(obj).__name__} at {head!r}"
    )


# -- dict / JSON / TOML round-trips ------------------------------------------


def _to_dict(obj: Any) -> Any:
    if is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {}
        for f in dc_fields(obj):
            value = getattr(obj, f.name)
            if value is None:
                continue  # TOML has no null; omission is the wire form
            out[f.name] = _to_dict(value)
        return out
    if isinstance(obj, tuple):
        return [_to_dict(item) for item in obj]
    return obj


def _pick(cls: type, data: Mapping[str, Any], **converted: Any) -> Any:
    """Build ``cls`` from the mapping's scalar fields + converted ones."""
    names = {f.name for f in dc_fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ConfigurationError(
            f"{cls.__name__}: unknown config fields {sorted(unknown)}"
        )
    kwargs = {k: v for k, v in data.items() if k not in converted}
    kwargs.update(converted)
    return cls(**kwargs)


def machine_from_dict(data: Mapping[str, Any]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from :meth:`MachineConfig.to_dict`
    output (or hand-written JSON/TOML of the same shape)."""
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"machine config must be a table, got {type(data)}")

    def node_from(nd: Mapping[str, Any]) -> NodeConfig:
        return _pick(
            NodeConfig,
            nd,
            processor=_pick(ProcessorConfig, nd.get("processor", {})),
            link=_pick(LinkConfig, nd.get("link", {})),
            bus=_pick(BusConfig, nd.get("bus", {})) if "bus" in nd else BusConfig(),
            accelerator=(
                _pick(AcceleratorSpec, nd["accelerator"])
                if "accelerator" in nd else None
            ),
        )

    groups = tuple(
        _pick(NodeGroup, gd, node=node_from(gd.get("node", {})))
        for gd in data.get("nodes", ())
    )
    return _pick(
        MachineConfig,
        data,
        nodes=groups,
        switch=_pick(SwitchConfig, data["switch"]) if "switch" in data else None,
    )


def load_machine(path: str) -> MachineConfig:
    """Load a config from a ``.json`` or ``.toml`` file."""
    if path.endswith(".toml"):
        import tomllib

        with open(path, "rb") as fh:
            data = tomllib.load(fh)
    elif path.endswith(".json"):
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    else:
        raise ConfigurationError(
            f"machine config files must be .json or .toml: {path!r}"
        )
    return machine_from_dict(data)


def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # TOML basic strings share JSON escaping
    raise ConfigurationError(f"cannot render {type(value).__name__} as TOML")


def _to_toml(data: Mapping[str, Any], prefix: str = "", lines: list[str] | None = None) -> str:
    """Render the nested config dict as TOML.

    The schema only ever nests tables and *lists of tables* (node
    groups), which keeps a stdlib-only emitter small; ``tomllib``
    parses it back to the identical dict.
    """
    top = lines is None
    if lines is None:
        lines = []
    scalars = {k: v for k, v in data.items() if not isinstance(v, (Mapping, list))}
    tables = {k: v for k, v in data.items() if isinstance(v, Mapping)}
    arrays = {k: v for k, v in data.items() if isinstance(v, list)}
    for key, value in scalars.items():
        lines.append(f"{key} = {_toml_scalar(value)}")
    for key, value in tables.items():
        full = f"{prefix}{key}"
        lines.append("")
        lines.append(f"[{full}]")
        _to_toml(value, f"{full}.", lines)
    for key, items in arrays.items():
        full = f"{prefix}{key}"
        for item in items:
            if not isinstance(item, Mapping):
                raise ConfigurationError(
                    f"{full}: only lists of tables are TOML-renderable"
                )
            lines.append("")
            lines.append(f"[[{full}]]")
            _to_toml(item, f"{full}.", lines)
    return "\n".join(lines) + "\n" if top else ""


# -- building ----------------------------------------------------------------


@lru_cache(maxsize=None)
def _build_cluster(config: MachineConfig) -> Cluster:
    nodes: list[AltixNode] = []
    for group in config.nodes:
        node = group.node.build()
        nodes.extend([node] * group.count)
    return Cluster(
        nodes=tuple(nodes),
        fabric=config.fabric,
        mpt=MPTVersion(config.mpt),
        infiniband=config.switch.build() if config.switch is not None else INFINIBAND,
    )


# -- cost proxy --------------------------------------------------------------


def cluster_cost(cluster: Cluster) -> float:
    """A relative acquisition-cost proxy, in arbitrary units.

    Derived purely from the hardware models (never from a machine's
    registry name) so explore studies can rank *any* cluster: CPUs are
    priced superlinearly in clock with an L3 premium, memory and
    accelerators per capacity, and a custom NUMA fabric carries a
    premium over a commodity switch.  Used by ``repro compare``
    (perf-per-cost column) and the ``cheapest-machine`` study.
    """
    total = 0.0
    for node in cluster.nodes:
        proc = node.processor
        per_cpu = (proc.clock_hz / 1e9) ** 2 * (
            1.0 + 0.04 * (proc.l3_bytes / MIB)
        )
        node_cost = node.n_cpus * per_cpu
        node_cost += 8.0 * (node.memory_bytes / TERA)
        if node.accelerator is not None:
            node_cost += 25.0 * (node.accelerator.peak_flops / 1e12)
        total += node_cost
    if cluster.fabric == "numalink4":
        total *= 1.25
    return total


# -- registry ----------------------------------------------------------------

_REGISTRY: dict[str, MachineConfig] = {}


def register_machine(config: MachineConfig, replace: bool = False) -> MachineConfig:
    """Add a config to the zoo under ``config.name``."""
    if config.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"machine {config.name!r} already registered "
            f"(pass replace=True to override)"
        )
    _REGISTRY[config.name] = config
    return config


def machine_config(name: str) -> MachineConfig:
    """Look a registered config up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; registered: {', '.join(list_machines())}"
        ) from None


def list_machines() -> tuple[str, ...]:
    """Registered machine names, registration order."""
    return tuple(_REGISTRY)


def build_machine(
    name: str, overrides: Mapping[str, Any] | tuple[tuple[str, Any], ...] = ()
) -> Cluster:
    """Build a registered machine, with optional dotted overrides."""
    config = machine_config(name)
    if overrides:
        config = config.with_overrides(overrides)
    return config.build()


# -- presets -----------------------------------------------------------------

# Columbia's parts, re-expressed in catalogue units.  The built output
# compares equal to the legacy columbia() builder, field for field —
# pinned by tests/test_machine_zoo.py.
_ITANIUM2_1500 = ProcessorConfig(name="Itanium2 1.5GHz/6MB", clock_ghz=1.5, l3_mb=6)
_ITANIUM2_1600 = ProcessorConfig(name="Itanium2 1.6GHz/9MB", clock_ghz=1.6, l3_mb=9)
_NUMALINK3 = LinkConfig(
    name="NUMAlink3", gb_s=3.2, mpi_efficiency=0.58, base_latency_us=1.1,
    per_hop_latency_us=0.12, per_hop_bw_derate=0.085,
    internode_latency_us=1.0, plane_factor=0.35,
)
_NUMALINK4 = LinkConfig(
    name="NUMAlink4", gb_s=6.4, mpi_efficiency=0.58, base_latency_us=1.0,
    per_hop_latency_us=0.07, per_hop_bw_derate=0.055,
    internode_latency_us=0.9, plane_factor=1.0,
)

COLUMBIA = register_machine(MachineConfig(
    name="columbia",
    description="The 20-node Columbia supercluster (paper §2) as data.",
    nodes=(
        NodeGroup(12, NodeConfig(
            type="3700", n_cpus=512, cpus_per_brick=4, memory_tb=1.0,
            processor=_ITANIUM2_1500, link=_NUMALINK3,
        )),
        NodeGroup(3, NodeConfig(
            type="BX2a", n_cpus=512, cpus_per_brick=8, memory_tb=1.0,
            processor=_ITANIUM2_1500, link=_NUMALINK4,
        )),
        NodeGroup(5, NodeConfig(
            type="BX2b", n_cpus=512, cpus_per_brick=8, memory_tb=1.0,
            processor=_ITANIUM2_1600, link=_NUMALINK4,
        )),
    ),
    fabric="infiniband",
    switch=SwitchConfig(
        name="InfiniBand (Voltaire ISR 9288)", gb_s=0.82, base_latency_us=5.6,
        per_extra_node_latency_us=1.6, per_extra_node_bw_derate=0.16,
        cards_per_node=8, connections_per_card=64 * 1024,
    ),
))

FAT_NUMA = register_machine(MachineConfig(
    name="fat_numa",
    description="Four fat 1024-CPU NUMA nodes on a NUMAlink4 fabric.",
    nodes=(
        NodeGroup(4, NodeConfig(
            type="fat", n_cpus=1024, cpus_per_brick=8, memory_tb=2.0,
            processor=ProcessorConfig(
                name="FatSocket 1.9GHz/18MB", clock_ghz=1.9, l3_mb=18,
            ),
            link=LinkConfig(
                name="NUMAlink4+", gb_s=12.8, mpi_efficiency=0.6,
                base_latency_us=0.8, per_hop_latency_us=0.06,
                per_hop_bw_derate=0.05, internode_latency_us=0.8,
            ),
            bus=BusConfig(gb_s=6.4, cpu_max_gb_s=5.0),
        )),
    ),
    fabric="numalink4",
))

THIN_IB = register_machine(MachineConfig(
    name="thin_ib",
    description="64 thin 32-CPU nodes behind a commodity InfiniBand switch.",
    nodes=(
        NodeGroup(64, NodeConfig(
            type="thin", n_cpus=32, cpus_per_brick=8, memory_tb=0.128,
            processor=ProcessorConfig(
                name="ThinCore 2.6GHz/4MB", clock_ghz=2.6, l3_mb=4,
                l1_holds_fp=True,
            ),
            link=LinkConfig(
                name="HyperFabric", gb_s=6.0, mpi_efficiency=0.7,
                base_latency_us=0.5, per_hop_latency_us=0.05,
                per_hop_bw_derate=0.05, internode_latency_us=0.5,
            ),
            bus=BusConfig(gb_s=6.4, cpu_max_gb_s=5.2),
        )),
    ),
    fabric="infiniband",
    switch=SwitchConfig(
        name="InfiniBand 4x DDR", gb_s=1.5, base_latency_us=4.0,
        per_extra_node_latency_us=0.9, per_extra_node_bw_derate=0.10,
        cards_per_node=2,
    ),
))

GPU_NODE = register_machine(MachineConfig(
    name="gpu_node",
    description="Eight 32-CPU nodes with four V100-class accelerators "
                "each, à la Marconi100.",
    nodes=(
        NodeGroup(8, NodeConfig(
            type="gpu", n_cpus=32, cpus_per_brick=8, memory_tb=0.256,
            processor=ProcessorConfig(
                name="GPUHost 2.1GHz/10MB", clock_ghz=2.1,
                l3_mb=10, l1_holds_fp=True,
            ),
            link=LinkConfig(
                name="NodeMesh", gb_s=8.0, mpi_efficiency=0.7,
                base_latency_us=0.6, per_hop_latency_us=0.05,
                per_hop_bw_derate=0.05, internode_latency_us=0.6,
            ),
            bus=BusConfig(gb_s=14.0, cpu_max_gb_s=9.0),
            accelerator=AcceleratorSpec(
                name="V100", count=4, peak_flops_each=7.8e12,
                offload_fraction=0.85, efficiency=0.45,
            ),
        )),
    ),
    fabric="infiniband",
    switch=SwitchConfig(
        name="InfiniBand EDR", gb_s=12.0, base_latency_us=1.3,
        per_extra_node_latency_us=0.5, per_extra_node_bw_derate=0.05,
        cards_per_node=2,
    ),
))
