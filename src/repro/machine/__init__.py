"""Models of the Columbia supercluster hardware.

The paper characterizes three Altix node types (3700, BX2a, BX2b), two
interconnect fabrics (NUMAlink3/4 inside and between nodes, InfiniBand
between nodes), shared front-side buses, process pinning, CPU striding
and four Intel compiler versions.  Each of those is an explicit model
here, parameterized from Table 1 of the paper and the prose in §2.
"""

from repro.machine.processor import (
    ProcessorSpec,
    ITANIUM2_1500_6MB,
    ITANIUM2_1600_9MB,
)
from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.memory import MemoryBusSpec
from repro.machine.brick import CBrick
from repro.machine.node import AltixNode, NodeType, build_node
from repro.machine.interconnect import InterconnectSpec, NUMALINK3, NUMALINK4
from repro.machine.infiniband import InfiniBandSpec, MPTVersion, INFINIBAND
from repro.machine.cluster import Cluster, columbia, multinode
from repro.machine.placement import Placement, PinningMode
from repro.machine.compilers import Compiler, compiler_factor

__all__ = [
    "ProcessorSpec",
    "ITANIUM2_1500_6MB",
    "ITANIUM2_1600_9MB",
    "CacheHierarchy",
    "CacheLevel",
    "MemoryBusSpec",
    "CBrick",
    "AltixNode",
    "NodeType",
    "build_node",
    "InterconnectSpec",
    "NUMALINK3",
    "NUMALINK4",
    "InfiniBandSpec",
    "MPTVersion",
    "INFINIBAND",
    "Cluster",
    "columbia",
    "multinode",
    "Placement",
    "PinningMode",
    "Compiler",
    "compiler_factor",
]
