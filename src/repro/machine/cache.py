"""Cache hierarchy model.

Besides describing the physical hierarchy, this module provides the
*miss-traffic* model used by every kernel timing estimate: given a
kernel's per-CPU working set, what fraction of its data references go
to main memory rather than being served by the last-level cache?

The paper attributes the ~50% MG/BT jump on BX2b at >=64 CPUs and a
good part of OVERFLOW-D's BX2b speedup to the 9 MB (vs 6 MB) L3; the
model reproduces that: once the working set per CPU shrinks toward the
L3 capacity, miss traffic collapses and memory-bound kernels speed up
disproportionately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CacheLevel", "CacheHierarchy", "miss_fraction"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the on-chip cache hierarchy."""

    name: str
    size_bytes: int
    latency_cycles: int
    line_bytes: int
    #: Itanium2 quirk: the L1D cannot hold floating-point data.
    holds_fp: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"{self.name}: size must be positive")
        if self.line_bytes <= 0:
            raise ConfigurationError(f"{self.name}: line size must be positive")


@dataclass(frozen=True)
class CacheHierarchy:
    """An ordered tuple of cache levels, smallest/fastest first."""

    levels: tuple[CacheLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("cache hierarchy needs at least one level")
        sizes = [lvl.size_bytes for lvl in self.levels]
        if sizes != sorted(sizes):
            raise ConfigurationError("cache levels must grow monotonically")

    @property
    def last_level(self) -> CacheLevel:
        return self.levels[-1]

    def fp_capacity(self) -> int:
        """Capacity of the largest cache that can hold FP data."""
        return max(lvl.size_bytes for lvl in self.levels if lvl.holds_fp)


def miss_fraction(working_set_bytes: float, cache_bytes: float,
                  reuse: float = 1.0) -> float:
    """Fraction of a kernel's data traffic that misses the cache.

    A simple capacity-miss model: if the working set fits, only
    compulsory misses remain (approximated as 0 here — they are charged
    as part of the kernel's base memory traffic); if it does not fit,
    the resident fraction ``cache/ws`` is served from cache and the
    rest from memory.  ``reuse`` (>1 for blocked/cache-friendly kernels
    such as DGEMM) scales the *effective* cache size: a kernel with
    high temporal reuse behaves as if the cache were larger.

    Returns a value in [0, 1].
    """
    if working_set_bytes < 0 or cache_bytes <= 0:
        raise ConfigurationError(
            f"bad miss_fraction args: ws={working_set_bytes}, cache={cache_bytes}"
        )
    if reuse <= 0:
        raise ConfigurationError(f"reuse must be positive: {reuse}")
    effective_cache = cache_bytes * reuse
    if working_set_bytes <= effective_cache:
        return 0.0
    return 1.0 - effective_cache / working_set_bytes
