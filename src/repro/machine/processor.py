"""Itanium2 processor model.

From the paper (§2): the predominant CPU is a 1.5 GHz Itanium2 issuing
two multiply-adds per cycle (peak 6.0 Gflop/s), with 128 floating-point
registers, 32 KB L1 / 256 KB L2 / 6 MB L3 on-chip caches; the Itanium2
cannot hold floating-point data in L1.  Five of the BX2 nodes instead
use 1.6 GHz parts with 9 MB L3 caches (peak 6.4 Gflop/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.units import KIB, MIB

__all__ = ["ProcessorSpec", "ITANIUM2_1500_6MB", "ITANIUM2_1600_9MB"]


@dataclass(frozen=True)
class ProcessorSpec:
    """An Itanium2 processor variant."""

    name: str
    clock_hz: float
    #: FP operations per cycle: 2 multiply-adds = 4 flop/cycle.
    flops_per_cycle: int
    fp_registers: int
    caches: CacheHierarchy

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError(f"clock must be positive: {self.clock_hz}")
        if self.flops_per_cycle <= 0:
            raise ConfigurationError(
                f"flops_per_cycle must be positive: {self.flops_per_cycle}"
            )

    @property
    def peak_flops(self) -> float:
        """Theoretical peak, flop/s (6.0e9 for the 1.5 GHz part)."""
        return self.clock_hz * self.flops_per_cycle

    @property
    def l3_bytes(self) -> int:
        """Last-level cache capacity in bytes."""
        return self.caches.last_level.size_bytes

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at this clock."""
        return cycles / self.clock_hz


def _itanium2_caches(l3_mb: int) -> CacheHierarchy:
    # The Itanium2 L1D does not hold floating-point data (paper §2);
    # `holds_fp=False` makes the cache model skip it for FP kernels.
    return CacheHierarchy(
        (
            CacheLevel("L1D", 32 * KIB, latency_cycles=1, line_bytes=64, holds_fp=False),
            CacheLevel("L2", 256 * KIB, latency_cycles=5, line_bytes=128),
            CacheLevel("L3", l3_mb * MIB, latency_cycles=14, line_bytes=128),
        )
    )


#: The 1.5 GHz / 6 MB L3 part used in the 3700 and BX2a nodes.
ITANIUM2_1500_6MB = ProcessorSpec(
    name="Itanium2 1.5GHz/6MB",
    clock_hz=1.5e9,
    flops_per_cycle=4,
    fp_registers=128,
    caches=_itanium2_caches(6),
)

#: The 1.6 GHz / 9 MB L3 part used in five of the BX2 nodes ("BX2b").
ITANIUM2_1600_9MB = ProcessorSpec(
    name="Itanium2 1.6GHz/9MB",
    clock_hz=1.6e9,
    flops_per_cycle=4,
    fp_registers=128,
    caches=_itanium2_caches(9),
)
