"""Intel compiler version performance matrix.

Paper §4.4: four Intel compiler versions are installed on Columbia —
7.1(.042) (the default), 8.0(.070), 8.1(.026) and a 9.0(.012) beta.
Findings (Fig. 8 and Table 4):

* performance is application dependent; 8.0 is worst in most cases;
* all four compilers are similar on CG;
* the 9.0 beta performs very well on FT;
* on MG, 8.1/9.0b win between 32 and 128 threads, while 7.1/8.0 are
  20-30% better below 32 threads; the ordering flips again above 128;
* 7.1 is consistently good, especially at small thread counts, and is
  used for the remaining NPB tests;
* INS3D: 7.1 vs 8.1 negligible (Table 4);
* OVERFLOW-D (on the 3700): 7.1 beats 8.1 by 20-40% below 64
  processors, identical at larger counts.

We encode these as relative *throughput factors* (1.0 = the 7.1
baseline at large scale); a workload's compute time is divided by the
factor.  This is exactly the information content of the paper's
compiler experiments — relative performance per (compiler, code,
parallelism) — with no pretense of modeling code generation.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError

__all__ = ["Compiler", "compiler_factor", "COMPILER_CODES"]


class Compiler(enum.Enum):
    """Intel Fortran/C compiler versions installed on Columbia."""

    V7_1 = "7.1"
    V8_0 = "8.0"
    V8_1 = "8.1"
    V9_0B = "9.0b"


#: Workload keys understood by :func:`compiler_factor`.
COMPILER_CODES = ("cg", "ft", "mg", "bt", "sp", "ins3d", "overflow", "md")


def compiler_factor(compiler: Compiler, code: str, parallelism: int = 1) -> float:
    """Relative throughput of ``code`` built with ``compiler``.

    ``parallelism`` is the thread count for the OpenMP NPBs, or the
    process count for the applications; several of the paper's
    compiler effects are parallelism-dependent.

    Returns a multiplicative factor; compute time scales as
    ``1 / factor``.
    """
    if code not in COMPILER_CODES:
        raise ConfigurationError(
            f"unknown code {code!r}; expected one of {COMPILER_CODES}"
        )
    if parallelism < 1:
        raise ConfigurationError(f"parallelism must be >= 1: {parallelism}")

    if code == "cg":
        # "All the compilers gave similar results on the CG benchmark."
        return {
            Compiler.V7_1: 1.00,
            Compiler.V8_0: 0.99,
            Compiler.V8_1: 1.00,
            Compiler.V9_0B: 1.00,
        }[compiler]

    if code == "ft":
        # "The beta version of 9.0 performed very well on FT"; 8.0 worst.
        return {
            Compiler.V7_1: 1.00,
            Compiler.V8_0: 0.90,
            Compiler.V8_1: 0.98,
            Compiler.V9_0B: 1.10,
        }[compiler]

    if code == "mg":
        # Below 32 threads 7.1/8.0 are 20-30% better; between 32 and
        # 128 threads 8.1/9.0b outperform; above 128 it turns around.
        if parallelism < 32:
            older, newer = 1.00, 0.78
        elif parallelism <= 128:
            older, newer = 1.00, 1.15
        else:
            older, newer = 1.00, 0.92
        return {
            Compiler.V7_1: older,
            Compiler.V8_0: older * 0.97,
            Compiler.V8_1: newer,
            Compiler.V9_0B: newer * 1.01,
        }[compiler]

    if code in ("bt", "sp"):
        # 8.0 produced the worst results in most cases; others close.
        return {
            Compiler.V7_1: 1.00,
            Compiler.V8_0: 0.88,
            Compiler.V8_1: 0.97,
            Compiler.V9_0B: 0.99,
        }[compiler]

    if code == "ins3d":
        # Table 4: "negligible difference in runtime per iteration".
        return {
            Compiler.V7_1: 1.00,
            Compiler.V8_0: 0.97,
            Compiler.V8_1: 0.995,
            Compiler.V9_0B: 1.00,
        }[compiler]

    if code == "overflow":
        # Table 4: 7.1 superior to 8.1 by 20-40% below 64 processors,
        # almost identical on larger counts.
        if compiler is Compiler.V7_1:
            return 1.00
        if compiler is Compiler.V8_1:
            if parallelism < 64:
                # Interpolate the 20-40% deficit: worst at tiny counts.
                deficit = 0.40 - 0.20 * (parallelism / 64.0)
                return 1.0 / (1.0 + deficit)
            return 0.995
        # 8.0 / 9.0b were not evaluated for OVERFLOW-D; assume 8.1-like.
        return compiler_factor(Compiler.V8_1, code, parallelism)

    # code == "md": the MD study did not vary compilers; treat as flat.
    return 1.00
