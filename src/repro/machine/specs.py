"""Canonical Columbia configuration data (paper Table 1 and §2).

This module renders the machine model back into the paper's Table 1,
both as structured rows (for tests) and as formatted text (for the
``table1`` experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.node import NodeType, build_node
from repro.units import MIB, TERA, to_gflops

__all__ = ["Table1Row", "table1_rows", "COLUMBIA_INVENTORY", "format_table1"]

#: Paper §2: 20 nodes — 12 model 3700, 8 model BX2 of which five are
#: the 1.6 GHz / 9 MB "BX2b" variant.
COLUMBIA_INVENTORY: dict[NodeType, int] = {
    NodeType.A3700: 12,
    NodeType.BX2A: 3,
    NodeType.BX2B: 5,
}


@dataclass(frozen=True)
class Table1Row:
    """One column of the paper's Table 1."""

    node_type: NodeType
    architecture: str
    n_processors: int
    cpus_per_rack: int
    processor: str
    clock_ghz: float
    l3_mb: float
    interconnect: str
    bandwidth_gb_s: float
    peak_tflops: float
    memory_tb: float


def table1_rows() -> list[Table1Row]:
    """Reproduce Table 1 from the machine model."""
    rows = []
    for node_type in (NodeType.A3700, NodeType.BX2A, NodeType.BX2B):
        node = build_node(node_type)
        proc = node.processor
        rows.append(
            Table1Row(
                node_type=node_type,
                architecture="NUMAflex, SSI",
                n_processors=node.n_cpus,
                cpus_per_rack=node.brick.cpus * 8,  # 8 bricks per rack
                processor="Itanium2",
                clock_ghz=proc.clock_hz / 1e9,
                l3_mb=proc.l3_bytes / MIB,
                interconnect=node.interconnect.name,
                bandwidth_gb_s=node.interconnect.link_bandwidth / 1e9,
                peak_tflops=to_gflops(node.peak_flops) / 1000.0,
                memory_tb=node.memory_bytes / TERA,
            )
        )
    return rows


def format_table1() -> str:
    """Table 1 as printable text, in the paper's layout."""
    rows = table1_rows()
    lines = [
        "Table 1. Characteristics of the Altix nodes used in Columbia.",
        f"{'Characteristics':<18}" + "".join(f"{r.node_type.value:>16}" for r in rows),
    ]

    def line(label: str, values: list[str]) -> str:
        return f"{label:<18}" + "".join(f"{v:>16}" for v in values)

    lines.append(line("Architecture", [r.architecture for r in rows]))
    lines.append(line("# Processors", [str(r.n_processors) for r in rows]))
    lines.append(line("Packaging", [f"{r.cpus_per_rack} CPUs/rack" for r in rows]))
    lines.append(line("Processor", [r.processor for r in rows]))
    lines.append(
        line("clock/L3 cache", [f"{r.clock_ghz:.1f}GHz/{r.l3_mb:.0f}MB" for r in rows])
    )
    lines.append(line("Interconnect", [r.interconnect for r in rows]))
    lines.append(line("Bandwidth", [f"{r.bandwidth_gb_s:.1f} GB/s" for r in rows]))
    lines.append(line("Th. peak perf.", [f"{r.peak_tflops:.2f} Tflop/s" for r in rows]))
    lines.append(line("Memory", [f"{r.memory_tb:.0f} TB" for r in rows]))
    return "\n".join(lines)
