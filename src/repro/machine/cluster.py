"""The Columbia supercluster: 20 Altix nodes and two fabrics.

Paper §2: Columbia is 20 x 512-CPU nodes — 12 model 3700 and 8 model
BX2, five of the BX2s with 1.6 GHz/9 MB parts ("BX2b").  An InfiniBand
switch connects all 20 nodes; four of the BX2b nodes are additionally
linked with NUMAlink4 into a 2,048-CPU / 13 Tflop/s capability
subsystem.

A :class:`Cluster` is the unit experiments run against: an ordered
list of nodes plus the inter-node fabric in use ("numalink4" or
"infiniband") and, for InfiniBand, the MPT runtime version.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machine.infiniband import INFINIBAND, InfiniBandSpec, MPTVersion
from repro.machine.interconnect import NUMALINK4
from repro.machine.node import NODE_CPUS, AltixNode, NodeType, build_node

__all__ = ["Cluster", "columbia", "custom_bx2", "single_node", "multinode"]

#: Valid inter-node fabric names.
FABRICS = ("numalink4", "infiniband")


@dataclass(frozen=True)
class Cluster:
    """A set of Altix nodes joined by one inter-node fabric.

    Global CPU ids are dense: node 0 owns CPUs ``0 .. n0-1``, node 1
    the next ``n1``, and so on.  Columbia's clusters are *uniform*
    (every node holds 512 CPUs) and keep the fast ``i // cpus_per_node``
    geometry; machine-zoo clusters may mix node sizes, in which case
    the geometry runs on a per-node offset table and
    :attr:`cpus_per_node` (a uniform-only concept some layers, e.g.
    :class:`~repro.machine.placement.Placement`, are built on) raises
    loudly instead of silently misplacing CPUs.
    """

    nodes: tuple[AltixNode, ...]
    fabric: str = "numalink4"
    mpt: MPTVersion = MPTVersion.MPT_1_11B
    infiniband: InfiniBandSpec = INFINIBAND

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError("a cluster needs at least one node")
        if self.fabric not in FABRICS:
            raise ConfigurationError(
                f"unknown fabric {self.fabric!r}; expected one of {FABRICS}"
            )

    # -- geometry -----------------------------------------------------------

    def _geometry(self) -> tuple[int | None, tuple[int, ...]]:
        """``(uniform_size_or_None, cpu_offsets)``, memoized.

        ``cpu_offsets[i]`` is the first global CPU id of node ``i``
        (plus a final total-CPUs sentinel).  Built once per cluster
        instance — the frozen-dataclass ``object.__setattr__`` idiom
        :meth:`AltixNode._path_tables` uses.
        """
        try:
            return self.__dict__["_geom"]
        except KeyError:
            sizes = [node.n_cpus for node in self.nodes]
            uniform = sizes[0] if len(set(sizes)) == 1 else None
            offsets = [0]
            for size in sizes:
                offsets.append(offsets[-1] + size)
            geom = (uniform, tuple(offsets))
            object.__setattr__(self, "_geom", geom)
            return geom

    @property
    def uniform(self) -> bool:
        """True when every node holds the same CPU count."""
        return self._geometry()[0] is not None

    @property
    def cpus_per_node(self) -> int:
        size, _ = self._geometry()
        if size is None:
            raise ConfigurationError(
                "cpus_per_node is undefined on a heterogeneous cluster "
                f"(node sizes {sorted({n.n_cpus for n in self.nodes})}); "
                "query node_of()/local_cpu() instead"
            )
        return size

    @property
    def total_cpus(self) -> int:
        return self._geometry()[1][-1]

    def node_of(self, cpu: int) -> int:
        """Which node a global CPU id belongs to."""
        size, offsets = self._geometry()
        if not 0 <= cpu < offsets[-1]:
            raise ConfigurationError(
                f"cpu {cpu} outside cluster of {offsets[-1]}"
            )
        if size is not None:
            return cpu // size
        from bisect import bisect_right

        return bisect_right(offsets, cpu) - 1

    def local_cpu(self, cpu: int) -> int:
        """CPU id within its node."""
        size, offsets = self._geometry()
        if size is not None:
            return cpu % size
        return cpu - offsets[self.node_of(cpu)]

    def node(self, index: int) -> AltixNode:
        return self.nodes[index]

    # -- communication cost ---------------------------------------------------

    def point_to_point(self, cpu_a: int, cpu_b: int) -> tuple[float, float]:
        """(latency_s, bandwidth_Bps) between two global CPUs.

        Intra-node messages use the node's own NUMAlink; inter-node
        messages use the cluster fabric (NUMAlink4 between the linked
        BX2b nodes, or the InfiniBand switch).
        """
        na, nb = self.node_of(cpu_a), self.node_of(cpu_b)
        if na == nb:
            node = self.nodes[na]
            return node.point_to_point(self.local_cpu(cpu_a), self.local_cpu(cpu_b))
        if self.fabric == "numalink4":
            # Cross-node NUMAlink: climb each node's fat tree to its
            # root, then cross the inter-node link.
            from repro.machine.router import tree_depth

            node_a, node_b = self.nodes[na], self.nodes[nb]
            hops = tree_depth(node_a.n_bricks) + tree_depth(node_b.n_bricks)
            return NUMALINK4.point_to_point(hops, internode=True)
        return self.infiniband.point_to_point(len(self.nodes))

    def crosses_nodes(self, cpu_a: int, cpu_b: int) -> bool:
        return self.node_of(cpu_a) != self.node_of(cpu_b)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        counts: dict[str, int] = {}
        for n in self.nodes:
            counts[n.type_label] = counts.get(n.type_label, 0) + 1
        kinds = ", ".join(f"{c}x{label}" for label, c in counts.items())
        return f"Cluster[{kinds}; fabric={self.fabric}]"


# -- builders ----------------------------------------------------------------


def single_node(node_type: NodeType, n_cpus: int = NODE_CPUS) -> Cluster:
    """A one-node cluster (most of §4.1's experiments)."""
    return Cluster(nodes=(build_node(node_type, n_cpus),))


def multinode(
    n_nodes: int,
    node_type: NodeType = NodeType.BX2B,
    fabric: str = "numalink4",
    n_cpus: int = NODE_CPUS,
    mpt: MPTVersion = MPTVersion.MPT_1_11B,
) -> Cluster:
    """``n_nodes`` identical nodes joined by ``fabric`` (§4.6).

    The paper's multinode experiments use up to four BX2b nodes via
    NUMAlink4 and/or InfiniBand.
    """
    if n_nodes < 1:
        raise ConfigurationError(f"need at least one node, got {n_nodes}")
    if fabric == "numalink4" and n_nodes > 4:
        raise ConfigurationError(
            "only four BX2b nodes are NUMAlink4-linked on Columbia (paper §2)"
        )
    nodes = tuple(build_node(node_type, n_cpus) for _ in range(n_nodes))
    return Cluster(nodes=nodes, fabric=fabric, mpt=mpt)


def custom_bx2(clock_ghz: float, l3_mb: int, n_cpus: int = NODE_CPUS) -> Cluster:
    """A hypothetical single-node BX2 variant with the given clock and
    L3 size.

    The real BX2b differs from the BX2a in *both* clock (1.6 vs 1.5
    GHz) and L3 (9 vs 6 MB); the ablation experiments build the two
    intermediate machines (1.5/9 and 1.6/6) to separate the effects.
    This is the canonical builder for those variants — the ablation
    cells and the Scenario layer's ``MachineSpec`` overrides both
    route through it.
    """
    from repro.machine.brick import CBrick
    from repro.machine.memory import ALTIX_FSB
    from repro.machine.node import AltixNode
    from repro.machine.processor import ProcessorSpec, _itanium2_caches
    from repro.units import TERA

    proc = ProcessorSpec(
        name=f"Itanium2 {clock_ghz}GHz/{l3_mb}MB",
        clock_hz=clock_ghz * 1e9,
        flops_per_cycle=4,
        fp_registers=128,
        caches=_itanium2_caches(l3_mb),
    )
    template = build_node(NodeType.BX2A)
    brick = CBrick(
        cpus=template.brick.cpus,
        memory_bytes=template.brick.memory_bytes,
        processor=proc,
        fsb=ALTIX_FSB,
        shubs=template.brick.shubs,
    )
    node = AltixNode(
        node_type=NodeType.BX2A,
        n_cpus=n_cpus,
        brick=brick,
        interconnect=NUMALINK4,
        memory_bytes=1.0 * TERA,
    )
    return Cluster(nodes=(node,))


def columbia(fabric: str = "infiniband", mpt: MPTVersion = MPTVersion.MPT_1_11B) -> Cluster:
    """The full 20-node Columbia configuration (paper §2).

    12 x 3700, 3 x BX2a and 5 x BX2b; all 20 reachable over the
    InfiniBand switch.
    """
    nodes = (
        tuple(build_node(NodeType.A3700) for _ in range(12))
        + tuple(build_node(NodeType.BX2A) for _ in range(3))
        + tuple(build_node(NodeType.BX2B) for _ in range(5))
    )
    return Cluster(nodes=nodes, fabric=fabric, mpt=mpt)
