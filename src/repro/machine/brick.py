"""C-Brick model.

From the paper (§2): the Altix 3700 C-Brick holds four Itanium2
processors (in two 2-CPU nodes), 8 GB local memory and a two-controller
SHUB ASIC; a BX2 C-Brick is double-density — eight processors, 16 GB
memory and four SHUBs.  Each 2-CPU node shares one front-side bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.memory import MemoryBusSpec
from repro.machine.processor import ProcessorSpec

__all__ = ["CBrick"]


@dataclass(frozen=True)
class CBrick:
    """One computational building block (C-Brick)."""

    cpus: int
    memory_bytes: int
    processor: ProcessorSpec
    fsb: MemoryBusSpec
    shubs: int

    def __post_init__(self) -> None:
        if self.cpus % self.fsb.cpus_per_fsb != 0:
            raise ConfigurationError(
                f"{self.cpus} CPUs not divisible by {self.fsb.cpus_per_fsb} per FSB"
            )
        if self.cpus < 1 or self.memory_bytes <= 0 or self.shubs < 1:
            raise ConfigurationError("invalid C-Brick configuration")

    @property
    def fsb_count(self) -> int:
        """Number of front-side buses in the brick."""
        return self.cpus // self.fsb.cpus_per_fsb

    def fsb_of(self, cpu_in_brick: int) -> int:
        """Which FSB (0-based, within the brick) a CPU sits on."""
        if not 0 <= cpu_in_brick < self.cpus:
            raise ConfigurationError(
                f"cpu {cpu_in_brick} outside brick of {self.cpus}"
            )
        return cpu_in_brick // self.fsb.cpus_per_fsb
