"""Front-side-bus / local-memory bandwidth model.

From the paper (§4.2): STREAM on one CPU reaches ~3.8 GB/s, but on
densely packed CPUs only ~2 GB/s per CPU, because *each memory bus is
shared by two processors*.  Running strided (every 2nd or 4th CPU)
recovers the single-CPU number (Triad 1.9x higher than dense).

The model: each FSB serves ``cpus_per_fsb`` processors and sustains
``fsb_bandwidth`` bytes/s total; a single CPU can itself only sink
``cpu_max_bandwidth``.  Effective per-CPU bandwidth is the min of the
CPU limit and the fair FSB share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import gb_per_s

__all__ = ["MemoryBusSpec", "ALTIX_FSB"]


@dataclass(frozen=True)
class MemoryBusSpec:
    """One front-side bus shared by a pair of Itanium2 CPUs."""

    #: Sustainable bus bandwidth (bytes/s), all sharers combined.
    fsb_bandwidth: float
    #: Max bandwidth a single CPU can sink (bytes/s).
    cpu_max_bandwidth: float
    #: Number of CPUs sharing one bus (2 on the Altix C-brick).
    cpus_per_fsb: int = 2

    def __post_init__(self) -> None:
        if self.fsb_bandwidth <= 0 or self.cpu_max_bandwidth <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if self.cpus_per_fsb < 1:
            raise ConfigurationError("cpus_per_fsb must be >= 1")

    def per_cpu_bandwidth(self, active_cpus_on_fsb: int) -> float:
        """Effective STREAM-like bandwidth per active CPU (bytes/s)."""
        if active_cpus_on_fsb < 1:
            raise ConfigurationError(
                f"active_cpus_on_fsb must be >= 1, got {active_cpus_on_fsb}"
            )
        if active_cpus_on_fsb > self.cpus_per_fsb:
            raise ConfigurationError(
                f"{active_cpus_on_fsb} active CPUs exceeds the "
                f"{self.cpus_per_fsb} sharing this bus"
            )
        fair_share = self.fsb_bandwidth / active_cpus_on_fsb
        return min(self.cpu_max_bandwidth, fair_share)


#: Calibrated to §4.2: 1-CPU STREAM ~3.8 GB/s; dense ~2 GB/s per CPU
#: (Triad 1.9x better when strided).
ALTIX_FSB = MemoryBusSpec(
    fsb_bandwidth=gb_per_s(4.0),
    cpu_max_bandwidth=gb_per_s(3.8),
    cpus_per_fsb=2,
)
