"""InfiniBand inter-node fabric model.

From the paper: an InfiniBand switch (Voltaire ISR 9288) provides
low-latency MPI communication between the 20 Altix nodes.  Compared to
NUMAlink4 the paper finds (Fig. 10): a substantial latency penalty for
cross-node pairs that worsens from two to four nodes, a ping-pong
bandwidth falloff as the likelihood of non-local pairing increases,
and severe random-ring scalability problems.  §2 also documents the
connection-count limit: with ``N_cards = 8`` per node and
``N_connections = 64K`` per card, a pure-MPI code can fully utilize at
most three Altix nodes; four or more need a hybrid paradigm.

§4.6.2 reports an SP-MZ anomaly with the released SGI MPT runtime
(mpt1.11r) — InfiniBand 40% slower than NUMAlink4 at 256 CPUs,
recovering at higher counts — that disappears with the beta library
(mpt1.11b).  The anomaly is a *fault*, not a property of the healthy
switch: it lives in :class:`repro.faults.MptAnomaly` and is injected
by the experiments that reproduce the degraded-mode tables.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import CommunicationError, ConfigurationError
from repro.units import gb_per_s, usec

__all__ = ["MPTVersion", "InfiniBandSpec", "INFINIBAND", "max_mpi_procs_per_node"]


class MPTVersion(enum.Enum):
    """SGI Message Passing Toolkit runtime versions tested in §4.6.2."""

    #: Released library; exhibits the SP-MZ-over-InfiniBand anomaly.
    MPT_1_11R = "mpt1.11r"
    #: Beta library; anomaly absent, IB close to NUMAlink4.
    MPT_1_11B = "mpt1.11b"


@dataclass(frozen=True)
class InfiniBandSpec:
    """The InfiniBand switch coupling Columbia's Altix nodes."""

    name: str
    #: Effective point-to-point MPI bandwidth across the switch.
    bandwidth: float
    #: Base cross-switch MPI latency.
    base_latency: float
    #: Extra latency per additional participating node beyond two —
    #: models the paper's two-node -> four-node latency degradation
    #: (more off-node pairs, more switch stages exercised).
    per_extra_node_latency: float
    #: Bandwidth derate per additional node beyond two.
    per_extra_node_bw_derate: float
    #: InfiniBand cards per Altix node (paper §2: N_cards = 8).
    cards_per_node: int
    #: Connections supported per card (paper §2: 64K).
    connections_per_card: int

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.base_latency < 0:
            raise ConfigurationError(f"{self.name}: bad parameters")
        if self.cards_per_node < 1 or self.connections_per_card < 1:
            raise ConfigurationError(f"{self.name}: bad connection limits")

    def point_to_point(self, n_nodes: int) -> tuple[float, float]:
        """(latency_s, bandwidth_Bps) for a cross-node path when
        ``n_nodes`` Altix nodes participate in the job.

        This is the *healthy* switch: the released MPT library's
        per-message overhead is a fault
        (:class:`repro.faults.MptAnomaly`), injected by the §4.6.2
        experiments and applied at the path-pricing layer.
        """
        if n_nodes < 2:
            raise ConfigurationError(
                "InfiniBand paths only exist between distinct nodes"
            )
        extra = n_nodes - 2
        latency = self.base_latency + extra * self.per_extra_node_latency
        bandwidth = self.bandwidth / (1.0 + extra * self.per_extra_node_bw_derate)
        return latency, bandwidth

    def max_procs_per_node(self, n_nodes: int) -> int:
        """Max per-node MPI processes given the connection limit.

        Paper §2: per-node process count is confined by
        ``sqrt(N_cards * N_connections / (n - 1))`` for ``n >= 2``
        nodes.  With 8 cards x 64K connections this fully utilizes a
        512-CPU node only up to three nodes.
        """
        return max_mpi_procs_per_node(
            n_nodes, self.cards_per_node, self.connections_per_card
        )

    def check_pure_mpi(self, n_nodes: int, procs_per_node: int) -> None:
        """Raise if a pure-MPI layout exceeds the connection limit."""
        if n_nodes < 2:
            return
        limit = self.max_procs_per_node(n_nodes)
        if procs_per_node > limit:
            raise CommunicationError(
                f"{procs_per_node} MPI processes/node over InfiniBand on "
                f"{n_nodes} nodes exceeds the connection limit of {limit} "
                f"({self.cards_per_node} cards x "
                f"{self.connections_per_card} connections); "
                "use a hybrid MPI+OpenMP layout (paper §2)"
            )


def max_mpi_procs_per_node(
    n_nodes: int, cards_per_node: int = 8, connections_per_card: int = 64 * 1024
) -> int:
    """The paper's §2 formula for the pure-MPI per-node process cap."""
    if n_nodes < 2:
        raise ConfigurationError("the limit applies only for n >= 2 nodes")
    return int(math.isqrt(cards_per_node * connections_per_card // (n_nodes - 1)))


#: Calibrated to Fig. 10: cross-node latency several times NUMAlink4's,
#: bandwidth well below NUMAlink4, both degrading from 2 to 4 nodes;
#: and to §4.6.2's released-MPT anomaly.
INFINIBAND = InfiniBandSpec(
    name="InfiniBand (Voltaire ISR 9288)",
    bandwidth=gb_per_s(0.82),
    base_latency=usec(5.6),
    per_extra_node_latency=usec(1.6),
    per_extra_node_bw_derate=0.16,
    cards_per_node=8,
    connections_per_card=64 * 1024,
)
