"""Configuration advisor: the paper's operational lessons as lint rules.

The characterization's practical payload is a set of "don't do this on
Columbia" lessons.  ``advise(placement)`` inspects a job layout and
returns the applicable warnings, each tied to the paper section that
taught it:

* unpinned hybrid jobs (§4.3);
* occupying the boot cpuset (§4.6.2);
* pure MPI over InfiniBand beyond the §2 connection limit;
* SHMEM-style assumptions across the InfiniBand switch (§2);
* dense placement for bandwidth-bound work (§4.2);
* the released MPT library over InfiniBand (§4.6.2);
* OpenMP spanning too many C-Bricks on a 3700 (§4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.infiniband import MPTVersion
from repro.machine.node import NodeType
from repro.machine.placement import Placement, PinningMode

__all__ = ["Advice", "advise"]


@dataclass(frozen=True)
class Advice:
    """One warning about a job layout."""

    rule: str
    paper_ref: str
    severity: str  # "error" (won't run / nonsense) or "warning"
    message: str


def advise(placement: Placement, bandwidth_bound: bool = False) -> list[Advice]:
    """Lint a placement against the paper's lessons.

    ``bandwidth_bound`` marks the workload as STREAM-like, enabling
    the §4.2 stride advice.
    """
    out: list[Advice] = []
    cluster = placement.cluster
    n_nodes = placement.n_nodes_used()

    # -- §4.3 pinning -----------------------------------------------------------
    if placement.pinning is PinningMode.UNPINNED:
        penalty = placement.locality_penalty()
        severity = "warning" if placement.threads_per_rank == 1 else "error"
        out.append(
            Advice(
                rule="pin-your-threads",
                paper_ref="§4.3",
                severity=severity,
                message=(
                    f"unpinned layout pays a ~{penalty:.1f}x locality penalty; "
                    "use dplace/MPI_DSM_CPULIST (pure-process jobs suffer "
                    "least, hybrid jobs most)"
                ),
            )
        )

    # -- §4.6.2 boot cpuset --------------------------------------------------------
    # Advise on the occupancy condition itself, not the injected
    # penalty: the lint should fire on a healthy machine too.
    if placement.uses_boot_cpuset():
        out.append(
            Advice(
                rule="leave-the-boot-cpuset",
                paper_ref="§4.6.2",
                severity="warning",
                message=(
                    "the job occupies every CPU of a node and will contend "
                    "with system software (10-15% observed); use 508 of 512"
                ),
            )
        )

    # -- §2 InfiniBand connection limit ---------------------------------------------
    if n_nodes > 1 and cluster.fabric == "infiniband":
        ranks_per_node = -(-placement.n_ranks // n_nodes)  # ceil
        cap = cluster.infiniband.max_procs_per_node(n_nodes)
        if ranks_per_node > cap:
            out.append(
                Advice(
                    rule="hybrid-beyond-three-nodes",
                    paper_ref="§2",
                    severity="error",
                    message=(
                        f"{ranks_per_node} MPI processes/node exceeds the "
                        f"InfiniBand connection cap of {cap} at {n_nodes} "
                        "nodes; add OpenMP threads"
                    ),
                )
            )
        if cluster.mpt is MPTVersion.MPT_1_11R:
            out.append(
                Advice(
                    rule="use-the-beta-mpt",
                    paper_ref="§4.6.2",
                    severity="warning",
                    message=(
                        "the released MPT library (mpt1.11r) showed a 40% "
                        "InfiniBand anomaly at moderate CPU counts; use "
                        "mpt1.11b"
                    ),
                )
            )

    # -- §4.2 stride for bandwidth-bound work ------------------------------------------
    if bandwidth_bound and placement.stride == 1 and placement.active_per_fsb() > 1:
        out.append(
            Advice(
                rule="stride-for-bandwidth",
                paper_ref="§4.2",
                severity="warning",
                message=(
                    "dense placement shares each memory bus between two "
                    "CPUs (~2 GB/s each); stride 2 recovers ~3.8 GB/s per "
                    "CPU if spare CPUs are available"
                ),
            )
        )

    # -- §4.1.2 / §4.5 OpenMP width -------------------------------------------------------
    node = cluster.nodes[0]
    if placement.threads_per_rank > 8 and node.node_type is NodeType.A3700:
        out.append(
            Advice(
                rule="narrow-threads-on-3700",
                paper_ref="§4.1.2",
                severity="warning",
                message=(
                    f"{placement.threads_per_rank} OpenMP threads span many "
                    "NUMAlink3 bricks; thread scaling on the 3700 decays "
                    "quickly — prefer more MPI processes or a BX2 node"
                ),
            )
        )
    if placement.threads_per_rank > 2 and placement.n_ranks > 1:
        out.append(
            Advice(
                rule="two-threads-sweet-spot",
                paper_ref="§4.5",
                severity="info",
                message=(
                    "hybrid codes scaled well at two threads per process; "
                    f"beyond that ({placement.threads_per_rank} requested) "
                    "OpenMP efficiency drops quickly — justify with load "
                    "balance, not speed"
                ),
            )
        )
    return out
