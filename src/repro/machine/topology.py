"""Topology analysis of the NUMAlink fat trees.

Quantifies the structural claims behind the paper's §2/§4.1.2
narrative: the BX2's double-density packaging halves the brick count,
shortening paths, while the fat tree keeps bisection bandwidth linear
in the processor count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.node import AltixNode, NodeType, build_node
from repro.machine.router import bisection_links, hop_count, tree_depth
from repro.units import to_gb_per_s

__all__ = ["TopologyStats", "analyze_node", "topology_report"]


@dataclass(frozen=True)
class TopologyStats:
    """Structural metrics of one node's interconnect."""

    node_type: NodeType
    n_bricks: int
    tree_depth: int
    diameter_hops: int
    mean_hops: float
    bisection_bandwidth: float  # bytes/s
    bisection_per_cpu: float  # bytes/s/CPU


def analyze_node(node: AltixNode) -> TopologyStats:
    """Compute the fat-tree metrics for a node."""
    b = node.n_bricks
    if b < 1:
        raise ConfigurationError("node has no bricks")
    # Mean over distinct brick pairs (closed form is messy; b <= 128
    # keeps the O(b^2) loop trivial).
    if b == 1:
        mean_hops = 0.0
        diameter = 0
    else:
        total = 0
        count = 0
        for i in range(b):
            for j in range(i + 1, b):
                total += hop_count(i, j)
                count += 1
        mean_hops = total / count
        diameter = 2 * tree_depth(b)
    bis_bw = bisection_links(b) * node.interconnect.link_bandwidth
    return TopologyStats(
        node_type=node.node_type,
        n_bricks=b,
        tree_depth=tree_depth(b),
        diameter_hops=diameter,
        mean_hops=mean_hops,
        bisection_bandwidth=bis_bw,
        bisection_per_cpu=bis_bw / node.n_cpus,
    )


def topology_report() -> str:
    """Side-by-side metrics for the three Columbia node types."""
    lines = [
        "NUMAlink fat-tree topology metrics",
        f"{'metric':<26}{'3700':>12}{'BX2a':>12}{'BX2b':>12}",
    ]
    stats = [analyze_node(build_node(nt)) for nt in NodeType]
    rows = [
        ("bricks", [f"{s.n_bricks}" for s in stats]),
        ("tree depth", [f"{s.tree_depth}" for s in stats]),
        ("diameter (hops)", [f"{s.diameter_hops}" for s in stats]),
        ("mean distance (hops)", [f"{s.mean_hops:.1f}" for s in stats]),
        ("bisection (GB/s)", [f"{to_gb_per_s(s.bisection_bandwidth):.0f}" for s in stats]),
        ("bisection/CPU (GB/s)", [f"{to_gb_per_s(s.bisection_per_cpu):.2f}" for s in stats]),
    ]
    for label, values in rows:
        lines.append(f"{label:<26}" + "".join(f"{v:>12}" for v in values))
    return "\n".join(lines)
