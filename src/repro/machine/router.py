"""Fat-tree router topology for the NUMAlink fabric inside a node.

The Altix 3700 uses a custom fat-tree network whose bisection
bandwidth scales linearly with processor count (paper §2).  We model
the intra-node fabric as a binary fat tree over C-bricks: two bricks
at tree distance *d* (the level of their lowest common ancestor)
communicate over ``2*d`` router hops.

`build_fat_tree` also constructs the explicit networkx graph, used by
tests and the topology-analysis helpers (`bisection_links`,
`path_hops`); the hot path (`hop_count`) is the closed form, because
per-message shortest-path queries would dominate DES runtime.
"""

from __future__ import annotations

from functools import lru_cache

import networkx as nx

from repro.errors import ConfigurationError

__all__ = [
    "hop_count",
    "hop_table",
    "build_fat_tree",
    "bisection_links",
    "tree_depth",
]


def tree_depth(n_bricks: int) -> int:
    """Depth of the binary fat tree spanning ``n_bricks`` leaves."""
    if n_bricks < 1:
        raise ConfigurationError(f"need at least one brick, got {n_bricks}")
    return max(1, (n_bricks - 1).bit_length())


def hop_count(brick_a: int, brick_b: int) -> int:
    """Router hops between two bricks in the binary fat tree.

    Same brick -> 0 hops.  Otherwise the message climbs to the lowest
    common ancestor and back down: ``2 * lca_level`` hops, where
    ``lca_level`` is the index of the highest differing bit of the
    brick numbers.
    """
    if brick_a < 0 or brick_b < 0:
        raise ConfigurationError("brick indices must be non-negative")
    if brick_a == brick_b:
        return 0
    lca_level = (brick_a ^ brick_b).bit_length()
    return 2 * lca_level


@lru_cache(maxsize=None)
def hop_table(n_bricks: int) -> tuple[tuple[int, ...], ...]:
    """Flat all-pairs hop table: ``hop_table(n)[a][b] == hop_count(a, b)``.

    Built once per brick count (the same closed form as
    :func:`hop_count`, tabulated), so per-path hop queries on the cost
    model's hot path are two subscripts instead of xor/bit-length
    arithmetic behind a function call.  A 64-brick node is a 64x64
    int table — small enough to keep for every brick count ever seen
    in a process.
    """
    if n_bricks < 1:
        raise ConfigurationError(f"need at least one brick, got {n_bricks}")
    return tuple(
        tuple(hop_count(a, b) for b in range(n_bricks))
        for a in range(n_bricks)
    )


def build_fat_tree(n_bricks: int) -> nx.Graph:
    """Explicit binary fat-tree graph over ``n_bricks`` leaf bricks.

    Leaves are ``("brick", i)``; internal routers are
    ``("router", level, index)`` with level 1 just above the leaves.
    Edge attribute ``level`` records the tree level of the link, so
    capacity weighting (fat links near the root) can be layered on.
    """
    depth = tree_depth(n_bricks)
    hop_table(n_bricks)  # tabulate the closed form alongside the graph
    g = nx.Graph()
    for i in range(n_bricks):
        g.add_node(("brick", i))
    # Router at (level, j) covers leaves [j*2^level, (j+1)*2^level).
    for level in range(1, depth + 1):
        n_routers = (n_bricks + (1 << level) - 1) >> level
        for j in range(n_routers):
            g.add_node(("router", level, j))
            if level == 1:
                for child in (2 * j, 2 * j + 1):
                    if child < n_bricks:
                        g.add_edge(("router", 1, j), ("brick", child), level=1)
            else:
                n_children = (n_bricks + (1 << (level - 1)) - 1) >> (level - 1)
                for child in (2 * j, 2 * j + 1):
                    if child < n_children:
                        g.add_edge(
                            ("router", level, j),
                            ("router", level - 1, child),
                            level=level,
                        )
    return g


def path_hops(graph: nx.Graph, brick_a: int, brick_b: int) -> int:
    """Router hops between two bricks via the explicit graph.

    Equals :func:`hop_count` (tested property) but computed by BFS.
    """
    if brick_a == brick_b:
        return 0
    return nx.shortest_path_length(graph, ("brick", brick_a), ("brick", brick_b))


def bisection_links(n_bricks: int) -> int:
    """Number of links crossing the even/odd-half bisection.

    In a full-bisection binary fat tree this scales linearly with the
    number of bricks (paper §2: "bisection bandwidth ... scale[s]
    linearly with the number of processors").  We model one root-level
    link per brick pair spanning the cut.
    """
    if n_bricks < 2:
        return 0
    return n_bricks // 2
