"""NUMAlink interconnect specifications.

From the paper: NUMAlink3 (Altix 3700) gives each C-Brick a shared
peak of 3.2 GB/s; NUMAlink4 (BX2) doubles that to 6.4 GB/s.  The BX2's
double-density packaging also shortens average router distances, which
the paper credits for the BX2's shorter latencies and better OpenMP
scaling ("the double density packing for BX2 produces shorter latency
and higher bandwidth in NUMAlink access", §4.1.2).

Latency parameters are calibrated to Fig. 5: ping-pong latencies are
~1-2 us and nearly identical across node types, while random-ring
latency grows with CPU count and grows *faster* on the 3700.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import gb_per_s, usec

__all__ = ["InterconnectSpec", "NUMALINK3", "NUMALINK4"]


@dataclass(frozen=True)
class InterconnectSpec:
    """A NUMAlink generation."""

    name: str
    #: Peak link bandwidth per C-Brick, bytes/s (Table 1).
    link_bandwidth: float
    #: Fraction of peak an MPI transfer can sustain point-to-point.
    mpi_efficiency: float
    #: Software+SHUB latency for a zero-hop (same-brick) MPI message.
    base_latency: float
    #: Added latency per router hop.
    per_hop_latency: float
    #: Bandwidth derating per router hop for far traffic (models
    #: SHUB/directory overheads on long paths), applied as
    #: ``bw / (1 + hops * per_hop_bw_derate)``.
    per_hop_bw_derate: float
    #: Latency to cross between two NUMAlink-connected Altix nodes.
    internode_latency: float
    #: Sustained fraction of the per-brick link available per CPU when
    #: *every* CPU drives the fabric at once (dense patterns:
    #: all-to-all transposes, OpenMP shared-memory traffic).  The
    #: BX2's NUMAlink4 fat tree routes over two planes, sustaining
    #: full per-CPU share; the 3700's NUMAlink3 effectively halves it
    #: under load — the mechanism behind the paper's 2x FT/OpenMP
    #: gaps (§4.1.2).
    plane_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or not 0 < self.mpi_efficiency <= 1:
            raise ConfigurationError(f"{self.name}: bad bandwidth parameters")
        if min(self.base_latency, self.per_hop_latency,
               self.per_hop_bw_derate, self.internode_latency) < 0:
            raise ConfigurationError(f"{self.name}: negative latency parameter")

    def point_to_point(self, hops: int, internode: bool = False) -> tuple[float, float]:
        """(latency_s, bandwidth_Bps) for a path of ``hops`` router hops."""
        if hops < 0:
            raise ConfigurationError(f"negative hop count: {hops}")
        latency = self.base_latency + hops * self.per_hop_latency
        if internode:
            latency += self.internode_latency
        bandwidth = (
            self.link_bandwidth * self.mpi_efficiency
            / (1.0 + hops * self.per_hop_bw_derate)
        )
        return latency, bandwidth

    def loaded_bandwidth_per_cpu(self, cpus_per_brick: int) -> float:
        """Per-CPU sustained bandwidth when all CPUs drive the fabric.

        Each brick's link is shared by its CPUs; the plane factor
        accounts for how well the generation routes dense traffic.
        """
        if cpus_per_brick < 1:
            raise ConfigurationError(
                f"cpus_per_brick must be >= 1: {cpus_per_brick}"
            )
        return (
            self.link_bandwidth * self.mpi_efficiency * self.plane_factor
            / cpus_per_brick
        )


#: NUMAlink3 as in the Altix 3700 (Table 1: 3.2 GB/s per brick).
NUMALINK3 = InterconnectSpec(
    name="NUMAlink3",
    link_bandwidth=gb_per_s(3.2),
    mpi_efficiency=0.58,
    base_latency=usec(1.1),
    per_hop_latency=usec(0.12),
    per_hop_bw_derate=0.085,
    internode_latency=usec(1.0),
    plane_factor=0.35,
)

#: NUMAlink4 as in the BX2 (Table 1: 6.4 GB/s per brick; also used to
#: couple the four BX2b nodes into the 2048-CPU capability subsystem).
NUMALINK4 = InterconnectSpec(
    name="NUMAlink4",
    link_bandwidth=gb_per_s(6.4),
    mpi_efficiency=0.58,
    base_latency=usec(1.0),
    per_hop_latency=usec(0.07),
    per_hop_bw_derate=0.055,
    internode_latency=usec(0.9),
    plane_factor=1.0,
)
