"""Altix node model: 3700, BX2a and BX2b.

Table 1 of the paper: every Columbia node is a 512-processor
single-system-image NUMAflex machine with ~1 TB of globally shared
memory.  The 3700 packs 32 CPUs/rack (4-CPU C-Bricks, NUMAlink3,
3.2 GB/s); the BX2 packs 64 CPUs/rack (8-CPU C-Bricks, NUMAlink4,
6.4 GB/s).  "BX2a" denotes BX2 nodes with 1.5 GHz/6 MB parts, "BX2b"
the five with 1.6 GHz/9 MB parts (§4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.machine.brick import CBrick
from repro.machine.interconnect import InterconnectSpec, NUMALINK3, NUMALINK4
from repro.machine.memory import ALTIX_FSB, MemoryBusSpec
from repro.machine.processor import (
    ITANIUM2_1500_6MB,
    ITANIUM2_1600_9MB,
    ProcessorSpec,
)
from repro.machine.router import hop_count
from repro.units import GIB, TERA

__all__ = [
    "AcceleratorSpec",
    "AltixNode",
    "MPI_MEMCPY_BANDWIDTH",
    "NodeType",
    "build_node",
]

NODE_CPUS = 512

#: Single-stream MPI copy bandwidth through shared memory at 1.5 GHz
#: (one CPU reading + writing through its half of the FSB).  This is
#: the ceiling for intra-node MPI transfers — the reason the paper
#: finds processor speed, not interconnect, determines natural-ring
#: bandwidth (§4.1.1).
MPI_MEMCPY_BANDWIDTH = 1.9e9


class NodeType(enum.Enum):
    """The three Altix node variants characterized in the paper."""

    A3700 = "3700"
    BX2A = "BX2a"
    BX2B = "BX2b"


_PROCESSOR: dict[NodeType, ProcessorSpec] = {
    NodeType.A3700: ITANIUM2_1500_6MB,
    NodeType.BX2A: ITANIUM2_1500_6MB,
    NodeType.BX2B: ITANIUM2_1600_9MB,
}

_INTERCONNECT: dict[NodeType, InterconnectSpec] = {
    NodeType.A3700: NUMALINK3,
    NodeType.BX2A: NUMALINK4,
    NodeType.BX2B: NUMALINK4,
}

_CPUS_PER_BRICK: dict[NodeType, int] = {
    NodeType.A3700: 4,  # 32 CPUs/rack
    NodeType.BX2A: 8,  # 64 CPUs/rack (double density)
    NodeType.BX2B: 8,
}


@dataclass(frozen=True)
class AcceleratorSpec:
    """Per-node accelerators (GPUs) for machine-zoo configurations.

    Columbia has none; the zoo's Marconi100-style preset attaches four
    V100-class devices per node.  The compute models price them as an
    offload term: the ``offload_fraction`` of solver flops that can
    run on the devices does so at ``count * peak_flops_each *
    efficiency``, the rest stays on the host CPUs (an Amdahl split —
    the shape of the ExaDigiT/RAPS ``node_peak_flops`` accounting).
    """

    name: str
    #: devices per node.
    count: int
    #: theoretical peak per device, flop/s.
    peak_flops_each: float
    #: fraction of solver flops the offloaded kernels cover.
    offload_fraction: float
    #: sustained fraction of device peak on real solver kernels.
    efficiency: float = 0.5

    def __post_init__(self) -> None:
        if self.count < 1 or self.peak_flops_each <= 0:
            raise ConfigurationError(
                f"{self.name}: accelerator count/peak must be positive"
            )
        if not 0.0 <= self.offload_fraction <= 1.0:
            raise ConfigurationError(
                f"{self.name}: offload_fraction must be in [0, 1], "
                f"got {self.offload_fraction}"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError(
                f"{self.name}: efficiency must be in (0, 1], "
                f"got {self.efficiency}"
            )

    @property
    def peak_flops(self) -> float:
        """Aggregate device peak per node, flop/s."""
        return self.count * self.peak_flops_each

    @property
    def sustained_flops(self) -> float:
        """Deliverable device rate per node, flop/s."""
        return self.peak_flops * self.efficiency


@dataclass(frozen=True)
class AltixNode:
    """One 512-CPU Altix node (a "box" in the paper's terms).

    ``node_type`` is one of the three Columbia :class:`NodeType`
    variants — or, for machine-zoo nodes, a plain string label.
    ``accelerator`` is ``None`` on every Columbia node; zoo configs
    may attach per-node devices (see :class:`AcceleratorSpec`).
    """

    node_type: NodeType | str
    n_cpus: int
    brick: CBrick
    interconnect: InterconnectSpec
    memory_bytes: float
    accelerator: AcceleratorSpec | None = None

    def __post_init__(self) -> None:
        if self.n_cpus < 1 or self.n_cpus % self.brick.cpus != 0:
            raise ConfigurationError(
                f"{self.n_cpus} CPUs not divisible into "
                f"{self.brick.cpus}-CPU bricks"
            )

    # -- layout -------------------------------------------------------------

    @property
    def processor(self) -> ProcessorSpec:
        return self.brick.processor

    @property
    def fsb(self) -> MemoryBusSpec:
        return self.brick.fsb

    @property
    def n_bricks(self) -> int:
        return self.n_cpus // self.brick.cpus

    def brick_of(self, cpu: int) -> int:
        """Which C-Brick a CPU lives in (0-based)."""
        self._check_cpu(cpu)
        return cpu // self.brick.cpus

    def fsb_of(self, cpu: int) -> int:
        """Global FSB index of a CPU within the node."""
        self._check_cpu(cpu)
        return cpu // self.fsb.cpus_per_fsb

    def hops(self, cpu_a: int, cpu_b: int) -> int:
        """NUMAlink router hops between two CPUs of this node."""
        return hop_count(self.brick_of(cpu_a), self.brick_of(cpu_b))

    def _path_tables(self) -> tuple:
        """``(brick_hops, pp_by_hops, cpus_per_brick)`` lookup tables.

        ``brick_hops[a][b]`` is the router hop count between bricks,
        ``pp_by_hops[h]`` the finished clock-scaled ``(latency,
        bandwidth)`` for an ``h``-hop intra-node path.  Built lazily on
        first path query and memoized on the instance (a frozen
        dataclass, hence ``object.__setattr__`` — the same idiom as
        ``Placement.generation``): node objects are themselves cached
        by :func:`build_node`, so each variant tabulates once per
        process.
        """
        try:
            return self.__dict__["_ptables"]
        except KeyError:
            from repro.machine.router import hop_table, tree_depth

            speed = self.processor.clock_hz / 1.5e9
            memcpy_bw = MPI_MEMCPY_BANDWIDTH * speed
            pp = []
            for hops in range(2 * tree_depth(self.n_bricks) + 1):
                lat, bw = self.interconnect.point_to_point(hops)
                # Intra-node MPI moves data with CPU copies through
                # shared memory, so achievable bandwidth is capped by
                # a clock-scaled memcpy bound regardless of NUMAlink
                # generation; MPI software overhead runs on the CPU,
                # so latency scales with clock too (§4.1.1).
                pp.append((lat / speed, min(bw, memcpy_bw)))
            tables = (hop_table(self.n_bricks), tuple(pp), self.brick.cpus)
            object.__setattr__(self, "_ptables", tables)
            return tables

    def point_to_point(self, cpu_a: int, cpu_b: int) -> tuple[float, float]:
        """(latency_s, bandwidth_Bps) for an intra-node MPI message.

        The MPI software overhead (message matching, copies in and out
        of MPT buffers) runs on the CPU, so both latency and the
        achievable bandwidth of *local* transfers scale with clock —
        the paper's §4.1.1 finding that "in the case of the Natural
        Ring, where local communication predominates, processor speed
        is the determining factor", with a partial effect on remote
        paths ("In the Random Ring ... both processor speed and
        interconnect show effects").

        All the arithmetic is precomputed per hop count (this runs
        once per distinct rank pair of every placement, the cost-model
        cold-build hot path): two table subscripts replace the
        interconnect/clock-scaling math.
        """
        brick_hops, pp, cpus_per_brick = self._path_tables()
        if cpu_a < 0 or cpu_b < 0:
            raise ConfigurationError("cpu indices must be non-negative")
        try:
            hops = brick_hops[cpu_a // cpus_per_brick][cpu_b // cpus_per_brick]
        except IndexError:
            raise ConfigurationError(
                f"cpu {max(cpu_a, cpu_b)} outside node of {self.n_cpus}"
            ) from None
        return pp[hops]

    @property
    def peak_flops(self) -> float:
        """Theoretical host-CPU node peak (Table 1: 3.07 / 3.28
        Tflop/s).  Excludes accelerators — see
        :attr:`total_peak_flops`."""
        return self.n_cpus * self.processor.peak_flops

    @property
    def accelerator_flops(self) -> float:
        """Aggregate accelerator peak, flop/s (0.0 without devices)."""
        return 0.0 if self.accelerator is None else self.accelerator.peak_flops

    @property
    def total_peak_flops(self) -> float:
        """CPU + accelerator peak (the RAPS ``node_peak_flops``)."""
        return self.peak_flops + self.accelerator_flops

    @property
    def type_label(self) -> str:
        """The node-type name, enum or zoo string alike."""
        nt = self.node_type
        return nt.value if isinstance(nt, NodeType) else str(nt)

    def _check_cpu(self, cpu: int) -> None:
        if not 0 <= cpu < self.n_cpus:
            raise ConfigurationError(
                f"cpu {cpu} outside node of {self.n_cpus}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Altix {self.type_label} ({self.n_cpus} CPUs)"


@lru_cache(maxsize=None)
def build_node(node_type: NodeType, n_cpus: int = NODE_CPUS) -> AltixNode:
    """Construct one of the three Columbia node variants.

    ``n_cpus`` can be reduced (power of two recommended) for small
    test machines; production nodes have 512.
    """
    cpus_per_brick = _CPUS_PER_BRICK[node_type]
    processor = _PROCESSOR[node_type]
    brick = CBrick(
        cpus=cpus_per_brick,
        memory_bytes=(2 * GIB) * cpus_per_brick,  # 8 GB / 4-CPU brick
        processor=processor,
        fsb=ALTIX_FSB,
        shubs=cpus_per_brick // 2,
    )
    return AltixNode(
        node_type=node_type,
        n_cpus=n_cpus,
        brick=brick,
        interconnect=_INTERCONNECT[node_type],
        memory_bytes=1.0 * TERA * (n_cpus / NODE_CPUS),
    )
