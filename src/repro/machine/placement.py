"""Process/thread placement: pinning, density and CPU stride.

Two of the paper's experiments are *purely* about placement:

* §4.2 "CPU Stride": running HPCC on every 2nd or 4th CPU recovers the
  single-CPU STREAM bandwidth (each FSB is shared by two CPUs) at the
  cost of slightly longer communication paths.
* §4.3 "Pinning": on a NUMA machine, unpinned threads migrate between
  CPUs, losing data locality; the penalty grows with the number of
  OpenMP threads per process and with the total CPU count (Fig. 7).
  Pure-process mode (1 thread/process) is much less affected.

A :class:`Placement` maps MPI ranks (and their OpenMP threads) to
global CPU ids on a :class:`~repro.machine.cluster.Cluster`.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faults.context import current_injector
from repro.machine.cluster import Cluster

__all__ = ["PinningMode", "Placement", "unpinned_penalty"]

#: Source of per-instance :attr:`Placement.generation` ids.  Never
#: recycled, so a generation uniquely identifies one placement for the
#: lifetime of the process (no id()-reuse aliasing).
_placement_generations = itertools.count(1)


class PinningMode(enum.Enum):
    """Whether threads are pinned to CPUs (dplace / MPI_DSM_CPULIST /
    system calls — paper §4.3 methods 1-3) or free to migrate."""

    PINNED = "pinned"
    UNPINNED = "unpinned"


@dataclass(frozen=True)
class Placement:
    """A layout of ``n_ranks`` MPI processes x ``threads_per_rank``
    OpenMP threads onto a cluster.

    ``stride`` spaces consecutive *CPU slots* (§4.2: stride 2 or 4
    dedicates a full FSB, or a full FSB pair, to each active CPU).
    Ranks fill nodes in order; a rank's threads occupy consecutive
    slots after the rank's first CPU, so hybrid layouts keep each
    process's threads close together (as dplace does).
    """

    cluster: Cluster
    n_ranks: int
    threads_per_rank: int = 1
    stride: int = 1
    pinning: PinningMode = PinningMode.PINNED
    #: Distribute ranks round-robin across the cluster's nodes instead
    #: of filling node 0 first — how multi-box jobs are actually laid
    #: out in the paper's §4.6 experiments (every node carries an
    #: equal share even when the job is smaller than the machine).
    spread_nodes: bool = False
    #: Explicit CPU list (the §4.3 ``MPI_DSM_CPULIST`` / dplace
    #: mechanism): slot ``rank * threads + thread`` pins to
    #: ``cpu_list[slot]``.  Overrides stride and spreading.
    cpu_list: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ConfigurationError(f"need >= 1 rank, got {self.n_ranks}")
        if self.threads_per_rank < 1:
            raise ConfigurationError(
                f"need >= 1 thread per rank, got {self.threads_per_rank}"
            )
        if self.stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {self.stride}")
        if self.cpu_list is not None:
            if len(self.cpu_list) != self.total_cpus:
                raise ConfigurationError(
                    f"cpu_list of {len(self.cpu_list)} entries for "
                    f"{self.total_cpus} slots"
                )
            if len(set(self.cpu_list)) != len(self.cpu_list):
                raise ConfigurationError("cpu_list pins two slots to one CPU")
            bad = [c for c in self.cpu_list if not 0 <= c < self.cluster.total_cpus]
            if bad:
                raise ConfigurationError(f"cpu_list entries out of range: {bad}")
            return
        needed = self.total_cpus_used
        if needed > self.cluster.total_cpus:
            raise ConfigurationError(
                f"{self.n_ranks} ranks x {self.threads_per_rank} threads "
                f"x stride {self.stride} needs {needed} CPU slots but the "
                f"cluster has {self.cluster.total_cpus}"
            )

    # -- identity -------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Process-unique id of this placement instance.

        Cost-model caches (route tables, path statistics) key on this:
        a :class:`Placement` is frozen, so "the placement changed"
        always means a *new instance*, which gets a fresh generation —
        cached state keyed on the old generation can never be observed
        through the new placement.  Lazily assigned so construction
        stays cheap; excluded from equality/hash (it is identity, not
        value).
        """
        try:
            return self.__dict__["_generation"]
        except KeyError:
            object.__setattr__(self, "_generation", next(_placement_generations))
            return self.__dict__["_generation"]

    # -- geometry -------------------------------------------------------------

    @property
    def total_cpus(self) -> int:
        """CPUs actually executing (ranks x threads)."""
        return self.n_ranks * self.threads_per_rank

    @property
    def total_cpus_used(self) -> int:
        """CPU slots consumed including stride gaps."""
        return (self.total_cpus - 1) * self.stride + 1

    def cpu_of(self, rank: int, thread: int = 0) -> int:
        """Global CPU id of ``thread`` of ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise ConfigurationError(f"rank {rank} outside 0..{self.n_ranks - 1}")
        if not 0 <= thread < self.threads_per_rank:
            raise ConfigurationError(
                f"thread {thread} outside 0..{self.threads_per_rank - 1}"
            )
        if self.cpu_list is not None:
            return self.cpu_list[rank * self.threads_per_rank + thread]
        if self.spread_nodes and len(self.cluster.nodes) > 1:
            # Whole ranks round-robin over nodes; a rank's threads stay
            # together on its node.
            n_nodes = len(self.cluster.nodes)
            node = rank % n_nodes
            rank_on_node = rank // n_nodes
            slot_on_node = rank_on_node * self.threads_per_rank + thread
            cpu = node * self.cluster.cpus_per_node + slot_on_node * self.stride
            if slot_on_node * self.stride >= self.cluster.cpus_per_node:
                raise ConfigurationError(
                    f"rank {rank} thread {thread} does not fit on node {node}"
                )
            return cpu
        slot = rank * self.threads_per_rank + thread
        return slot * self.stride

    def cpus(self) -> list[int]:
        """All active global CPU ids, rank-major."""
        return [
            self.cpu_of(r, t)
            for r in range(self.n_ranks)
            for t in range(self.threads_per_rank)
        ]

    # -- derived performance inputs --------------------------------------------

    def active_per_fsb(self) -> int:
        """How many active CPUs share each in-use FSB (worst case).

        Determines per-CPU STREAM bandwidth: stride >= cpus_per_fsb
        gives each active CPU a private bus (§4.2).
        """
        per_fsb = self.cluster.nodes[0].fsb.cpus_per_fsb
        if self.cpu_list is not None:
            from collections import Counter

            counts = Counter(
                (self.cluster.node_of(c), self.cluster.local_cpu(c) // per_fsb)
                for c in self.cpu_list
            )
            return max(counts.values())
        if self.stride >= per_fsb:
            return 1
        return min(per_fsb, max(1, per_fsb // self.stride))

    def ranks_per_node(self) -> int:
        """MPI ranks resident on the fullest node."""
        cpus_per_node = self.cluster.cpus_per_node
        slots_per_rank = self.threads_per_rank * self.stride
        return max(1, min(self.n_ranks, cpus_per_node // slots_per_rank))

    def n_nodes_used(self) -> int:
        """Number of distinct nodes hosting at least one active CPU."""
        if self.cpu_list is not None:
            return len({self.cluster.node_of(c) for c in self.cpu_list})
        if self.spread_nodes:
            return min(len(self.cluster.nodes), self.n_ranks)
        last_cpu = self.cpu_of(self.n_ranks - 1, self.threads_per_rank - 1)
        return self.cluster.node_of(last_cpu) + 1

    def uses_boot_cpuset(self) -> bool:
        """Does this layout occupy *every* CPU of some node — i.e.
        also the CPUs reserved for system software (the boot cpuset)?

        §4.6.2: "the performance of 512-processor runs in a single
        node dropped by 10-15%, primarily because these runs also used
        the CPUs that were allocated for systems software (called boot
        cpuset) ... Reducing the number of CPUs to 508 improves the
        BT-MZ performance."
        """
        per_node = self.cluster.cpus_per_node
        if self.spread_nodes and len(self.cluster.nodes) > 1:
            n_nodes = len(self.cluster.nodes)
            ranks_on_node0 = (self.n_ranks + n_nodes - 1) // n_nodes
            used = ((ranks_on_node0 * self.threads_per_rank - 1) * self.stride + 1
                    if ranks_on_node0 else 0)
        else:
            used = min(self.total_cpus_used, per_node)
        return used >= per_node

    def boot_cpuset_penalty(self) -> float:
        """Interference multiplier for occupying the boot cpuset.

        The *condition* (full-node occupancy, :meth:`uses_boot_cpuset`)
        is this placement's geometry; the *penalty* is a property of
        the degraded machine the paper measured, so it comes from the
        ambient fault context (:class:`repro.faults.BootCpuset`) —
        a healthy machine pays nothing.
        """
        if not self.uses_boot_cpuset():
            return 1.0
        injector = current_injector()
        if injector is None:
            return 1.0
        return injector.boot_cpuset_penalty()

    def locality_penalty(self) -> float:
        """Multiplier (>= 1) on computation time from thread migration.

        Pinned layouts pay nothing.  Unpinned layouts lose data
        locality: a migrated thread's memory stays on its original
        FSB, so accesses become remote.  The probability a thread has
        migrated away from its data grows with the pool it can wander
        over (the CPUs of its node) and with threads per process
        (more threads -> more forced context switches -> more
        migration).  Calibrated to Fig. 7: at 64 CPUs the no-pinning
        penalty is mild for 1 thread/process and roughly 2-4x for
        many threads; at 256 CPUs it is more profound.
        """
        if self.pinning is PinningMode.PINNED:
            return 1.0
        threads = self.threads_per_rank
        total = self.total_cpus
        # Fraction of accesses that have become remote.
        migration = 1.0 - 1.0 / (1.0 + 0.35 * math.log2(max(2, threads)))
        spread = 1.0 + 0.18 * math.log2(max(2, total))
        remote_access_cost = 2.2  # remote:local memory latency ratio
        return 1.0 + migration * spread * (remote_access_cost - 1.0)


def unpinned_penalty(threads_per_rank: int, total_cpus: int) -> float:
    """Convenience wrapper: the §4.3 no-pinning slowdown factor."""
    # Mirrors Placement.locality_penalty without needing a cluster.
    migration = 1.0 - 1.0 / (1.0 + 0.35 * math.log2(max(2, threads_per_rank)))
    spread = 1.0 + 0.18 * math.log2(max(2, total_cpus))
    return 1.0 + migration * spread * 1.2
