"""repro — reproduction of "An Application-Based Performance
Characterization of the Columbia Supercluster" (SC 2005).

The package provides:

* :mod:`repro.machine` — models of Columbia's hardware (Altix 3700 /
  BX2a / BX2b nodes, NUMAlink3/4, InfiniBand, pinning, compilers);
* :mod:`repro.sim`, :mod:`repro.mpi`, :mod:`repro.openmp`,
  :mod:`repro.mlp`, :mod:`repro.shmem` — the simulation substrate and
  programming paradigms;
* :mod:`repro.hpcc`, :mod:`repro.npb`, :mod:`repro.apps` — the
  workloads: HPC Challenge microbenchmarks, NAS Parallel Benchmarks
  (incl. multi-zone), molecular dynamics, INS3D and OVERFLOW-D;
* :mod:`repro.core` — the characterization harness reproducing every
  table and figure of the paper's evaluation;
* :mod:`repro.serve` — the scenario service (queueing, request
  coalescing, micro-batching over the shared cache);
* :mod:`repro.api` — **the supported import surface**.  Program
  against it::

      from repro.api import run_experiment
      print(run_experiment("table2").format())

Root attributes resolve lazily (PEP 562): ``import repro`` stays
cheap, pulling in neither the experiment registry nor the serve
stack until first touched.
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.1.0"

#: attribute -> providing module; resolved on first access.
_LAZY_EXPORTS = {
    "api": "repro.api",
    "Cluster": "repro.machine",
    "NodeType": "repro.machine",
    "Placement": "repro.machine",
    "PinningMode": "repro.machine",
    "columbia": "repro.machine",
    "multinode": "repro.machine",
    "single_node": "repro.machine.cluster",
}

__all__ = [*sorted(_LAZY_EXPORTS), "__version__"]


def __getattr__(name: str) -> Any:
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}"
        ) from None
    module = importlib.import_module(module_name)
    value = module if name == "api" else getattr(module, name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
