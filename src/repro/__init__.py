"""repro — reproduction of "An Application-Based Performance
Characterization of the Columbia Supercluster" (SC 2005).

The package provides:

* :mod:`repro.machine` — models of Columbia's hardware (Altix 3700 /
  BX2a / BX2b nodes, NUMAlink3/4, InfiniBand, pinning, compilers);
* :mod:`repro.sim`, :mod:`repro.mpi`, :mod:`repro.openmp`,
  :mod:`repro.mlp`, :mod:`repro.shmem` — the simulation substrate and
  programming paradigms;
* :mod:`repro.hpcc`, :mod:`repro.npb`, :mod:`repro.apps` — the
  workloads: HPC Challenge microbenchmarks, NAS Parallel Benchmarks
  (incl. multi-zone), molecular dynamics, INS3D and OVERFLOW-D;
* :mod:`repro.core` — the characterization harness reproducing every
  table and figure of the paper's evaluation.

Quickstart::

    from repro.core import run_experiment
    result = run_experiment("table2")
    print(result.format())
"""

__version__ = "1.0.0"

from repro.machine import (
    Cluster,
    NodeType,
    Placement,
    PinningMode,
    columbia,
    multinode,
)
from repro.machine.cluster import single_node

__all__ = [
    "Cluster",
    "NodeType",
    "Placement",
    "PinningMode",
    "columbia",
    "multinode",
    "single_node",
    "__version__",
]
