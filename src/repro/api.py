"""The supported public API, in one import.

Everything a consumer of the reproduction needs — building scenarios,
running them, registering experiments, injecting faults, tracing, and
talking to (or embedding) the scenario service — re-exported from one
place::

    from repro.api import Runner, run_experiment, sweep

This facade is the compatibility contract: the symbols in ``__all__``
and their signatures are snapshot-tested (``tests/test_api_surface.py``
against ``tests/golden/api_surface.txt``), so any change to the
surface is a deliberate, reviewed act.  Internal module layout under
:mod:`repro` may shift between PRs; imports written against
:mod:`repro.api` keep working.

The facade groups five seams:

* **scenarios & execution** — :class:`Scenario`, :func:`scenario`,
  :func:`sweep`, :class:`Runner`, :class:`RunRecord`,
  :class:`ResultCache`, :func:`workload`, :class:`Fidelity` (the
  ``analytic``/``hybrid``/``full`` execution tiers; see also
  :func:`calibrate_fidelity` and :func:`evaluate_scenario` in the
  surrogate seam);
* **experiments** — :func:`run_experiment`, :func:`list_experiments`,
  :class:`ExperimentSpec`, :func:`experiment`,
  :func:`experiment_specs`, :class:`ExperimentResult`;
* **faults** — :class:`FaultSpec`, :func:`parse_faults`,
  :func:`use_faults`;
* **observability** — :class:`Tracer`, :func:`use_tracer`,
  :class:`CounterSet`;
* **serving** — :class:`ServeClient`, :class:`ServeResult`,
  :func:`submit` (in-process one-shot), :class:`ScenarioService`,
  :class:`QuotaPolicy` (per-client token-bucket admission), and the
  sharded tier: :class:`ShardedServer` (N worker processes behind a
  consistent-hashing router over a shared on-disk cache) and
  :func:`serve_sharded` (its blocking CLI loop);
* **surrogate tier** — :func:`evaluate_scenario` (closed-form cell
  evaluation), :func:`calibrate_fidelity` and :class:`ErrorTable`
  (the measured analytic-vs-DES error bound the Runner's
  escalate/refuse policy consults);
* **exploration** — :class:`SearchSpace`/:func:`search_space`,
  :class:`Objective`, :class:`ExploreDriver`/:func:`explore`,
  :class:`ExploreResult` and :func:`run_study` (design-space search
  over the simulated machine; ``repro explore`` on the CLI);
* **machine zoo** — :class:`MachineConfig` (declarative machine
  description), :func:`machine_config`/:func:`list_machines`/
  :func:`register_machine` (the registry), :func:`build_machine`,
  :func:`load_machine` (TOML/JSON files), :func:`cluster_cost` and
  :class:`AcceleratorSpec`; plus the cross-machine comparison
  (``repro compare`` on the CLI): :func:`run_compare`,
  :class:`CompareResult` and :func:`compare_scenarios`.
"""

from __future__ import annotations

from repro.compare import CompareResult, compare_scenarios, run_compare
from repro.core.experiment import ExperimentResult
from repro.explore import (
    ExploreDriver,
    ExploreResult,
    Objective,
    SearchSpace,
    explore,
    run_study,
    search_space,
)
from repro.core.registry import (
    ExperimentSpec,
    experiment,
    experiment_specs,
    list_experiments,
    resolve_experiment,
    run_experiment,
)
from repro.faults.context import use_faults
from repro.faults.spec import FaultSpec, parse_faults
from repro.machine.cluster import Cluster, columbia, multinode, single_node
from repro.machine.node import AcceleratorSpec, NodeType
from repro.machine.zoo import (
    MachineConfig,
    build_machine,
    cluster_cost,
    list_machines,
    load_machine,
    machine_config,
    register_machine,
)
from repro.machine.placement import Placement, PinningMode
from repro.obs.counters import CounterSet
from repro.obs.spans import Tracer, use_tracer
from repro.run.cache import ResultCache
from repro.run.runner import RunRecord, Runner
from repro.run.scenario import (
    Fidelity,
    MachineSpec,
    PlacementSpec,
    Scenario,
    scenario,
    sweep,
)
from repro.run.workloads import workload
from repro.serve import (
    QuotaPolicy,
    ScenarioService,
    ServeClient,
    ServeReply,
    ServeResult,
    ShardedServer,
    serve_sharded,
    submit,
)
from repro.surrogate import ErrorTable, evaluate_scenario
from repro.surrogate import calibrate as calibrate_fidelity

__all__ = sorted(
    [
        "AcceleratorSpec",
        "Cluster",
        "CompareResult",
        "CounterSet",
        "ErrorTable",
        "ExperimentResult",
        "ExperimentSpec",
        "ExploreDriver",
        "ExploreResult",
        "FaultSpec",
        "Fidelity",
        "MachineConfig",
        "MachineSpec",
        "NodeType",
        "Objective",
        "Placement",
        "PinningMode",
        "PlacementSpec",
        "QuotaPolicy",
        "ResultCache",
        "RunRecord",
        "Runner",
        "Scenario",
        "ScenarioService",
        "SearchSpace",
        "ServeClient",
        "ServeReply",
        "ServeResult",
        "ShardedServer",
        "Tracer",
        "build_machine",
        "calibrate_fidelity",
        "cluster_cost",
        "columbia",
        "compare_scenarios",
        "evaluate_scenario",
        "experiment",
        "explore",
        "experiment_specs",
        "list_experiments",
        "list_machines",
        "load_machine",
        "machine_config",
        "multinode",
        "parse_faults",
        "register_machine",
        "resolve_experiment",
        "run_compare",
        "run_experiment",
        "run_study",
        "scenario",
        "search_space",
        "serve_sharded",
        "single_node",
        "submit",
        "sweep",
        "use_faults",
        "use_tracer",
        "workload",
    ]
)
