"""NPB problem classes and operation/traffic formulas.

Grid sizes and iteration counts follow the NPB 3.x specification for
classes S through D (the classes the paper's single-zone experiments
use are B and C).  Operation counts are analytic approximations of the
official Mop totals — they set the scale of reported Gflop/s rates and
the computation/communication ratio, which is what the paper's shapes
depend on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ProblemSize", "NPB_CLASSES", "problem", "BENCHMARKS"]

BENCHMARKS = ("mg", "cg", "ft", "bt")


@dataclass(frozen=True)
class ProblemSize:
    """One (benchmark, class) problem instance."""

    benchmark: str
    cls: str
    #: grid dimensions (nx, ny, nz); for CG, (n_rows, nonzeros/row, 1).
    shape: tuple[int, int, int]
    iterations: int

    @property
    def points(self) -> int:
        """Grid points (or matrix rows for CG)."""
        if self.benchmark == "cg":
            return self.shape[0]
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def flops(self) -> float:
        """Approximate total floating-point operations."""
        n = self.points
        if self.benchmark == "mg":
            # ~58 flop per fine-grid point per iteration across the
            # V-cycle (the coarse levels add a geometric-series ~8/7).
            return 58.0 * n * self.iterations * 8.0 / 7.0
        if self.benchmark == "cg":
            nonzer = self.shape[1]
            nnz = n * (nonzer + 1) ** 2 / 2  # makea-style fill estimate
            # 25 inner CG iterations x (SpMV 2*nnz + vector ops 10n).
            return self.iterations * 25 * (2.0 * nnz + 10.0 * n)
        if self.benchmark == "ft":
            # One forward 3D FFT + one inverse per iteration plus the
            # evolution multiply: ~ 2 * 5 N log2 N + 6N.
            return self.iterations * (10.0 * n * math.log2(n) + 6.0 * n)
        if self.benchmark == "bt":
            # Block-tridiagonal ADI: three sweeps of 5x5 block solves,
            # ~2500 flop per point per iteration in NPB BT.
            return 2500.0 * n * self.iterations
        raise ConfigurationError(f"unknown benchmark {self.benchmark!r}")

    @property
    def memory_bytes(self) -> float:
        """Resident data set in bytes (float64 unknowns + workspace)."""
        n = self.points
        if self.benchmark == "mg":
            return 8.0 * n * 4  # u, v, r + coarse hierarchy
        if self.benchmark == "cg":
            nonzer = self.shape[1]
            nnz = n * (nonzer + 1) ** 2 / 2
            return 12.0 * nnz + 8.0 * 5 * n  # CSR (8B value + 4B col) + vectors
        if self.benchmark == "ft":
            return 16.0 * n * 3  # complex128: u0, u1, twiddle
        if self.benchmark == "bt":
            # 5 unknowns, rhs, forcing plus the per-sweep 5x5 LHS
            # blocks: BT's footprint is dominated by block workspace.
            return 8.0 * n * 150
        raise ConfigurationError(f"unknown benchmark {self.benchmark!r}")

    @property
    def traffic_bytes(self) -> float:
        """Main-memory traffic per full run if nothing is cached.

        Expressed as data-set passes per iteration; the timing model
        multiplies by the cache miss fraction to get actual DRAM
        traffic.
        """
        passes_per_iteration = {
            "mg": 4.0,  # smoothing/residual/transfer over u, v, r
            "cg": 25.0,  # one matrix+vector pass per inner iteration
            "ft": 3.3,  # multiple FFT passes over the complex arrays
            "bt": 8.0,  # assemble + eliminate the LHS blocks, 3 sweeps
        }[self.benchmark]
        return self.iterations * passes_per_iteration * self.memory_bytes


#: NPB 3.x problem classes.
NPB_CLASSES: dict[tuple[str, str], ProblemSize] = {}


def _add(benchmark: str, cls: str, shape: tuple[int, int, int], iters: int) -> None:
    NPB_CLASSES[(benchmark, cls)] = ProblemSize(benchmark, cls, shape, iters)


# MG: grid size, V-cycle iterations.
_add("mg", "S", (32, 32, 32), 4)
_add("mg", "W", (128, 128, 128), 4)
_add("mg", "A", (256, 256, 256), 4)
_add("mg", "B", (256, 256, 256), 20)
_add("mg", "C", (512, 512, 512), 20)
_add("mg", "D", (1024, 1024, 1024), 50)

# CG: (rows, nonzeros-per-row parameter, 1), outer iterations.
_add("cg", "S", (1400, 7, 1), 15)
_add("cg", "W", (7000, 8, 1), 15)
_add("cg", "A", (14000, 11, 1), 15)
_add("cg", "B", (75000, 13, 1), 75)
_add("cg", "C", (150000, 15, 1), 75)
_add("cg", "D", (1500000, 21, 1), 100)

# FT: grid, iterations.
_add("ft", "S", (64, 64, 64), 6)
_add("ft", "W", (128, 128, 32), 6)
_add("ft", "A", (256, 256, 128), 6)
_add("ft", "B", (512, 256, 256), 20)
_add("ft", "C", (512, 512, 512), 20)
_add("ft", "D", (2048, 1024, 1024), 25)

# BT: cubic grid, iterations.
_add("bt", "S", (12, 12, 12), 60)
_add("bt", "W", (24, 24, 24), 200)
_add("bt", "A", (64, 64, 64), 200)
_add("bt", "B", (102, 102, 102), 200)
_add("bt", "C", (162, 162, 162), 200)
_add("bt", "D", (408, 408, 408), 250)


def problem(benchmark: str, cls: str) -> ProblemSize:
    """Look up a problem instance; raises for unknown combinations."""
    try:
        return NPB_CLASSES[(benchmark, cls.upper())]
    except KeyError:
        raise ConfigurationError(
            f"no NPB problem {benchmark!r} class {cls!r}"
        ) from None
