"""CG: conjugate-gradient kernel (real implementation).

NPB CG estimates the largest eigenvalue of a sparse symmetric
positive-definite matrix with random irregular structure via inverse
power iteration, each outer step solving ``A z = x`` with 25 conjugate
gradient iterations ("CG ... tests irregular memory access and
communication", paper §3.2).

Matrix construction substitution: NPB's ``makea`` builds the matrix
from outer products of sparse random vectors; we build a random sparse
SPD matrix with the same density parameterization (``nonzer``) and a
controlled eigenvalue range, which preserves the benchmark's access
pattern and convergence behaviour.  Verification is by linear-algebra
invariants (residual reduction, eigenvalue-estimate convergence to the
true extreme eigenvalue computed directly) instead of NPB's hard-coded
zeta values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.npb.classes import problem
from repro.sim.rng import make_rng

__all__ = ["CGResult", "run_cg", "make_matrix", "cg_solve"]


def make_matrix(
    n: int, nonzer: int, shift: float = 20.0, seed: int | None = None
) -> sp.csr_matrix:
    """Random sparse SPD matrix with ~``nonzer`` off-diagonals per row.

    ``A = S S^T / ||.|| + shift*I`` with sparse random S — symmetric
    positive definite by construction, with irregular sparsity as in
    NPB CG.
    """
    if n < 2 or nonzer < 1:
        raise ConfigurationError(f"bad CG matrix parameters: n={n}, nonzer={nonzer}")
    rng = make_rng(seed)
    density = nonzer / n
    s = sp.random(
        n, n, density=density, format="csr", random_state=np.random.RandomState(
            rng.integers(0, 2**31 - 1)
        )
    )
    a = (s @ s.T).tocsr()
    scale = abs(a).sum(axis=1).max() or 1.0
    a = a / scale
    return (a + shift * sp.identity(n, format="csr")).tocsr()


def cg_solve(
    a: sp.csr_matrix, b: np.ndarray, iterations: int = 25
) -> tuple[np.ndarray, float]:
    """``iterations`` steps of (unpreconditioned) conjugate gradients.

    Returns the iterate and the final residual norm ||b - Ax||.
    Exactly the NPB CG inner loop: one SpMV and a handful of vector
    operations per iteration.
    """
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rho = float(r @ r)
    for _ in range(iterations):
        q = a @ p
        alpha = rho / float(p @ q)
        x += alpha * p
        r -= alpha * q
        rho_new = float(r @ r)
        beta = rho_new / rho
        rho = rho_new
        p = r + beta * p
    return x, float(np.linalg.norm(b - a @ x))


@dataclass(frozen=True)
class CGResult:
    """Outcome of a real CG run."""

    cls: str
    n: int
    outer_iterations: int
    zeta: float  # eigenvalue estimate (NPB's reported quantity)
    final_residual: float
    residual_history: tuple[float, ...]


def run_cg(cls: str = "S", seed: int | None = None) -> CGResult:
    """Execute the CG benchmark class ``cls`` for real.

    Inverse power iteration: ``zeta = shift + 1/(x . z)`` converges to
    the eigenvalue of A closest to ``shift`` from below; with our SPD
    construction that is the dominant behaviour NPB reports.
    """
    spec = problem("cg", cls)
    n, nonzer, _ = spec.shape
    if n > 20000:
        raise ConfigurationError(
            f"class {cls} (n={n}) is a model-scale problem; run S/W/A "
            "for real execution"
        )
    shift = 20.0
    a = make_matrix(n, nonzer, shift=shift, seed=seed)
    rng = make_rng(seed)
    x = rng.random(n)
    zeta = 0.0
    history = []
    for _ in range(spec.iterations):
        z, resid = cg_solve(a, x, iterations=25)
        history.append(resid)
        zeta = shift + 1.0 / float(x @ z)
        x = z / np.linalg.norm(z)
    return CGResult(
        cls=cls.upper(),
        n=n,
        outer_iterations=spec.iterations,
        zeta=zeta,
        final_residual=history[-1],
        residual_history=tuple(history),
    )
