"""NAS Parallel Benchmarks (paper §3.2).

The paper's subset: three kernels (MG, CG, FT), one simulated
application (BT), and the two multi-zone benchmarks (BT-MZ, SP-MZ)
with the new Class E (4096 zones) and Class F (16384 zones) problem
sizes introduced for Columbia.

Every single-zone benchmark has a *real* NumPy implementation
(``run_*`` — numerically verified at the small classes) and a timing
model (:mod:`repro.npb.timing`) that prices the same computation and
communication pattern on the simulated machine at any class and CPU
count.  The multi-zone benchmarks live in :mod:`repro.npb.multizone`
and :mod:`repro.npb.hybrid`.
"""

from repro.npb.classes import NPB_CLASSES, ProblemSize, problem
from repro.npb.mg import MGResult, run_mg
from repro.npb.cg import CGResult, run_cg
from repro.npb.ft import FTResult, run_ft
from repro.npb.bt import BTResult, run_bt
from repro.npb.timing import NPBTimingModel, npb_gflops_per_cpu

__all__ = [
    "NPB_CLASSES",
    "ProblemSize",
    "problem",
    "MGResult",
    "run_mg",
    "CGResult",
    "run_cg",
    "FTResult",
    "run_ft",
    "BTResult",
    "run_bt",
    "NPBTimingModel",
    "npb_gflops_per_cpu",
]
