"""Hybrid MPI+OpenMP execution model for the multi-zone benchmarks.

Per time step, each MPI process:

1. computes its bin of zones, its OpenMP threads splitting the work
   with a thread-efficiency curve that is strong at two threads and
   decays beyond (Fig. 9's right panel: "except for two threads,
   OpenMP performance drops quickly as the number of threads
   increases");
2. exchanges zone boundary data with the processes owning neighbor
   zones (volume from the zone geometry, priced by the machine path
   model, with cross-node contention on multi-box runs);
3. synchronizes (a barrier-equivalent per step).

Load imbalance comes straight from the bin-packing assignment: BT-MZ's
~20x zone-size spread makes threads *necessary* at high CPU counts
("as the number of CPUs increases, OpenMP threads may be required to
get better load balance", §4.6.2); SP-MZ is balanced exactly when the
zone count divides the process count (the 768/1536-CPU dips in
Fig. 11).

The §4.6.2 SP-MZ InfiniBand anomaly (released MPT runtime 40% slower
at 256 CPUs, recovering at larger counts, absent with the beta
library) is carried as an explicit empirical overhead factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.faults.context import current_injector
from repro.machine.compilers import Compiler, compiler_factor
from repro.machine.infiniband import MPTVersion
from repro.machine.placement import Placement
from repro.netmodel.collectives import CollectiveModel
from repro.npb.loadbalance import Assignment, bin_pack
from repro.npb.multizone import MZProblem, mz_problem
from repro.units import to_gflops

__all__ = ["MZTimingModel", "thread_efficiency", "mz_gflops_per_cpu"]

#: Sustained fraction of peak for the zone solvers on cache-resident
#: working sets (BT-MZ's dense block solves run hotter than SP-MZ's).
_BASE_EFF = {"bt-mz": 0.16, "sp-mz": 0.13}

#: Bytes exchanged per boundary point per step: 5 variables, float64,
#: two ghost layers.
_BOUNDARY_BYTES_PER_POINT = 5 * 8 * 2


def thread_efficiency(threads: int) -> float:
    """Parallel efficiency of the zone-level OpenMP loops.

    Calibrated to Fig. 9: near-perfect at 2 threads, decaying beyond
    (loop-level parallelism hits NUMA traffic and serial sections).
    """
    if threads < 1:
        raise ConfigurationError(f"threads must be >= 1: {threads}")
    if threads == 1:
        return 1.0
    return 1.0 / (1.0 + 0.11 * (threads - 1) ** 1.25)


@dataclass
class MZTimingModel:
    """Predicted per-step timing of BT-MZ/SP-MZ on a placement."""

    benchmark: str
    cls: str
    placement: Placement
    compiler: Compiler = Compiler.V7_1

    def __post_init__(self) -> None:
        self.problem: MZProblem = mz_problem(self.benchmark, self.cls)
        if self.placement.n_ranks > self.problem.spec.n_zones:
            raise ConfigurationError(
                f"{self.placement.n_ranks} MPI processes exceed the "
                f"{self.problem.spec.n_zones} zones of class {self.cls} "
                "(each process needs at least one zone)"
            )
        # Physical capacity: the problem must fit the participating
        # nodes' memory (Table 1: ~1 TB per node).
        nodes_used = self.placement.n_nodes_used()
        available = sum(
            self.placement.cluster.nodes[i].memory_bytes
            for i in range(nodes_used)
        )
        if self.problem.memory_bytes > available:
            raise ConfigurationError(
                f"class {self.cls} needs "
                f"{self.problem.memory_bytes / 1e12:.1f} TB but the "
                f"{nodes_used} participating node(s) hold "
                f"{available / 1e12:.1f} TB; spread over more nodes"
            )
        weights = [float(z.points) for z in self.problem.zones]
        self.assignment: Assignment = bin_pack(weights, self.placement.n_ranks)
        self._collectives = CollectiveModel(self.placement)

    # -- components -----------------------------------------------------------

    def _node(self):
        return self.placement.cluster.nodes[0]

    def compute_time_per_step(self) -> float:
        """Zone computation of the most loaded process, threads split
        the zone loop."""
        node = self._node()
        threads = self.placement.threads_per_rank
        per_point = 2500.0 if self.benchmark == "bt-mz" else 900.0
        code = "bt" if self.benchmark == "bt-mz" else "sp"
        cf = compiler_factor(self.compiler, code, self.placement.total_cpus)
        eff = _BASE_EFF[self.benchmark] * cf
        rate = node.processor.peak_flops * eff
        flops_max_bin = per_point * self.assignment.max_load
        host_rate = rate * threads * thread_efficiency(threads)
        if node.accelerator is None:
            t = flops_max_bin / host_rate
        else:
            # Machine-zoo accelerator offload (Amdahl split): the
            # offloadable fraction of the solver runs at each rank's
            # share of the node's sustained device rate, the remainder
            # stays on the host threads.  Columbia nodes carry no
            # accelerator and keep the exact expression above.
            accel = node.accelerator
            ranks_per_node = math.ceil(
                self.placement.n_ranks / self.placement.n_nodes_used()
            )
            accel_rate = accel.sustained_flops / ranks_per_node
            f = accel.offload_fraction
            t = flops_max_bin * ((1.0 - f) / host_rate + f / accel_rate)
        penalty = (
            self.placement.locality_penalty()
            * self.placement.boot_cpuset_penalty()
        )
        return t * penalty

    def comm_time_per_step(self) -> float:
        """Boundary exchange + per-step synchronization (+ anomaly)."""
        p = self.placement.n_ranks
        if p == 1:
            return 0.0
        # Boundary volume of the average process; the fraction leaving
        # the process shrinks as each process owns more zones
        # (neighbors increasingly in-bin).
        zones_per_rank = self.problem.spec.n_zones / p
        remote_fraction = min(1.0, 1.2 / math.sqrt(zones_per_rank))
        boundary_points = sum(z.boundary_points for z in self.problem.zones) / p
        volume = boundary_points * _BOUNDARY_BYTES_PER_POINT * remote_fraction
        coll = self._collectives
        comm = coll.halo_exchange(volume / 4.0, 4) + coll.allreduce(8)
        return comm + self._mpt_anomaly_time()

    def _mpt_anomaly_time(self) -> float:
        """§4.6.2: SP-MZ over InfiniBand with the released MPT library
        (mpt1.11r) ran 40% slower at 256 CPUs, improving as CPU count
        grows; absent with the beta (mpt1.11b) and for BT-MZ.  The
        overhead itself is a fault (:class:`repro.faults.MptAnomaly`,
        injected by the §4.6.2 experiments), since the paper itself had
        not found the root cause ("We are actively working with SGI
        engineers to find the true cause of the anomaly"); the gating
        below says *where* the released runtime's bug bites."""
        injector = current_injector()
        anomaly = None if injector is None else injector.mpt_anomaly()
        if anomaly is None:
            return 0.0
        cluster = self.placement.cluster
        if (
            self.benchmark == "sp-mz"
            and self.placement.n_nodes_used() > 1
            and cluster.fabric == "infiniband"
            and cluster.mpt is MPTVersion.MPT_1_11R
        ):
            excess = anomaly.step_excess(self.placement.total_cpus)
            return excess * self.compute_time_per_step()
        return 0.0

    # -- results ----------------------------------------------------------------

    def total_time_per_step(self) -> float:
        return self.compute_time_per_step() + self.comm_time_per_step()

    def gflops_per_cpu(self) -> float:
        """Per-CPU rate (top row of Fig. 11, Fig. 9)."""
        per_step = self.problem.flops_per_step
        return to_gflops(
            per_step / self.placement.total_cpus / self.total_time_per_step()
        )

    def total_gflops(self) -> float:
        """Aggregate rate (bottom row of Fig. 11)."""
        return self.gflops_per_cpu() * self.placement.total_cpus

    def imbalance(self) -> float:
        """max/mean process load from the bin-packing."""
        return self.assignment.imbalance


def mz_gflops_per_cpu(
    benchmark: str,
    cls: str,
    placement: Placement,
    compiler: Compiler = Compiler.V7_1,
) -> float:
    """Convenience wrapper around :class:`MZTimingModel`."""
    return MZTimingModel(benchmark, cls, placement, compiler).gflops_per_cpu()
