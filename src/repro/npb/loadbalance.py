"""Zone-to-process load balancing.

The hybrid NPB-MZ codes assign whole zones to MPI processes.  The
reference strategy is greedy LPT bin-packing (sort zones by size,
always give the next zone to the least-loaded process) — the same
family as OVERFLOW-D's bin-packing grouping (paper §3.5).  Round-robin
and contiguous-block partitions are provided for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["Assignment", "bin_pack", "round_robin", "block_partition"]


@dataclass(frozen=True)
class Assignment:
    """A zone-to-bin assignment with its balance metrics."""

    #: ``bins[b]`` lists the zone indices owned by bin ``b``.
    bins: tuple[tuple[int, ...], ...]
    #: total weight per bin.
    loads: tuple[float, ...]

    @property
    def n_bins(self) -> int:
        return len(self.bins)

    @property
    def imbalance(self) -> float:
        """max-load / mean-load (1.0 = perfect balance)."""
        mean = sum(self.loads) / len(self.loads)
        if mean == 0:
            return 1.0
        return max(self.loads) / mean

    @property
    def max_load(self) -> float:
        return max(self.loads)

    def bin_of(self, zone: int) -> int:
        """Which bin owns ``zone``."""
        for b, members in enumerate(self.bins):
            if zone in members:
                return b
        raise ConfigurationError(f"zone {zone} not assigned")


def _finish(bins: list[list[int]], weights: Sequence[float]) -> Assignment:
    loads = tuple(sum(weights[z] for z in b) for b in bins)
    return Assignment(bins=tuple(tuple(b) for b in bins), loads=loads)


def bin_pack(weights: Sequence[float], n_bins: int) -> Assignment:
    """Greedy LPT bin-packing: heaviest zones first, each to the
    currently lightest bin.  O(Z log Z + Z log B)."""
    _validate(weights, n_bins)
    order = sorted(range(len(weights)), key=lambda z: -weights[z])
    heap: list[tuple[float, int]] = [(0.0, b) for b in range(n_bins)]
    bins: list[list[int]] = [[] for _ in range(n_bins)]
    for z in order:
        load, b = heappop(heap)
        bins[b].append(z)
        heappush(heap, (load + weights[z], b))
    return _finish(bins, weights)


def round_robin(weights: Sequence[float], n_bins: int) -> Assignment:
    """Deal zones out cyclically in index order (ablation baseline)."""
    _validate(weights, n_bins)
    bins: list[list[int]] = [[] for _ in range(n_bins)]
    for z in range(len(weights)):
        bins[z % n_bins].append(z)
    return _finish(bins, weights)


def block_partition(weights: Sequence[float], n_bins: int) -> Assignment:
    """Contiguous index blocks of (nearly) equal zone *count*
    (ablation baseline; ignores zone sizes entirely)."""
    _validate(weights, n_bins)
    z = len(weights)
    bins: list[list[int]] = []
    start = 0
    for b in range(n_bins):
        count = z // n_bins + (1 if b < z % n_bins else 0)
        bins.append(list(range(start, start + count)))
        start += count
    return _finish(bins, weights)


def _validate(weights: Sequence[float], n_bins: int) -> None:
    if n_bins < 1:
        raise ConfigurationError(f"need >= 1 bin, got {n_bins}")
    if len(weights) < n_bins:
        raise ConfigurationError(
            f"{len(weights)} zones cannot fill {n_bins} bins "
            "(every process needs at least one zone)"
        )
    if any(w < 0 for w in weights):
        raise ConfigurationError("zone weights must be non-negative")
