"""NPB multi-zone benchmarks: zone geometry (paper §3.2).

NPB-MZ partitions an aggregate 3D grid into a 2D array of zones:
SP-MZ into *equal* zones (trivial load balance as long as the zone
count divides the process count), BT-MZ into zones whose sizes grow
geometrically so the largest is ~20x the smallest (stressing load
balance — the two benchmarks "test both coarse- and fine-grain
parallelism and load balance").

Besides the standard classes, the paper introduces two new sizes for
Columbia (§3.2): Class E — 4096 zones, 4224 x 3456 x 92 aggregate —
and Class F — 16384 zones, 12032 x 8960 x 250.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Zone", "MZProblem", "MZ_CLASSES", "mz_problem", "zone_sizes_1d"]

#: Largest/smallest zone size ratio in BT-MZ (NPB-MZ specification).
BTMZ_SIZE_RATIO = 20.0


@dataclass(frozen=True)
class Zone:
    """One zone of a multi-zone problem."""

    index: int
    nx: int
    ny: int
    nz: int

    @property
    def points(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def boundary_points(self) -> int:
        """Points on the four in-plane faces exchanged with neighbor
        zones each step (the z faces are physical boundaries)."""
        return 2 * (self.nx + self.ny) * self.nz


@dataclass(frozen=True)
class MZClassSpec:
    """Aggregate geometry of one NPB-MZ class."""

    cls: str
    zones_x: int
    zones_y: int
    agg_x: int
    agg_y: int
    agg_z: int
    steps: int

    @property
    def n_zones(self) -> int:
        return self.zones_x * self.zones_y


#: NPB-MZ 3.1 classes, plus the paper's new E and F.
MZ_CLASSES: dict[str, MZClassSpec] = {
    s.cls: s
    for s in (
        MZClassSpec("S", 2, 2, 24, 24, 6, 60),
        MZClassSpec("W", 4, 4, 64, 64, 8, 200),
        MZClassSpec("A", 4, 4, 128, 128, 16, 200),
        MZClassSpec("B", 8, 8, 304, 208, 17, 200),
        MZClassSpec("C", 16, 16, 480, 320, 28, 200),
        MZClassSpec("D", 32, 32, 1632, 1216, 34, 250),
        # Paper §3.2: "Class E (4096 zones, 4224x3456x92 aggregated
        # grid size) and Class F (16384 zones, 12032x8960x250)".
        MZClassSpec("E", 64, 64, 4224, 3456, 92, 250),
        MZClassSpec("F", 128, 128, 12032, 8960, 250, 250),
    )
}


def zone_sizes_1d(total: int, n_zones: int, ratio: float) -> list[int]:
    """Partition ``total`` cells into ``n_zones`` sizes growing
    geometrically with max/min ~= ``ratio`` (1.0 = equal zones).

    Uses largest-remainder rounding so the sizes sum exactly to
    ``total`` and every zone keeps at least 3 cells.
    """
    if n_zones < 1 or total < 3 * n_zones:
        raise ConfigurationError(
            f"cannot cut {total} cells into {n_zones} zones"
        )
    if ratio < 1.0:
        raise ConfigurationError(f"ratio must be >= 1: {ratio}")
    if n_zones == 1:
        return [total]
    r = ratio ** (1.0 / (n_zones - 1))
    weights = np.power(r, np.arange(n_zones))
    ideal = weights / weights.sum() * total
    sizes = np.maximum(3, np.floor(ideal).astype(int))
    # Largest-remainder correction to hit the exact total.
    deficit = total - int(sizes.sum())
    if deficit > 0:
        order = np.argsort(-(ideal - np.floor(ideal)))
        for i in range(deficit):
            sizes[order[i % n_zones]] += 1
    elif deficit < 0:
        order = np.argsort(ideal - np.floor(ideal))
        i = 0
        while deficit < 0 and i < 10 * n_zones:
            j = order[i % n_zones]
            if sizes[j] > 3:
                sizes[j] -= 1
                deficit += 1
            i += 1
    if int(sizes.sum()) != total:
        raise ConfigurationError("zone size rounding failed")
    return [int(s) for s in sizes]


@dataclass(frozen=True)
class MZProblem:
    """A fully instantiated multi-zone problem."""

    benchmark: str  # "bt-mz" or "sp-mz"
    cls: str
    spec: MZClassSpec
    zones: tuple[Zone, ...]

    @property
    def total_points(self) -> int:
        return sum(z.points for z in self.zones)

    @property
    def flops_per_step(self) -> float:
        """Approximate flop per time step over all zones."""
        per_point = 2500.0 if self.benchmark == "bt-mz" else 900.0
        return per_point * self.total_points

    @property
    def size_imbalance(self) -> float:
        """Largest zone / smallest zone (≈20 for BT-MZ, 1 for SP-MZ)."""
        pts = [z.points for z in self.zones]
        return max(pts) / min(pts)

    @property
    def memory_bytes(self) -> float:
        """Resident bytes: ~60 float64 words per point (solution,
        RHS, workspace) — what decides how many 1 TB nodes a class
        needs (Class F alone exceeds any single Altix node)."""
        return 8.0 * 60 * self.total_points


def mz_problem(benchmark: str, cls: str) -> MZProblem:
    """Instantiate ``bt-mz`` or ``sp-mz`` at problem class ``cls``."""
    if benchmark not in ("bt-mz", "sp-mz"):
        raise ConfigurationError(
            f"unknown multi-zone benchmark {benchmark!r}"
        )
    spec = MZ_CLASSES.get(cls.upper())
    if spec is None:
        raise ConfigurationError(f"unknown NPB-MZ class {cls!r}")
    ratio = BTMZ_SIZE_RATIO**0.5 if benchmark == "bt-mz" else 1.0
    xs = zone_sizes_1d(spec.agg_x, spec.zones_x, ratio)
    ys = zone_sizes_1d(spec.agg_y, spec.zones_y, ratio)
    zones = []
    for j, ny in enumerate(ys):
        for i, nx in enumerate(xs):
            zones.append(Zone(index=j * spec.zones_x + i, nx=nx, ny=ny, nz=spec.agg_z))
    return MZProblem(benchmark=benchmark, cls=cls.upper(), spec=spec, zones=tuple(zones))
