"""SP: scalar-pentadiagonal solver (real implementation).

NPB SP is BT's sibling: the same approximately-factored ADI scheme,
but the directional systems are *scalar pentadiagonal* (5 independent
scalar solves per line, bandwidth 2) instead of 5x5 block tridiagonal.
The paper exercises SP through its multi-zone version (SP-MZ, §3.2);
this module supplies the real inner kernel: a batched pentadiagonal
Thomas solver vectorized over grid lines, and an ADI time step built
on it.

Verified by tests: the pentadiagonal solver matches dense linear
algebra, and the ADI iteration converges to steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.npb.classes import ProblemSize
from repro.sim.rng import make_rng

__all__ = ["SPResult", "run_sp", "penta_thomas", "sp_adi_step"]

#: Components carried by SP (same five as BT, but uncoupled in the
#: implicit operator).
NVARS = 5


def penta_thomas(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
    e: np.ndarray,
    r: np.ndarray,
) -> np.ndarray:
    """Solve batched pentadiagonal systems.

    Bands are ``(L, n)`` arrays: ``a`` (2nd sub), ``b`` (1st sub),
    ``c`` (main), ``d`` (1st super), ``e`` (2nd super); out-of-range
    band entries are ignored.  ``r`` is ``(L, n)``; returns ``x`` of
    the same shape.  All L lines are eliminated simultaneously —
    SP's inner loop, vectorized the way the Columbia port vectorizes
    over grid lines.
    """
    if not (a.shape == b.shape == c.shape == d.shape == e.shape == r.shape):
        raise ConfigurationError("inconsistent pentadiagonal band shapes")
    if c.ndim != 2:
        raise ConfigurationError(f"bands must be (L, n), got {c.shape}")
    L, n = c.shape
    if n < 3:
        raise ConfigurationError(f"need n >= 3, got {n}")
    # Work on copies: forward elimination to upper-triangular with two
    # superdiagonals, then back substitution.
    cc = c.astype(float).copy()
    dd = d.astype(float).copy()
    ee = e.astype(float).copy()
    rr = r.astype(float).copy()
    # Row 1 eliminated with row 0.
    m = b[:, 1] / cc[:, 0]
    cc[:, 1] -= m * dd[:, 0]
    dd[:, 1] -= m * ee[:, 0]
    rr[:, 1] -= m * rr[:, 0]
    for i in range(2, n):
        # Eliminate the 2nd subdiagonal with row i-2.
        m2 = a[:, i] / cc[:, i - 2]
        b_eff = b[:, i] - m2 * dd[:, i - 2]
        rr[:, i] -= m2 * rr[:, i - 2]
        ee_im2 = ee[:, i - 2]
        # Eliminate the (updated) 1st subdiagonal with row i-1.
        m1 = b_eff / cc[:, i - 1]
        cc[:, i] -= m2 * ee_im2 + m1 * dd[:, i - 1]
        dd[:, i] -= m1 * ee[:, i - 1]
        rr[:, i] -= m1 * rr[:, i - 1]
    # Back substitution.
    x = np.empty_like(rr)
    x[:, n - 1] = rr[:, n - 1] / cc[:, n - 1]
    x[:, n - 2] = (rr[:, n - 2] - dd[:, n - 2] * x[:, n - 1]) / cc[:, n - 2]
    for i in range(n - 3, -1, -1):
        x[:, i] = (
            rr[:, i] - dd[:, i] * x[:, i + 1] - ee[:, i] * x[:, i + 2]
        ) / cc[:, i]
    return x


def _directional_bands(L: int, n: int, sigma: float):
    """Pentadiagonal factor bands for (I - dt D4) on lines of n points.

    A fourth-order-damped implicit diffusion factor: the classic SP
    pattern of a pentadiagonal operator per direction (2nd-difference
    diffusion plus 4th-difference artificial dissipation).
    """
    eps4 = 0.25 * sigma
    a = np.full((L, n), eps4)
    b = np.full((L, n), -sigma - 4.0 * eps4)
    c = np.full((L, n), 1.0 + 2.0 * sigma + 6.0 * eps4)
    d = np.full((L, n), -sigma - 4.0 * eps4)
    e = np.full((L, n), eps4)
    # One-sided ends: fold the out-of-range dissipation into the
    # diagonal so the operator stays diagonally dominant.
    c[:, 0] -= eps4
    c[:, 1] -= 0.0
    c[:, -1] -= eps4
    return a, b, c, d, e


def _sweep(u: np.ndarray, axis: int, sigma: float) -> np.ndarray:
    """Solve the pentadiagonal factor along ``axis`` for all lines and
    all NVARS components (components are independent — SP's defining
    property)."""
    n = u.shape[axis]
    moved = np.moveaxis(u, axis, 2)  # (d1, d2, n, NVARS)
    s = moved.shape
    lines = moved.reshape(-1, n, NVARS)
    # Batch dimension = lines x components.
    flat = np.moveaxis(lines, 2, 1).reshape(-1, n)
    L = flat.shape[0]
    a, b, c, d, e = _directional_bands(L, n, sigma)
    x = penta_thomas(a, b, c, d, e, flat)
    back = np.moveaxis(x.reshape(-1, NVARS, n), 1, 2)
    return np.moveaxis(back.reshape(s), 2, axis)


def sp_adi_step(u: np.ndarray, f: np.ndarray, dt: float) -> np.ndarray:
    """One approximately factored SP time step (implicit diffusion
    with fourth-difference dissipation, Dirichlet-zero ends)."""
    if u.ndim != 4 or u.shape[-1] != NVARS:
        raise ConfigurationError(f"state must be (nx,ny,nz,{NVARS}): {u.shape}")
    sigma = dt
    rhs = u + dt * f
    for axis in range(3):
        lap = -2.0 * u
        lap += np.roll(u, 1, axis)
        lap += np.roll(u, -1, axis)
        lo = [slice(None)] * 4
        lo[axis] = 0
        hi = [slice(None)] * 4
        hi[axis] = -1
        lap[tuple(lo)] = -2.0 * u[tuple(lo)] + np.take(u, 1, axis)
        lap[tuple(hi)] = -2.0 * u[tuple(hi)] + np.take(u, -2, axis)
        rhs = rhs + sigma * lap
    w = _sweep(rhs, 0, sigma)
    w = _sweep(w, 1, sigma)
    w = _sweep(w, 2, sigma)
    return w


@dataclass(frozen=True)
class SPResult:
    """Outcome of a real SP run."""

    n: int
    iterations: int
    rms_history: tuple[float, ...]

    @property
    def converged(self) -> bool:
        return self.rms_history[-1] < self.rms_history[0]


def run_sp(n: int = 12, iterations: int = 30, seed: int | None = None) -> SPResult:
    """March the SP model problem toward steady state on an n^3 grid."""
    if n < 4 or n > 32:
        raise ConfigurationError(
            f"real SP runs are test-scale: 4 <= n <= 32, got {n}"
        )
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1: {iterations}")
    rng = make_rng(seed)
    u = rng.standard_normal((n, n, n, NVARS)) * 0.1
    f = np.zeros_like(u)
    dt = 0.4
    history = []
    for _ in range(iterations):
        u_new = sp_adi_step(u, f, dt)
        history.append(float(np.sqrt(np.mean((u_new - u) ** 2))))
        u = u_new
    return SPResult(n=n, iterations=iterations, rms_history=tuple(history))
