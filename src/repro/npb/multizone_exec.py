"""Multi-zone execution for real (not just the timing model).

NPB-MZ's defining structure (paper §3.2): the aggregate grid is cut
into zones; *within* a zone the solver runs as usual (fine-grain
parallelism), and once per step zones exchange boundary values with
their neighbors (coarse-grain parallelism).  This module actually
executes that structure on a model problem:

* :func:`run_multizone_diffusion` — explicit 7-point diffusion where
  the zone decomposition with one ghost layer must reproduce the
  single-grid computation *exactly* (the tested invariant);
* :func:`run_multizone_implicit` — per-zone implicit ADI (the real BT
  or SP step from :mod:`repro.npb.bt` / :mod:`repro.npb.sp`) coupled
  only through the per-step boundary exchange, exactly as NPB-MZ
  couples zones; verified to converge to the same steady state as the
  undecomposed solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.npb.bt import NVARS, adi_step
from repro.npb.sp import sp_adi_step
from repro.sim.rng import make_rng

__all__ = [
    "ZoneLayout",
    "split_zones",
    "exchange_boundaries",
    "assemble",
    "run_multizone_diffusion",
    "run_multizone_implicit",
]


@dataclass(frozen=True)
class ZoneLayout:
    """A 2D zone decomposition of an (nx, ny, nz) grid.

    Zones split x and y (as NPB-MZ does); z stays whole.  Zone (i, j)
    owns ``x_slices[i]`` x ``y_slices[j]`` of the aggregate arrays.
    """

    zones_x: int
    zones_y: int
    x_bounds: tuple[int, ...]  # len zones_x + 1
    y_bounds: tuple[int, ...]

    @property
    def n_zones(self) -> int:
        return self.zones_x * self.zones_y

    def owner_slices(self, i: int, j: int) -> tuple[slice, slice]:
        return (
            slice(self.x_bounds[i], self.x_bounds[i + 1]),
            slice(self.y_bounds[j], self.y_bounds[j + 1]),
        )


def _bounds(total: int, parts: int) -> tuple[int, ...]:
    if parts < 1 or total < parts * 2:
        raise ConfigurationError(
            f"cannot cut {total} cells into {parts} zones of >= 2"
        )
    base = total // parts
    rem = total % parts
    bounds = [0]
    for p in range(parts):
        bounds.append(bounds[-1] + base + (1 if p < rem else 0))
    return tuple(bounds)


def split_zones(shape: tuple[int, int, int], zones_x: int, zones_y: int) -> ZoneLayout:
    """Build the zone layout for an aggregate grid."""
    nx, ny, _ = shape
    return ZoneLayout(zones_x, zones_y, _bounds(nx, zones_x), _bounds(ny, zones_y))


def split_field(u: np.ndarray, layout: ZoneLayout) -> dict[tuple[int, int], np.ndarray]:
    """Cut an aggregate field into owned zone arrays (copies)."""
    zones = {}
    for i in range(layout.zones_x):
        for j in range(layout.zones_y):
            sx, sy = layout.owner_slices(i, j)
            zones[(i, j)] = u[sx, sy].copy()
    return zones


def assemble(zones: dict[tuple[int, int], np.ndarray], layout: ZoneLayout,
             shape: tuple[int, ...]) -> np.ndarray:
    """Reassemble the aggregate field from owned zone arrays."""
    out = np.zeros(shape)
    for (i, j), z in zones.items():
        sx, sy = layout.owner_slices(i, j)
        out[sx, sy] = z
    return out


def exchange_boundaries(
    zones: dict[tuple[int, int], np.ndarray], layout: ZoneLayout
) -> dict[tuple[int, int], tuple[np.ndarray | None, ...]]:
    """The per-step inter-zone boundary exchange.

    Returns, for each zone, the four ghost strips ``(x_lo, x_hi,
    y_lo, y_hi)`` copied from its neighbors' interior edges (``None``
    at physical boundaries) — NPB-MZ's coarse-grain communication.
    """
    ghosts = {}
    for (i, j), _z in zones.items():
        x_lo = zones[(i - 1, j)][-1] if i > 0 else None
        x_hi = zones[(i + 1, j)][0] if i + 1 < layout.zones_x else None
        y_lo = zones[(i, j - 1)][:, -1] if j > 0 else None
        y_hi = zones[(i, j + 1)][:, 0] if j + 1 < layout.zones_y else None
        ghosts[(i, j)] = (x_lo, x_hi, y_lo, y_hi)
    return ghosts


def _diffusion_step_zone(
    z: np.ndarray,
    ghost: tuple[np.ndarray | None, ...],
    sigma: float,
) -> np.ndarray:
    """Explicit 7-point diffusion on one zone using ghost strips.

    Physical (outer) boundaries are Dirichlet-zero; z is treated
    periodically along the third axis to keep the stencil simple.
    """
    x_lo, x_hi, y_lo, y_hi = ghost
    nx, ny = z.shape[0], z.shape[1]
    padded = np.zeros((nx + 2, ny + 2) + z.shape[2:])
    padded[1:-1, 1:-1] = z
    if x_lo is not None:
        padded[0, 1:-1] = x_lo
    if x_hi is not None:
        padded[-1, 1:-1] = x_hi
    if y_lo is not None:
        padded[1:-1, 0] = y_lo
    if y_hi is not None:
        padded[1:-1, -1] = y_hi
    lap = (
        padded[:-2, 1:-1] + padded[2:, 1:-1]
        + padded[1:-1, :-2] + padded[1:-1, 2:]
        - 4.0 * z
    )
    lap = lap + np.roll(z, 1, axis=2) + np.roll(z, -1, axis=2) - 2.0 * z
    return z + sigma * lap


def _diffusion_step_global(u: np.ndarray, sigma: float) -> np.ndarray:
    """The undecomposed reference step (same stencil and BCs)."""
    nx, ny = u.shape[0], u.shape[1]
    padded = np.zeros((nx + 2, ny + 2) + u.shape[2:])
    padded[1:-1, 1:-1] = u
    lap = (
        padded[:-2, 1:-1] + padded[2:, 1:-1]
        + padded[1:-1, :-2] + padded[1:-1, 2:]
        - 4.0 * u
    )
    lap = lap + np.roll(u, 1, axis=2) + np.roll(u, -1, axis=2) - 2.0 * u
    return u + sigma * lap


def run_multizone_diffusion(
    shape: tuple[int, int, int] = (16, 16, 4),
    zones_x: int = 2,
    zones_y: int = 2,
    steps: int = 10,
    sigma: float = 0.1,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the explicit model problem both ways.

    Returns ``(multizone_result, global_result)``; with one ghost
    layer per step the two must agree to machine precision — the
    exactness test of the zone-exchange machinery.
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1: {steps}")
    rng = make_rng(seed)
    u0 = rng.standard_normal(shape)
    layout = split_zones(shape, zones_x, zones_y)
    zones = split_field(u0, layout)
    u = u0.copy()
    for _ in range(steps):
        ghosts = exchange_boundaries(zones, layout)
        zones = {
            key: _diffusion_step_zone(z, ghosts[key], sigma)
            for key, z in zones.items()
        }
        u = _diffusion_step_global(u, sigma)
    return assemble(zones, layout, shape), u


def run_multizone_implicit(
    benchmark: str = "bt-mz",
    shape: tuple[int, int, int] = (12, 12, 6),
    zones_x: int = 2,
    zones_y: int = 2,
    steps: int = 25,
    dt: float = 0.4,
    seed: int | None = None,
) -> tuple[float, float]:
    """Per-zone implicit ADI coupled by boundary exchange (the real
    NPB-MZ structure, with the real BT/SP kernels inside each zone).

    Each step: exchange zone boundaries, fold the ghost strips into
    each zone's right-hand side (the inter-zone coupling), then run
    the zone-local ADI step.  Returns ``(initial_rms, final_rms)`` of
    the state: the coupled system must decay toward the global steady
    state (zero), just like the undecomposed solver.
    """
    if benchmark not in ("bt-mz", "sp-mz"):
        raise ConfigurationError(f"unknown multizone benchmark {benchmark!r}")
    step_fn = adi_step if benchmark == "bt-mz" else sp_adi_step
    rng = make_rng(seed)
    u0 = rng.standard_normal(shape + (NVARS,)) * 0.1
    layout = split_zones(shape, zones_x, zones_y)
    zones = split_field(u0, layout)
    rms0 = float(np.sqrt(np.mean(u0**2)))
    for _ in range(steps):
        ghosts = exchange_boundaries(zones, layout)
        new_zones = {}
        for key, z in zones.items():
            x_lo, x_hi, y_lo, y_hi = ghosts[key]
            f = np.zeros_like(z)
            # Ghost coupling enters as a boundary forcing on the RHS
            # (the zone-local solve still sees Dirichlet-zero ends).
            if x_lo is not None:
                f[0] += dt * x_lo
            if x_hi is not None:
                f[-1] += dt * x_hi
            if y_lo is not None:
                f[:, 0] += dt * y_lo
            if y_hi is not None:
                f[:, -1] += dt * y_hi
            new_zones[key] = step_fn(z, f, dt)
        zones = new_zones
    final = assemble(zones, layout, shape + (NVARS,))
    return rms0, float(np.sqrt(np.mean(final**2)))
