"""NPB-style result blocks.

The official NAS Parallel Benchmarks print a standardized result
footer (class, size, iterations, Mop/s total and per process,
verification).  This module renders our real runs and model
predictions in that familiar shape, so output is directly comparable
with archived NPB logs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.npb.classes import problem

__all__ = ["NPBReport", "report_real_run", "report_model"]


@dataclass(frozen=True)
class NPBReport:
    """The fields of an NPB result footer."""

    benchmark: str
    cls: str
    size: str
    iterations: int
    time_seconds: float
    total_processes: int
    mops_total: float
    verification: str  # "SUCCESSFUL" / "UNSUCCESSFUL"

    def format(self) -> str:
        name = self.benchmark.upper()
        lines = [
            f" {name} Benchmark Completed.",
            f" Class           =             {self.cls:>12}",
            f" Size            =             {self.size:>12}",
            f" Iterations      =             {self.iterations:>12d}",
            f" Time in seconds =             {self.time_seconds:>12.2f}",
            f" Total processes =             {self.total_processes:>12d}",
            f" Mop/s total     =             {self.mops_total:>12.2f}",
            f" Mop/s/process   =             "
            f"{self.mops_total / max(1, self.total_processes):>12.2f}",
            f" Verification    =             {self.verification:>12}",
        ]
        return "\n".join(lines)


def _size_string(benchmark: str, cls: str) -> str:
    spec = problem(benchmark, cls)
    if benchmark == "cg":
        return str(spec.shape[0])
    return "x".join(str(s) for s in spec.shape)


def report_real_run(
    benchmark: str,
    cls: str,
    time_seconds: float,
    verified: bool,
    iterations: int | None = None,
) -> NPBReport:
    """Footer for an actually-executed kernel run."""
    if time_seconds <= 0:
        raise ConfigurationError(f"time must be positive: {time_seconds}")
    spec = problem(benchmark, cls)
    iters = iterations if iterations is not None else spec.iterations
    return NPBReport(
        benchmark=benchmark,
        cls=cls.upper(),
        size=_size_string(benchmark, cls),
        iterations=iters,
        time_seconds=time_seconds,
        total_processes=1,
        mops_total=spec.flops / time_seconds / 1e6,
        verification="SUCCESSFUL" if verified else "UNSUCCESSFUL",
    )


def report_model(
    benchmark: str,
    cls: str,
    placement,
    paradigm: str = "mpi",
) -> NPBReport:
    """Footer for a machine-model prediction."""
    from repro.npb.timing import NPBTimingModel

    model = NPBTimingModel(benchmark, cls, placement, paradigm)
    total_time = model.total_time()
    spec = model.spec
    return NPBReport(
        benchmark=benchmark,
        cls=cls.upper(),
        size=_size_string(benchmark, cls),
        iterations=spec.iterations,
        time_seconds=total_time,
        total_processes=placement.total_cpus,
        mops_total=spec.flops / total_time / 1e6,
        verification="MODELED",
    )
