"""MG: multigrid kernel (real implementation).

A V-cycle multigrid solver for the 3D Poisson problem
``-laplacian(u) = v`` on a periodic cube, the numerical method NPB MG
mimics ("MG ... tests long- and short-distance communication", paper
§3.2): smoothing and residual evaluation are short-distance (halo)
operations, while the coarse levels of the V-cycle are long-distance.

The implementation is fully vectorized (``np.roll`` periodic stencils)
and verified by tests: each V-cycle contracts the residual by a
grid-independent factor, and a manufactured smooth solution is
recovered to discretization accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.npb.classes import problem
from repro.sim.rng import make_rng

__all__ = ["MGResult", "run_mg", "v_cycle", "laplacian", "residual_norm"]


def laplacian(u: np.ndarray, h: float) -> np.ndarray:
    """Periodic 7-point Laplacian of ``u`` with grid spacing ``h``."""
    out = -6.0 * u
    for axis in range(3):
        out += np.roll(u, 1, axis) + np.roll(u, -1, axis)
    return out / (h * h)


def _residual(u: np.ndarray, v: np.ndarray, h: float) -> np.ndarray:
    """r = v - A u for A = -laplacian."""
    return v + laplacian(u, h)


def _smooth(u: np.ndarray, v: np.ndarray, h: float, passes: int = 2) -> np.ndarray:
    """Weighted-Jacobi smoothing (omega = 2/3, the 3D-optimal choice)."""
    omega = 2.0 / 3.0
    diag = 6.0 / (h * h)
    for _ in range(passes):
        r = _residual(u, v, h)
        u = u + omega * r / diag
    return u


def _restrict(r: np.ndarray) -> np.ndarray:
    """Full-weighting restriction to the next coarser periodic grid."""
    n = r.shape[0]
    if n % 2 != 0:
        raise ConfigurationError(f"grid not coarsenable: {r.shape}")
    # Average over 2x2x2 cells (the separable full-weighting stencil).
    return 0.125 * (
        r[0::2, 0::2, 0::2]
        + r[1::2, 0::2, 0::2]
        + r[0::2, 1::2, 0::2]
        + r[0::2, 0::2, 1::2]
        + r[1::2, 1::2, 0::2]
        + r[1::2, 0::2, 1::2]
        + r[0::2, 1::2, 1::2]
        + r[1::2, 1::2, 1::2]
    )


def _interp_axis(a: np.ndarray, axis: int) -> np.ndarray:
    """Double resolution along ``axis``: even slots copy ``a``, odd
    slots are periodic midpoints."""
    shape = list(a.shape)
    shape[axis] = 2 * shape[axis]
    out = np.zeros(shape, dtype=a.dtype)
    even = [slice(None)] * 3
    even[axis] = slice(0, None, 2)
    odd = [slice(None)] * 3
    odd[axis] = slice(1, None, 2)
    out[tuple(even)] = a
    out[tuple(odd)] = 0.5 * (a + np.roll(a, -1, axis))
    return out


def _prolong(e: np.ndarray) -> np.ndarray:
    """Trilinear prolongation to the next finer periodic grid."""
    fine = e
    for axis in range(3):
        fine = _interp_axis(fine, axis)
    return fine


def v_cycle(
    u: np.ndarray, v: np.ndarray, h: float, min_size: int = 4
) -> np.ndarray:
    """One multigrid V-cycle for -laplacian(u) = v (periodic)."""
    u = _smooth(u, v, h)
    if u.shape[0] <= min_size:
        return _smooth(u, v, h, passes=8)
    r = _residual(u, v, h)
    r_coarse = _restrict(r)
    e_coarse = v_cycle(np.zeros_like(r_coarse), r_coarse, 2 * h, min_size)
    u = u + _prolong(e_coarse)
    return _smooth(u, v, h)


def residual_norm(u: np.ndarray, v: np.ndarray, h: float) -> float:
    """L2 norm of the residual (NPB MG's verification quantity)."""
    r = _residual(u, v, h)
    return float(np.sqrt(np.mean(r * r)))


@dataclass(frozen=True)
class MGResult:
    """Outcome of a real MG run."""

    cls: str
    n: int
    iterations: int
    initial_residual: float
    final_residual: float

    @property
    def contraction(self) -> float:
        """Average per-V-cycle residual contraction factor."""
        if self.initial_residual == 0:
            return 0.0
        return (self.final_residual / self.initial_residual) ** (
            1.0 / self.iterations
        )


def run_mg(cls: str = "S", seed: int | None = None) -> MGResult:
    """Execute the MG benchmark class ``cls`` for real.

    The right-hand side is a random zero-mean field (the periodic
    Poisson problem is solvable only for zero-mean sources — NPB uses
    a +1/-1 spike pattern with the same property).
    """
    spec = problem("mg", cls)
    n = spec.shape[0]
    if n > 128:
        raise ConfigurationError(
            f"class {cls} ({n}^3) is a model-scale problem; run S or W "
            "for real execution"
        )
    rng = make_rng(seed)
    v = rng.standard_normal((n, n, n))
    v -= v.mean()
    h = 1.0 / n
    u = np.zeros_like(v)
    r0 = residual_norm(u, v, h)
    for _ in range(spec.iterations):
        u = v_cycle(u, v, h)
    # Re-project: periodic Neumann null space (constants).
    u -= u.mean()
    return MGResult(
        cls=cls.upper(),
        n=n,
        iterations=spec.iterations,
        initial_residual=r0,
        final_residual=residual_norm(u, v, h),
    )
