"""BT: block-tridiagonal simulated application (real implementation).

NPB BT solves the 3D Navier-Stokes equations with a Beam-Warming
approximate factorization: each time step sweeps the three coordinate
directions, solving block-tridiagonal systems with 5x5 blocks along
every grid line ("BT tests nearest neighbor communication", paper
§3.2 — the directional sweeps exchange faces with neighbors).

We implement the same computational core on a model problem that keeps
the numerics honest while staying compact: an implicitly time-stepped
5-component coupled diffusion system

    (I - dt Dxx)(I - dt Dyy)(I - dt Dzz) u^{n+1} = u^n + dt f

where each directional factor is a block-tridiagonal matrix with 5x5
blocks coupling the components through a fixed matrix K (standing in
for the flux Jacobians).  The solver is a *batched block-Thomas
algorithm* vectorized over all grid lines — exactly BT's inner kernel.
Tests verify the block solver against dense linear algebra and the
ADI iteration's convergence to steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.npb.classes import problem
from repro.sim.rng import make_rng

__all__ = ["BTResult", "run_bt", "block_thomas", "adi_step"]

#: Number of coupled components (Navier-Stokes: rho, rho*u, rho*v,
#: rho*w, E).
NVARS = 5

#: Fixed component-coupling matrix (a stand-in flux Jacobian): small,
#: non-symmetric, spectral radius < 1 so the implicit operator stays
#: diagonally dominant.
_K = np.array(
    [
        [0.00, 0.10, 0.00, 0.00, 0.02],
        [0.05, 0.00, 0.08, 0.00, 0.00],
        [0.00, 0.06, 0.00, 0.07, 0.00],
        [0.00, 0.00, 0.05, 0.00, 0.06],
        [0.03, 0.00, 0.00, 0.04, 0.00],
    ]
)


def block_thomas(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, r: np.ndarray
) -> np.ndarray:
    """Solve batched block-tridiagonal systems.

    Shapes: ``a, b, c`` are ``(L, n, k, k)`` (sub/main/super diagonal
    blocks; ``a[:, 0]`` and ``c[:, -1]`` are ignored), ``r`` is
    ``(L, n, k)``.  Returns ``x`` with shape ``(L, n, k)``.  All L
    independent lines are solved simultaneously with vectorized 5x5
    factorizations — the BT inner loop.
    """
    L, n, k, k2 = b.shape
    if k != k2 or a.shape != b.shape or c.shape != b.shape or r.shape != (L, n, k):
        raise ConfigurationError("inconsistent block-tridiagonal shapes")
    bb = b.copy()
    rr = r.copy()
    # Forward elimination.
    for i in range(1, n):
        # m = a_i @ inv(bb_{i-1}) computed as solve(bb^T, a^T)^T.
        m = np.linalg.solve(
            np.swapaxes(bb[:, i - 1], -1, -2), np.swapaxes(a[:, i], -1, -2)
        )
        m = np.swapaxes(m, -1, -2)
        bb[:, i] = bb[:, i] - m @ c[:, i - 1]
        rr[:, i] = rr[:, i] - np.einsum("lij,lj->li", m, rr[:, i - 1])
    # Back substitution.  (The [..., None] dance makes numpy treat the
    # right-hand sides as batched vectors, not matrices.)
    x = np.empty_like(rr)
    x[:, n - 1] = np.linalg.solve(bb[:, n - 1], rr[:, n - 1][..., None])[..., 0]
    for i in range(n - 2, -1, -1):
        rhs = rr[:, i] - np.einsum("lij,lj->li", c[:, i], x[:, i + 1])
        x[:, i] = np.linalg.solve(bb[:, i], rhs[..., None])[..., 0]
    return x


def _directional_blocks(n: int, sigma: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Blocks of one directional factor (I - dt D) on a line of n
    points with homogeneous Dirichlet ends."""
    eye = np.eye(NVARS)
    main = (1.0 + 2.0 * sigma) * eye + 0.5 * sigma * _K
    off = -sigma * eye - 0.25 * sigma * _K
    a = np.broadcast_to(off, (n, NVARS, NVARS)).copy()
    b = np.broadcast_to(main, (n, NVARS, NVARS)).copy()
    c = np.broadcast_to(off, (n, NVARS, NVARS)).copy()
    return a, b, c


def _sweep(u: np.ndarray, axis: int, sigma: float) -> np.ndarray:
    """Solve the directional factor along ``axis`` for every line."""
    n = u.shape[axis]
    # Move the sweep axis to position 1 and flatten the others.
    moved = np.moveaxis(u, axis, 2)  # (n1, n2, n, NVARS) after reshape
    s = moved.shape
    lines = moved.reshape(-1, n, NVARS)
    L = lines.shape[0]
    a1, b1, c1 = _directional_blocks(n, sigma)
    a = np.broadcast_to(a1, (L, n, NVARS, NVARS))
    b = np.broadcast_to(b1, (L, n, NVARS, NVARS))
    c = np.broadcast_to(c1, (L, n, NVARS, NVARS))
    x = block_thomas(np.ascontiguousarray(a), np.ascontiguousarray(b),
                     np.ascontiguousarray(c), lines)
    return np.moveaxis(x.reshape(s), 2, axis)


def _explicit_rhs(u: np.ndarray, f: np.ndarray, dt: float, sigma: float) -> np.ndarray:
    """u + dt*f + explicit diffusion residual (Dirichlet zero ends)."""
    rhs = u + dt * f
    for axis in range(3):
        lap = -2.0 * u
        lap += np.roll(u, 1, axis)
        lap += np.roll(u, -1, axis)
        # Dirichlet: zero the wrapped contributions.
        lo = [slice(None)] * 4
        lo[axis] = 0
        hi = [slice(None)] * 4
        hi[axis] = -1
        lap[tuple(lo)] = -2.0 * u[tuple(lo)] + np.take(u, 1, axis)
        lap[tuple(hi)] = -2.0 * u[tuple(hi)] + np.take(u, -2, axis)
        rhs = rhs + sigma * lap + 0.25 * sigma * lap @ _K.T
    return rhs


def adi_step(u: np.ndarray, f: np.ndarray, dt: float) -> np.ndarray:
    """One approximately factored implicit step (the BT time step)."""
    if u.ndim != 4 or u.shape[-1] != NVARS:
        raise ConfigurationError(f"state must be (nx,ny,nz,{NVARS}): {u.shape}")
    sigma = dt  # unit grid spacing
    rhs = _explicit_rhs(u, f, dt, sigma)
    w = _sweep(rhs, 0, sigma)
    w = _sweep(w, 1, sigma)
    w = _sweep(w, 2, sigma)
    return w


@dataclass(frozen=True)
class BTResult:
    """Outcome of a real BT run."""

    cls: str
    n: int
    iterations: int
    rms_history: tuple[float, ...]

    @property
    def converged(self) -> bool:
        """Whether the update norm decreased over the run."""
        return self.rms_history[-1] < self.rms_history[0]


def run_bt(cls: str = "S", iterations: int | None = None, seed: int | None = None) -> BTResult:
    """Execute the BT benchmark class ``cls`` for real.

    Marches the coupled implicit diffusion system toward steady state
    and records the RMS update norm per step (which must decay — the
    verification invariant).
    """
    spec = problem("bt", cls)
    n = spec.shape[0]
    if n > 24:
        raise ConfigurationError(
            f"class {cls} ({n}^3) is a model-scale problem; run S/W for "
            "real execution"
        )
    iters = iterations if iterations is not None else min(spec.iterations, 40)
    rng = make_rng(seed)
    u = rng.standard_normal((n, n, n, NVARS)) * 0.1
    f = np.zeros_like(u)
    dt = 0.5
    history = []
    for _ in range(iters):
        u_new = adi_step(u, f, dt)
        history.append(float(np.sqrt(np.mean((u_new - u) ** 2))))
        u = u_new
    return BTResult(cls=cls.upper(), n=n, iterations=iters, rms_history=tuple(history))
