"""NPB performance model on the simulated Columbia machine.

For each benchmark the model charges, per run:

* a **compute** term — flop count against (peak x kernel efficiency),
  scaled by the compiler factor;
* a **memory** term — main-memory traffic surviving the L3 (working
  set vs cache capacity, kernel-specific reuse) against the per-CPU
  STREAM bandwidth of the placement;
* a **communication** term — the kernel's characteristic pattern
  (halo exchange for MG/BT, reductions + pencil exchange for CG,
  all-to-all transposes for FT) priced by the analytic collective
  model; or, under OpenMP, the same exchange *volumes* moved through
  the node's NUMAlink at its loaded per-CPU bandwidth, plus fork-join
  synchronization and an Amdahl serial fraction.

This reproduces the paper's §4.1.2 findings: OpenMP wins at small CPU
counts but MPI scales better; OpenMP is bandwidth-sensitive (up to 2x
between 3700 and BX2 at 128 threads for FT/BT); FT at 256 CPUs runs
~2x faster on BX2 (all-to-all); MG/BT jump ~50% on BX2b at >=64 CPUs
(9 MB L3); clock speed matters little.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.cache import miss_fraction
from repro.machine.compilers import Compiler, compiler_factor
from repro.machine.placement import Placement
from repro.netmodel.collectives import CollectiveModel
from repro.npb.classes import ProblemSize, problem
from repro.units import to_gflops

__all__ = ["KernelPerf", "KERNEL_PERF", "NPBTimingModel", "npb_gflops_per_cpu"]


@dataclass(frozen=True)
class KernelPerf:
    """Machine-independent performance characteristics of a kernel."""

    #: Fraction of processor peak the compute phase sustains.
    base_eff: float
    #: Cache-reuse factor (effective L3 multiplier; blocked kernels > 1).
    reuse: float
    #: Nearest-neighbor halo partners (0 if the kernel is all-to-all).
    halo_neighbors: int
    #: Amdahl parallel fraction of the OpenMP version.
    omp_parallel_fraction: float
    #: Seconds per OpenMP barrier round (x log2 t x barrier count).
    omp_sync_cost: float
    #: Barriers per benchmark iteration in the OpenMP version.
    omp_barriers_per_iter: float
    #: OpenMP cross-brick traffic relative to the MPI exchange volume
    #: at the same parallelism (remote touches are not aggregated the
    #: way MPI packs messages, so > 1).
    omp_traffic_multiplier: float
    #: Whether the OpenMP version slices the domain into 1D slabs
    #: (loop-level parallelism) rather than the MPI version's compact
    #: 3D subdomains: slab surfaces are t**(2/3) larger.
    omp_slab_decomposition: bool = False


KERNEL_PERF: dict[str, KernelPerf] = {
    "mg": KernelPerf(
        base_eff=0.30,
        reuse=1.0,
        halo_neighbors=6,
        omp_parallel_fraction=0.997,
        omp_sync_cost=10e-6,
        omp_barriers_per_iter=40.0,  # every smoothing pass, every level
        omp_traffic_multiplier=2.0,
    ),
    "cg": KernelPerf(
        base_eff=0.085,  # irregular gather-bound SpMV
        reuse=1.0,
        halo_neighbors=2,
        omp_parallel_fraction=0.998,
        omp_sync_cost=6e-6,
        omp_barriers_per_iter=100.0,  # 25 inner iterations x 4 regions
        omp_traffic_multiplier=1.5,
    ),
    "ft": KernelPerf(
        base_eff=0.24,
        reuse=1.0,
        halo_neighbors=0,
        omp_parallel_fraction=0.999,
        omp_sync_cost=8e-6,
        omp_barriers_per_iter=8.0,
        omp_traffic_multiplier=3.0,  # transposed remote touches
    ),
    "bt": KernelPerf(
        base_eff=0.17,
        reuse=2.0,  # 5x5 blocks revisited across the three sweeps
        halo_neighbors=6,
        omp_parallel_fraction=0.996,
        omp_sync_cost=10e-6,
        omp_barriers_per_iter=15.0,  # per-direction pipeline syncs
        omp_traffic_multiplier=2.5,
        omp_slab_decomposition=True,  # pipelined line solver slices 1D
    ),
}


@dataclass
class NPBTimingModel:
    """Predicted timing of one NPB run on a placement."""

    benchmark: str
    cls: str
    placement: Placement
    paradigm: str = "mpi"  # "mpi" or "openmp"
    compiler: Compiler = Compiler.V7_1

    def __post_init__(self) -> None:
        if self.benchmark not in KERNEL_PERF:
            raise ConfigurationError(f"unknown NPB benchmark {self.benchmark!r}")
        if self.paradigm not in ("mpi", "openmp"):
            raise ConfigurationError(f"unknown paradigm {self.paradigm!r}")
        self.spec: ProblemSize = problem(self.benchmark, self.cls)
        self.perf = KERNEL_PERF[self.benchmark]
        if self.paradigm == "openmp" and self.placement.n_nodes_used() > 1:
            raise ConfigurationError(
                "OpenMP cannot span Altix nodes (shared memory only)"
            )
        self._collectives: CollectiveModel | None = None

    # -- pieces ---------------------------------------------------------------

    @property
    def p(self) -> int:
        """Degree of parallelism (ranks, or threads under OpenMP)."""
        return self.placement.total_cpus

    def _node(self):
        return self.placement.cluster.nodes[0]

    def _compute_time(self) -> float:
        """Per-CPU compute + memory time for the whole run."""
        node = self._node()
        p = self.p
        cf = compiler_factor(self.compiler, self.benchmark, p)
        flops = self.spec.flops / p
        eff = self.perf.base_eff * cf
        compute = flops / (node.processor.peak_flops * eff)
        ws = self.spec.memory_bytes / p
        miss = miss_fraction(ws, node.processor.l3_bytes, self.perf.reuse)
        mem_bw = node.fsb.per_cpu_bandwidth(self.placement.active_per_fsb())
        memory = (self.spec.traffic_bytes / p) * miss / mem_bw
        return compute + memory

    def comm_volume_per_rank(self, p: int | None = None) -> float:
        """Bytes each rank exchanges over the whole run when the
        problem is decomposed ``p`` ways (both paradigms slice the
        same way, so this also sizes OpenMP's cross-brick traffic)."""
        p = self.p if p is None else p
        if p <= 1:
            return 0.0
        spec = self.spec
        n = spec.points
        iters = spec.iterations
        if self.benchmark == "mg":
            # 6 faces per smoothing/residual pass; the level hierarchy
            # adds a ~2x geometric factor.
            face = 8.0 * (n / p) ** (2.0 / 3.0)
            return iters * 6 * 2.0 * face
        if self.benchmark == "cg":
            # Per inner iteration: pencil exchange of the vector block
            # with the transpose partner set (~sqrt(P)-wide).
            vec_block = 8.0 * n / max(1.0, math.sqrt(p))
            return iters * 25 * 2 * vec_block
        if self.benchmark == "ft":
            # Two full-array transposes per iteration.
            return iters * 2 * 16.0 * n / p
        # bt: three directional sweeps, two faces each, 5 variables.
        face = 8.0 * 5.0 * (n / p) ** (2.0 / 3.0)
        return iters * 3 * 2 * face

    def _mpi_comm_time(self) -> float:
        """Communication time for the whole run under MPI."""
        if self.p == 1:
            return 0.0
        if self._collectives is None:
            self._collectives = CollectiveModel(self.placement)
        coll = self._collectives
        spec = self.spec
        n = spec.points
        p = self.p
        iters = spec.iterations
        if self.benchmark == "mg":
            face = 8.0 * (n / p) ** (2.0 / 3.0)
            per_iter = coll.halo_exchange(2.0 * face, 6) + coll.allreduce(8)
            return iters * per_iter
        if self.benchmark == "cg":
            vec_block = 8.0 * n / max(1.0, math.sqrt(p))
            per_inner = 2 * coll.allreduce(8) + coll.halo_exchange(vec_block, 2)
            return iters * 25 * per_inner
        if self.benchmark == "ft":
            per_pair = 16.0 * n / (p * p)
            return iters * 2 * coll.alltoall(per_pair)
        # bt: halo faces plus the solver's latency ladder per sweep.
        face = 8.0 * 5.0 * (n / p) ** (2.0 / 3.0)
        pipeline = 3 * math.sqrt(p) * coll.stats.mean_latency
        per_iter = 3 * coll.halo_exchange(face, 2) + pipeline
        return iters * per_iter

    def _openmp_overhead_time(self) -> float:
        """Serial fraction + barriers + cross-brick fabric traffic."""
        node = self._node()
        t = self.p
        perf = self.perf
        serial = (1.0 - perf.omp_parallel_fraction) * self._compute_time() * t
        if t == 1:
            return serial
        sync = (
            perf.omp_sync_cost
            * math.ceil(math.log2(t))
            * perf.omp_barriers_per_iter
            * self.spec.iterations
        )
        # Traffic leaves a brick only once threads span several bricks.
        brick_cpus = node.brick.cpus
        off_brick = max(0.0, 1.0 - brick_cpus / t)
        volume_per_thread = (
            self.comm_volume_per_rank(t) * perf.omp_traffic_multiplier * off_brick
        )
        if perf.omp_slab_decomposition:
            # 1D slab surfaces exceed compact-subdomain faces.
            volume_per_thread *= t ** (2.0 / 3.0)
        loaded_bw = node.interconnect.loaded_bandwidth_per_cpu(brick_cpus)
        fabric = volume_per_thread / loaded_bw
        return serial + sync + fabric

    # -- results ----------------------------------------------------------------

    def total_time(self) -> float:
        """Predicted wall-clock for the full benchmark run."""
        penalty = self.placement.locality_penalty()
        if self.paradigm == "mpi":
            return self._compute_time() * penalty + self._mpi_comm_time()
        return self._compute_time() * penalty + self._openmp_overhead_time()

    def gflops_per_cpu(self) -> float:
        """Per-CPU flop rate, the quantity Fig. 6/8 plots."""
        return to_gflops(self.spec.flops / self.p / self.total_time())

    def breakdown(self) -> dict[str, float]:
        """Compute / communication-or-overhead split."""
        if self.paradigm == "mpi":
            return {"compute": self._compute_time(), "comm": self._mpi_comm_time()}
        return {
            "compute": self._compute_time(),
            "comm": self._openmp_overhead_time(),
        }


def npb_gflops_per_cpu(
    benchmark: str,
    cls: str,
    placement: Placement,
    paradigm: str = "mpi",
    compiler: Compiler = Compiler.V7_1,
) -> float:
    """Convenience wrapper around :class:`NPBTimingModel`."""
    return NPBTimingModel(benchmark, cls, placement, paradigm, compiler).gflops_per_cpu()
