"""FT: 3D FFT kernel (real implementation).

NPB FT solves a 3D diffusion PDE spectrally: FFT the initial state
once, multiply by evolution factors each time step, inverse-FFT, and
checksum ("FT tests all-to-all communication", paper §3.2 — the
distributed transposes inside the 3D FFT are all-to-alls).

Two execution paths are provided and verified against each other:

* :func:`run_ft` — whole-array ``numpy.fft`` evolution;
* :func:`distributed_fft3` — a slab-decomposed 3D FFT that performs
  2D FFTs on local slabs, a global transpose (the all-to-all the
  timing model charges for), and the final 1D FFTs.  Executed
  sequentially over the virtual ranks, it must reproduce
  ``numpy.fft.fftn`` exactly; tests assert it does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.npb.classes import problem
from repro.sim.rng import make_rng

__all__ = ["FTResult", "run_ft", "distributed_fft3", "evolution_factors"]

_ALPHA = 1e-6  # NPB FT diffusion coefficient


def evolution_factors(shape: tuple[int, int, int], t: int) -> np.ndarray:
    """Spectral evolution term exp(-4 alpha pi^2 |k|^2 t)."""
    if t < 0:
        raise ConfigurationError(f"negative time step: {t}")
    ks = []
    for n in shape:
        k = np.fft.fftfreq(n, d=1.0 / n)  # integer wavenumbers +-
        ks.append(k)
    kx, ky, kz = np.meshgrid(*ks, indexing="ij")
    k2 = kx**2 + ky**2 + kz**2
    return np.exp(-4.0 * _ALPHA * np.pi**2 * k2 * t)


def distributed_fft3(u: np.ndarray, n_ranks: int) -> np.ndarray:
    """Slab-decomposed 3D FFT, executed rank by rank.

    Each virtual rank owns ``nx / n_ranks`` x-planes: it computes 2D
    FFTs over (y, z) on its slab.  The global transpose (an MPI
    all-to-all in the real code) regroups the data so each rank owns
    full x-pencils, where the final 1D FFT along x completes the
    transform.
    """
    nx = u.shape[0]
    if nx % n_ranks != 0:
        raise ConfigurationError(
            f"nx={nx} not divisible by {n_ranks} ranks"
        )
    # Phase 1: per-rank 2D FFTs on x-slabs.
    slabs = [
        np.fft.fftn(u[r * (nx // n_ranks):(r + 1) * (nx // n_ranks)], axes=(1, 2))
        for r in range(n_ranks)
    ]
    partial = np.concatenate(slabs, axis=0)
    # Phase 2: all-to-all transpose — every rank sends each other rank
    # the y-columns it will own.  Sequentially this is just a gather.
    # Phase 3: per-rank 1D FFTs along x on full pencils.
    ny = u.shape[1]
    if ny % n_ranks == 0:
        cols = [
            np.fft.fft(partial[:, r * (ny // n_ranks):(r + 1) * (ny // n_ranks)], axis=0)
            for r in range(n_ranks)
        ]
        return np.concatenate(cols, axis=1)
    return np.fft.fft(partial, axis=0)


@dataclass(frozen=True)
class FTResult:
    """Outcome of a real FT run."""

    cls: str
    shape: tuple[int, int, int]
    iterations: int
    checksums: tuple[complex, ...]
    energy_error: float  # relative Parseval violation (should be ~eps)


def run_ft(cls: str = "S", seed: int | None = None) -> FTResult:
    """Execute the FT benchmark class ``cls`` for real.

    Per NPB FT: transform the random initial field once, then for each
    time step scale by the evolution factors, inverse transform, and
    record a checksum (a strided sample sum, as NPB does).
    """
    spec = problem("ft", cls)
    shape = spec.shape
    if spec.points > 64**3:
        raise ConfigurationError(
            f"class {cls} {shape} is a model-scale problem; run S for "
            "real execution"
        )
    rng = make_rng(seed)
    u0 = rng.random(shape) + 1j * rng.random(shape)
    u_hat = np.fft.fftn(u0)
    # Parseval check on the forward transform.
    energy_phys = float(np.sum(np.abs(u0) ** 2))
    energy_spec = float(np.sum(np.abs(u_hat) ** 2)) / u0.size
    energy_error = abs(energy_phys - energy_spec) / energy_phys
    checksums = []
    n_total = u0.size
    for t in range(1, spec.iterations + 1):
        w_hat = u_hat * evolution_factors(shape, t)
        w = np.fft.ifftn(w_hat)
        # NPB checksum: sum of 1024 strided samples.
        flat = w.reshape(-1)
        idx = (np.arange(1024) * ((n_total // 1024) + 1)) % n_total
        checksums.append(complex(flat[idx].sum()))
    return FTResult(
        cls=cls.upper(),
        shape=shape,
        iterations=spec.iterations,
        checksums=tuple(checksums),
        energy_error=energy_error,
    )
